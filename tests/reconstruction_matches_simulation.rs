//! Cross-crate integration tests: the full QRCC pipeline (plan → fragments →
//! execute → reconstruct) must reproduce direct state-vector simulation, for
//! both probability-distribution and expectation-value workloads — the
//! repository-level equivalent of the paper's Figure 4 verification.

use qrcc::circuit::generators;
use qrcc::circuit::observable::{PauliObservable, PauliString};
use qrcc::prelude::*;
use std::time::Duration;

fn config(device: usize, gate_cuts: bool) -> QrccConfig {
    QrccConfig::new(device)
        .with_subcircuit_range(2, 3)
        .with_gate_cuts(gate_cuts)
        .with_ilp_time_limit(Duration::ZERO)
}

fn assert_distribution_matches(circuit: &Circuit, device: usize) {
    let pipeline = QrccPipeline::plan(circuit, config(device, false)).expect("plan");
    let backend = ExactBackend::new();
    // batch-first flow: one deduplicated parallel batch, then consume
    let results = pipeline.execute(&backend).expect("execute batch");
    assert_eq!(backend.executions(), results.executed());
    let reconstructed = pipeline.reconstruct_probabilities_from(&results).expect("reconstruct");
    let exact = StateVector::from_circuit(circuit).expect("simulate").probabilities();
    assert_eq!(reconstructed.len(), exact.len());
    for (i, (a, b)) in exact.iter().zip(&reconstructed).enumerate() {
        assert!(
            (a - b).abs() < 1e-6,
            "mismatch at basis state {i}: exact {a} vs reconstructed {b}"
        );
    }
}

#[test]
fn ghz_distribution_on_three_qubit_device() {
    let mut circuit = Circuit::new(5);
    circuit.h(0);
    for q in 0..4 {
        circuit.cx(q, q + 1);
    }
    assert_distribution_matches(&circuit, 3);
}

#[test]
fn qft_distribution_on_four_qubit_device() {
    // QFT(5) keeps the all-to-all structure while staying cheap enough for an
    // exact (debug-mode) reconstruction of every subcircuit variant.
    let circuit = generators::qft(5);
    assert_distribution_matches(&circuit, 4);
}

#[test]
fn aqft_distribution_on_four_qubit_device() {
    // The approximate QFT keeps only short-range controlled-phase gates, so
    // the plan needs few cuts and the exact reconstruction stays cheap even
    // in debug builds (the full adder/QFT workloads are exercised at the
    // planning level in `planning_and_reuse.rs`).
    let circuit = generators::aqft(6, 3);
    assert_distribution_matches(&circuit, 4);
}

#[test]
fn supremacy_distribution_on_five_qubit_device() {
    let circuit = generators::supremacy(2, 4, 4, 11);
    assert_distribution_matches(&circuit, 5);
}

#[test]
fn qaoa_expectation_with_wire_and_gate_cuts() {
    let (circuit, graph) = generators::qaoa_regular(6, 2, 1, 17);
    let observable = PauliObservable::maxcut(&graph);
    let pipeline = QrccPipeline::plan(&circuit, config(4, true)).expect("plan");
    let backend = ExactBackend::new();
    // batch-first flow: enumerate every Pauli term's variants, execute once
    let results = pipeline.execute_observables(&backend, &[&observable]).expect("execute");
    assert!(results.requested() >= results.executed());
    let reconstructed =
        pipeline.reconstruct_expectation_from(&results, &observable).expect("reconstruct");
    let exact = StateVector::from_circuit(&circuit).expect("simulate").expectation(&observable);
    assert!((reconstructed - exact).abs() < 1e-6, "reconstructed {reconstructed} vs exact {exact}");
}

#[test]
fn hamiltonian_simulation_expectation_on_small_device() {
    let (circuit, graph) = generators::hamiltonian_simulation(
        generators::HamiltonianKind::TransverseFieldIsing,
        2,
        3,
        false,
        1,
        0.2,
    );
    let observable = PauliObservable::ising(&graph, 1.0, 0.5);
    let pipeline = QrccPipeline::plan(&circuit, config(4, true)).expect("plan");
    let backend = ExactBackend::new();
    let reconstructed =
        pipeline.reconstruct_expectation(&backend, &observable).expect("reconstruct");
    let exact = StateVector::from_circuit(&circuit).expect("simulate").expectation(&observable);
    assert!((reconstructed - exact).abs() < 1e-6, "reconstructed {reconstructed} vs exact {exact}");
}

#[test]
fn vqe_expectation_with_mixed_observable() {
    let circuit = generators::vqe_two_local(6, 2, 7);
    let mut observable = PauliObservable::new(6);
    observable.add_term(0.5, PauliString::zz(6, 0, 5));
    observable.add_term(-0.75, PauliString::z(6, 3));
    observable.add_term(0.3, PauliString::x(6, 1));
    observable.add_term(1.0, PauliString::identity(6));
    let pipeline = QrccPipeline::plan(&circuit, config(4, false)).expect("plan");
    let backend = ExactBackend::new();
    let reconstructed =
        pipeline.reconstruct_expectation(&backend, &observable).expect("reconstruct");
    let exact = StateVector::from_circuit(&circuit).expect("simulate").expectation(&observable);
    assert!((reconstructed - exact).abs() < 1e-6, "reconstructed {reconstructed} vs exact {exact}");
}

#[test]
fn shots_backend_converges_to_the_exact_distribution() {
    let mut circuit = Circuit::new(4);
    circuit.h(0).cx(0, 1).ry(0.6, 1).cx(1, 2).cx(2, 3);
    let pipeline = QrccPipeline::plan(&circuit, config(3, false)).expect("plan");
    let device =
        qrcc::sim::device::Device::new(qrcc::sim::device::DeviceConfig::ideal(3).with_seed(23));
    let backend = ShotsBackend::new(device, 40_000);
    // the shots batch runs rayon-parallel with per-circuit sampling streams
    let results = pipeline.execute(&backend).expect("execute batch");
    let reconstructed = pipeline.reconstruct_probabilities_from(&results).expect("reconstruct");
    let exact = StateVector::from_circuit(&circuit).expect("simulate").probabilities();
    let tvd: f64 = exact.iter().zip(&reconstructed).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0;
    assert!(tvd < 0.05, "total variation distance {tvd} too large");
}
