//! End-to-end tests of the remote execution transport: the whole QRCC
//! pipeline running against loopback `QrccServer` workers.
//!
//! * remote ≡ in-process ≡ statevector (1e-9) on wire- and gate-cut plans,
//!   property-tested over random circuits;
//! * a `DeviceRegistry` of **only** `RemoteBackend`s reproduces the
//!   single-backend reconstruction byte-identically;
//! * an injected mid-stream disconnect (`FaultyProxy`) is rescued by the
//!   dispatcher's retry-with-exclusion, with the shot budget still spent
//!   exactly once;
//! * every server binds port 0, so parallel CI runs never collide.

use proptest::prelude::*;
use qrcc::net::testing::{FaultyProxy, ProxyFault};
use qrcc::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

fn small_config(device: usize) -> QrccConfig {
    QrccConfig::new(device).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO)
}

/// One shared loopback worker (unbounded exact backend) for the property
/// tests — spawning a server per proptest case would be pure overhead.
fn shared_remote() -> &'static RemoteBackend {
    static SHARED: OnceLock<(ServerHandle, RemoteBackend)> = OnceLock::new();
    let (_, remote) = SHARED.get_or_init(|| {
        let server = QrccServer::bind("127.0.0.1:0", ExactBackend::new()).unwrap().spawn();
        let remote = RemoteBackend::connect(server.addr()).unwrap();
        (server, remote)
    });
    remote
}

/// Random 4-qubit circuits from the cuttable gate set, wide enough that a
/// 3-qubit device forces cutting.
fn random_circuit() -> impl Strategy<Value = Circuit> {
    let n = 4usize;
    let gate = (0..6usize, 0..n, 0..n, -2.0f64..2.0);
    proptest::collection::vec(gate, 3..14).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        c.h(0).cx(0, 1).cx(2, 3);
        for (kind, a, b, theta) in gates {
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.ry(theta, a);
                }
                2 => {
                    c.rz(theta, a);
                }
                3 if a != b => {
                    c.cx(a, b);
                }
                4 if a != b => {
                    c.rzz(theta, a, b);
                }
                5 if a != b => {
                    c.cz(a, b);
                }
                _ => {
                    c.t(a);
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn remote_probability_pipeline_matches_local_and_statevector(circuit in random_circuit()) {
        let pipeline = match QrccPipeline::plan(&circuit, small_config(3)) {
            Ok(p) => p,
            Err(_) => return Ok(()), // some circuits legitimately cannot be cut
        };
        prop_assume!(pipeline.plan_ref().wire_cut_count() <= 5);
        let local = ExactBackend::new();
        let local_results = pipeline.execute(&local).unwrap();
        let local_p = pipeline.reconstruct_probabilities_from(&local_results).unwrap();
        let remote_results = pipeline.execute(shared_remote()).unwrap();
        let remote_p = pipeline.reconstruct_probabilities_from(&remote_results).unwrap();
        let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
        for ((r, l), e) in remote_p.iter().zip(&local_p).zip(&exact) {
            // remote and local must agree bit-for-bit
            prop_assert_eq!(r.to_bits(), l.to_bits());
            prop_assert!((r - e).abs() < 1e-9, "remote {r} vs statevector {e}");
        }
    }

    #[test]
    fn remote_gate_cut_expectation_matches_statevector(circuit in random_circuit()) {
        let config = small_config(3).with_gate_cuts(true);
        let pipeline = match QrccPipeline::plan(&circuit, config) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        prop_assume!(pipeline.plan_ref().wire_cut_count() <= 4);
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, PauliString::zz(4, 0, 3));
        let results = pipeline.execute_observables(shared_remote(), &[&obs]).unwrap();
        let estimate = pipeline.reconstruct_expectation_from(&results, &obs).unwrap();
        let exact = StateVector::from_circuit(&circuit).unwrap().expectation(&obs);
        prop_assert!((estimate - exact).abs() < 1e-9, "remote {estimate} vs exact {exact}");
    }
}

fn chain(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
        c.ry(0.2 * (q as f64 + 1.0), q + 1);
    }
    c
}

/// Acceptance: a registry of **only** remote backends (loopback servers),
/// one of them losing its first connection mid-reply, still reproduces the
/// single-backend reconstruction byte-identically because the dispatcher
/// re-routes the dead job's circuits with the failer excluded.
#[test]
fn remote_only_registry_reconstructs_byte_identically_through_a_disconnect() {
    let circuit = chain(6);
    let pipeline = QrccPipeline::plan(&circuit, small_config(3)).unwrap();
    let reference = {
        let backend = ExactBackend::new();
        let results = pipeline.execute(&backend).unwrap();
        pipeline.reconstruct_probabilities_from(&results).unwrap()
    };

    let flaky_server = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(3)).unwrap().spawn();
    let steady_server = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(3)).unwrap().spawn();
    assert_ne!(flaky_server.addr(), steady_server.addr());
    // connection 0 carries the handshake (~30 bytes) and then dies on the
    // first reply frame; every reconnect is clean
    let proxy = FaultyProxy::spawn(flaky_server.addr(), vec![ProxyFault::DropAfter(48)]).unwrap();
    let flaky_remote =
        RemoteBackend::connect_with_timeout(proxy.addr(), Duration::from_secs(10)).unwrap();
    let steady_remote = RemoteBackend::connect(steady_server.addr()).unwrap();

    let mut registry = DeviceRegistry::new();
    registry.register("remote-flaky", flaky_remote);
    registry.register("remote-steady", steady_remote);
    let policy = SchedulePolicy::default().with_chunk_size(2).with_max_retries(4);
    let scheduler = Scheduler::new(&registry, policy);
    let (results, report) = pipeline.execute_scheduled(&scheduler).unwrap();
    let reconstructed = pipeline.reconstruct_probabilities_from(&results).unwrap();

    assert!(
        report.dispatch.failures > 0,
        "the severed connection must surface as dispatch failures: {report:?}"
    );
    assert!(results.retries() > 0, "the dead job's circuits must land elsewhere as retries");
    for (r, e) in reconstructed.iter().zip(&reference) {
        assert_eq!(r.to_bits(), e.to_bits(), "remote-only reconstruction must be byte-identical");
    }
    proxy.shutdown();
    flaky_server.shutdown();
    steady_server.shutdown();
}

/// Acceptance: under a global shot budget, a mid-stream disconnect does not
/// double-spend — each circuit's allocation lands exactly once, on the
/// backend where it finally succeeded.
#[test]
fn shot_budget_is_spent_exactly_once_through_a_disconnect() {
    let circuit = chain(5);
    let pipeline = QrccPipeline::plan(&circuit, small_config(3)).unwrap();

    let make_server = |seed: u64| {
        let device = Device::new(DeviceConfig::ideal(3).with_seed(seed));
        QrccServer::bind("127.0.0.1:0", ShotsBackend::new(device, 1_024)).unwrap().spawn()
    };
    let flaky_server = make_server(7);
    let steady_server = make_server(11);
    let proxy = FaultyProxy::spawn(flaky_server.addr(), vec![ProxyFault::DropAfter(64)]).unwrap();
    let flaky_remote =
        RemoteBackend::connect_with_timeout(proxy.addr(), Duration::from_secs(10)).unwrap();
    let steady_remote = RemoteBackend::connect(steady_server.addr()).unwrap();
    assert_eq!(flaky_remote.shots_per_circuit(), Some(1_024), "capability exchange");

    let mut registry = DeviceRegistry::new();
    registry.register("remote-flaky", flaky_remote);
    registry.register("remote-steady", steady_remote);
    let budget = 40_000u64;
    let policy = SchedulePolicy::with_budget(budget)
        .with_min_shots(8)
        .with_chunk_size(2)
        .with_max_retries(4);
    let scheduler = Scheduler::new(&registry, policy);
    let (results, report) = pipeline.execute_scheduled(&scheduler).unwrap();

    assert!(report.dispatch.failures > 0, "the fault must actually fire: {report:?}");
    assert_eq!(report.total_shots, budget, "the whole budget is spent despite the disconnect");
    assert_eq!(results.shots_spent(), budget, "routing stats agree with the report");
    let probabilities = pipeline.reconstruct_probabilities_from(&results).unwrap();
    let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
    for (p, e) in probabilities.iter().zip(&exact) {
        assert!((p - e).abs() < 0.05, "sampled reconstruction stays sane: {p} vs {e}");
    }
    proxy.shutdown();
    flaky_server.shutdown();
    steady_server.shutdown();
}

/// Streaming consumption works over the wire too: chunks fold into the
/// accumulator while later chunks are still executing remotely.
#[test]
fn streaming_reconstruction_over_remote_backends() {
    let circuit = chain(5);
    let pipeline = QrccPipeline::plan(&circuit, small_config(3)).unwrap();
    let server = QrccServer::bind("127.0.0.1:0", ExactBackend::capped(3)).unwrap().spawn();
    let remote = RemoteBackend::connect(server.addr()).unwrap();

    let mut registry = DeviceRegistry::new();
    registry.register("remote", remote);
    let policy = SchedulePolicy::default().with_chunk_size(2).with_max_in_flight_chunks(1);
    let scheduler = Scheduler::new(&registry, policy);
    let (streamed, _, report) = pipeline.execute_streaming(&scheduler).unwrap();
    assert!(report.chunks > 1, "chunk size 2 must split this batch");
    assert!(report.dispatch.max_in_flight_chunks <= 1);
    let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
    for (p, e) in streamed.iter().zip(&exact) {
        assert!((p - e).abs() < 1e-9);
    }
    server.shutdown();
}
