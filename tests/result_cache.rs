//! Result-cache integration tests: cache-served scheduled execution must be
//! indistinguishable from cache-free execution (and match direct
//! state-vector simulation to 1e-9), a warm cache must serve repeats without
//! spending any device shots, shot top-ups must execute only the missing
//! delta, persisted snapshots must survive a restart, and shot accounting
//! must stay exact-once under every hit class.

use proptest::prelude::*;
use qrcc::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn config() -> QrccConfig {
    QrccConfig::new(4).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO)
}

fn exact_registry() -> DeviceRegistry {
    let mut registry = DeviceRegistry::new();
    registry.register("big", ExactBackend::capped(4));
    registry.register("small", ExactBackend::capped(3));
    registry
}

fn sampling_registry(seed: u64, shots: u64) -> DeviceRegistry {
    let mut registry = DeviceRegistry::new();
    registry.register_device("dev4", Device::new(DeviceConfig::ideal(4).with_seed(seed)), shots);
    registry
}

/// Random 4–6 qubit circuits from the cuttable gate set.
fn random_circuit() -> impl Strategy<Value = Circuit> {
    let gate = (0..5usize, 0..6usize, 0..6usize, -2.0f64..2.0);
    (4..7usize, proptest::collection::vec(gate, 4..14)).prop_map(|(n, gates)| {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        for (kind, a, b, theta) in gates {
            let (a, b) = (a % n, b % n);
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.ry(theta, a);
                }
                2 => {
                    c.rz(theta, a);
                }
                3 if a != b => {
                    c.cx(a, b);
                }
                _ if a != b => {
                    c.rzz(theta, a, b);
                }
                _ => {
                    c.ry(theta, a);
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cache-on execution (cold and warm) reconstructs the same probability
    /// vector as cache-free execution and direct state-vector simulation.
    #[test]
    fn cached_execution_matches_fresh_and_statevector(circuit in random_circuit()) {
        let pipeline = match QrccPipeline::plan(&circuit, config()) {
            Ok(p) => p,
            Err(_) => return Ok(()), // no feasible plan for this sample
        };
        let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();

        let plain = exact_registry();
        let scheduler = Scheduler::new(&plain, SchedulePolicy::default());
        let (fresh_results, _) = pipeline.execute_scheduled(&scheduler).unwrap();
        let fresh = pipeline.reconstruct_probabilities_from(&fresh_results).unwrap();

        let cached = exact_registry().with_result_cache(&ResultCachePolicy::in_memory());
        let scheduler = Scheduler::new(&cached, SchedulePolicy::default());
        let (cold_results, _) = pipeline.execute_scheduled(&scheduler).unwrap();
        let cold = pipeline.reconstruct_probabilities_from(&cold_results).unwrap();
        let (warm_results, _) = pipeline.execute_scheduled(&scheduler).unwrap();
        let warm = pipeline.reconstruct_probabilities_from(&warm_results).unwrap();

        for (((f, c), w), e) in fresh.iter().zip(&cold).zip(&warm).zip(&exact) {
            prop_assert!((f - c).abs() < 1e-9, "cold cache run diverged: {f} vs {c}");
            prop_assert!((c - w).abs() < 1e-9, "warm cache run diverged: {c} vs {w}");
            prop_assert!((c - e).abs() < 1e-9, "cache run diverged from exact: {c} vs {e}");
        }
    }
}

/// A warm cache serves every repeat without touching any backend: zero
/// device shots, zero new executions, and the hit counters flow into both
/// the `ScheduleReport` totals and the `ReconstructionReport`.
#[test]
fn warm_runs_spend_nothing_and_report_their_hits() {
    let mut circuit = Circuit::new(5);
    circuit.h(0);
    for q in 0..4 {
        circuit.cx(q, q + 1);
        circuit.ry(0.2 * (q as f64 + 1.0), q + 1);
    }
    let pipeline = QrccPipeline::plan(&circuit, config()).unwrap();

    let registry = sampling_registry(7, 512).with_result_cache(&ResultCachePolicy::in_memory());
    let scheduler = Scheduler::new(&registry, SchedulePolicy::default());

    let (cold_results, cold_report) = pipeline.execute_scheduled(&scheduler).unwrap();
    let executions_after_cold = registry.total_executions();
    assert!(cold_report.total_shots > 0, "the cold run must execute");

    let (warm_results, warm_report) = pipeline.execute_scheduled(&scheduler).unwrap();
    assert_eq!(warm_report.total_shots, 0, "a warm run spends no device shots");
    assert_eq!(
        registry.total_executions(),
        executions_after_cold,
        "a warm run never reaches a backend"
    );

    // byte-identical distributions: the cache returns exactly what ran
    for (key, dist) in cold_results.iter() {
        let warm = warm_results.distribution(key).expect("same variants");
        assert_eq!(dist, warm, "cache-served distribution must be byte-identical");
    }

    // counters reach the reconstruction report
    let (_, recon) = pipeline.reconstruct_probabilities_with_report_from(&warm_results).unwrap();
    let stats = recon.result_cache.expect("cache counters must reach the report");
    let cold_stats = cold_results.cache_stats().expect("cold run carries counters");
    assert_eq!(stats.hits, cold_stats.misses, "every cold miss warm-hits");
    assert!(stats.shots_saved >= cold_report.total_shots);
}

/// Re-running at a doubled per-circuit shot count is served as delta hits:
/// only the missing half executes, and the merged write-back upgrades the
/// stored entries.
#[test]
fn doubled_requests_execute_only_the_missing_delta() {
    let mut circuit = Circuit::new(5);
    circuit.h(0);
    for q in 0..4 {
        circuit.cx(q, q + 1);
        circuit.ry(0.3 * (q as f64 + 1.0), q + 1);
    }
    let pipeline = QrccPipeline::plan(&circuit, config()).unwrap();

    let base = sampling_registry(7, 1024).with_result_cache(&ResultCachePolicy::in_memory());
    let cache = Arc::clone(base.result_cache().unwrap());
    let scheduler = Scheduler::new(&base, SchedulePolicy::default());
    let (_, cold_report) = pipeline.execute_scheduled(&scheduler).unwrap();

    let mut upsized = sampling_registry(7, 2048);
    upsized.set_result_cache(Arc::clone(&cache));
    let scheduler = Scheduler::new(&upsized, SchedulePolicy::default());
    let (_, topup_report) = pipeline.execute_scheduled(&scheduler).unwrap();

    assert_eq!(
        topup_report.total_shots, cold_report.total_shots,
        "a 2x request tops up exactly the missing half"
    );
    let stats = cache.stats();
    assert!(stats.delta_hits > 0, "the doubled run must be served as deltas");
    assert_eq!(stats.delta_hits, stats.misses, "every cold miss delta-hits once");

    // the merged entries now hold 2048 shots: repeating the doubled request
    // is a pure warm run
    let (_, warm_report) = pipeline.execute_scheduled(&scheduler).unwrap();
    assert_eq!(warm_report.total_shots, 0, "merged entries serve the doubled request fully");
}

/// Per-backend usage must sum to the report totals under every hit class —
/// the allocated shots of a cache-served circuit are not charged anywhere.
#[test]
fn shot_accounting_stays_exact_once_under_hits() {
    let mut circuit = Circuit::new(5);
    circuit.h(0);
    for q in 0..4 {
        circuit.cx(q, q + 1);
        circuit.ry(0.15 * (q as f64 + 1.0), q + 1);
    }
    let pipeline = QrccPipeline::plan(&circuit, config()).unwrap();
    let registry = sampling_registry(3, 256).with_result_cache(&ResultCachePolicy::in_memory());
    let scheduler = Scheduler::new(&registry, SchedulePolicy::default());

    for pass in 0..2 {
        let (results, report) = pipeline.execute_scheduled(&scheduler).unwrap();
        let usage_total: u64 = report.backends.iter().map(|u| u.shots).sum();
        assert_eq!(usage_total, report.total_shots, "usage must sum to the total (pass {pass})");
        assert_eq!(results.shots_spent(), report.total_shots);
    }
}

/// A persisted snapshot restores the cache across a "restart": a second
/// registry opening the same path — over a device with a different seed —
/// serves byte-identical distributions without executing anything.
#[test]
fn persistence_survives_a_registry_restart() {
    let path = {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("qrcc-restart-{}-{n}.snapshot", std::process::id()))
    };
    let policy = ResultCachePolicy::persisted(path.to_string_lossy().into_owned());

    let mut circuit = Circuit::new(5);
    circuit.h(0);
    for q in 0..4 {
        circuit.cx(q, q + 1);
        circuit.ry(0.25 * (q as f64 + 1.0), q + 1);
    }
    let pipeline = QrccPipeline::plan(&circuit, config()).unwrap();

    let first = sampling_registry(7, 512).with_result_cache(&policy);
    let scheduler = Scheduler::new(&first, SchedulePolicy::default());
    let (first_results, _) = pipeline.execute_scheduled(&scheduler).unwrap();
    first.result_cache().unwrap().persist().unwrap();
    drop(first);

    // a different seed would sample different distributions — identical
    // output therefore proves the snapshot served, not the device
    let second = sampling_registry(999, 512).with_result_cache(&policy);
    let executions_before = second.total_executions();
    let scheduler = Scheduler::new(&second, SchedulePolicy::default());
    let (second_results, report) = pipeline.execute_scheduled(&scheduler).unwrap();
    assert_eq!(report.total_shots, 0, "the restarted registry serves from the snapshot");
    assert_eq!(second.total_executions(), executions_before);
    for (key, dist) in first_results.iter() {
        let restored = second_results.distribution(key).expect("same variants");
        assert_eq!(dist, restored, "snapshot-served distribution must be byte-identical");
    }
    std::fs::remove_file(&path).unwrap();
}
