//! Pre-flight analysis integration tests: the `qrcc-lint` diagnostics
//! engine must be **sound** (a clean report means scheduled execution never
//! dies on a statically predictable error class), **quiet** (every paper
//! benchmark family analyzes clean on a compatible fleet), and **sharp**
//! (each seeded defect trips its own `QL` code before any backend runs).

use proptest::prelude::*;
use qrcc::core::analyze::analyze_qasm;
use qrcc::core::CoreError;
use qrcc::prelude::*;
use std::time::Duration;

fn plan(circuit: &Circuit, device_size: usize) -> QrccPipeline {
    let config = QrccConfig::new(device_size).with_ilp_time_limit(Duration::ZERO);
    QrccPipeline::plan(circuit, config).expect("benchmark circuits must plan")
}

fn unbounded_fleet() -> DeviceRegistry {
    let mut registry = DeviceRegistry::new();
    registry.register("big", ExactBackend::new());
    registry.register("small", ExactBackend::capped(4));
    registry
}

/// Every generator family of the paper's evaluation (§5.1), sized to need
/// cutting on a 4-qubit device.
fn benchmark_circuits() -> Vec<(&'static str, Circuit)> {
    use generators::HamiltonianKind;
    vec![
        ("qft", generators::qft(6)),
        ("supremacy", generators::supremacy(2, 3, 4, 7)),
        ("adder", generators::ripple_carry_adder(2, 7)),
        ("qaoa", generators::qaoa_regular(6, 3, 1, 7).0),
        (
            "hamsim",
            generators::hamiltonian_simulation(
                HamiltonianKind::TransverseFieldIsing,
                2,
                3,
                false,
                1,
                0.1,
            )
            .0,
        ),
        ("vqe", generators::vqe_two_local(6, 1, 7)),
    ]
}

/// Zero false positives: every benchmark family, planned for a 4-qubit
/// device and analyzed against a fleet that can actually run it, must come
/// back with no errors and no warnings (notes are fine — they carry
/// overhead estimates, not defects).
#[test]
fn benchmark_families_analyze_clean_on_a_compatible_fleet() {
    let fleet = unbounded_fleet();
    for (name, circuit) in benchmark_circuits() {
        let pipeline = plan(&circuit, 4);
        let report = pipeline.analyze_with_fleet(&fleet);
        assert!(report.is_clean(), "{name} must analyze clean, got:\n{report}");
        // and the gate agrees at the default (Warn) level
        pipeline.preflight(&fleet).unwrap_or_else(|e| panic!("{name} must pass the gate: {e}"));
    }
}

/// The same circuits analyzed *without* a fleet stay clean too — the
/// circuit- and plan-level lints alone have no complaints about honest
/// benchmarks.
#[test]
fn benchmark_families_analyze_clean_standalone() {
    for (name, circuit) in benchmark_circuits() {
        let report = plan(&circuit, 4).analyze();
        assert!(report.is_clean(), "{name} must analyze clean, got:\n{report}");
    }
}

/// Random chain-like circuits for the soundness property: wide enough to
/// force cutting on the sampled device size.
fn random_chain() -> impl Strategy<Value = Circuit> {
    (4..7usize, proptest::collection::vec((0..4usize, -2.0f64..2.0), 2..10)).prop_map(
        |(n, extras)| {
            let mut c = Circuit::new(n);
            c.h(0);
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
            for (i, (kind, theta)) in extras.into_iter().enumerate() {
                let q = i % n;
                match kind {
                    0 => {
                        c.ry(theta, q);
                    }
                    1 => {
                        c.rz(theta, q);
                    }
                    2 => {
                        c.h(q);
                    }
                    _ if q + 1 < n => {
                        c.rzz(theta, q, q + 1);
                    }
                    _ => {
                        c.t(q);
                    }
                }
            }
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Soundness: over random plans, fleets, and shot budgets, a clean
    /// analysis (no errors) guarantees that scheduled execution never fails
    /// with the two statically predictable error classes —
    /// `NoCompatibleBackend` or `ShotBudgetTooSmall`. Conversely, a
    /// predicted placement or budget error must carry its `QL` code.
    #[test]
    fn clean_reports_never_die_on_predictable_errors(
        circuit in random_chain(),
        cap_a in 1..7usize,
        cap_b in 2..7usize,
        budget in 0u64..400,
    ) {
        let mut config =
            QrccConfig::new(3).with_subcircuit_range(2, 4).with_ilp_time_limit(Duration::ZERO);
        // budget 0 means "no budget at all" rather than a zero-shot budget
        if budget > 0 {
            config = config.with_shot_budget(budget);
        }
        let pipeline = match QrccPipeline::plan(&circuit, config.clone()) {
            Ok(p) => p,
            Err(_) => return Ok(()), // no feasible plan for this sample
        };
        let mut registry = DeviceRegistry::new();
        registry.register("a", ExactBackend::capped(cap_a));
        registry.register("b", ExactBackend::capped(cap_b));

        let report = pipeline.analyze_with_fleet(&registry);
        let scheduler = Scheduler::new(&registry, config.schedule);
        let outcome = pipeline.execute_scheduled(&scheduler);
        match &outcome {
            Err(CoreError::NoCompatibleBackend { .. }) => prop_assert!(
                report.diagnostics().iter().any(|d| d.code == "QL0301"),
                "runtime NoCompatibleBackend must have been predicted:\n{report}"
            ),
            Err(CoreError::ShotBudgetTooSmall { .. }) => prop_assert!(
                report.diagnostics().iter().any(|d| d.code == "QL0302"),
                "runtime ShotBudgetTooSmall must have been predicted:\n{report}"
            ),
            _ => {}
        }
        if report.errors() == 0 {
            prop_assert!(
                !matches!(
                    outcome,
                    Err(CoreError::NoCompatibleBackend { .. })
                        | Err(CoreError::ShotBudgetTooSmall { .. })
                ),
                "clean report but predictable runtime failure: {outcome:?}"
            );
        }
    }
}

// ---- seeded defects: each Error-severity lint fires on its own defect ----

fn codes(report: &AnalysisReport) -> Vec<&'static str> {
    report.diagnostics().iter().map(|d| d.code).collect()
}

#[test]
fn seeded_defect_unparseable_qasm_fires_ql0101_with_position() {
    let (circuit, report) = analyze_qasm("OPENQASM 2.0;\nqreg q[2];\nbogus q[0];\n");
    assert!(circuit.is_none());
    assert!(codes(&report).contains(&"QL0101"), "{report}");
    assert_eq!(report.errors(), 1);
    let rendered = report.to_string();
    assert!(rendered.contains("line 3"), "position must be reported: {rendered}");
}

#[test]
fn seeded_defect_reuse_plan_on_a_no_mid_circuit_fleet_fires_ql0105() {
    let mut chain = Circuit::new(6);
    chain.h(0);
    for q in 0..5 {
        chain.cx(q, q + 1);
    }
    let pipeline = plan(&chain, 3);
    let mut fleet = DeviceRegistry::new();
    let strict = Device::new(DeviceConfig::ideal(6).without_mid_circuit().with_seed(3));
    fleet.register("strict", ShotsBackend::new(strict, 256));
    let report = pipeline.analyze_with_fleet(&fleet);
    assert!(codes(&report).contains(&"QL0105"), "{report}");
    assert!(report.errors() > 0);
}

#[test]
fn seeded_defect_too_narrow_fleet_fires_ql0301_and_the_gate_blocks_it() {
    let mut chain = Circuit::new(6);
    chain.h(0);
    for q in 0..5 {
        chain.cx(q, q + 1);
    }
    let pipeline = plan(&chain, 3);
    let mut fleet = DeviceRegistry::new();
    // qubit reuse can shrink fragments to 2 physical qubits, but never below
    // the width of a CX — a 1-qubit backend can run nothing here
    fleet.register("tiny", ExactBackend::capped(1));
    let report = pipeline.analyze_with_fleet(&fleet);
    assert!(codes(&report).contains(&"QL0301"), "{report}");

    // the default (Warn) gate refuses the fleet before any execution
    let gated = pipeline.preflight(&fleet);
    assert!(
        matches!(gated, Err(CoreError::AnalysisFailed { errors, .. }) if errors > 0),
        "{gated:?}"
    );

    // and the runtime agrees with the prediction
    let scheduler = Scheduler::new(&fleet, SchedulePolicy::default());
    let outcome = pipeline.execute_scheduled(&scheduler);
    assert!(outcome.is_err(), "a 1-qubit fleet cannot run the plan");
}

#[test]
fn seeded_defect_starved_shot_budget_fires_ql0302_and_matches_runtime() {
    let mut chain = Circuit::new(6);
    chain.h(0);
    for q in 0..5 {
        chain.cx(q, q + 1);
    }
    let config = QrccConfig::new(3).with_ilp_time_limit(Duration::ZERO).with_shot_budget(3);
    let pipeline = QrccPipeline::plan(&chain, config.clone()).unwrap();
    let fleet = unbounded_fleet();
    let report = pipeline.analyze_with_fleet(&fleet);
    assert!(codes(&report).contains(&"QL0302"), "{report}");
    assert!(report.errors() > 0);

    let scheduler = Scheduler::new(&fleet, config.schedule);
    let outcome = pipeline.execute_scheduled(&scheduler);
    assert!(
        matches!(outcome, Err(CoreError::ShotBudgetTooSmall { .. })),
        "the runtime must agree with the prediction: {outcome:?}"
    );
}

#[test]
fn seeded_defect_empty_fleet_fires_ql0304() {
    let mut chain = Circuit::new(4);
    chain.h(0);
    for q in 0..3 {
        chain.cx(q, q + 1);
    }
    let pipeline = plan(&chain, 3);
    let report = pipeline.analyze_with_fleet(&DeviceRegistry::new());
    assert!(codes(&report).contains(&"QL0304"), "{report}");
    assert!(report.errors() > 0);
}

#[test]
fn seeded_defect_dangling_cuts_fire_ql0201_and_ql0202() {
    use qrcc::core::analyze::{AnalysisContext, Analyzer};
    let mut chain = Circuit::new(6);
    chain.h(0);
    for q in 0..5 {
        chain.cx(q, q + 1).rzz(0.3, q, q + 1);
    }
    let config = QrccConfig::new(3)
        .with_gate_cuts(true)
        .with_max_gate_cuts(2)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&chain, config).unwrap();

    // sever one wire-cut producer (and any gate-cut role) from fragment 0:
    // the analyzer must flag the now-unbalanced cut pairs as errors
    let mut broken = pipeline.fragments().clone();
    let had_wire = !broken.fragments[0].outgoing_cuts.is_empty();
    let had_gate = broken.fragments.iter().any(|f| !f.gate_cut_roles.is_empty());
    broken.fragments[0].outgoing_cuts.clear();
    for fragment in &mut broken.fragments {
        fragment.gate_cut_roles.truncate(fragment.gate_cut_roles.len().saturating_sub(1));
    }
    let report = Analyzer::new().run(&AnalysisContext::new().with_fragments(&broken));
    if had_wire {
        assert!(codes(&report).contains(&"QL0201"), "{report}");
    }
    if had_gate {
        assert!(codes(&report).contains(&"QL0202"), "{report}");
    }
    assert!(report.errors() > 0, "{report}");
}

/// The severity gate orders strictly: Allow passes everything, Warn fails
/// errors, Deny also fails warnings.
#[test]
fn lint_levels_gate_progressively() {
    let mut chain = Circuit::new(6);
    chain.h(0);
    for q in 0..5 {
        chain.cx(q, q + 1);
    }
    // fragments fit the (absent) fleet but exceed config.device_size → a
    // Warning-severity QL0203, no errors
    let mut config = QrccConfig::new(3).with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&chain, config.clone()).unwrap();
    let mut shrunk = pipeline.fragments().clone();
    for fragment in &mut shrunk.fragments {
        fragment.num_physical = fragment.num_physical.max(4);
    }
    config.device_size = 3;
    let report = qrcc::core::analyze::Analyzer::new().run(
        &qrcc::core::analyze::AnalysisContext::new().with_fragments(&shrunk).with_config(&config),
    );
    assert!(report.errors() == 0 && report.warnings() > 0, "{report}");
    assert!(report.gate(LintLevel::Allow).is_ok());
    assert!(report.gate(LintLevel::Warn).is_ok());
    assert!(report.gate(LintLevel::Deny).is_err());
}
