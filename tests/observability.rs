//! Observability contract tests: histogram merge algebra under random
//! inputs, and the tracer's end-to-end guarantees through a real pipeline
//! run (zero spans when disabled, a valid closed tree with a covering
//! phase profile when enabled).
//!
//! The tracer under test is the process-global one, so every test touching
//! it serializes on [`tracer_lock`] — `cargo test` runs these functions on
//! parallel threads inside one binary.

use proptest::prelude::*;
use qrcc::core::obs::{metrics, tracer, validate_spans, Histogram, PhaseProfile};
use qrcc::prelude::*;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests that drain or enable the process-global tracer.
fn tracer_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn histogram_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The 6-qubit chain every walkthrough cuts onto a 3-qubit device.
fn workload() -> Circuit {
    let mut c = Circuit::new(6);
    c.h(0);
    for q in 0..5 {
        c.cx(q, q + 1);
        c.ry(0.19 * (q as f64 + 1.0), q + 1);
    }
    c
}

fn run_pipeline(config: QrccConfig) -> ReconstructionReport {
    let mut registry = DeviceRegistry::new();
    registry.register_device("dev3", Device::new(DeviceConfig::ideal(3).with_seed(3)), 512);
    let scheduler = Scheduler::new(&registry, SchedulePolicy::default());
    let pipeline = QrccPipeline::plan(&workload(), config).expect("plans");
    let (_, reconstruction, _) = pipeline.execute_streaming(&scheduler).expect("executes");
    reconstruction
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge is commutative: a ∪ b == b ∪ a, bucket for bucket.
    #[test]
    fn histogram_merge_commutes(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let (ha, hb) = (histogram_of(&a), histogram_of(&b));
        prop_assert_eq!(ha.clone().merged(&hb), hb.clone().merged(&ha));
    }

    /// merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn histogram_merge_associates(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..30),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..30),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..30),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        let left = ha.clone().merged(&hb).merged(&hc);
        let right = ha.merged(&hb.merged(&hc));
        prop_assert_eq!(left, right);
    }

    /// merging partitions of a stream equals recording the whole stream —
    /// per-worker histograms fold into fleet totals losslessly.
    #[test]
    fn histogram_merge_equals_sequential(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..60),
        split in 0usize..60,
    ) {
        let split = split % values.len();
        let merged = histogram_of(&values[..split]).merged(&histogram_of(&values[split..]));
        let sequential = histogram_of(&values);
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(merged.count(), values.len() as u64);
    }

    /// every reported quantile of a non-empty histogram lies in [min, max].
    #[test]
    fn histogram_quantiles_stay_in_range(
        values in proptest::collection::vec(0u64..u64::MAX, 1..60),
    ) {
        let h = histogram_of(&values);
        let (min, max) = (h.min().unwrap(), h.max().unwrap());
        for q in [h.p50(), h.p90(), h.p99(), h.p999()] {
            let q = q.unwrap();
            prop_assert!(min <= q && q <= max, "quantile {q} outside [{min}, {max}]");
        }
    }
}

#[test]
fn default_config_records_no_spans_through_a_full_run() {
    let _guard = tracer_lock();
    let _ = tracer().drain();
    let config = QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
    assert!(!config.obs.enabled, "tracing must be off by default");
    let reconstruction = run_pipeline(config);
    // the enabled flag may be latched on by other tests in this binary (the
    // global tracer only ever turns on), so only assert the default-config
    // contract when this run actually started disabled
    if !tracer().enabled() {
        assert!(tracer().drain().is_empty(), "a disabled run must record zero spans");
    }
    // the flame summary is plain Instant arithmetic, so it ships even
    // without tracing — only spans are gated
    assert!(reconstruction.profile.is_some(), "the phase profile is always attached");
}

#[test]
fn traced_run_yields_a_valid_tree_and_a_covering_profile() {
    let _guard = tracer_lock();
    let _ = tracer().drain();
    let config = QrccConfig::new(3)
        .with_subcircuit_range(2, 3)
        .with_ilp_time_limit(Duration::ZERO)
        .with_tracing(true);
    let reconstruction = run_pipeline(config);

    let spans = tracer().drain();
    validate_spans(&spans).expect("traced run must drain a structurally valid tree");
    assert!(spans.iter().any(|s| s.name.starts_with("phase.")), "phase spans must be present");
    assert!(spans.iter().any(|s| s.name == "pipeline.execute"), "the root span must be present");

    let profile: &PhaseProfile =
        reconstruction.profile.as_ref().expect("traced runs attach a phase profile");
    assert!(
        profile.coverage() >= 0.95,
        "phases must attribute >=95% of wall-clock, got {:.1}%",
        100.0 * profile.coverage()
    );
    // the flame summary renders every phase with a percentage
    let rendered = format!("{profile}");
    assert!(rendered.contains('%'), "the flame summary renders percentages: {rendered}");
}

#[test]
fn dispatch_latency_lands_in_the_global_registry_when_traced() {
    let _guard = tracer_lock();
    let _ = tracer().drain();
    let config = QrccConfig::new(3)
        .with_subcircuit_range(2, 3)
        .with_ilp_time_limit(Duration::ZERO)
        .with_tracing(true);
    let _ = run_pipeline(config);
    let _ = tracer().drain();
    let execute = metrics()
        .histogram("dispatch.execute_us")
        .expect("traced dispatch must record per-job execute latency");
    assert!(execute.count() > 0);
    assert!(execute.p50().is_some() && execute.p999().is_some());
}
