//! Dispatch-layer integration tests: fault-injected multi-device execution
//! must be indistinguishable from single-backend execution (and match direct
//! state-vector simulation to 1e-9) on random wire- and gate-cut plans while
//! a `FlakyBackend` drops a seeded fraction of jobs; results must be
//! byte-identical across worker counts and retry schedules; a fleet where
//! every compatible backend fails must surface `RetriesExhausted`; and an
//! in-flight window of 1 must provably bound the dispatcher's undelivered
//! work.

use proptest::prelude::*;
use qrcc::core::CoreError;
use qrcc::prelude::*;
use std::time::Duration;

fn wire_config() -> QrccConfig {
    QrccConfig::new(4).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO)
}

fn gate_config() -> QrccConfig {
    wire_config().with_gate_cuts(true)
}

/// A three-device fleet where one device transiently drops a seeded fraction
/// of its jobs: every fragment of a 4-qubit plan fits somewhere, and every
/// dropped job has a healthy compatible backend to fall back to.
fn flaky_registry(seed: u64, fail_fraction: f64) -> DeviceRegistry {
    let mut registry = DeviceRegistry::new();
    registry.register(
        "flaky-big",
        FlakyBackend::transient(ExactBackend::capped(4), seed, fail_fraction),
    );
    registry.register("steady-big", ExactBackend::capped(4));
    registry.register("steady-small", ExactBackend::capped(3));
    registry
}

/// Random 4–6 qubit circuits built from the cuttable gate set, wide enough
/// that cutting is required for a 4-qubit device.
fn random_circuit() -> impl Strategy<Value = Circuit> {
    let gate = (0..6usize, 0..6usize, 0..6usize, -2.0f64..2.0);
    (4..7usize, proptest::collection::vec(gate, 4..16)).prop_map(|(n, gates)| {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        for (kind, a, b, theta) in gates {
            let a = a % n;
            let b = b % n;
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.ry(theta, a);
                }
                2 => {
                    c.rz(theta, a);
                }
                3 if a != b => {
                    c.cx(a, b);
                }
                4 if a != b => {
                    c.rzz(theta, a, b);
                }
                5 if a != b => {
                    c.cz(a, b);
                }
                _ => {
                    c.t(a);
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Wire-cut plans under fault injection: dispatched execution with a
    /// flaky device retrying a seeded fraction of jobs must agree with
    /// single-backend execution and with the exact distribution to 1e-9.
    #[test]
    fn dispatched_probabilities_with_retries_match_single_backend_and_statevector(
        circuit in random_circuit(),
        seed in 0u64..1000,
    ) {
        let pipeline = match QrccPipeline::plan(&circuit, wire_config()) {
            Ok(p) => p,
            Err(_) => return Ok(()), // no feasible plan for this sample
        };

        let single = ExactBackend::new();
        let reference_results = pipeline.execute(&single).unwrap();
        let reference = pipeline.reconstruct_probabilities_from(&reference_results).unwrap();

        let registry = flaky_registry(seed, 0.4);
        let policy = SchedulePolicy::default()
            .with_chunk_size(2)
            .with_max_in_flight_chunks(2)
            .with_max_retries(3);
        let scheduler = Scheduler::new(&registry, policy);
        let (streamed, reconstruction, schedule) = pipeline.execute_streaming(&scheduler).unwrap();
        // every failure becomes exactly one retry while backends remain
        prop_assert_eq!(schedule.dispatch.failures, schedule.dispatch.jobs_retried);
        prop_assert_eq!(reconstruction.dispatch_failures, schedule.dispatch.failures);

        let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
        for ((a, b), c) in exact.iter().zip(&reference).zip(&streamed) {
            prop_assert!((a - b).abs() < 1e-9, "single-backend vs exact: {} vs {}", a, b);
            prop_assert!((a - c).abs() < 1e-9, "dispatched vs exact: {} vs {}", a, c);
        }
    }

    /// Gate-cut (and mixed) plans under fault injection: streamed
    /// expectation values through the `ExpectationAccumulator` agree with
    /// single-backend execution and the state vector to 1e-9.
    #[test]
    fn dispatched_expectations_with_retries_match_single_backend_and_statevector(
        circuit in random_circuit(),
        seed in 0u64..1000,
    ) {
        let pipeline = match QrccPipeline::plan(&circuit, gate_config()) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let n = circuit.num_qubits();
        let mut observable = PauliObservable::new(n);
        observable.add_term(1.0, PauliString::zz(n, 0, n - 1));
        observable.add_term(-0.5, PauliString::z(n, 1));

        let single = ExactBackend::new();
        let reference_results = pipeline.execute_observables(&single, &[&observable]).unwrap();
        let reference =
            pipeline.reconstruct_expectation_from(&reference_results, &observable).unwrap();

        let registry = flaky_registry(seed ^ 0xDEAD, 0.4);
        let policy = SchedulePolicy::default().with_chunk_size(3).with_max_retries(3);
        let scheduler = Scheduler::new(&registry, policy);
        let (streamed, reconstruction, _) =
            pipeline.execute_observables_streaming(&scheduler, &observable).unwrap();
        prop_assert!(reconstruction.dispatch_retries <= reconstruction.dispatch_failures);

        let exact = StateVector::from_circuit(&circuit).unwrap().expectation(&observable);
        prop_assert!((reference - exact).abs() < 1e-9, "single {} vs exact {}", reference, exact);
        prop_assert!((streamed - exact).abs() < 1e-9, "dispatched {} vs exact {}", streamed, exact);
    }
}

fn chain(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
        c.ry(0.2 * (q as f64 + 1.0), q + 1);
    }
    c
}

fn chain_pipeline() -> QrccPipeline {
    let config = QrccConfig::new(3)
        .with_subcircuit_range(2, 3)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    QrccPipeline::plan(&chain(6), config).unwrap()
}

/// Deterministic merge: the dispatched results are byte-identical across
/// worker counts (registry sizes) and retry schedules (failure seeds and
/// fractions) when the underlying backends are exact.
#[test]
fn dispatched_results_are_byte_identical_across_worker_counts_and_retry_schedules() {
    let pipeline = chain_pipeline();
    let run = |registry: &DeviceRegistry, window: usize| {
        let policy = SchedulePolicy::default()
            .with_chunk_size(2)
            .with_max_in_flight_chunks(window)
            .with_max_retries(4);
        let scheduler = Scheduler::new(registry, policy);
        let (p, _, _) = pipeline.execute_streaming(&scheduler).unwrap();
        p
    };

    // one worker, no faults — the reference
    let mut one = DeviceRegistry::new();
    one.register("only", ExactBackend::new());
    let reference = run(&one, 1);

    // three workers, two flaky with different seeds/fractions, windows 1..4
    for (seed, fraction, window) in [(1u64, 0.3, 1usize), (7, 0.6, 2), (99, 0.9, 4)] {
        let mut registry = DeviceRegistry::new();
        registry
            .register("flaky-a", FlakyBackend::transient(ExactBackend::capped(3), seed, fraction));
        registry.register(
            "flaky-b",
            FlakyBackend::transient(ExactBackend::capped(3), seed ^ 42, fraction),
        );
        registry.register("steady", ExactBackend::new());
        let dispatched = run(&registry, window);
        assert_eq!(reference.len(), dispatched.len());
        for (a, b) in reference.iter().zip(&dispatched) {
            let same = (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits();
            assert!(same, "byte-identical merge required: {a} vs {b}");
        }
    }
}

/// When every compatible backend fails persistently, the retry budget runs
/// out and the typed error surfaces with the final attempt attached.
#[test]
fn all_backends_failing_exhausts_retries() {
    let pipeline = chain_pipeline();
    let mut registry = DeviceRegistry::new();
    registry.register("dead-a", FlakyBackend::always_failing(ExactBackend::new()));
    registry.register("dead-b", FlakyBackend::always_failing(ExactBackend::new()));
    let scheduler = Scheduler::new(&registry, SchedulePolicy::default().with_max_retries(2));
    match pipeline.execute_scheduled(&scheduler) {
        Err(CoreError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 3, "initial dispatch + two retries");
            assert!(matches!(*last, CoreError::BackendUnavailable { .. }));
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// An in-flight window of 1 provably bounds the dispatcher's undelivered
/// work: the observed in-flight maximum is exactly 1 even when the consumer
/// is slower than the devices, and chunk accounting still sums to the batch.
#[test]
fn window_of_one_bounds_in_flight_chunks_under_a_slow_consumer() {
    let pipeline = chain_pipeline();
    let requests = ProbabilityReconstructor::new().requests(pipeline.fragments()).unwrap();
    let mut registry = DeviceRegistry::new();
    registry.register("only", ExactBackend::new());
    let policy = SchedulePolicy::default().with_chunk_size(1).with_max_in_flight_chunks(1);
    let scheduler = Scheduler::new(&registry, policy);

    let mut delivered = 0u64;
    let report = scheduler
        .execute_chunked(pipeline.fragments(), &requests, |chunk| {
            delivered += chunk.requested();
            std::thread::sleep(Duration::from_millis(2)); // slow consumer
            Ok(())
        })
        .unwrap();
    assert_eq!(delivered, requests.len() as u64, "chunk accounting sums to the batch");
    assert!(report.chunks > 2, "chunk size 1 must stream many chunks");
    assert_eq!(
        report.dispatch.max_in_flight_chunks, 1,
        "a window of 1 must never hold a second undelivered chunk"
    );
    assert!(
        report.dispatch.deliver_wall >= Duration::from_millis(2 * (report.chunks as u64 - 1)),
        "the dispatcher must have absorbed the consumer's backpressure"
    );
}

/// Requeue path: a single registered device that drops every circuit once
/// recovers via the exclusion-waiving requeue (there is no second backend to
/// re-route to), and the telemetry records it.
#[test]
fn single_flaky_device_recovers_through_requeue() {
    let pipeline = chain_pipeline();
    let mut registry = DeviceRegistry::new();
    registry.register("lone-flaky", FlakyBackend::transient(ExactBackend::new(), 5, 1.0));
    let scheduler = Scheduler::new(&registry, SchedulePolicy::default().with_max_retries(2));
    let (results, report) = pipeline.execute_scheduled(&scheduler).unwrap();

    let reference = pipeline.execute(&ExactBackend::new()).unwrap();
    assert_eq!(results.unique_variants(), reference.unique_variants());
    assert!(report.dispatch.failures > 0);
    assert_eq!(
        report.dispatch.jobs_requeued, report.dispatch.jobs_retried,
        "with one device every retry is a requeue onto the failer"
    );
    let usage = &report.backends[0];
    assert_eq!(usage.backend, "lone-flaky");
    assert_eq!(usage.failures, report.dispatch.failures);
    assert_eq!(usage.retries, report.dispatch.jobs_retried);
}

/// The reconstruction report carries the dispatch telemetry end-to-end, and
/// shot accounting stays exact under retries: a budget is spent exactly once
/// per circuit even when circuits fail and re-route.
#[test]
fn shot_budget_stays_exact_under_fault_injection() {
    let pipeline = chain_pipeline();
    let mut registry = DeviceRegistry::new();
    // a flaky sampling device plus a healthy one, same size
    registry.register_device("healthy", Device::new(DeviceConfig::ideal(3).with_seed(3)), 1);
    registry.register(
        "flaky",
        FlakyBackend::transient(
            ShotsBackend::new(Device::new(DeviceConfig::ideal(3).with_seed(4)), 1),
            21,
            0.5,
        ),
    );
    let policy = SchedulePolicy::with_budget(60_000)
        .with_min_shots(16)
        .with_chunk_size(3)
        .with_max_retries(3);
    let scheduler = Scheduler::new(&registry, policy);
    let (probabilities, reconstruction, schedule) = pipeline.execute_streaming(&scheduler).unwrap();

    assert_eq!(schedule.total_shots, 60_000, "every allocated shot spent exactly once");
    assert_eq!(reconstruction.shots_spent, 60_000);
    assert_eq!(reconstruction.dispatch_failures, schedule.dispatch.failures);
    assert_eq!(reconstruction.dispatch_retries, results_retries(&schedule));

    let exact = StateVector::from_circuit(&chain(6)).unwrap().probabilities();
    let max_error =
        exact.iter().zip(&probabilities).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    assert!(max_error < 0.05, "shots-based dispatched reconstruction off by {max_error}");
}

/// Sum of per-backend retry counters in a schedule report.
fn results_retries(schedule: &ScheduleReport) -> u64 {
    schedule.backends.iter().map(|u| u.retries).sum()
}
