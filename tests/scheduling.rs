//! Scheduler-layer integration tests: multi-device routed execution must be
//! indistinguishable from single-backend execution (and match direct
//! state-vector simulation to 1e-9) on random wire- and gate-cut plans, and
//! variance-weighted shot allocation must not lose to uniform allocation at
//! equal total budget on seeded shots-based runs.

use proptest::prelude::*;
use qrcc::prelude::*;
use std::time::Duration;

fn wire_config() -> QrccConfig {
    QrccConfig::new(4).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO)
}

fn gate_config() -> QrccConfig {
    wire_config().with_gate_cuts(true)
}

/// Two exact "devices" of different sizes: every fragment of a 4-qubit plan
/// fits one of them, narrow fragments can run on either.
fn two_device_registry() -> DeviceRegistry {
    let mut registry = DeviceRegistry::new();
    registry.register("big", ExactBackend::capped(4));
    registry.register("small", ExactBackend::capped(3));
    registry
}

/// Random 4–6 qubit circuits built from the cuttable gate set, wide enough
/// that cutting is required for a 4-qubit device.
fn random_circuit() -> impl Strategy<Value = Circuit> {
    let gate = (0..6usize, 0..6usize, 0..6usize, -2.0f64..2.0);
    (4..7usize, proptest::collection::vec(gate, 4..16)).prop_map(|(n, gates)| {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        for (kind, a, b, theta) in gates {
            let a = a % n;
            let b = b % n;
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.ry(theta, a);
                }
                2 => {
                    c.rz(theta, a);
                }
                3 if a != b => {
                    c.cx(a, b);
                }
                4 if a != b => {
                    c.rzz(theta, a, b);
                }
                5 if a != b => {
                    c.cz(a, b);
                }
                _ => {
                    c.t(a);
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Wire-cut plans: scheduled multi-device execution (chunked, streamed
    /// through the incremental accumulator) must agree with single-backend
    /// execution and with the exact distribution to 1e-9.
    #[test]
    fn scheduled_probabilities_match_single_backend_and_statevector(
        circuit in random_circuit()
    ) {
        let pipeline = match QrccPipeline::plan(&circuit, wire_config()) {
            Ok(p) => p,
            Err(_) => return Ok(()), // no feasible plan for this sample
        };

        // single-backend reference
        let single = ExactBackend::new();
        let reference_results = pipeline.execute(&single).unwrap();
        let reference = pipeline.reconstruct_probabilities_from(&reference_results).unwrap();

        // scheduled: two capped devices, chunked streaming reconstruction
        let registry = two_device_registry();
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default().with_chunk_size(2));
        let (streamed, _, schedule_report) = pipeline.execute_streaming(&scheduler).unwrap();
        prop_assert!(schedule_report.chunks >= 1);

        let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
        for ((a, b), c) in exact.iter().zip(&reference).zip(&streamed) {
            prop_assert!((a - b).abs() < 1e-9, "single-backend vs exact: {a} vs {b}");
            prop_assert!((a - c).abs() < 1e-9, "scheduled vs exact: {a} vs {c}");
            prop_assert!((b - c).abs() < 1e-9, "scheduled vs single-backend: {b} vs {c}");
        }
    }

    /// Gate-cut (and mixed) plans: scheduled expectation values agree with
    /// single-backend execution and the state vector to 1e-9.
    #[test]
    fn scheduled_expectations_match_single_backend_and_statevector(
        circuit in random_circuit()
    ) {
        let pipeline = match QrccPipeline::plan(&circuit, gate_config()) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let n = circuit.num_qubits();
        let mut observable = PauliObservable::new(n);
        observable.add_term(1.0, PauliString::zz(n, 0, n - 1));
        observable.add_term(-0.5, PauliString::z(n, 1));

        let single = ExactBackend::new();
        let reference_results = pipeline.execute_observables(&single, &[&observable]).unwrap();
        let reference =
            pipeline.reconstruct_expectation_from(&reference_results, &observable).unwrap();

        let registry = two_device_registry();
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default().with_chunk_size(3));
        let (scheduled_results, report) =
            pipeline.execute_observables_scheduled(&scheduler, &[&observable]).unwrap();
        let scheduled =
            pipeline.reconstruct_expectation_from(&scheduled_results, &observable).unwrap();
        prop_assert_eq!(scheduled_results.executed(), reference_results.executed());
        prop_assert!(report.circuits > 0);

        let exact = StateVector::from_circuit(&circuit).unwrap().expectation(&observable);
        prop_assert!((reference - exact).abs() < 1e-9, "single {reference} vs exact {exact}");
        prop_assert!((scheduled - exact).abs() < 1e-9, "scheduled {scheduled} vs exact {exact}");
    }
}

/// One seeded uniform-vs-variance comparison on a gate-cut plan (the
/// workload where the instance coefficients `cos²θ ≫ sin²θ` make the
/// variance weights genuinely non-uniform): same circuit, same observable,
/// same total shot budget, fresh same-seed devices — returns the two
/// squared observable errors `(uniform, variance_weighted)`.
fn allocation_squared_errors(pipeline: &QrccPipeline, seed: u64, budget: u64) -> (f64, f64) {
    let mut observable = PauliObservable::new(4);
    observable.add_term(1.0, PauliString::zz(4, 1, 2));
    observable.add_term(0.5, PauliString::z(4, 0));

    let mut errors = [0.0f64; 2];
    for (slot, allocation) in
        [ShotAllocation::Uniform, ShotAllocation::VarianceWeighted].into_iter().enumerate()
    {
        // fresh devices per run so both allocations sample the same streams
        let mut registry = DeviceRegistry::new();
        registry.register_device("dev2a", Device::new(DeviceConfig::ideal(2).with_seed(seed)), 1);
        registry.register_device(
            "dev2b",
            Device::new(DeviceConfig::ideal(2).with_seed(seed ^ 0xABCD)),
            1,
        );
        let policy =
            SchedulePolicy::with_budget(budget).with_allocation(allocation).with_min_shots(16);
        let scheduler = Scheduler::new(&registry, policy);
        let (results, report) =
            pipeline.execute_observables_scheduled(&scheduler, &[&observable]).unwrap();
        assert_eq!(report.total_shots, budget, "the whole budget must be spent");
        let estimate = pipeline.reconstruct_expectation_from(&results, &observable).unwrap();
        let exact =
            StateVector::from_circuit(&gate_cut_circuit()).unwrap().expectation(&observable);
        errors[slot] = (estimate - exact).powi(2);
    }
    (errors[0], errors[1])
}

/// Two halves coupled by one cuttable RZZ whose small angle gives strongly
/// non-uniform instance coefficients.
fn gate_cut_circuit() -> Circuit {
    let mut circuit = Circuit::new(4);
    circuit.h(0).cx(0, 1).ry(0.4, 1).h(2).cx(2, 3).rz(0.7, 3);
    circuit.rzz(0.5, 1, 2);
    circuit.rx(0.3, 1).ry(0.2, 2);
    circuit
}

/// ShotQC's claim, miniature: at equal total budget, variance-weighted
/// allocation reconstructs the observable more accurately than uniform
/// allocation (summed over a fixed seed set to smooth shot noise).
#[test]
fn variance_allocation_beats_uniform_at_equal_budget() {
    let circuit = gate_cut_circuit();
    let config = QrccConfig::new(2)
        .with_subcircuit_range(2, 2)
        .with_gate_cuts(true)
        .with_max_wire_cuts(0)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config).unwrap();
    assert!(pipeline.plan_ref().gate_cut_count() >= 1, "the plan must gate-cut the RZZ");

    let mut uniform_mse = 0.0;
    let mut variance_mse = 0.0;
    for index in 0..24u64 {
        let (uniform, variance) = allocation_squared_errors(&pipeline, index * 37 + 5, 20_000);
        uniform_mse += uniform;
        variance_mse += variance;
    }
    eprintln!("uniform MSE {uniform_mse:.3e}, variance-weighted MSE {variance_mse:.3e}");
    assert!(
        variance_mse <= uniform_mse,
        "variance-weighted MSE {variance_mse:.3e} must not exceed uniform MSE {uniform_mse:.3e}"
    );
}

/// The acceptance scenario: a plan whose fragments fit across two small
/// registered devices but not on the smaller one alone runs end-to-end
/// through the scheduler with a global shot budget, streaming chunked
/// partial results into incremental reconstruction.
#[test]
fn two_small_devices_run_a_plan_neither_small_device_could_alone() {
    let mut circuit = Circuit::new(6);
    circuit.h(0);
    for q in 0..5 {
        circuit.cx(q, q + 1);
        circuit.ry(0.21 * (q as f64 + 1.0), q + 1);
    }
    let config = QrccConfig::new(3)
        .with_subcircuit_range(2, 3)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config).unwrap();
    let widths = pipeline.plan_ref().subcircuit_widths();
    assert!(widths.contains(&3), "plan must contain a 3-wide fragment: {widths:?}");
    assert!(widths.iter().any(|&w| w <= 2), "plan must contain a ≤2-wide fragment: {widths:?}");

    // the 2-qubit device alone cannot place the 3-wide fragments …
    let mut small_only = DeviceRegistry::new();
    small_only.register_device("dev2", Device::new(DeviceConfig::ideal(2).with_seed(5)), 1);
    let small_scheduler =
        Scheduler::new(&small_only, SchedulePolicy::with_budget(100_000).with_min_shots(16));
    assert!(matches!(
        pipeline.execute_scheduled(&small_scheduler),
        Err(qrcc::core::CoreError::NoCompatibleBackend { required: 3, backends: 1 })
    ));

    // … but together with a 3-qubit device the plan streams end-to-end
    let mut registry = DeviceRegistry::new();
    registry.register_device("dev3", Device::new(DeviceConfig::ideal(3).with_seed(5)), 1);
    registry.register_device("dev2", Device::new(DeviceConfig::ideal(2).with_seed(9)), 1);
    let policy = SchedulePolicy::with_budget(400_000).with_min_shots(64).with_chunk_size(4);
    let scheduler = Scheduler::new(&registry, policy);
    let (probabilities, reconstruction_report, schedule_report) =
        pipeline.execute_streaming(&scheduler).unwrap();

    assert!(schedule_report.chunks > 1, "chunk size 4 must stream multiple chunks");
    assert_eq!(schedule_report.total_shots, 400_000);
    assert_eq!(schedule_report.backends.len(), 2, "both devices must receive work");
    assert!(schedule_report.backends.iter().all(|u| u.circuits > 0));
    assert_eq!(reconstruction_report.shots_spent, 400_000);
    assert_eq!(reconstruction_report.backends_used, 2);

    let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
    let max_error =
        exact.iter().zip(&probabilities).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    assert!(max_error < 0.05, "shots-based streamed reconstruction off by {max_error}");
}

/// Streaming and blocking scheduled execution agree exactly on the same
/// seeded devices.
#[test]
fn streamed_and_blocking_scheduled_runs_agree() {
    let mut circuit = Circuit::new(5);
    circuit.h(0);
    for q in 0..4 {
        circuit.cx(q, q + 1);
    }
    let config = QrccConfig::new(3)
        .with_subcircuit_range(2, 3)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config).unwrap();

    let run = |chunk_size: usize| {
        let mut registry = DeviceRegistry::new();
        registry.register_device("dev3", Device::new(DeviceConfig::ideal(3).with_seed(77)), 1);
        let policy =
            SchedulePolicy::with_budget(80_000).with_min_shots(32).with_chunk_size(chunk_size);
        let scheduler = Scheduler::new(&registry, policy);
        let (p, _, _) = pipeline.execute_streaming(&scheduler).unwrap();
        p
    };
    let blocking = run(0);
    let streamed = run(2);
    for (a, b) in blocking.iter().zip(&streamed) {
        assert!((a - b).abs() < 1e-12, "chunking must not change the sampled result");
    }
}
