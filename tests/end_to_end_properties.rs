//! Property-based end-to-end tests: for randomly generated small circuits,
//! the QRCC pipeline must (i) respect the device budget, (ii) produce a
//! normalised distribution, and (iii) agree with direct state-vector
//! simulation.

use proptest::prelude::*;
use qrcc::prelude::*;
use std::time::Duration;

/// Random 4–5 qubit circuits built from the cuttable gate set.
fn random_circuit() -> impl Strategy<Value = Circuit> {
    let n = 5usize;
    let gate = (0..6usize, 0..n, 0..n, -2.0f64..2.0);
    proptest::collection::vec(gate, 4..20).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        // make sure the circuit is wide enough that cutting is required
        c.h(0).cx(0, 1).cx(2, 3).cx(3, 4);
        for (kind, a, b, theta) in gates {
            let a = a % n;
            let b = b % n;
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.ry(theta, a);
                }
                2 => {
                    c.rz(theta, a);
                }
                3 if a != b => {
                    c.cx(a, b);
                }
                4 if a != b => {
                    c.rzz(theta, a, b);
                }
                5 if a != b => {
                    c.cz(a, b);
                }
                _ => {
                    c.t(a);
                }
            }
        }
        c
    })
}

fn config() -> QrccConfig {
    QrccConfig::new(4).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_reproduces_random_circuits(circuit in random_circuit()) {
        let pipeline = match QrccPipeline::plan(&circuit, config()) {
            Ok(p) => p,
            // Some random circuits cannot be cut for a 4-qubit device within
            // the small subcircuit range; that is a legitimate planner answer.
            Err(_) => return Ok(()),
        };
        prop_assert!(pipeline.plan_ref().subcircuit_widths().iter().all(|&w| w <= 4));
        // keep the reconstruction cheap: skip pathological plans with many cuts
        prop_assume!(pipeline.plan_ref().wire_cut_count() <= 5);
        let backend = ExactBackend::new();
        let reconstructed = pipeline.reconstruct_probabilities(&backend).unwrap();
        let total: f64 = reconstructed.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "distribution total {total}");
        let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
        for (a, b) in exact.iter().zip(&reconstructed) {
            prop_assert!((a - b).abs() < 1e-6, "mismatch {a} vs {b}");
        }
    }
}
