//! Strategy-agreement tests for the reconstruction engine: the dense global
//! loop, pairwise contraction, and pruned contraction must agree with each
//! other and with direct state-vector simulation — on random small circuits
//! (wire-cut and gate-cut plans alike) and on a chain plan whose total cut
//! count exceeds the dense cap, where only `Contract` is feasible.

use proptest::prelude::*;
use qrcc::core::reconstruct::MAX_DENSE_CUTS;
use qrcc::prelude::*;
use std::time::Duration;

fn wire_config() -> QrccConfig {
    QrccConfig::new(4).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO)
}

fn gate_config() -> QrccConfig {
    wire_config().with_gate_cuts(true)
}

fn strategy_options() -> [ReconstructionOptions; 3] {
    [
        ReconstructionOptions { strategy: ReconstructionStrategy::Dense, prune_tolerance: 0.0 },
        ReconstructionOptions { strategy: ReconstructionStrategy::Contract, prune_tolerance: 0.0 },
        // a tiny tolerance exercises the pruning path without visibly
        // perturbing the result
        ReconstructionOptions { strategy: ReconstructionStrategy::Contract, prune_tolerance: 1e-9 },
    ]
}

/// Random 4–6 qubit circuits built from the cuttable gate set, wide enough
/// that cutting is required for a 4-qubit device.
fn random_circuit() -> impl Strategy<Value = Circuit> {
    let gate = (0..6usize, 0..6usize, 0..6usize, -2.0f64..2.0);
    (4..7usize, proptest::collection::vec(gate, 4..16)).prop_map(|(n, gates)| {
        let mut c = Circuit::new(n);
        // span all wires so the circuit cannot fit the device uncut
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        for (kind, a, b, theta) in gates {
            let a = a % n;
            let b = b % n;
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.ry(theta, a);
                }
                2 => {
                    c.rz(theta, a);
                }
                3 if a != b => {
                    c.cx(a, b);
                }
                4 if a != b => {
                    c.rzz(theta, a, b);
                }
                5 if a != b => {
                    c.cz(a, b);
                }
                _ => {
                    c.t(a);
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Wire-cut plans: every strategy's probability vector matches the
    /// exact distribution.
    #[test]
    fn strategies_agree_on_probabilities(circuit in random_circuit()) {
        let pipeline = match QrccPipeline::plan(&circuit, wire_config()) {
            Ok(p) => p,
            Err(_) => return Ok(()), // not cuttable within limits: nothing to compare
        };
        let backend = ExactBackend::new();
        let results = pipeline.execute(&backend).unwrap();
        let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
        for options in strategy_options() {
            let reconstructor = ProbabilityReconstructor::with_options(options);
            let (p, report) = reconstructor
                .reconstruct_with_report(pipeline.fragments(), &results)
                .unwrap();
            prop_assert_eq!(report.strategy, options.strategy);
            for (a, b) in exact.iter().zip(&p) {
                prop_assert!(
                    (a - b).abs() < 1e-6,
                    "strategy {:?} deviates: {} vs {}", options.strategy, a, b
                );
            }
        }
    }

    /// Gate-cut-enabled plans: every strategy's expectation value matches
    /// the exact value.
    #[test]
    fn strategies_agree_on_expectations(circuit in random_circuit()) {
        let pipeline = match QrccPipeline::plan(&circuit, gate_config()) {
            Ok(p) => p,
            Err(_) => return Ok(()),
        };
        let n = circuit.num_qubits();
        let mut observable = PauliObservable::new(n);
        observable.add_term(1.0, qrcc::circuit::observable::PauliString::zz(n, 0, n - 1));
        observable.add_term(-0.5, qrcc::circuit::observable::PauliString::x(n, 1));
        observable.add_term(
            0.25,
            qrcc::circuit::observable::PauliString::from_paulis(vec![
                qrcc::circuit::observable::Pauli::Z;
                n
            ]),
        );
        let backend = ExactBackend::new();
        let results = pipeline.execute_observables(&backend, &[&observable]).unwrap();
        let exact = StateVector::from_circuit(&circuit).unwrap().expectation(&observable);
        for options in strategy_options() {
            let reconstructor = ExpectationReconstructor::with_options(options);
            let (value, report) = reconstructor
                .reconstruct_with_report(pipeline.fragments(), &results, &observable)
                .unwrap();
            prop_assert_eq!(report.strategy, options.strategy);
            prop_assert!(
                (value - exact).abs() < 1e-6,
                "strategy {:?} deviates: {} vs exact {}", options.strategy, value, exact
            );
        }
    }
}

/// A disconnected cut graph (two independent chains, each cut once): the
/// contraction engine must finish with an outer-product merge of the two
/// unrelated clusters and still match the exact distribution.
#[test]
fn contraction_handles_disconnected_cut_graphs() {
    let mut circuit = Circuit::new(6);
    circuit.h(0).cx(0, 1).cx(1, 2).ry(0.4, 2);
    circuit.h(3).cx(3, 4).cx(4, 5).rz(0.7, 5);
    let config = QrccConfig::new(2)
        .with_subcircuit_range(4, 4)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config).expect("two-chain plan");
    // the two chains share no cuts, so the cut graph must actually be
    // disconnected — count its connected components by flood fill
    let adjacency = pipeline.fragments().cut_adjacency();
    let mut component = vec![usize::MAX; adjacency.len()];
    let mut components = 0usize;
    for start in 0..adjacency.len() {
        if component[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        while let Some(f) = stack.pop() {
            if component[f] != usize::MAX {
                continue;
            }
            component[f] = components;
            stack.extend(adjacency[f].iter().copied());
        }
        components += 1;
    }
    assert!(components >= 2, "plan must have a disconnected cut graph, got {components}");
    let backend = ExactBackend::new();
    let results = pipeline.execute(&backend).unwrap();
    let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
    let contract = ProbabilityReconstructor::with_options(ReconstructionOptions {
        strategy: ReconstructionStrategy::Contract,
        prune_tolerance: 0.0,
    });
    let (p, report) = contract.reconstruct_with_report(pipeline.fragments(), &results).unwrap();
    // every fragment is merged exactly once, including the final
    // outer-product merge(s) across unrelated components
    assert_eq!(report.contractions, adjacency.len() - 1);
    for (i, (a, b)) in exact.iter().zip(&p).enumerate() {
        assert!((a - b).abs() < 1e-6, "mismatch at {i}: exact {a} vs contract {b}");
    }
}

/// The acceptance case of the contraction engine: a chain plan whose total
/// wire-cut count exceeds `MAX_DENSE_CUTS`, so the dense strategy must
/// refuse while pairwise contraction (whose per-merge leg count stays tiny
/// on a chain) reconstructs the exact distribution.
#[test]
fn contraction_reconstructs_beyond_the_dense_cut_cap() {
    let n = MAX_DENSE_CUTS + 3; // 17 qubits → 16 two-qubit fragments, 15+ cuts
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 0..n - 1 {
        circuit.cx(q, q + 1);
    }
    circuit.ry(0.3, n - 1);
    // force one fragment per chain link so the plan carries n-1 > cap cuts
    let config = QrccConfig::new(2)
        .with_subcircuit_range(n - 1, n - 1)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config).expect("chain plan");
    let cuts = pipeline.fragments().num_wire_cuts();
    assert!(cuts > MAX_DENSE_CUTS, "need a beyond-cap plan, got {cuts} cuts");

    // dense refuses the plan outright
    let dense = ProbabilityReconstructor::with_options(ReconstructionOptions {
        strategy: ReconstructionStrategy::Dense,
        prune_tolerance: 0.0,
    });
    assert!(dense.requests(pipeline.fragments()).is_err(), "dense must refuse {cuts} cuts");

    // contraction enumerates, executes and reconstructs exactly
    let contract = ProbabilityReconstructor::with_options(ReconstructionOptions {
        strategy: ReconstructionStrategy::Contract,
        prune_tolerance: 0.0,
    });
    let requests = contract.requests(pipeline.fragments()).expect("contract accepts the plan");
    let backend = ExactBackend::new();
    let results = execute_requests(pipeline.fragments(), &requests, &backend).unwrap();
    let (p, report) = contract.reconstruct_with_report(pipeline.fragments(), &results).unwrap();
    assert_eq!(report.strategy, ReconstructionStrategy::Contract);
    assert!(
        report.max_contraction_legs <= MAX_DENSE_CUTS,
        "per-merge legs {} must stay under the cap",
        report.max_contraction_legs
    );
    assert_eq!(report.contractions, pipeline.fragments().fragments.len() - 1);

    let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
    for (i, (a, b)) in exact.iter().zip(&p).enumerate() {
        assert!((a - b).abs() < 1e-6, "mismatch at {i}: exact {a} vs contract {b}");
    }

    // Auto resolves to the only feasible strategy
    let auto = ProbabilityReconstructor::new();
    let (_, auto_report) = auto.reconstruct_with_report(pipeline.fragments(), &results).unwrap();
    assert_eq!(auto_report.strategy, ReconstructionStrategy::Contract);
}
