//! Cross-crate integration tests for the planning side: device budgets are
//! respected, qubit reuse behaves like the CaQR-style pass, and the QRCC
//! planner compares favourably against the CutQC-style baseline (the paper's
//! Tables 1 and 6 in miniature).

use qrcc::circuit::generators;
use qrcc::core::fragment::FragmentSet;
use qrcc::core::reuse::ReusePass;
use qrcc::prelude::*;
use qrcc::sim::branching::classical_distribution;
use std::time::Duration;

fn heuristic_config(device: usize) -> QrccConfig {
    QrccConfig::new(device).with_ilp_time_limit(Duration::ZERO)
}

#[test]
fn every_fragment_fits_the_device_for_assorted_benchmarks() {
    let workloads: Vec<(Circuit, usize)> = vec![
        (generators::qft(8), 5),
        (generators::aqft(10, 3), 6),
        (generators::ripple_carry_adder(4, 2), 6),
        (generators::supremacy(2, 4, 5, 3), 5),
        (generators::vqe_two_local(10, 2, 3), 6),
        (generators::qaoa_regular(10, 3, 1, 4).0, 6),
    ];
    for (circuit, device) in workloads {
        let plan = CutPlanner::new(heuristic_config(device))
            .plan(&circuit)
            .unwrap_or_else(|e| panic!("no plan for {} on {device} qubits: {e}", circuit.name()));
        assert!(
            plan.subcircuit_widths().iter().all(|&w| w <= device),
            "{}: widths {:?} exceed device {device}",
            circuit.name(),
            plan.subcircuit_widths()
        );
        let fragments = FragmentSet::from_plan(&plan).expect("fragments");
        for fragment in &fragments.fragments {
            assert!(fragment.num_physical <= device);
            let instantiated = fragment.instantiate(&fragment.default_variant());
            assert!(instantiated.num_qubits() <= device);
        }
    }
}

#[test]
fn reuse_pass_preserves_distributions_and_shrinks_width() {
    let mut circuit = Circuit::new(5);
    circuit.h(0).cx(0, 1).ry(0.4, 1).cx(1, 2).cx(2, 3).rz(0.8, 3).cx(3, 4);
    let reused = ReusePass::new().apply(&circuit).expect("reuse");
    assert!(reused.num_physical <= 3, "chain should need at most 3 physical qubits");
    let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
    let transformed = classical_distribution(&reused.circuit).unwrap();
    for (a, b) in exact.iter().zip(&transformed) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn qrcc_never_needs_more_cuts_than_the_baseline_on_reuse_friendly_workloads() {
    // Linear-entanglement workloads expose many reuse opportunities, which is
    // exactly where the paper reports the largest gains.
    for (circuit, device) in
        [(generators::vqe_two_local(10, 2, 1), 6), (generators::ripple_carry_adder(4, 7), 6)]
    {
        let qrcc = CutPlanner::new(heuristic_config(device)).plan(&circuit).expect("qrcc plan");
        // The baseline failing outright is an even stronger form of the claim.
        if let Ok(cutqc) = CutQcPlanner::new(device).plan(&circuit) {
            assert!(
                qrcc.wire_cut_count() <= cutqc.wire_cut_count(),
                "{}: qrcc {} cuts vs cutqc {} cuts",
                circuit.name(),
                qrcc.wire_cut_count(),
                cutqc.wire_cut_count()
            );
        }
    }
}

#[test]
fn gate_cuts_only_appear_when_enabled() {
    let (circuit, _) = generators::qaoa_regular(8, 3, 1, 2);
    let without = CutPlanner::new(heuristic_config(5)).plan(&circuit).expect("plan");
    assert_eq!(without.gate_cut_count(), 0);
    let with =
        CutPlanner::new(heuristic_config(5).with_gate_cuts(true)).plan(&circuit).expect("plan");
    // gate cuts are allowed (not required); the planner must still satisfy
    // the budget either way
    assert!(with.subcircuit_widths().iter().all(|&w| w <= 5));
}

#[test]
fn planner_reports_unsatisfiable_budgets() {
    let circuit = generators::qft(6);
    let err = CutPlanner::new(heuristic_config(1)).plan(&circuit);
    assert!(err.is_err());
    let err = CutPlanner::new(heuristic_config(9)).plan(&circuit);
    assert!(err.is_err(), "device larger than the circuit must be rejected");
}

#[test]
fn total_instance_count_follows_the_4_3_6_rule() {
    let (circuit, _) = generators::qaoa_regular(6, 2, 1, 5);
    let config = heuristic_config(4).with_gate_cuts(true).with_subcircuit_range(2, 3);
    let pipeline = QrccPipeline::plan(&circuit, config).expect("plan");
    let fragments = pipeline.fragments();
    let expected: u64 = fragments
        .fragments
        .iter()
        .map(|f| {
            4u64.pow(f.incoming_cuts.len() as u32)
                * 3u64.pow(f.outgoing_cuts.len() as u32)
                * 6u64.pow(f.gate_cut_roles.len() as u32)
        })
        .sum();
    assert_eq!(pipeline.total_instances(), expected);
}
