//! Integration tests of the batch-first execution protocol:
//!
//! * a property test asserting that batched + parallel + deduplicated
//!   execution reconstructs results bit-identical (within 1e-9) to a serial
//!   per-variant reference on random 4–6 qubit circuits, and
//! * dedup-accounting tests showing the batch executes strictly fewer
//!   circuits than the enumerate phase requests when variants repeat across
//!   Pauli terms (and than the plan's instance count on gate-cut plans).

use proptest::prelude::*;
use qrcc::prelude::*;
use std::time::Duration;

/// Serial per-variant reference: executes every request one circuit at a
/// time — no batching, no cross-request dedup, no parallelism — reproducing
/// the old `distribution()`-per-variant flow against the same backend type.
fn execute_serially(
    fragments: &FragmentSet,
    requests: &[VariantRequest],
    backend: &ExactBackend,
) -> ExecutionResults {
    let mut results = ExecutionResults::default();
    for request in requests {
        let circuit = fragments.instantiate_key(&request.key).expect("valid key");
        let dist = backend.run_one(&circuit).expect("exact execution");
        // sanity: the one-request batch path agrees with run_one
        let one = execute_requests(fragments, std::slice::from_ref(request), &ExactBackend::new())
            .expect("single-request batch");
        assert_eq!(one.distribution(&request.key).unwrap(), dist.as_slice());
        results.extend(one);
    }
    results
}

fn config(device: usize) -> QrccConfig {
    QrccConfig::new(device).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO)
}

/// Random 4–6 qubit circuits over the cuttable gate set, entangled enough
/// that cutting is required.
fn random_circuit() -> impl Strategy<Value = Circuit> {
    (4..7usize, proptest::collection::vec((0..6usize, 0..6usize, 0..6usize, -2.0f64..2.0), 4..18))
        .prop_map(|(n, gates)| {
            let mut c = Circuit::new(n);
            c.h(0);
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
            for (kind, a, b, theta) in gates {
                let a = a % n;
                let b = b % n;
                match kind {
                    0 => {
                        c.h(a);
                    }
                    1 => {
                        c.ry(theta, a);
                    }
                    2 => {
                        c.rz(theta, a);
                    }
                    3 if a != b => {
                        c.cx(a, b);
                    }
                    4 if a != b => {
                        c.rzz(theta, a, b);
                    }
                    5 if a != b => {
                        c.cz(a, b);
                    }
                    _ => {
                        c.t(a);
                    }
                }
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batched_parallel_execution_matches_serial_per_variant(circuit in random_circuit()) {
        let pipeline = match QrccPipeline::plan(&circuit, config(4)) {
            Ok(p) => p,
            // Some random circuits cannot be cut for a 4-qubit device within
            // the small subcircuit range; that is a legitimate planner answer.
            Err(_) => return Ok(()),
        };
        prop_assume!(pipeline.plan_ref().wire_cut_count() <= 5);
        let fragments = pipeline.fragments();
        let reconstructor = ProbabilityReconstructor::new();
        let requests = reconstructor.requests(fragments).unwrap();

        // batched + deduplicated + rayon-parallel
        let batch_backend = ExactBackend::new();
        let batched = execute_requests(fragments, &requests, &batch_backend).unwrap();
        // serial per-variant reference
        let serial_backend = ExactBackend::new();
        let serial = execute_serially(fragments, &requests, &serial_backend);

        let from_batch = reconstructor.reconstruct(fragments, &batched).unwrap();
        let from_serial = reconstructor.reconstruct(fragments, &serial).unwrap();
        prop_assert_eq!(from_batch.len(), from_serial.len());
        for (i, (a, b)) in from_batch.iter().zip(&from_serial).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "basis state {i}: batched {a} vs serial {b}");
        }
        // and both must be correct against direct simulation
        let exact = StateVector::from_circuit(&circuit).unwrap().probabilities();
        for (a, b) in exact.iter().zip(&from_batch) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}

#[test]
fn dedup_executes_fewer_circuits_than_requested_across_pauli_terms() {
    // Multiple Z-like Pauli terms share every fragment measurement-basis
    // signature, so the enumerate phase requests each variant once per term
    // while the execute phase runs it once in total.
    let mut circuit = Circuit::new(5);
    circuit.h(0).cx(0, 1).ry(0.4, 1).cx(1, 2).cx(2, 3).rz(0.8, 3).cx(3, 4);
    let mut observable = PauliObservable::new(5);
    observable.add_term(1.0, qrcc::circuit::observable::PauliString::zz(5, 0, 4));
    observable.add_term(-0.5, qrcc::circuit::observable::PauliString::z(5, 2));
    observable.add_term(0.25, qrcc::circuit::observable::PauliString::zz(5, 1, 3));

    let pipeline = QrccPipeline::plan(&circuit, config(3)).unwrap();
    let backend = ExactBackend::new();
    let results = pipeline.execute_observables(&backend, &[&observable]).unwrap();

    assert!(
        backend.executions() < results.requested(),
        "dedup must execute fewer circuits ({}) than requested ({})",
        backend.executions(),
        results.requested()
    );
    // three signature-identical terms: exactly one third survives key dedup
    assert_eq!(results.requested(), 3 * results.unique_variants() as u64);
    // and far fewer than the old per-term serial flow would have run
    let serial_cost = observable.terms().len() as u64 * pipeline.total_instances();
    assert!(backend.executions() < serial_cost);
}

#[test]
fn structural_dedup_beats_the_instance_count_on_gate_cut_plans() {
    // On the measuring half of a gate cut, Mitarai–Fujii instances 3 and 4
    // (resp. 5 and 6) instantiate to the *same* circuit, so the batch runs
    // strictly fewer circuits than the 4^k·3^l·6^m instance count.
    let mut circuit = Circuit::new(4);
    circuit.h(0).cx(0, 1).ry(0.4, 1).h(2).cx(2, 3).rz(0.7, 3).rzz(0.9, 1, 2).rx(0.3, 1).ry(0.2, 2);
    let config = QrccConfig::new(2)
        .with_subcircuit_range(2, 2)
        .with_gate_cuts(true)
        .with_max_wire_cuts(0)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config).unwrap();
    assert!(pipeline.plan_ref().gate_cut_count() >= 1, "expected a gate cut");

    let mut observable = PauliObservable::new(4);
    observable.add_term(1.0, qrcc::circuit::observable::PauliString::zz(4, 1, 2));
    observable.add_term(0.5, qrcc::circuit::observable::PauliString::z(4, 0));

    let backend = ExactBackend::new();
    let results = pipeline.execute_observables(&backend, &[&observable]).unwrap();
    assert!(
        backend.executions() < pipeline.total_instances(),
        "structural dedup must beat the instance count: executed {} of {} instances",
        backend.executions(),
        pipeline.total_instances()
    );
    assert_eq!(backend.executions(), results.executed());

    // correctness is untouched by the dedup
    let value = pipeline.reconstruct_expectation_from(&results, &observable).unwrap();
    let exact = StateVector::from_circuit(&circuit).unwrap().expectation(&observable);
    assert!((value - exact).abs() < 1e-6, "value {value} vs exact {exact}");
}
