//! Pre-flight lint gate: analyze every paper benchmark family — circuit,
//! cut plan, and fleet pairing — in **deny-warnings** mode and exit
//! non-zero on any finding, exactly like `cargo clippy -- -D warnings`
//! for circuits. CI runs this as its `lint-gate` step.
//!
//! Also demonstrates what the diagnostics look like when something *is*
//! wrong: the same plans checked against a deliberately hostile fleet.
//!
//! Run with: `cargo run --example lint_plan`

use qrcc::prelude::*;
use std::time::Duration;

fn benchmarks() -> Vec<(&'static str, Circuit)> {
    use generators::HamiltonianKind;
    vec![
        ("QFT", generators::qft(6)),
        ("AQFT", generators::aqft(6, 3)),
        ("SPM", generators::supremacy(2, 3, 4, 7)),
        ("ADD", generators::ripple_carry_adder(2, 7)),
        ("REG", generators::qaoa_regular(6, 3, 1, 7).0),
        (
            "IS",
            generators::hamiltonian_simulation(
                HamiltonianKind::TransverseFieldIsing,
                2,
                3,
                false,
                1,
                0.1,
            )
            .0,
        ),
        ("VQE", generators::vqe_two_local(6, 1, 7)),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a fleet that genuinely fits the plans: one wide exact device, one
    // narrower one (the scheduler will route fragments to either)
    let mut fleet = DeviceRegistry::new();
    fleet.register("big", ExactBackend::new());
    fleet.register("small", ExactBackend::capped(4));

    // 1. The gate: every benchmark family must analyze clean at Deny level
    //    (warnings are failures), before any backend is touched.
    let mut failures = 0usize;
    for (name, circuit) in benchmarks() {
        let config =
            QrccConfig::new(4).with_ilp_time_limit(Duration::ZERO).with_lint_level(LintLevel::Deny);
        let pipeline = QrccPipeline::plan(&circuit, config)?;
        match pipeline.preflight(&fleet) {
            Ok(report) => {
                println!(
                    "{name:>5}: clean ({} notes, {} fragments)",
                    report.notes(),
                    pipeline.fragments().fragments.len()
                );
            }
            Err(error) => {
                failures += 1;
                println!("{name:>5}: FAILED the lint gate");
                println!("{}", pipeline.analyze_with_fleet(&fleet));
                println!("  -> {error}");
            }
        }
    }

    // 2. The demonstration: the same workload against a 1-qubit fleet shows
    //    the diagnostics a failing pre-flight produces (QL0301: no backend
    //    can place the fragments). This is expected to fail — it is display
    //    only and does not affect the gate's exit status.
    let mut tiny = DeviceRegistry::new();
    tiny.register("tiny", ExactBackend::capped(1));
    let mut chain = Circuit::new(6);
    chain.h(0);
    for q in 0..5 {
        chain.cx(q, q + 1);
    }
    let pipeline = QrccPipeline::plan(&chain, QrccConfig::new(3))?;
    println!("\nwhat a failing pre-flight looks like (6-qubit chain, 1-qubit fleet):");
    println!("{}", pipeline.analyze_with_fleet(&tiny));

    if failures > 0 {
        eprintln!("lint gate: {failures} benchmark(s) failed pre-flight analysis");
        std::process::exit(1);
    }
    println!("\nlint gate: all benchmarks clean at deny-warnings level");
    Ok(())
}
