//! Fault-tolerant dispatch walkthrough: a three-device fleet where one
//! device drops jobs mid-run.
//!
//! The async dispatcher routes each deduplicated fragment circuit across the
//! fleet, streams chunks under a bounded in-flight window (a slow consumer
//! would throttle dispatch), and — when the flaky device rejects a job —
//! re-routes the failed circuits to a compatible healthy device with the
//! failer excluded. Shot accounting stays exact (every allocated shot is
//! spent exactly once, on the device where the circuit finally ran), and the
//! whole lifecycle is visible in the schedule and reconstruction reports.
//!
//! Run with: `cargo run --example flaky_fleet`

use qrcc::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The workload: a 6-qubit entangled chain, too wide for any device.
    let mut circuit = Circuit::new(6);
    circuit.h(0);
    for q in 0..5 {
        circuit.cx(q, q + 1);
        circuit.ry(0.21 * (q as f64 + 1.0), q + 1);
    }
    let config = QrccConfig::new(3)
        .with_subcircuit_range(2, 3)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config)?;
    println!(
        "plan: {} subcircuits, widths {:?}, {} wire cuts",
        pipeline.plan_ref().num_subcircuits(),
        pipeline.plan_ref().subcircuit_widths(),
        pipeline.plan_ref().wire_cut_count(),
    );

    // 2. The fleet: "unstable" persistently drops a seeded ~40% of its
    //    circuits (think a miscalibrated device rejecting a job class), the
    //    other two are healthy. Only re-routing can save the dropped jobs.
    let mut registry = DeviceRegistry::new();
    registry.register(
        "unstable (3q)",
        FlakyBackend::persistent(
            ShotsBackend::new(Device::new(DeviceConfig::ideal(3).with_seed(7)), 1),
            13,
            0.4,
        ),
    );
    registry.register_device("steady (3q)", Device::new(DeviceConfig::ideal(3).with_seed(11)), 1);
    registry.register_device("small (2q)", Device::new(DeviceConfig::ideal(2).with_seed(17)), 1);

    // 3. One global budget, streamed in chunks of 4 with at most 2 chunks in
    //    flight (the dispatcher never runs further ahead of reconstruction)
    //    and up to 3 retries per circuit.
    let policy = SchedulePolicy::with_budget(400_000)
        .with_min_shots(64)
        .with_chunk_size(4)
        .with_max_in_flight_chunks(2)
        .with_max_retries(3);
    let scheduler = Scheduler::new(&registry, policy);

    // 4. Execute + reconstruct in one streaming call: the dispatcher drives
    //    the fleet on worker threads while this thread folds every delivered
    //    chunk into the fragment tensors.
    let (probabilities, reconstruction, schedule) = pipeline.execute_streaming(&scheduler)?;

    println!(
        "\nschedule: {} circuits in {} chunks, {} total shots ({:?} allocation)",
        schedule.circuits, schedule.chunks, schedule.total_shots, schedule.allocation
    );
    for usage in &schedule.backends {
        println!(
            "  {:>14}: {:>2} circuits, {:>6} shots, {:>2} failures, {:>2} rescued retries",
            usage.backend, usage.circuits, usage.shots, usage.failures, usage.retries
        );
    }
    let d = &schedule.dispatch;
    println!(
        "dispatch: {} jobs dispatched, {} completed clean, {} retried ({} requeued), \
         max {} chunk(s) in flight",
        d.jobs_dispatched,
        d.jobs_completed,
        d.jobs_retried,
        d.jobs_requeued,
        d.max_in_flight_chunks
    );
    println!(
        "timings: queue wait {:.1?}, backend execution {:.1?}, consumer delivery {:.1?}",
        d.queue_wait, d.execute_wall, d.deliver_wall
    );
    println!(
        "reconstruction: {:?} strategy, {} shots across {} backends, \
         {} dispatch failures / {} retries absorbed",
        reconstruction.strategy,
        reconstruction.shots_spent,
        reconstruction.backends_used,
        reconstruction.dispatch_failures,
        reconstruction.dispatch_retries
    );

    // 5. The dropped jobs were re-routed, the budget was spent exactly, and
    //    the reconstruction still matches the state vector.
    assert!(d.failures > 0, "the unstable device must have dropped work");
    assert!(reconstruction.dispatch_retries > 0, "dropped circuits must have been rescued");
    assert_eq!(schedule.total_shots, 400_000, "every allocated shot spent exactly once");
    let exact = StateVector::from_circuit(&circuit)?.probabilities();
    let max_error =
        probabilities.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("max |reconstructed - exact| = {max_error:.2e} (shots-based)");
    assert!(max_error < 0.05);
    Ok(())
}
