//! Wire-cutting a Quantum Fourier Transform — the paper's hardest workload —
//! and comparing the QRCC planner against the CutQC-style baseline.
//!
//! Run with: `cargo run --release --example qft_wire_cutting`

use qrcc::circuit::generators;
use qrcc::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10;
    let device = 6;
    let circuit = generators::qft(n);
    println!(
        "QFT({n}) with {} two-qubit gates, target device: {device} qubits",
        circuit.two_qubit_gate_count()
    );

    // CutQC baseline: wire cuts only, no qubit reuse.
    match CutQcPlanner::new(device).plan(&circuit) {
        Ok(plan) => println!(
            "CutQC baseline : {} subcircuits, {} cuts, widths {:?}",
            plan.num_subcircuits(),
            plan.wire_cut_count(),
            plan.subcircuit_widths()
        ),
        Err(e) => println!("CutQC baseline : no solution ({e})"),
    }

    // QRCC: integrated qubit reuse + wire cutting.
    let config = QrccConfig::new(device).with_ilp_time_limit(Duration::ZERO);
    let plan = CutPlanner::new(config).plan(&circuit)?;
    println!(
        "QRCC           : {} subcircuits, {} cuts, widths {:?} (planning took {:?})",
        plan.num_subcircuits(),
        plan.wire_cut_count(),
        plan.subcircuit_widths(),
        plan.planning_time()
    );
    println!("post-processing factor 4^cuts = {:.3e}", plan.metrics().post_processing_factor());

    // Verify a smaller instance end-to-end (QFT(6) on 4 qubits) so the example
    // also demonstrates reconstruction correctness.
    let small = generators::qft(6);
    let pipeline =
        QrccPipeline::plan(&small, QrccConfig::new(4).with_ilp_time_limit(Duration::ZERO))?;
    let backend = ExactBackend::new();
    let results = pipeline.execute(&backend)?;
    let reconstructed = pipeline.reconstruct_probabilities_from(&results)?;
    let exact = StateVector::from_circuit(&small)?.probabilities();
    let max_error =
        reconstructed.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("QFT(6) on a 4-qubit device: max reconstruction error {max_error:.2e}");
    Ok(())
}
