//! Gate cutting a QAOA MaxCut circuit (an expectation-value workload): the
//! integrated wire + gate cutting of QRCC reconstructs ⟨H⟩ exactly, mirroring
//! the paper's Figure 4 verification.
//!
//! Run with: `cargo run --release --example qaoa_gate_cutting`

use qrcc::circuit::generators;
use qrcc::circuit::observable::PauliObservable;
use qrcc::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // QAOA on a 2-regular graph with 6 nodes, evaluated on a 4-qubit device.
    let (circuit, graph) = generators::qaoa_regular(6, 2, 1, 13);
    let observable = PauliObservable::maxcut(&graph);
    println!(
        "QAOA MaxCut: {} qubits, {} edges, {} RZZ gates",
        circuit.num_qubits(),
        graph.num_edges(),
        circuit.two_qubit_gate_count()
    );

    let config = QrccConfig::new(4)
        .with_subcircuit_range(2, 3)
        .with_gate_cuts(true)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config)?;
    let plan = pipeline.plan_ref();
    println!(
        "plan: {} subcircuits, {} wire cuts + {} gate cuts = {:.2} effective cuts, widths {:?}",
        plan.num_subcircuits(),
        plan.wire_cut_count(),
        plan.gate_cut_count(),
        plan.metrics().effective_cuts(),
        plan.subcircuit_widths()
    );
    println!("subcircuit instances: {}", pipeline.total_instances());

    // One deduplicated batch serves every Pauli term of the observable; terms
    // sharing a measurement-basis signature execute once.
    let backend = ExactBackend::new();
    let results = pipeline.execute_observables(&backend, &[&observable])?;
    println!(
        "batch: {} variant requests across {} Pauli terms → {} circuits executed",
        results.requested(),
        observable.terms().len(),
        results.executed()
    );
    let reconstructed = pipeline.reconstruct_expectation_from(&results, &observable)?;
    let exact = StateVector::from_circuit(&circuit)?.expectation(&observable);
    println!("expectation value from reconstruction = {reconstructed:.6}");
    println!("expectation value from simulation     = {exact:.6}");
    assert!((reconstructed - exact).abs() < 1e-6);
    println!("match within 1e-6 — the integrated W-Cut + G-Cut reconstruction is exact.");
    Ok(())
}
