//! Remote fleet walkthrough: the QRCC pipeline over **actual TCP workers**.
//!
//! Two `QrccServer` processes-in-miniature (threads here, but the bytes
//! genuinely cross loopback sockets) each serve a width-capped device; a
//! `RemoteBackend` client connects to each and drops into the same
//! `DeviceRegistry` as a local in-process backend. The scheduler routes the
//! figure6-style workload across all three, the dispatcher streams chunks
//! under a bounded in-flight window, and the telemetry shows where every
//! circuit and shot went — local and remote devices indistinguishable
//! behind the `ExecutionBackend` seam.
//!
//! Run with: `cargo run --example remote_fleet`
//!
//! Pass `--trace` to record the whole run as one span tree — client-side
//! phase spans, per-job dispatch spans, and each server's execute subtree
//! stitched under the `net.submit` span that carried it — then validate the
//! tree structurally, print the unified report, and write a Chrome
//! `trace_events` file. This is the CI trace gate.

use qrcc::core::obs::{
    chrome_trace, metrics, remote_subtree_stitched, tracer, validate_spans, QrccReport,
};
use qrcc::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = std::env::args().any(|a| a == "--trace");
    let trace_path = "remote_fleet_trace.json";

    // 1. The workload: the 6-qubit entangled chain used by the figure6
    //    dispatch demo, too wide for any single device in the fleet.
    let mut circuit = Circuit::new(6);
    circuit.h(0);
    for q in 0..5 {
        circuit.cx(q, q + 1);
        circuit.ry(0.21 * (q as f64 + 1.0), q + 1);
    }
    let mut config = QrccConfig::new(3)
        .with_subcircuit_range(2, 3)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    if trace {
        // implies tracing on; the span tree is validated in step 7
        config = config.with_trace_output(trace_path);
        println!("tracing enabled — spans validate and export to {trace_path}\n");
    }
    let pipeline = QrccPipeline::plan(&circuit, config)?;
    println!(
        "plan: {} subcircuits, widths {:?}, {} wire cuts",
        pipeline.plan_ref().num_subcircuits(),
        pipeline.plan_ref().subcircuit_widths(),
        pipeline.plan_ref().wire_cut_count(),
    );

    // 2. The fleet: two remote workers on ephemeral loopback ports (port 0 —
    //    the OS picks; nothing is hard-coded) plus one local device. Each
    //    worker keeps a result cache in front of its device, so repeated
    //    fragments are answered without re-sampling.
    let server_3q = QrccServer::bind(
        "127.0.0.1:0",
        ShotsBackend::new(Device::new(DeviceConfig::ideal(3).with_seed(7)), 1),
    )?
    .with_result_cache(&ResultCachePolicy::in_memory())
    .spawn();
    let server_2q = QrccServer::bind(
        "127.0.0.1:0",
        ShotsBackend::new(Device::new(DeviceConfig::ideal(2).with_seed(17)), 1),
    )?
    .with_result_cache(&ResultCachePolicy::in_memory())
    .spawn();

    let remote_3q = RemoteBackend::connect(server_3q.addr())?;
    let remote_2q = RemoteBackend::connect(server_2q.addr())?;
    for remote in [&remote_3q, &remote_2q] {
        println!(
            "connected {} — caps: max {:?} qubits, heartbeat {:?}",
            remote.label(),
            remote.capabilities().max_qubits,
            remote.ping()?,
        );
    }

    let mut registry = DeviceRegistry::new();
    registry.register("remote-3q", remote_3q);
    registry.register("remote-2q", remote_2q);
    registry.register_device("local-3q", Device::new(DeviceConfig::ideal(3).with_seed(11)), 1);

    // 3. Budgeted, chunked, windowed, retrying — the PR 3/4 machinery runs
    //    unchanged over the wire.
    let policy = SchedulePolicy::with_budget(300_000)
        .with_min_shots(64)
        .with_chunk_size(4)
        .with_max_in_flight_chunks(2)
        .with_max_retries(3);
    let scheduler = Scheduler::new(&registry, policy);
    let (probabilities, reconstruction, schedule) = pipeline.execute_streaming(&scheduler)?;

    println!(
        "\nschedule: {} circuits in {} chunks, {} total shots ({:?} allocation)",
        schedule.circuits, schedule.chunks, schedule.total_shots, schedule.allocation
    );
    for usage in &schedule.backends {
        println!(
            "  {:>10}: {:>2} circuits, {:>6} shots, {:>2} failures, {:>2} rescued retries",
            usage.backend, usage.circuits, usage.shots, usage.failures, usage.retries
        );
    }
    let d = &schedule.dispatch;
    println!(
        "dispatch: {} jobs dispatched, {} completed clean, {} retried ({} requeued), \
         max {} chunk(s) in flight",
        d.jobs_dispatched,
        d.jobs_completed,
        d.jobs_retried,
        d.jobs_requeued,
        d.max_in_flight_chunks
    );
    println!(
        "timings: queue wait {:.1?}, backend execution {:.1?}, consumer delivery {:.1?}",
        d.queue_wait, d.execute_wall, d.deliver_wall
    );

    // 4. Server-side view of the same run: the cold pass misses its way
    //    through every worker's cache.
    for (name, server) in [("remote-3q", &server_3q), ("remote-2q", &server_2q)] {
        let stats = server.stats();
        println!(
            "{name} server: {} connection(s), {} batches, {} circuits ok, {} failed, \
             cache {} hit / {} delta / {} miss",
            stats.connections,
            stats.batches,
            stats.circuits_ok,
            stats.circuits_failed,
            stats.cache_hits,
            stats.cache_delta_hits,
            stats.cache_misses
        );
    }

    // 5. Re-run the identical workload: the deterministic schedule sends the
    //    same fragments at the same shot counts to the same workers, so the
    //    remote ones now answer from their caches — no device re-sampling,
    //    while the client-side ledger still charges every requested shot.
    let (_, _, repeat) = pipeline.execute_streaming(&scheduler)?;
    assert_eq!(repeat.total_shots, 300_000, "cache-served replies still settle the budget");
    let mut served = 0;
    println!();
    for (name, server) in [("remote-3q", &server_3q), ("remote-2q", &server_2q)] {
        let stats = server.stats();
        served += stats.cache_hits;
        println!(
            "{name} warm: {} cache hits, {} device shots saved",
            stats.cache_hits, stats.cache_shots_saved
        );
    }
    assert!(served > 0, "the warm pass must be served from the worker caches");

    // 5b. Fleet health, live off the wire: a FleetMonitor polls both
    //     workers' scrape endpoints (GetMetrics / GetHealth — two frames on
    //     a pooled connection, no batch round-trip), merges the windowed
    //     views, and scores an SLO against each worker and the fleet.
    let mon_3q = RemoteBackend::connect(server_3q.addr())?;
    let mon_2q = RemoteBackend::connect(server_2q.addr())?;
    let monitor = FleetMonitor::new(
        MonitorPolicy::default()
            .with_slo(SloSpec::new("fleet").with_latency(0.99, 250_000).with_max_error_rate(0.01)),
    )
    .with_worker(&mon_3q)
    .with_worker(&mon_2q);
    let view = monitor.poll_once();
    assert_eq!(view.unreachable, 0, "both workers must answer the poll");
    assert_eq!(view.count_state(HealthState::Accepting), 2, "both workers accepting");
    println!(
        "\nfleet health: status {}, {} workers accepting, total queue depth {}",
        view.status(),
        view.count_state(HealthState::Accepting),
        view.total_queue_depth(),
    );
    for worker in &view.workers {
        let health = worker.health.as_ref().expect("reachable");
        println!(
            "  {}: {} (queue {} now / {} high-water, {} conns)",
            worker.label,
            health.state,
            health.queue_depth,
            health.queue_high_water,
            health.connections,
        );
    }

    // 6. The budget was spent exactly once per circuit and the remote fleet
    //    reconstructs the right distribution.
    assert_eq!(schedule.total_shots, 300_000, "every allocated shot spent exactly once");
    let remote_circuits: u64 = schedule
        .backends
        .iter()
        .filter(|u| u.backend.starts_with("remote"))
        .map(|u| u.circuits)
        .sum();
    assert!(remote_circuits > 0, "the remote workers must have carried real work");
    let exact = StateVector::from_circuit(&circuit)?.probabilities();
    let max_error =
        probabilities.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!(
        "\nreconstruction: {:?} strategy, max |reconstructed - exact| = {max_error:.2e}",
        reconstruction.strategy
    );
    assert!(max_error < 0.05);

    // 7. With `--trace`, both passes above were recorded into one trace
    //    tree. Validate it structurally (the CI trace gate), show the
    //    unified report over every telemetry island, and export the tree.
    if trace {
        let spans = tracer().drain();
        validate_spans(&spans).map_err(|e| format!("trace validation failed: {e}"))?;
        assert!(
            spans.iter().any(|s| !s.remote && s.name.starts_with("phase.")),
            "the trace must contain client-side pipeline phase spans"
        );
        assert!(
            spans.iter().any(|s| s.remote && s.name == "server.execute"),
            "the trace must contain the servers' execute spans"
        );
        assert!(
            remote_subtree_stitched(&spans),
            "the server subtrees must stitch under local roots (parents resolve across the wire)"
        );
        let profile =
            reconstruction.profile.as_ref().expect("a traced run attaches a phase profile");
        assert!(
            profile.coverage() >= 0.95,
            "the phase breakdown must attribute >=95% of wall-clock, got {:.1}%",
            100.0 * profile.coverage()
        );

        // p50/p99/p999 from the histograms the servers shipped back in
        // their BatchDone telemetry, merged client-side across the fleet.
        let latency = metrics()
            .histogram("server.batch_latency_us")
            .expect("server latency telemetry must merge into the client registry");
        println!(
            "\nremote batch latency, merged across the fleet ({} batches): \
             p50 {} us, p99 {} us, p999 {} us",
            latency.count(),
            latency.p50().unwrap_or(0),
            latency.p99().unwrap_or(0),
            latency.p999().unwrap_or(0),
        );

        let report = QrccReport::new()
            .with_schedule(schedule)
            .with_reconstruction(reconstruction)
            .with_metrics(metrics().snapshot())
            .with_section("remote-3q", server_3q.stats().metrics())
            .with_section("remote-2q", server_2q.stats().metrics());
        println!("\n{}", report.render());

        std::fs::write(trace_path, chrome_trace(&spans))?;
        println!(
            "wrote {} spans ({} remote) to {trace_path} — load in chrome://tracing or Perfetto",
            spans.len(),
            spans.iter().filter(|s| s.remote).count(),
        );
    }

    // Drain before shutdown: GetHealth flips to draining while the sockets
    // still answer, so a router can move work away before anything closes.
    server_3q.begin_drain();
    server_2q.begin_drain();
    for mon in [&mon_3q, &mon_2q] {
        assert_eq!(mon.get_health()?.state, HealthState::Draining, "drain visible on the wire");
    }
    println!("\nboth workers report draining ahead of shutdown");

    for (name, server) in [("remote-3q", server_3q), ("remote-2q", server_2q)] {
        let ledgers = server.shutdown();
        println!("{name} shut down; per-connection ledgers: {ledgers:?}");
    }
    Ok(())
}
