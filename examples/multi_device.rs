//! Multi-device scheduling walkthrough: run one cut plan across **two**
//! small devices with a single global shot budget, streaming chunked
//! partial results into incremental reconstruction.
//!
//! The pipeline is the enumerate → dedup → **schedule** → execute → fold
//! flow: the scheduler routes each deduplicated fragment circuit to a
//! compatible device (the 3-qubit fragments can only run on the larger
//! device, the narrow ones load-balance), splits the shot budget across the
//! batch by reconstruction-variance weight, and emits results chunk by
//! chunk so the fragment tensors fold while later chunks still execute.
//!
//! Run with: `cargo run --example multi_device`

use qrcc::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The workload: a 6-qubit entangled chain, too wide for either device.
    let mut circuit = Circuit::new(6);
    circuit.h(0);
    for q in 0..5 {
        circuit.cx(q, q + 1);
        circuit.ry(0.21 * (q as f64 + 1.0), q + 1);
    }
    println!("original circuit: {} qubits, {} gates", circuit.num_qubits(), circuit.gate_count());

    // 2. Plan a cut for a 3-qubit device budget.
    let config = QrccConfig::new(3)
        .with_subcircuit_range(2, 3)
        .with_qubit_reuse(false)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config)?;
    println!(
        "plan: {} subcircuits, widths {:?}, {} wire cuts",
        pipeline.plan_ref().num_subcircuits(),
        pipeline.plan_ref().subcircuit_widths(),
        pipeline.plan_ref().wire_cut_count(),
    );

    // 3. Register two heterogeneous devices. Neither runs the whole batch
    //    alone: the 2-qubit device cannot host the 3-wide fragments, and
    //    sending everything to the 3-qubit device would leave half the
    //    hardware idle.
    let mut registry = DeviceRegistry::new();
    registry.register_device("lagos-ish (3q)", Device::new(DeviceConfig::ideal(3).with_seed(7)), 1);
    registry.register_device("small (2q)", Device::new(DeviceConfig::ideal(2).with_seed(13)), 1);

    // 4. One global budget, variance-weighted, streamed in chunks of 4.
    let policy = SchedulePolicy::with_budget(400_000).with_min_shots(64).with_chunk_size(4);
    let scheduler = Scheduler::new(&registry, policy);

    // 5. Execute + reconstruct in one streaming call: a worker thread runs
    //    the scheduler while this thread folds every finished chunk into
    //    the fragment tensors; only the final contraction happens after the
    //    last chunk lands.
    let (probabilities, reconstruction, schedule) = pipeline.execute_streaming(&scheduler)?;

    println!(
        "\nschedule: {} circuits in {} chunks, {} total shots ({:?} allocation)",
        schedule.circuits, schedule.chunks, schedule.total_shots, schedule.allocation
    );
    for usage in &schedule.backends {
        println!("  {:>14}: {} circuits, {} shots", usage.backend, usage.circuits, usage.shots);
    }
    println!(
        "reconstruction: {:?} strategy, {} shots consumed across {} backends",
        reconstruction.strategy, reconstruction.shots_spent, reconstruction.backends_used
    );

    // 6. Compare against direct state-vector simulation.
    let exact = StateVector::from_circuit(&circuit)?.probabilities();
    let max_error =
        probabilities.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("max |reconstructed - exact| = {max_error:.2e} (shots-based)");
    assert!(max_error < 0.05);
    Ok(())
}
