//! Quickstart: cut a 6-qubit GHZ-style circuit so it runs on a 3-qubit
//! device, execute every subcircuit variant as one deduplicated parallel
//! batch on an exact simulator, and reconstruct the original probability
//! distribution from the batch results.
//!
//! Run with: `cargo run --example quickstart`

use qrcc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the workload: a 6-qubit entangled chain.
    let mut circuit = Circuit::new(6);
    circuit.h(0);
    for q in 0..5 {
        circuit.cx(q, q + 1);
    }
    println!("original circuit: {} qubits, {} gates", circuit.num_qubits(), circuit.gate_count());

    // 2. Plan a qubit-reuse-aware cut for a 3-qubit device.
    let config = QrccConfig::new(3);
    let pipeline = QrccPipeline::plan(&circuit, config)?;
    let plan = pipeline.plan_ref();
    println!(
        "plan: {} subcircuits, {} wire cuts, {} gate cuts, widths {:?}",
        plan.num_subcircuits(),
        plan.wire_cut_count(),
        plan.gate_cut_count(),
        plan.subcircuit_widths()
    );
    println!("subcircuit instances to execute: {}", pipeline.total_instances());

    // 3. Execute: the pipeline enumerates every variant, deduplicates them by
    //    structural key and runs ONE parallel batch on the backend.
    let backend = ExactBackend::new();
    let results = pipeline.execute(&backend)?;
    println!(
        "batch: {} variants requested, {} circuits executed after dedup",
        results.requested(),
        results.executed()
    );

    // 4. Consume: reconstruct the distribution from the batch results.
    let probabilities = pipeline.reconstruct_probabilities_from(&results)?;

    // 5. Compare against direct state-vector simulation.
    let exact = StateVector::from_circuit(&circuit)?.probabilities();
    let max_error =
        probabilities.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("P(|000000>) = {:.4}   P(|111111>) = {:.4}", probabilities[0], probabilities[63]);
    println!("max |reconstructed - exact| = {max_error:.2e}");
    assert!(max_error < 1e-6);
    Ok(())
}
