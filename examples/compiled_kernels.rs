//! Compiled kernels: inspect what the kernel compiler did to a cut
//! workload's variant batch — fusion ratio, specialization coverage, and
//! structural-hash cache reuse across deduplicated variants — and verify the
//! compiled path reproduces the interpreted one.
//!
//! Two distinct caches share the structural-hash key but sit at different
//! layers: the **kernel cache** shown here memoizes *compiled gate programs*
//! (how to simulate a circuit — reuse saves compilation, the shots still
//! run), while the **result cache** (`qrcc_core::cache`, see the
//! `remote_fleet` example) memoizes *executed distributions* (what a circuit
//! produced — reuse skips the device entirely).
//!
//! Run with: `cargo run --release --example compiled_kernels`

use qrcc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A fusion-friendly workload: dense single-qubit runs over one
    //    entangling chain, too wide for the 3-qubit device below.
    let n = 6;
    let mut circuit = Circuit::new(n);
    for q in 0..n {
        let t = 0.1 + 0.05 * q as f64;
        circuit.h(q).rz(t, q).t(q).rx(1.3 * t, q);
    }
    for q in 0..n - 1 {
        circuit.cx(q, q + 1);
    }
    for q in 0..n {
        let t = 0.3 + 0.05 * q as f64;
        circuit.rz(t, q).h(q).t(q);
    }

    // 2. Plan the cut and execute on the default (compiled) exact backend.
    let config = QrccConfig::new(3);
    let pipeline = QrccPipeline::plan(&circuit, config.clone())?;
    let backend = config.exact_backend();
    let results = pipeline.execute(&backend)?;
    let (probabilities, report) = pipeline.reconstruct_probabilities_with_report_from(&results)?;

    // 3. The reconstruction report carries the compiler's telemetry.
    let stats = report.kernel_compile.as_ref().expect("compiled backend reports stats");
    println!("kernel compiler over the variant batch:\n{stats}");
    println!(
        "fusion ratio {:.2}x, coverage {:.1}%, {} compiled bodies shared across {} requests",
        stats.fusion_ratio(),
        100.0 * stats.coverage(),
        stats.cache_misses,
        stats.cache_hits + stats.cache_misses,
    );

    // 4. The interpreted opt-out produces the same distribution.
    let interpreted = config.clone().with_interpreted_sim(true).exact_backend();
    let results_interp = pipeline.execute(&interpreted)?;
    let probabilities_interp = pipeline.reconstruct_probabilities_from(&results_interp)?;
    let max_gap = probabilities
        .iter()
        .zip(&probabilities_interp)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |compiled - interpreted| over reconstructed P = {max_gap:.2e}");
    assert!(max_gap < 1e-12);

    // 5. And both match direct simulation of the uncut circuit.
    let exact = StateVector::from_circuit(&circuit)?.probabilities();
    let max_error =
        probabilities.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("max |reconstructed - exact| = {max_error:.2e}");
    assert!(max_error < 1e-6);
    Ok(())
}
