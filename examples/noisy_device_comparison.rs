//! The paper's Table 3 experiment in miniature: compare running a 7-qubit
//! QAOA circuit directly on a noisy 7-qubit device against QRCC's smaller
//! subcircuits on a noisy 4-qubit device plus classical post-processing.
//!
//! Run with: `cargo run --release --example noisy_device_comparison`

use qrcc::circuit::generators;
use qrcc::circuit::observable::PauliObservable;
use qrcc::prelude::*;
use qrcc::sim::device::{Device, DeviceConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shots = 4096;
    let (circuit, graph) = generators::qaoa_regular(7, 2, 1, 21);
    let observable = PauliObservable::maxcut(&graph);
    let exact = StateVector::from_circuit(&circuit)?.expectation(&observable);
    println!("state-vector (ground truth) ⟨H⟩ = {exact:.4}");

    // Whole-circuit execution on a noisy 7-qubit device.
    let noise = NoiseModel::ibm_lagos_like();
    let whole_device = Device::new(DeviceConfig::noisy(7, noise).with_seed(1));
    let whole = whole_device.estimate_expectation(&circuit, &observable, shots)?;
    println!("noisy 7-qubit device        ⟨H⟩ = {whole:.4}  (error {:.4})", (whole - exact).abs());

    // QRCC: plan for a 4-qubit device, execute subcircuits with the same
    // noise model, reconstruct classically.
    let config = QrccConfig::new(4)
        .with_subcircuit_range(2, 3)
        .with_gate_cuts(true)
        .with_ilp_time_limit(Duration::ZERO);
    let pipeline = QrccPipeline::plan(&circuit, config)?;
    println!(
        "QRCC plan: {} subcircuits, {} wire cuts, {} gate cuts, {} instances",
        pipeline.plan_ref().num_subcircuits(),
        pipeline.plan_ref().wire_cut_count(),
        pipeline.plan_ref().gate_cut_count(),
        pipeline.total_instances()
    );
    // The batch runs rayon-parallel on the simulated device, with one
    // deterministic sampling stream per circuit.
    let backend = ShotsBackend::new(Device::new(DeviceConfig::noisy(4, noise).with_seed(2)), shots);
    let results = pipeline.execute_observables(&backend, &[&observable])?;
    println!(
        "executed {} noisy subcircuit runs for {} variant requests",
        results.executed(),
        results.requested()
    );
    let qrcc_value = pipeline.reconstruct_expectation_from(&results, &observable)?;
    println!(
        "QRCC (4-qubit + post-proc)  ⟨H⟩ = {qrcc_value:.4}  (error {:.4})",
        (qrcc_value - exact).abs()
    );
    println!("\nThe subcircuits contain fewer two-qubit gates each, so their noisy execution");
    println!("degrades the reconstructed value less than running the full circuit does.");
    Ok(())
}
