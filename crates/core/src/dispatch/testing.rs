//! Fault-injection test doubles for the dispatch subsystem: deterministic
//! flaky backends (transient and persistent failures) and queue-latency
//! wrappers. They ship behind the crate's `testing` feature (always on for
//! this crate's own tests) so downstream integration tests, benches and
//! examples — including the `qrcc-net` transport tests — can simulate
//! unreliable fleets without the doubles riding along in production builds.
//! The TCP-level counterpart, `qrcc_net::testing::FaultyProxy`, injects
//! faults below these backends: into the byte stream itself.

use crate::execute::ExecutionBackend;
use crate::CoreError;
use parking_lot::Mutex;
use qrcc_circuit::Circuit;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How a [`FlakyBackend`] fails the circuits it selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// A selected circuit fails its first `n` submissions to this backend,
    /// then succeeds — a device that drops jobs and recovers.
    Transient(u32),
    /// A selected circuit **always** fails here — a device that cannot run
    /// it (miscalibrated, offline for that job class). Only re-routing to a
    /// different backend can save the circuit.
    Persistent,
}

/// A deterministic failure-injecting wrapper around another backend.
///
/// A seeded hash of each circuit's structural identity selects a
/// `fail_fraction` of circuits to fail with
/// [`CoreError::BackendUnavailable`]; the decision depends only on
/// `(circuit, seed, submissions so far)`, never on thread timing, so fault
/// injection is reproducible across worker counts and dispatch schedules.
/// Failing circuits are rejected *before* execution — the inner backend
/// never sees them, exactly like a queue rejection — so a wrapped
/// [`ShotsBackend`](crate::execute::ShotsBackend) keeps its deterministic
/// sampling streams for the circuits that do run.
///
/// ```rust
/// use qrcc_core::dispatch::FlakyBackend;
/// use qrcc_core::execute::{ExactBackend, ExecutionBackend};
/// use qrcc_circuit::Circuit;
///
/// let flaky = FlakyBackend::transient(ExactBackend::new(), 7, 1.0);
/// let mut c = Circuit::new(1);
/// c.h(0).measure(0, 0);
/// assert!(flaky.run_one(&c).is_err(), "first submission is dropped");
/// assert!(flaky.run_one(&c).is_ok(), "the transient fault clears");
/// assert_eq!(flaky.injected_failures(), 1);
/// ```
pub struct FlakyBackend<B> {
    inner: B,
    seed: u64,
    fail_fraction: f64,
    mode: FailureMode,
    /// Submissions seen per structural circuit hash (drives `Transient`).
    submissions: Mutex<HashMap<u64, u32>>,
    injected: AtomicU64,
}

/// SplitMix64 finaliser: decorrelates the structural hash from the seed so
/// `fail_fraction` selects an unbiased, reproducible subset of circuits.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl<B: ExecutionBackend> FlakyBackend<B> {
    /// A backend where a seeded `fail_fraction` of circuits fail **once**
    /// and then succeed.
    pub fn transient(inner: B, seed: u64, fail_fraction: f64) -> Self {
        Self::with_mode(inner, seed, fail_fraction, FailureMode::Transient(1))
    }

    /// A backend where a seeded `fail_fraction` of circuits **always** fail.
    pub fn persistent(inner: B, seed: u64, fail_fraction: f64) -> Self {
        Self::with_mode(inner, seed, fail_fraction, FailureMode::Persistent)
    }

    /// A backend that fails *every* circuit, every time — for retry
    /// exhaustion tests.
    pub fn always_failing(inner: B) -> Self {
        Self::with_mode(inner, 0, 1.1, FailureMode::Persistent)
    }

    /// Full-control constructor.
    ///
    /// # Panics
    ///
    /// Panics if `fail_fraction` is negative or not finite.
    pub fn with_mode(inner: B, seed: u64, fail_fraction: f64, mode: FailureMode) -> Self {
        assert!(
            fail_fraction.is_finite() && fail_fraction >= 0.0,
            "fail fraction must be finite and non-negative"
        );
        FlakyBackend {
            inner,
            seed,
            fail_fraction,
            mode,
            submissions: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Number of failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether the seeded selection marks this circuit as failure-prone.
    pub fn selects(&self, circuit: &Circuit) -> bool {
        let draw = (mix(circuit.structural_hash() ^ self.seed) >> 11) as f64 / (1u64 << 53) as f64;
        draw < self.fail_fraction
    }

    /// Decides one submission of `circuit`: `Some(error)` to inject a
    /// failure, `None` to pass it through. Counts the submission either way.
    fn inject(&self, circuit: &Circuit) -> Option<CoreError> {
        if !self.selects(circuit) {
            return None;
        }
        let attempt = {
            let mut submissions = self.submissions.lock();
            let slot = submissions.entry(circuit.structural_hash()).or_insert(0);
            *slot += 1;
            *slot
        };
        let fail = match self.mode {
            FailureMode::Transient(n) => attempt <= n,
            FailureMode::Persistent => true,
        };
        if !fail {
            return None;
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(CoreError::BackendUnavailable {
            backend: self.label(),
            reason: format!("injected fault (submission {attempt})"),
        })
    }
}

impl<B: ExecutionBackend> ExecutionBackend for FlakyBackend<B> {
    fn run_one(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
        match self.inject(circuit) {
            Some(error) => Err(error),
            None => self.inner.run_one(circuit),
        }
    }

    fn run_batch(&self, circuits: &[Circuit]) -> Vec<Result<Vec<f64>, CoreError>> {
        self.run_batch_impl(circuits, None)
    }

    fn run_batch_with_shots(
        &self,
        circuits: &[Circuit],
        shots: &[u64],
    ) -> Vec<Result<Vec<f64>, CoreError>> {
        self.run_batch_impl(circuits, Some(shots))
    }

    fn max_qubits(&self) -> Option<usize> {
        self.inner.max_qubits()
    }

    fn can_run(&self, circuit: &Circuit) -> bool {
        self.inner.can_run(circuit)
    }

    fn shots_per_circuit(&self) -> Option<u64> {
        self.inner.shots_per_circuit()
    }

    fn label(&self) -> String {
        format!("flaky({})", self.inner.label())
    }

    fn executions(&self) -> u64 {
        self.inner.executions()
    }
}

impl<B: ExecutionBackend> FlakyBackend<B> {
    /// Batch path: decide every circuit first, run only the survivors
    /// through the inner backend as one sub-batch (order preserved), then
    /// splice the injected failures back in. Rejected circuits never reach
    /// the inner backend — like a queue rejecting a job up front.
    fn run_batch_impl(
        &self,
        circuits: &[Circuit],
        shots: Option<&[u64]>,
    ) -> Vec<Result<Vec<f64>, CoreError>> {
        let verdicts: Vec<Option<CoreError>> = circuits.iter().map(|c| self.inject(c)).collect();
        let passing: Vec<usize> = (0..circuits.len()).filter(|&i| verdicts[i].is_none()).collect();
        let sub: Vec<Circuit> = passing.iter().map(|&i| circuits[i].clone()).collect();
        let sub_results = match shots {
            Some(s) => {
                let sub_shots: Vec<u64> = passing.iter().map(|&i| s[i]).collect();
                self.inner.run_batch_with_shots(&sub, &sub_shots)
            }
            None => self.inner.run_batch(&sub),
        };
        let mut sub_results = sub_results.into_iter();
        verdicts
            .into_iter()
            .map(|verdict| match verdict {
                Some(error) => Err(error),
                None => sub_results.next().expect("one inner result per passing circuit"),
            })
            .collect()
    }
}

impl<B: std::fmt::Debug> std::fmt::Debug for FlakyBackend<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlakyBackend")
            .field("inner", &self.inner)
            .field("seed", &self.seed)
            .field("fail_fraction", &self.fail_fraction)
            .field("mode", &self.mode)
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

/// A queue-latency wrapper: every submission waits `latency` before the
/// inner backend executes — a stand-in for the job queue of a busy remote
/// device. With per-backend dispatch workers, queue latency on one device
/// overlaps execution on the others (and overlaps reconstruction of already
/// delivered chunks).
#[derive(Debug)]
pub struct QueueBackend<B> {
    inner: B,
    latency: Duration,
}

impl<B: ExecutionBackend> QueueBackend<B> {
    /// Wraps `inner` with a fixed per-submission queue `latency`.
    pub fn new(inner: B, latency: Duration) -> Self {
        QueueBackend { inner, latency }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The simulated queue latency per submission.
    pub fn latency(&self) -> Duration {
        self.latency
    }
}

impl<B: ExecutionBackend> ExecutionBackend for QueueBackend<B> {
    fn run_one(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
        std::thread::sleep(self.latency);
        self.inner.run_one(circuit)
    }

    fn run_batch(&self, circuits: &[Circuit]) -> Vec<Result<Vec<f64>, CoreError>> {
        std::thread::sleep(self.latency);
        self.inner.run_batch(circuits)
    }

    fn run_batch_with_shots(
        &self,
        circuits: &[Circuit],
        shots: &[u64],
    ) -> Vec<Result<Vec<f64>, CoreError>> {
        std::thread::sleep(self.latency);
        self.inner.run_batch_with_shots(circuits, shots)
    }

    fn max_qubits(&self) -> Option<usize> {
        self.inner.max_qubits()
    }

    fn can_run(&self, circuit: &Circuit) -> bool {
        self.inner.can_run(circuit)
    }

    fn shots_per_circuit(&self) -> Option<u64> {
        self.inner.shots_per_circuit()
    }

    fn label(&self) -> String {
        format!("queued({})", self.inner.label())
    }

    fn executions(&self) -> u64 {
        self.inner.executions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::ExactBackend;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    #[test]
    fn transient_faults_clear_after_the_configured_count() {
        let flaky = FlakyBackend::with_mode(ExactBackend::new(), 3, 1.0, FailureMode::Transient(2));
        let c = bell();
        assert!(matches!(flaky.run_one(&c), Err(CoreError::BackendUnavailable { .. })));
        assert!(matches!(flaky.run_one(&c), Err(CoreError::BackendUnavailable { .. })));
        assert!(flaky.run_one(&c).is_ok());
        assert_eq!(flaky.injected_failures(), 2);
        // the inner backend only saw the successful submission
        assert_eq!(flaky.executions(), 1);
    }

    #[test]
    fn persistent_faults_never_clear() {
        let flaky = FlakyBackend::always_failing(ExactBackend::new());
        let c = bell();
        for _ in 0..4 {
            assert!(flaky.run_one(&c).is_err());
        }
        assert_eq!(flaky.executions(), 0);
    }

    #[test]
    fn selection_is_deterministic_and_respects_the_fraction() {
        let reference = FlakyBackend::persistent(ExactBackend::new(), 42, 0.5);
        let twin = FlakyBackend::persistent(ExactBackend::new(), 42, 0.5);
        let mut selected = 0usize;
        let total = 64usize;
        for i in 0..total {
            let mut c = Circuit::new(2);
            c.h(0).ry(0.1 * (i as f64 + 1.0), 1).cx(0, 1).measure_all();
            assert_eq!(reference.selects(&c), twin.selects(&c), "same seed, same selection");
            if reference.selects(&c) {
                selected += 1;
            }
        }
        assert!(selected > total / 5 && selected < 4 * total / 5, "{selected}/{total} selected");
    }

    #[test]
    fn batch_path_splices_failures_without_executing_them() {
        let flaky = FlakyBackend::with_mode(ExactBackend::new(), 9, 1.0, FailureMode::Transient(1));
        let c = bell();
        let results = flaky.run_batch(&[c.clone(), c.clone()]);
        // the first submission of the (structurally identical) circuit fails,
        // the second already counts as a later submission and passes
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
        assert_eq!(flaky.executions(), 1);
    }

    #[test]
    fn zero_fraction_is_transparent() {
        let flaky = FlakyBackend::transient(ExactBackend::new(), 1, 0.0);
        assert!(flaky.run_one(&bell()).is_ok());
        assert_eq!(flaky.injected_failures(), 0);
        assert_eq!(flaky.label(), "flaky(exact)");
    }

    #[test]
    fn queue_backend_delegates_after_the_latency() {
        let queued = QueueBackend::new(ExactBackend::new(), Duration::from_millis(1));
        let dist = queued.run_one(&bell()).unwrap();
        assert!((dist[0b00] - 0.5).abs() < 1e-12);
        assert_eq!(queued.label(), "queued(exact)");
        assert_eq!(queued.latency(), Duration::from_millis(1));
    }
}
