//! Worker threads of the dispatch event loop: one per registry backend,
//! each draining a FIFO job queue and reporting outcomes over a shared
//! event channel.

use crate::schedule::RegisteredBackend;
use crate::CoreError;
use qrcc_circuit::Circuit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::time::{Duration, Instant};

/// One dispatchable unit of work: a group of batch circuits bound for one
/// backend. Initial dispatch creates one job per (chunk, backend) sub-batch;
/// retries create single-circuit jobs.
pub(crate) struct Job {
    /// Which streamed chunk the circuits belong to.
    pub(crate) chunk: usize,
    /// Registry entry index of the backend this job was routed to.
    pub(crate) entry: usize,
    /// Batch-global indices of the circuits carried.
    pub(crate) circuits: Vec<usize>,
    /// The instantiated circuits, in the same order as `circuits`.
    pub(crate) payload: Vec<Circuit>,
    /// Allocated per-circuit shots (when a global budget is set).
    pub(crate) shots: Option<Vec<u64>>,
    /// Whether this job is a retry of circuits that failed elsewhere.
    pub(crate) retry: bool,
    /// When the dispatcher enqueued the job (queue-wait telemetry).
    pub(crate) dispatched_at: Instant,
    /// Tracing span of the dispatch phase that created the job (0 when
    /// tracing is off) — the worker's `job.execute` span parents under it
    /// so per-job spans stitch into the pipeline tree across threads.
    pub(crate) span: u64,
}

/// A finished job with its per-circuit results and phase timings.
pub(crate) struct JobOutcome {
    pub(crate) job: Job,
    pub(crate) results: Vec<Result<Vec<f64>, CoreError>>,
    /// Time the job sat in the worker's queue before execution started.
    pub(crate) queue_wait: Duration,
    /// Wall-clock of the backend's batch call.
    pub(crate) execute_wall: Duration,
}

/// Handle to one backend's worker thread: jobs sent here execute in FIFO
/// order on that backend. Dropping the handle terminates the worker once its
/// queue drains.
pub(crate) struct WorkerHandle {
    sender: Sender<Job>,
}

impl WorkerHandle {
    /// Enqueues a job. The worker is alive for as long as any handle exists,
    /// so a send can only fail after the event loop has shut down.
    pub(crate) fn submit(&self, job: Job) {
        self.sender.send(job).expect("worker thread alive while its handle exists");
    }
}

/// Spawns one worker per registry entry inside `scope` and returns their
/// handles (indexed like the registry). Workers exit when every handle is
/// dropped and their queue is drained; when `cancelled` is set they drain
/// without executing, so an aborting run does not wait on queued work.
pub(crate) fn spawn_workers<'scope, 'env: 'scope>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    entries: &'env [RegisteredBackend],
    events: &Sender<JobOutcome>,
    cancelled: &'env AtomicBool,
) -> Vec<WorkerHandle> {
    entries
        .iter()
        .map(|entry| {
            let (sender, receiver) = std::sync::mpsc::channel::<Job>();
            let events = events.clone();
            scope.spawn(move || worker_loop(entry, receiver, events, cancelled));
            WorkerHandle { sender }
        })
        .collect()
}

/// The body of one worker thread: run each queued job as a single batch call
/// on the backend and report the outcome. A closed event channel means the
/// dispatcher is gone — stop immediately.
fn worker_loop(
    entry: &RegisteredBackend,
    jobs: Receiver<Job>,
    events: Sender<JobOutcome>,
    cancelled: &AtomicBool,
) {
    while let Ok(job) = jobs.recv() {
        if cancelled.load(Ordering::Relaxed) {
            continue; // aborting: drain the queue without executing
        }
        let queue_wait = job.dispatched_at.elapsed();
        let started = Instant::now();
        // opens under the dispatch-phase span carried by the job; nested
        // spans (e.g. a RemoteBackend submit) parent under it through the
        // worker's thread-local stack
        let span = crate::obs::tracer().span_under("job.execute", job.span);
        // A panicking backend must not kill the worker: with other workers
        // still holding event-channel clones, a dead worker would leave its
        // job's outcome undelivered and hang the event loop forever. Catch
        // the panic and report it as a per-circuit failure instead — the
        // retry machinery then treats it like any other backend fault.
        let run = std::panic::AssertUnwindSafe(|| match &job.shots {
            Some(shots) => entry.backend().run_batch_with_shots(&job.payload, shots),
            None => entry.backend().run_batch(&job.payload),
        });
        let results = std::panic::catch_unwind(run).unwrap_or_else(|panic| {
            let reason = panic_message(panic.as_ref());
            job.payload
                .iter()
                .map(|_| {
                    Err(CoreError::BackendUnavailable {
                        backend: entry.name().to_string(),
                        reason: format!("backend panicked: {reason}"),
                    })
                })
                .collect()
        });
        drop(span);
        let execute_wall = started.elapsed();
        if events.send(JobOutcome { job, results, queue_wait, execute_wall }).is_err() {
            return;
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = panic.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = panic.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
