//! Fault-tolerant asynchronous dispatch: the event loop between routing and
//! folding.
//!
//! The [`Scheduler`](crate::schedule::Scheduler) of PR 3 ran each chunk's
//! backends on scoped threads and **blocked** until the chunk finished —
//! fine for ideal simulators, wrong for the setting QRCC actually targets:
//! flaky, queued, heterogeneous remote devices. This module replaces that
//! inner loop with a hand-rolled async dispatcher (the build environment
//! vendors no tokio, so concurrency is a channel-driven event loop over
//! worker threads, in the spirit of the `vendor/` shims):
//!
//! * **Worker pool** — one [`worker`] thread per
//!   [`DeviceRegistry`](crate::schedule::DeviceRegistry) backend, each
//!   draining a FIFO job queue, so a slow or queued device
//!   (`QueueBackend`) never stalls the others.
//! * **Bounded in-flight window** — at most
//!   [`SchedulePolicy::max_in_flight_chunks`] chunks may be dispatched but
//!   not yet delivered to the consumer. Chunks are delivered strictly in
//!   order; a slow consumer (e.g. a
//!   [`ProbabilityAccumulator`](crate::reconstruct::ProbabilityAccumulator)
//!   folding tensors) therefore exerts **backpressure** on dispatch, and a
//!   window of 1 guarantees the dispatcher holds at most one undelivered
//!   chunk's results in memory.
//! * **Retry with exclusion** — a circuit that fails on a backend
//!   (`FlakyBackend` simulates transient and persistent faults) is
//!   re-routed to another compatible backend with the failer excluded
//!   ([`route_retry`](crate::schedule)); once every compatible backend has
//!   failed it, the exclusions are waived (*requeue* — the fault may have
//!   been transient) until [`SchedulePolicy::max_retries`] failures
//!   accumulate, at which point [`CoreError::RetriesExhausted`] surfaces.
//!   Shot accounting stays exact: a circuit's allocated shots are spent
//!   exactly once, on the backend where it finally succeeds, and chunk
//!   results merge deterministically by
//!   [`VariantKey`](crate::fragment::VariantKey) regardless of worker
//!   timing or retry schedule.
//! * **Lifecycle telemetry** — [`DispatchStats`] counts jobs dispatched /
//!   completed / retried / requeued and the wall-clock of each phase
//!   (queue wait, backend execution, consumer delivery); per-backend failure
//!   and retry counters ride on
//!   [`BackendUsage`](crate::execute::BackendUsage) into
//!   [`ExecutionResults::routing`](crate::execute::ExecutionResults::routing)
//!   and the
//!   [`ReconstructionReport`](crate::reconstruct::ReconstructionReport).
//!
//! [`SchedulePolicy::max_in_flight_chunks`]: crate::SchedulePolicy::max_in_flight_chunks
//! [`SchedulePolicy::max_retries`]: crate::SchedulePolicy::max_retries

#[cfg(any(test, feature = "testing"))]
pub mod testing;
mod worker;

#[cfg(any(test, feature = "testing"))]
pub use testing::{FailureMode, FlakyBackend, QueueBackend};

use crate::cache::{merge_distributions, CacheLookup};
use crate::config::SchedulePolicy;
use crate::execute::{BackendUsage, ExecutionResults, PreparedBatch};
use crate::schedule::{router, DeviceRegistry};
use crate::CoreError;
use qrcc_circuit::Circuit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use worker::{Job, JobOutcome};

/// Lifecycle telemetry of one dispatched batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Jobs handed to backend workers by the initial per-chunk routing (one
    /// job per chunk × backend sub-batch).
    pub jobs_dispatched: u64,
    /// Jobs that returned with every circuit succeeding.
    pub jobs_completed: u64,
    /// Single-circuit retry jobs created after a failure.
    pub jobs_retried: u64,
    /// Retry jobs that had to fall back to a previously failed backend
    /// because every compatible backend had already failed the circuit.
    pub jobs_requeued: u64,
    /// Individual circuit executions that failed (each either became a
    /// retry or exhausted the budget).
    pub failures: u64,
    /// Largest number of chunks simultaneously in flight (dispatched but
    /// not yet delivered) — never exceeds the policy window when one is set.
    pub max_in_flight_chunks: usize,
    /// Total time jobs sat in worker queues before executing.
    pub queue_wait: Duration,
    /// Total backend execution wall-clock across all workers (overlapping
    /// workers each contribute their own time).
    pub execute_wall: Duration,
    /// Total time the consumer (`sink`) spent accepting delivered chunks —
    /// the backpressure the dispatcher absorbed.
    pub deliver_wall: Duration,
}

/// The channel-driven async dispatch engine inside
/// [`Scheduler`](crate::schedule::Scheduler): routes each chunk across the
/// registry, drives the routed sub-batches through per-backend worker
/// threads under a bounded in-flight window, re-routes failed circuits with
/// the failing backend excluded, and delivers completed chunks to the
/// consumer strictly in order.
#[derive(Debug, Clone, Copy)]
pub struct Dispatcher<'r> {
    registry: &'r DeviceRegistry,
    policy: SchedulePolicy,
}

impl<'r> Dispatcher<'r> {
    /// A dispatcher over `registry` following `policy`.
    pub fn new(registry: &'r DeviceRegistry, policy: SchedulePolicy) -> Self {
        Dispatcher { registry, policy }
    }

    /// The policy this dispatcher runs with.
    pub fn policy(&self) -> &SchedulePolicy {
        &self.policy
    }

    /// Runs one prepared (deduplicated, shot-allocated) batch through the
    /// worker pool, delivering each chunk's [`ExecutionResults`] to `sink`
    /// in chunk order.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoCompatibleBackend`] when routing cannot place a
    ///   circuit on any registered backend.
    /// * [`CoreError::RetriesExhausted`] when a circuit fails more than
    ///   [`SchedulePolicy::max_retries`] times; with a retry budget of 0 the
    ///   first backend error propagates unwrapped instead.
    /// * Any error `sink` returns.
    pub(crate) fn run_batch(
        &self,
        batch: &PreparedBatch<'_>,
        shots: Option<&[u64]>,
        mut sink: impl FnMut(ExecutionResults) -> Result<(), CoreError>,
    ) -> Result<DispatchStats, CoreError> {
        let tracer = crate::obs::tracer();
        // per-job spans parent under the caller's open span (the streaming
        // pipeline's `phase.dispatch`) even though workers run on their own
        // threads: the id crosses with the job
        let dispatch_span = tracer.current();
        let total = batch.circuits.len();
        let mut stats = DispatchStats::default();
        if total == 0 {
            // preserve the chunk protocol: an empty batch still delivers one
            // (empty, accounted) chunk
            let mut chunk = ExecutionResults::new_accounted(batch.requested, 0);
            chunk.set_cache_stats(self.registry.cache_stats());
            let started = Instant::now();
            sink(chunk)?;
            stats.deliver_wall = started.elapsed();
            return Ok(stats);
        }

        let entries = self.registry.entries();
        let chunk_size = if self.policy.chunk_size == 0 { total } else { self.policy.chunk_size };
        let mut bounds: Vec<(usize, usize)> = Vec::new();
        let mut start = 0;
        while start < total {
            let end = (start + chunk_size).min(total);
            bounds.push((start, end));
            start = end;
        }
        let window = if self.policy.max_in_flight_chunks == 0 {
            bounds.len()
        } else {
            self.policy.max_in_flight_chunks
        };

        // per-circuit dispatch state (indices are batch-global)
        let mut outcomes: Vec<Option<Vec<f64>>> = vec![None; total];
        let mut failures_of: Vec<u32> = vec![0; total];
        let mut excluded: Vec<Vec<usize>> = vec![Vec::new(); total];
        // shots each circuit must actually execute: its allocation, or a
        // delta hit's top-up — what the succeeding backend is charged and
        // what retry jobs carry (cache-served shots are never re-spent)
        let cache = self.registry.result_cache();
        let mut effective: Vec<Option<u64>> = match shots {
            Some(s) => s.iter().map(|&v| Some(v)).collect(),
            None => vec![None; total],
        };
        // a delta hit's cached base distribution, merged with the fresh
        // top-up when its job completes
        let mut delta_base: Vec<Option<(Vec<f64>, u64)>> = vec![None; total];
        // per-chunk progress and per-(chunk, backend) usage accounting
        let mut remaining: Vec<usize> = bounds.iter().map(|&(s, e)| e - s).collect();
        let mut usage: Vec<Vec<BackendUsage>> =
            bounds.iter().map(|_| vec![BackendUsage::default(); entries.len()]).collect();

        let cancelled = AtomicBool::new(false);
        std::thread::scope(|scope| -> Result<(), CoreError> {
            let (event_tx, event_rx) = std::sync::mpsc::channel::<JobOutcome>();
            let workers = worker::spawn_workers(scope, entries, &event_tx, &cancelled);
            drop(event_tx); // workers hold their own clones

            let mut next_dispatch = 0usize; // next chunk to route + enqueue
            let mut next_deliver = 0usize; // next chunk owed to the sink
            let mut in_flight = 0usize;
            let loop_result = (|| -> Result<(), CoreError> {
                while next_deliver < bounds.len() {
                    // 1. dispatch while the in-flight window allows
                    if next_dispatch < bounds.len() && in_flight < window {
                        let chunk_index = next_dispatch;
                        let (start, end) = bounds[chunk_index];
                        let chunk_circuits = &batch.circuits[start..end];
                        let chunk_shots = shots.map(|s| &s[start..end]);
                        let assignment = {
                            let _span = tracer.span_under("phase.route", dispatch_span);
                            router::route(self.registry, chunk_circuits, chunk_shots)?
                        };
                        let mut per_entry: Vec<Vec<usize>> = vec![Vec::new(); entries.len()];
                        for (local, &entry) in assignment.iter().enumerate() {
                            let global = start + local;
                            if let Some(cache) = cache {
                                let requested = match shots {
                                    Some(s) => Some(s[global]),
                                    None => entries[entry].backend().shots_per_circuit(),
                                };
                                let lookup = {
                                    let _span = tracer.span_under("cache.lookup", dispatch_span);
                                    cache.lookup(&batch.circuits[global], requested)
                                };
                                match lookup {
                                    CacheLookup::Hit(dist) => {
                                        // served without touching a backend:
                                        // no job, and the allocated shots are
                                        // simply not spent
                                        outcomes[global] = Some(dist);
                                        remaining[chunk_index] -= 1;
                                        continue;
                                    }
                                    CacheLookup::Delta { base, base_shots, missing } => {
                                        // execute only the top-up, as its own
                                        // job so the explicit delta count
                                        // never disturbs sibling circuits
                                        delta_base[global] = Some((base, base_shots));
                                        effective[global] = Some(missing);
                                        stats.jobs_dispatched += 1;
                                        workers[entry].submit(Job {
                                            chunk: chunk_index,
                                            entry,
                                            circuits: vec![global],
                                            payload: vec![batch.circuits[global].clone()],
                                            shots: Some(vec![missing]),
                                            retry: false,
                                            dispatched_at: Instant::now(),
                                            span: dispatch_span,
                                        });
                                        continue;
                                    }
                                    CacheLookup::Miss => {}
                                }
                            }
                            per_entry[entry].push(global);
                        }
                        for (entry_index, globals) in per_entry.into_iter().enumerate() {
                            if globals.is_empty() {
                                continue;
                            }
                            let payload: Vec<Circuit> =
                                globals.iter().map(|&c| batch.circuits[c].clone()).collect();
                            let job_shots: Option<Vec<u64>> =
                                shots.map(|s| globals.iter().map(|&c| s[c]).collect());
                            stats.jobs_dispatched += 1;
                            workers[entry_index].submit(Job {
                                chunk: chunk_index,
                                entry: entry_index,
                                circuits: globals,
                                payload,
                                shots: job_shots,
                                retry: false,
                                dispatched_at: Instant::now(),
                                span: dispatch_span,
                            });
                        }
                        in_flight += 1;
                        next_dispatch += 1;
                        stats.max_in_flight_chunks = stats.max_in_flight_chunks.max(in_flight);
                        continue;
                    }

                    // 2. deliver the next chunk owed, once complete — always
                    // in order, so merge order is deterministic and a slow
                    // sink throttles step 1 through the window
                    if next_deliver < next_dispatch && remaining[next_deliver] == 0 {
                        let (start, end) = bounds[next_deliver];
                        let mut requested = 0u64;
                        let mut pairs: Vec<(usize, &crate::fragment::VariantKey)> = Vec::new();
                        for ((key, &circuit), &count) in batch
                            .unique_keys
                            .iter()
                            .zip(&batch.circuit_of_key)
                            .zip(&batch.key_count)
                        {
                            if (start..end).contains(&circuit) {
                                requested += count;
                                pairs.push((circuit, key));
                            }
                        }
                        let mut chunk =
                            ExecutionResults::new_accounted(requested, (end - start) as u64);
                        for (circuit, key) in pairs {
                            let dist = outcomes[circuit]
                                .as_ref()
                                .expect("delivered chunks are complete")
                                .clone();
                            chunk.insert((*key).clone(), dist);
                        }
                        // release the delivered distributions: with a window
                        // of w the dispatcher retains at most w chunks of
                        // undelivered results
                        for slot in &mut outcomes[start..end] {
                            *slot = None;
                        }
                        for (entry_index, entry_usage) in usage[next_deliver].iter().enumerate() {
                            if *entry_usage == BackendUsage::default() {
                                continue;
                            }
                            let mut entry_usage = entry_usage.clone();
                            entry_usage.backend = entries[entry_index].name().to_string();
                            chunk.record_usage(entry_usage);
                        }
                        // cumulative cache counters ride on every chunk so
                        // streaming consumers always see the newest snapshot
                        chunk.set_cache_stats(cache.map(|c| c.stats()));
                        let started = Instant::now();
                        {
                            let _span = tracer.span_under("phase.deliver", dispatch_span);
                            sink(chunk)?;
                        }
                        stats.deliver_wall += started.elapsed();
                        in_flight -= 1;
                        next_deliver += 1;
                        continue;
                    }

                    // 3. otherwise wait for a worker event
                    let JobOutcome { job, results, queue_wait, execute_wall } =
                        event_rx.recv().expect("outstanding jobs keep workers alive");
                    stats.queue_wait += queue_wait;
                    stats.execute_wall += execute_wall;
                    if tracer.enabled() {
                        // per-job latency histograms; merged across workers
                        // by the shared registry, and into fleet totals by
                        // snapshot merges
                        let metrics = crate::obs::metrics();
                        metrics.record_duration("dispatch.queue_wait_us", queue_wait);
                        metrics.record_duration("dispatch.execute_us", execute_wall);
                    }
                    if results.len() != job.circuits.len() {
                        return Err(CoreError::InvalidCutSolution {
                            reason: format!(
                                "backend '{}' returned {} results for a job of {}",
                                entries[job.entry].name(),
                                results.len(),
                                job.circuits.len()
                            ),
                        });
                    }
                    let mut job_clean = true;
                    for (&circuit, result) in job.circuits.iter().zip(results) {
                        match result {
                            Ok(dist) => {
                                // a circuit's allocated shots are spent
                                // exactly once: on the backend where it
                                // finally succeeded (exact backends spend 0,
                                // delta hits spend only the top-up)
                                let backend_shots =
                                    entries[job.entry].backend().shots_per_circuit();
                                let spent = match (backend_shots, effective[circuit]) {
                                    (None, _) => 0,
                                    (Some(_), Some(executed)) => executed,
                                    (Some(per), None) => per,
                                };
                                let dist = match delta_base[circuit].take() {
                                    Some(_) if backend_shots.is_none() => {
                                        // a retry re-routed the top-up onto
                                        // an exact backend: the fresh result
                                        // beats any sampled merge
                                        if let Some(cache) = cache {
                                            let _span =
                                                tracer.span_under("cache.store", dispatch_span);
                                            cache.store(&batch.circuits[circuit], &dist, None);
                                        }
                                        dist
                                    }
                                    Some((base, base_shots)) => {
                                        let merged =
                                            merge_distributions(&base, base_shots, &dist, spent);
                                        if let Some(cache) = cache {
                                            let _span =
                                                tracer.span_under("cache.store", dispatch_span);
                                            cache.store(
                                                &batch.circuits[circuit],
                                                &merged,
                                                Some(base_shots + spent),
                                            );
                                        }
                                        merged
                                    }
                                    None => {
                                        if let Some(cache) = cache {
                                            let _span =
                                                tracer.span_under("cache.store", dispatch_span);
                                            let stored = backend_shots.is_some().then_some(spent);
                                            cache.store(&batch.circuits[circuit], &dist, stored);
                                        }
                                        dist
                                    }
                                };
                                let entry_usage = &mut usage[job.chunk][job.entry];
                                entry_usage.circuits += 1;
                                entry_usage.shots += spent;
                                if job.retry {
                                    entry_usage.retries += 1;
                                }
                                outcomes[circuit] = Some(dist);
                                remaining[job.chunk] -= 1;
                            }
                            Err(error) => {
                                job_clean = false;
                                stats.failures += 1;
                                usage[job.chunk][job.entry].failures += 1;
                                failures_of[circuit] += 1;
                                if !excluded[circuit].contains(&job.entry) {
                                    excluded[circuit].push(job.entry);
                                }
                                if self.policy.max_retries == 0 {
                                    // retries disabled: behave like the
                                    // blocking scheduler and surface the
                                    // first backend error unwrapped
                                    return Err(error);
                                }
                                if failures_of[circuit] > self.policy.max_retries {
                                    return Err(CoreError::RetriesExhausted {
                                        attempts: failures_of[circuit],
                                        last: Box::new(error),
                                    });
                                }
                                let (retry_entry, requeued) = router::route_retry(
                                    self.registry,
                                    &batch.circuits[circuit],
                                    &excluded[circuit],
                                )?;
                                if requeued {
                                    // every compatible backend failed once:
                                    // waive the exclusions and hope the
                                    // faults were transient
                                    excluded[circuit].clear();
                                    stats.jobs_requeued += 1;
                                }
                                stats.jobs_retried += 1;
                                workers[retry_entry].submit(Job {
                                    chunk: job.chunk,
                                    entry: retry_entry,
                                    circuits: vec![circuit],
                                    payload: vec![batch.circuits[circuit].clone()],
                                    shots: effective[circuit].map(|e| vec![e]),
                                    retry: true,
                                    dispatched_at: Instant::now(),
                                    span: dispatch_span,
                                });
                            }
                        }
                    }
                    if job_clean {
                        stats.jobs_completed += 1;
                    }
                }
                Ok(())
            })();
            if loop_result.is_err() {
                // let workers drain their queues without executing, so the
                // error returns promptly
                cancelled.store(true, Ordering::Relaxed);
            }
            loop_result
        })?;
        Ok(stats)
    }
}
