//! The QRCC ILP model (paper §4.2).
//!
//! The model assigns every DAG node to a subcircuit (variables (5)), lets
//! cuttable two-qubit gates be gate-cut with their two halves in different
//! subcircuits (variables (7)–(8), constraints (10)), derives wire cuts from
//! membership changes along each wire (the linearised form of constraints
//! (13)–(14)), and bounds the number of *live* wires of each subcircuit at
//! every layer by the device size — the qubit-reuse-aware capacity constraint
//! (11). The objective is the paper's Eq. (18): a δ-weighted combination of
//! the linearised post-processing cost (15) and the fidelity-balancing term
//! (16)–(17).
//!
//! The model is solved with the self-contained branch-and-bound solver of
//! [`qrcc_ilp`], warm-started by the heuristic solution, so it is exact on
//! small instances and falls back gracefully on larger ones.

use crate::spec::CutSolution;
use crate::QrccConfig;
use qrcc_circuit::dag::{CircuitDag, NodeId};
use qrcc_ilp::{solver, LinExpr, Model, SolverConfig, VarId};
use std::collections::HashMap;
use std::time::Duration;

/// Variable handles of a built QRCC model, needed to warm-start the solver
/// and to read a [`CutSolution`] back out of an ILP solution.
#[derive(Debug, Clone)]
pub struct QrccModel {
    /// The underlying ILP.
    pub ilp: Model,
    /// Number of subcircuits the model was built for.
    pub num_subcircuits: usize,
    /// `assign[node][c]` — node is in subcircuit `c`.
    assign: Vec<Vec<VarId>>,
    /// `gate_cut[node]` for cuttable two-qubit gates.
    gate_cut: HashMap<NodeId, VarId>,
    /// `gate_top[node][c]`, `gate_bottom[node][c]` for cuttable gates.
    gate_top: HashMap<NodeId, Vec<VarId>>,
    gate_bottom: HashMap<NodeId, Vec<VarId>>,
    /// Wire-cut indicator per consecutive node pair `(wire, from, to)`.
    wire_cut: HashMap<(usize, NodeId, NodeId), VarId>,
}

impl QrccModel {
    /// Builds the ILP for cutting `dag` into exactly `num_subcircuits`
    /// subcircuits under `config`.
    pub fn build(dag: &CircuitDag, config: &QrccConfig, num_subcircuits: usize) -> Self {
        let mut ilp = Model::new();
        let num_nodes = dag.nodes().len();
        let c_range = 0..num_subcircuits;

        // ---- assignment variables -------------------------------------
        let assign: Vec<Vec<VarId>> = (0..num_nodes)
            .map(|x| c_range.clone().map(|c| ilp.add_binary(format!("a_{x}_{c}"))).collect())
            .collect();

        let mut gate_cut = HashMap::new();
        let mut gate_top: HashMap<NodeId, Vec<VarId>> = HashMap::new();
        let mut gate_bottom: HashMap<NodeId, Vec<VarId>> = HashMap::new();
        if config.gate_cuts_enabled {
            for (x, node) in dag.nodes().iter().enumerate() {
                let cuttable = node
                    .op
                    .as_gate()
                    .map(|g| g.is_gate_cuttable() && node.op.is_two_qubit_gate())
                    .unwrap_or(false);
                if cuttable {
                    gate_cut.insert(x, ilp.add_binary(format!("g_{x}")));
                    gate_top.insert(
                        x,
                        c_range.clone().map(|c| ilp.add_binary(format!("gt_{x}_{c}"))).collect(),
                    );
                    gate_bottom.insert(
                        x,
                        c_range.clone().map(|c| ilp.add_binary(format!("gb_{x}_{c}"))).collect(),
                    );
                }
            }
        }

        // ---- membership constraints (paper Eq. (10)) --------------------
        for x in 0..num_nodes {
            let mut expr = LinExpr::new();
            for &a in &assign[x] {
                expr.add_term(1.0, a);
            }
            if let Some(&g) = gate_cut.get(&x) {
                expr.add_term(1.0, g);
            }
            ilp.add_eq(expr, 1.0);
            if let Some(&g) = gate_cut.get(&x) {
                let mut top_sum = LinExpr::new();
                for &t in &gate_top[&x] {
                    top_sum.add_term(1.0, t);
                }
                top_sum.add_term(-1.0, g);
                ilp.add_eq(top_sum, 0.0);
                let mut bottom_sum = LinExpr::new();
                for &b in &gate_bottom[&x] {
                    bottom_sum.add_term(1.0, b);
                }
                bottom_sum.add_term(-1.0, g);
                ilp.add_eq(bottom_sum, 0.0);
                for c in c_range.clone() {
                    ilp.add_le(
                        LinExpr::new().term(1.0, gate_top[&x][c]).term(1.0, gate_bottom[&x][c]),
                        1.0,
                    );
                }
            }
        }

        // Membership of node x on wire q in subcircuit c, as a linear
        // expression over the variables above.
        let membership = |x: NodeId, qubit_slot: usize, c: usize| -> LinExpr {
            let mut expr = LinExpr::new().term(1.0, assign[x][c]);
            if gate_cut.contains_key(&x) {
                let halves = if qubit_slot == 0 { &gate_top } else { &gate_bottom };
                expr.add_term(1.0, halves[&x][c]);
            }
            expr
        };
        let slot_of = |x: NodeId, wire: usize| -> usize {
            let qs = dag.node(x).op.qubits();
            qs.iter().position(|q| q.index() == wire).expect("node touches wire")
        };

        // ---- wire-cut indicators (paper Eqs. (13)-(14), linearised) ------
        let mut wire_cut = HashMap::new();
        for wire in 0..dag.num_qubits() {
            let nodes = dag.wire(qrcc_circuit::QubitId::new(wire));
            for pair in nodes.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let w = ilp.add_binary(format!("w_{wire}_{a}_{b}"));
                wire_cut.insert((wire, a, b), w);
                for c in c_range.clone() {
                    let ma = membership(a, slot_of(a, wire), c);
                    let mb = membership(b, slot_of(b, wire), c);
                    // w >= ma - mb  and  w >= mb - ma
                    let mut diff = LinExpr::new().term(-1.0, w);
                    diff.add_scaled(1.0, &ma);
                    diff.add_scaled(-1.0, &mb);
                    ilp.add_le(diff, 0.0);
                    let mut diff2 = LinExpr::new().term(-1.0, w);
                    diff2.add_scaled(1.0, &mb);
                    diff2.add_scaled(-1.0, &ma);
                    ilp.add_le(diff2, 0.0);
                }
            }
        }

        // ---- reuse-aware capacity constraints (paper Eq. (11)) -----------
        // For every layer l and subcircuit c, the number of live wires of c
        // at l must not exceed D. A wire contributes its node's membership
        // when it has a node at layer l, and an auxiliary "bridge" variable
        // when l falls strictly between two of its nodes (the bridge is
        // forced to 1 only when both neighbouring nodes are in c).
        let num_layers = dag.num_layers();
        for c in c_range.clone() {
            for layer in 0..num_layers {
                let mut usage = LinExpr::new();
                for wire in 0..dag.num_qubits() {
                    let qubit = qrcc_circuit::QubitId::new(wire);
                    let nodes = dag.wire(qubit);
                    if nodes.is_empty() {
                        continue;
                    }
                    if let Some(&at) = nodes.iter().find(|&&x| dag.node(x).layer == layer) {
                        usage.add_scaled(1.0, &membership(at, slot_of(at, wire), c));
                        continue;
                    }
                    // find the neighbouring nodes around this layer
                    let before = nodes.iter().rev().find(|&&x| dag.node(x).layer < layer);
                    let after = nodes.iter().find(|&&x| dag.node(x).layer > layer);
                    if let (Some(&a), Some(&b)) = (before, after) {
                        let z = ilp.add_binary(format!("live_{wire}_{layer}_{c}"));
                        // z >= ma + mb - 1
                        let mut expr = LinExpr::new().term(-1.0, z);
                        expr.add_scaled(1.0, &membership(a, slot_of(a, wire), c));
                        expr.add_scaled(1.0, &membership(b, slot_of(b, wire), c));
                        ilp.add_le(expr, 1.0);
                        usage.add_term(1.0, z);
                    }
                }
                if !usage.is_empty() {
                    ilp.add_le(usage, config.device_size as f64);
                }
            }
        }

        // ---- cut budgets (paper Eq. (12)) ---------------------------------
        let mut total_wire = LinExpr::new();
        for &w in wire_cut.values() {
            total_wire.add_term(1.0, w);
        }
        if !total_wire.is_empty() {
            ilp.add_le(total_wire.clone(), config.max_wire_cuts as f64);
        }
        let mut total_gate = LinExpr::new();
        for &g in gate_cut.values() {
            total_gate.add_term(1.0, g);
        }
        if !total_gate.is_empty() {
            ilp.add_le(total_gate.clone(), config.max_gate_cuts as f64);
        }

        // ---- fidelity balancing (paper Eqs. (16)-(17)) --------------------
        let two_qubit_bound =
            dag.nodes().iter().filter(|n| n.op.is_two_qubit_gate()).count() as f64;
        let te = ilp.add_continuous("te", 0.0, two_qubit_bound.max(1.0));
        for c in c_range {
            let mut expr = LinExpr::new().term(-1.0, te);
            for (x, node) in dag.nodes().iter().enumerate() {
                if node.op.is_two_qubit_gate() {
                    expr.add_term(1.0, assign[x][c]);
                }
            }
            ilp.add_le(expr, 0.0);
        }

        // ---- objective (paper Eqs. (15), (18)) -----------------------------
        let mut objective = LinExpr::new();
        objective.add_scaled(config.delta * crate::config::ALPHA_WIRE_CUT, &total_wire);
        objective.add_scaled(config.delta * crate::config::BETA_GATE_CUT, &total_gate);
        if config.delta < 1.0 {
            objective.add_term((1.0 - config.delta) * 0.75, te);
            objective.add_constant((1.0 - config.delta) * 23.0);
        }
        ilp.minimize(objective);

        QrccModel { ilp, num_subcircuits, assign, gate_cut, gate_top, gate_bottom, wire_cut }
    }

    /// Encodes a [`CutSolution`] as a variable assignment usable as a warm
    /// start for the solver.
    pub fn warm_start(&self, solution: &CutSolution, dag: &CircuitDag) -> Vec<f64> {
        let mut values = vec![0.0; self.ilp.num_vars()];
        for (x, &sub) in solution.assignment.iter().enumerate() {
            if solution.is_gate_cut(x) {
                continue;
            }
            values[self.assign[x][sub].index()] = 1.0;
        }
        for (i, &x) in solution.gate_cuts.iter().enumerate() {
            let (top, bottom) = solution.gate_cut_assignment[i];
            if let Some(&g) = self.gate_cut.get(&x) {
                values[g.index()] = 1.0;
                values[self.gate_top[&x][top].index()] = 1.0;
                values[self.gate_bottom[&x][bottom].index()] = 1.0;
            }
        }
        // derived wire cuts
        for cut in solution.wire_cuts(dag) {
            if let Some(&w) = self.wire_cut.get(&(cut.qubit.index(), cut.from, cut.to)) {
                values[w.index()] = 1.0;
            }
        }
        // live-wire bridges and TE: set every remaining auxiliary variable to
        // its implied value by walking the constraints is overkill; instead
        // set bridges to 1 whenever both neighbours are in the subcircuit and
        // TE to the true maximum, both computed from the solution.
        for wire in 0..dag.num_qubits() {
            let qubit = qrcc_circuit::QubitId::new(wire);
            let nodes = dag.wire(qubit).to_vec();
            for pair in nodes.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let sa = solution.membership(dag, a, qubit);
                let sb = solution.membership(dag, b, qubit);
                if sa == sb {
                    for layer in dag.node(a).layer + 1..dag.node(b).layer {
                        if let Some(var) = self.find_bridge(wire, layer, sa) {
                            values[var.index()] = 1.0;
                        }
                    }
                }
            }
        }
        let te_value = solution.two_qubit_gate_counts(dag).into_iter().max().unwrap_or(0) as f64;
        // TE is the last continuous variable added named "te".
        for var in self.ilp.vars() {
            if self.ilp.var_name(var) == "te" {
                values[var.index()] = te_value;
            }
        }
        values
    }

    fn find_bridge(&self, wire: usize, layer: usize, sub: usize) -> Option<VarId> {
        let name = format!("live_{wire}_{layer}_{sub}");
        self.ilp.vars().find(|&v| self.ilp.var_name(v) == name)
    }

    /// Decodes an ILP solution back into a [`CutSolution`].
    pub fn extract(&self, solution: &qrcc_ilp::Solution) -> CutSolution {
        let num_nodes = self.assign.len();
        let mut assignment = vec![0usize; num_nodes];
        let mut gate_cuts = Vec::new();
        let mut gate_cut_assignment = Vec::new();
        for (x, slot) in assignment.iter_mut().enumerate() {
            if let Some(&g) = self.gate_cut.get(&x) {
                if solution.is_one(g) {
                    let top = (0..self.num_subcircuits)
                        .find(|&c| solution.is_one(self.gate_top[&x][c]))
                        .unwrap_or(0);
                    let bottom = (0..self.num_subcircuits)
                        .find(|&c| solution.is_one(self.gate_bottom[&x][c]))
                        .unwrap_or(if top == 0 { 1 } else { 0 });
                    gate_cuts.push(x);
                    gate_cut_assignment.push((top, bottom));
                    *slot = top;
                    continue;
                }
            }
            *slot = (0..self.num_subcircuits)
                .find(|&c| solution.is_one(self.assign[x][c]))
                .unwrap_or(0);
        }
        CutSolution {
            num_subcircuits: self.num_subcircuits,
            assignment,
            gate_cuts,
            gate_cut_assignment,
        }
    }
}

/// Builds and solves the QRCC ILP for the same subcircuit count as the warm
/// solution, returning a refined solution if the solver produced one.
///
/// Returns `None` when the solver fails (time limit with no feasible point,
/// infeasible due to the exact layer-wise capacity being stricter than the
/// heuristic's interval accounting, ...); callers keep the heuristic solution
/// in that case.
pub fn refine_with_ilp(
    dag: &CircuitDag,
    warm: &CutSolution,
    config: &QrccConfig,
) -> Option<CutSolution> {
    let model = QrccModel::build(dag, config, warm.num_subcircuits.max(2));
    let warm_values = model.warm_start(warm, dag);
    let solver_config =
        SolverConfig { time_limit: config.ilp_time_limit, ..SolverConfig::default() };
    let solution =
        solver::solve_with_warm_start(&model.ilp, &solver_config, Some(&warm_values)).ok()?;
    let extracted = model.extract(&solution);
    extracted.validate(dag).ok()?;
    Some(extracted)
}

/// Builds and solves the QRCC model from scratch (no warm start), returning
/// the cut solution, the solver status and the wall-clock time. Used by the
/// search-time comparison experiment (Table 4).
pub fn solve_qrcc_model(
    dag: &CircuitDag,
    config: &QrccConfig,
    num_subcircuits: usize,
    time_limit: Duration,
) -> Option<(CutSolution, qrcc_ilp::SolveStatus, Duration)> {
    let start = std::time::Instant::now();
    let model = QrccModel::build(dag, config, num_subcircuits);
    let solver_config = SolverConfig { time_limit, ..SolverConfig::default() };
    let solution = solver::solve(&model.ilp, &solver_config).ok()?;
    let status = solution.status();
    let extracted = model.extract(&solution);
    Some((extracted, status, start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic;
    use qrcc_circuit::Circuit;

    fn ghz_chain(n: usize) -> CircuitDag {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        CircuitDag::from_circuit(&c)
    }

    #[test]
    fn model_size_scales_with_nodes_and_subcircuits() {
        let dag = ghz_chain(4);
        let config = QrccConfig::new(3);
        let model = QrccModel::build(&dag, &config, 2);
        // 4 nodes x 2 subcircuits assignment vars at minimum
        assert!(model.ilp.num_vars() >= 8);
        assert!(model.ilp.num_constraints() > 4);
    }

    #[test]
    fn ilp_finds_reuse_only_solution_for_ghz_chain() {
        let dag = ghz_chain(5);
        let config = QrccConfig::new(3);
        let (solution, status, _) =
            solve_qrcc_model(&dag, &config, 2, Duration::from_secs(20)).expect("solvable");
        assert_eq!(status, qrcc_ilp::SolveStatus::Optimal);
        solution.validate(&dag).unwrap();
        let metrics = solution.metrics(&dag, true);
        // With qubit reuse a linear GHZ chain fits a 3-qubit device without
        // any cut at all (the exact optimum), which the ILP should discover.
        assert_eq!(metrics.wire_cuts, 0, "reuse makes the chain fit without cuts");
        assert!(metrics.subcircuit_widths.iter().all(|&w| w <= 3));
    }

    #[test]
    fn warm_start_round_trips_through_the_model() {
        let dag = ghz_chain(5);
        let config = QrccConfig::new(3);
        let heuristic_solution = heuristic::search_with_subcircuits(&dag, &config, 2, 20);
        let model = QrccModel::build(&dag, &config, 2);
        let warm = model.warm_start(&heuristic_solution, &dag);
        assert!(
            model.ilp.is_feasible(&warm, 1e-6),
            "heuristic warm start must satisfy the ILP constraints"
        );
    }

    #[test]
    fn refine_never_returns_invalid_solutions() {
        let dag = ghz_chain(6);
        let config = QrccConfig::new(4).with_ilp_time_limit(Duration::from_secs(5));
        let warm = heuristic::search_with_subcircuits(&dag, &config, 2, 20);
        if let Some(refined) = refine_with_ilp(&dag, &warm, &config) {
            refined.validate(&dag).unwrap();
        }
    }

    #[test]
    fn gate_cut_variables_are_created_only_when_enabled() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1);
        let dag = CircuitDag::from_circuit(&c);
        let without = QrccModel::build(&dag, &QrccConfig::new(1), 2);
        let with = QrccModel::build(&dag, &QrccConfig::new(1).with_gate_cuts(true), 2);
        assert!(with.ilp.num_vars() > without.ilp.num_vars());
        assert!(without.gate_cut.is_empty());
        assert_eq!(with.gate_cut.len(), 1);
    }
}
