//! Execution backends for fragment variants.
//!
//! Reconstruction only ever needs the *distribution over classical bits* of
//! each executed variant, so a backend is a single method. Two backends are
//! provided: an exact one (state-vector / measurement-branch enumeration,
//! used to verify reconstruction identities) and a shots-based one running on
//! a simulated [`Device`] (possibly noisy — the Table 3 configuration).

use crate::CoreError;
use parking_lot::Mutex;
use qrcc_circuit::Circuit;
use qrcc_sim::branching::classical_distribution;
use qrcc_sim::device::Device;
use std::collections::HashMap;

/// Executes fragment-variant circuits and reports the probability
/// distribution over their classical bits (length `2^num_clbits`).
pub trait ExecutionBackend {
    /// The distribution over the circuit's classical bits.
    ///
    /// # Errors
    ///
    /// Implementations return [`CoreError::Simulation`] when the circuit
    /// cannot be executed (too wide, no measurements, ...).
    fn distribution(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError>;

    /// Number of circuits executed so far (for instance accounting).
    fn executions(&self) -> u64;
}

/// Exact backend: enumerates measurement branches with a state-vector
/// simulator. Intended for verification and small fragments.
#[derive(Debug, Default)]
pub struct ExactBackend {
    count: Mutex<u64>,
}

impl ExactBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ExecutionBackend for ExactBackend {
    fn distribution(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
        *self.count.lock() += 1;
        Ok(classical_distribution(circuit)?)
    }

    fn executions(&self) -> u64 {
        *self.count.lock()
    }
}

/// Shots backend: runs each variant on a simulated [`Device`] (optionally
/// noisy) with a fixed shot budget and reports the empirical distribution.
#[derive(Debug)]
pub struct ShotsBackend {
    device: Device,
    shots: u64,
}

impl ShotsBackend {
    /// Creates a backend running `shots` shots per variant on `device`.
    pub fn new(device: Device, shots: u64) -> Self {
        ShotsBackend { device, shots }
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Shots per variant.
    pub fn shots(&self) -> u64 {
        self.shots
    }
}

impl ExecutionBackend for ShotsBackend {
    fn distribution(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
        let counts = self.device.execute(circuit, self.shots)?;
        Ok(counts.probability_vector())
    }

    fn executions(&self) -> u64 {
        self.device.executions()
    }
}

/// A memoising wrapper: identical variant circuits are executed once.
///
/// The expectation reconstructor evaluates one Pauli term at a time; terms
/// that share a measurement-basis signature reuse the cached distributions
/// instead of re-running the fragment.
pub struct CachingBackend<B> {
    inner: B,
    cache: Mutex<HashMap<String, Vec<f64>>>,
}

impl<B: ExecutionBackend> CachingBackend<B> {
    /// Wraps a backend with a cache.
    pub fn new(inner: B) -> Self {
        CachingBackend { inner, cache: Mutex::new(HashMap::new()) }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: ExecutionBackend> ExecutionBackend for CachingBackend<B> {
    fn distribution(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
        let key = qrcc_circuit::qasm::to_qasm(circuit);
        if let Some(hit) = self.cache.lock().get(&key) {
            return Ok(hit.clone());
        }
        let dist = self.inner.distribution(circuit)?;
        self.cache.lock().insert(key, dist.clone());
        Ok(dist)
    }

    fn executions(&self) -> u64 {
        self.inner.executions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrcc_sim::device::DeviceConfig;

    fn bell_with_measures() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    #[test]
    fn exact_backend_returns_exact_distribution() {
        let backend = ExactBackend::new();
        let dist = backend.distribution(&bell_with_measures()).unwrap();
        assert!((dist[0b00] - 0.5).abs() < 1e-12);
        assert!((dist[0b11] - 0.5).abs() < 1e-12);
        assert_eq!(backend.executions(), 1);
    }

    #[test]
    fn shots_backend_approximates_the_distribution() {
        let backend = ShotsBackend::new(Device::new(DeviceConfig::ideal(2).with_seed(7)), 20_000);
        let dist = backend.distribution(&bell_with_measures()).unwrap();
        assert!((dist[0b00] - 0.5).abs() < 0.02);
        assert!((dist[0b01]).abs() < 1e-12);
        assert_eq!(backend.shots(), 20_000);
    }

    #[test]
    fn caching_backend_deduplicates_executions() {
        let backend = CachingBackend::new(ExactBackend::new());
        let c = bell_with_measures();
        backend.distribution(&c).unwrap();
        backend.distribution(&c).unwrap();
        assert_eq!(backend.executions(), 1);
        // a different circuit is executed separately
        let mut other = Circuit::new(1);
        other.h(0).measure(0, 0);
        backend.distribution(&other).unwrap();
        assert_eq!(backend.executions(), 2);
    }

    #[test]
    fn width_violations_surface_as_errors() {
        let backend = ShotsBackend::new(Device::ideal(1), 10);
        let err = backend.distribution(&bell_with_measures());
        assert!(matches!(err, Err(CoreError::Simulation(_))));
    }
}
