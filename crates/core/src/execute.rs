//! Batch-first execution layer for fragment variants.
//!
//! Execution follows the **enumerate → dedup → route → dispatch → fold →
//! contract** protocol:
//!
//! 1. **Enumerate** — reconstructors list every
//!    [`VariantRequest`](crate::fragment::VariantRequest) they need as pure
//!    data (a structural [`VariantKey`]: fragment id, init states, cut bases,
//!    gate-cut instances, output bases), optionally tagged with a
//!    reconstruction weight. No circuits are built yet.
//! 2. **Deduplicate** — duplicate keys collapse, then structurally identical
//!    circuits collapse too (a 64-bit
//!    [`structural hash`](qrcc_circuit::Circuit::structural_hash) catches e.g.
//!    gate-cut instances 3/4, which instantiate identically on the measuring
//!    half). The surviving circuits form the batch.
//! 3. **Route** *(scheduled runs)* — a
//!    [`Scheduler`](crate::schedule::Scheduler) places each deduplicated
//!    circuit on a compatible backend of a
//!    [`DeviceRegistry`](crate::schedule::DeviceRegistry) (heterogeneous
//!    qubit counts, noise, shot costs) and splits a global shot budget
//!    across the batch by reconstruction-variance weight (ShotQC-style).
//!    The single-backend [`execute_requests`] path skips routing: the whole
//!    batch goes to one backend as **one**
//!    [`ExecutionBackend::run_batch`] / `run_batch_with_shots` call.
//! 4. **Dispatch** — the [`dispatch`](crate::dispatch) event loop drives the
//!    routed sub-batches through one worker thread per backend, keeping at
//!    most [`SchedulePolicy::max_in_flight_chunks`] chunks undelivered (a
//!    slow consumer exerts backpressure on dispatch) and re-routing jobs
//!    whose backend fails to another compatible backend with the failer
//!    excluded, up to [`SchedulePolicy::max_retries`] times. Results merge
//!    into [`ExecutionResults`] via the structural key
//!    (`ExecutionResults::extend`), which also accumulates per-backend
//!    routing, shots-spent, retry and failure accounting.
//! 5. **Fold** — each delivered chunk folds incrementally into per-fragment
//!    cut tensors
//!    ([`ProbabilityAccumulator`](crate::reconstruct::ProbabilityAccumulator) /
//!    [`ExpectationAccumulator`](crate::reconstruct::ExpectationAccumulator)),
//!    so tensor building overlaps device execution; blocking consumers
//!    instead read distributions out of the merged [`ExecutionResults`] by
//!    key, never talking to a backend directly. One batch serves the
//!    probability reconstruction *and* any number of expectation
//!    observables.
//! 6. **Contract** — once every variant has arrived, only the final
//!    contraction (dense mixed-radix loop or pairwise fragment-tensor
//!    contraction) remains; see [`crate::reconstruct`].
//!
//! [`SchedulePolicy::max_in_flight_chunks`]: crate::SchedulePolicy::max_in_flight_chunks
//! [`SchedulePolicy::max_retries`]: crate::SchedulePolicy::max_retries
//!
//! Simple backends only implement the per-circuit [`ExecutionBackend::run_one`];
//! the default `run_batch` loops over it serially and the default
//! `run_batch_with_shots` ignores the per-circuit shot counts (exact
//! backends have no sampling noise). [`CachingBackend`] remains as a
//! memoising wrapper for callers that bypass the batch path; it is a thin
//! adapter over the shot-aware [`ResultCache`](crate::cache::ResultCache),
//! which the scheduled dispatch path consults directly (see
//! [`DeviceRegistry::with_result_cache`](crate::schedule::DeviceRegistry::with_result_cache)).

use crate::cache::{merge_distributions, CacheLookup, CacheStats, ResultCache, ResultCachePolicy};
use crate::fragment::{FragmentSet, VariantKey, VariantRequest};
use crate::CoreError;
use parking_lot::Mutex;
use qrcc_circuit::Circuit;
use qrcc_sim::branching::classical_distribution;
use qrcc_sim::compile::{interpreted_forced_by_env, CompileStats, KernelCache};
use qrcc_sim::device::Device;
use rayon::prelude::*;
use std::collections::HashMap;

/// Executes fragment-variant circuits and reports the probability
/// distribution over their classical bits (length `2^num_clbits`).
///
/// Backends must be [`Sync`]: batches are executed with data parallelism, and
/// future dispatchers (async, remote, multi-backend) share the same bound.
pub trait ExecutionBackend: Sync {
    /// Executes one circuit and returns the distribution over its classical
    /// bits.
    ///
    /// # Errors
    ///
    /// Implementations return [`CoreError::Simulation`] when the circuit
    /// cannot be executed (too wide, no measurements, ...).
    fn run_one(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError>;

    /// Executes a batch of circuits, returning one result per input circuit
    /// in order.
    ///
    /// The default implementation loops over [`ExecutionBackend::run_one`]
    /// serially, so simple backends stay one method; parallel and remote
    /// backends override it.
    fn run_batch(&self, circuits: &[Circuit]) -> Vec<Result<Vec<f64>, CoreError>> {
        circuits.iter().map(|c| self.run_one(c)).collect()
    }

    /// Executes a batch with an explicit per-circuit shot count, as assigned
    /// by a [`ShotAllocator`](crate::schedule::ShotAllocator).
    ///
    /// The default implementation ignores the shot counts and delegates to
    /// [`ExecutionBackend::run_batch`] — correct for exact backends, whose
    /// output has no sampling noise. Sampling backends override it
    /// ([`ShotsBackend`] runs circuit `i` with `shots[i]` shots; a circuit
    /// with zero shots fails with the backend's zero-shot error and consumes
    /// no sampling stream).
    fn run_batch_with_shots(
        &self,
        circuits: &[Circuit],
        shots: &[u64],
    ) -> Vec<Result<Vec<f64>, CoreError>> {
        debug_assert_eq!(circuits.len(), shots.len(), "one shot count per circuit");
        self.run_batch(circuits)
    }

    /// The widest circuit this backend can run, or `None` when unbounded.
    /// The scheduler's router only places circuits on backends that fit.
    fn max_qubits(&self) -> Option<usize> {
        None
    }

    /// Whether this backend can run `circuit` — the router's placement
    /// predicate. The default checks only [`ExecutionBackend::max_qubits`];
    /// device-backed backends refine it (e.g. mid-circuit measurement
    /// support).
    fn can_run(&self, circuit: &Circuit) -> bool {
        self.max_qubits().is_none_or(|max| circuit.num_qubits() <= max)
    }

    /// The backend's default shot count per circuit, or `None` for exact
    /// (noise-free) backends. Used for shots-spent accounting and as the
    /// router's load estimate when no global budget overrides it.
    fn shots_per_circuit(&self) -> Option<u64> {
        None
    }

    /// A short human-readable label for accounting
    /// ([`ExecutionResults::routing`]).
    fn label(&self) -> String {
        "backend".into()
    }

    /// Number of circuits executed so far (for instance accounting).
    fn executions(&self) -> u64;

    /// Cumulative kernel-compilation statistics of the backend's simulator,
    /// or `None` when the backend interprets gate-by-gate (or is not a
    /// simulator at all). Backends that run the compiled kernel path
    /// ([`ExactBackend`], [`ShotsBackend`]) report their
    /// [`KernelCache`](qrcc_sim::compile::KernelCache) aggregate here; the
    /// default keeps non-simulating backends at `None`.
    fn compile_stats(&self) -> Option<CompileStats> {
        None
    }

    /// Cumulative result-cache counters, when the backend fronts a
    /// [`ResultCache`](crate::cache::ResultCache) ([`CachingBackend`] does;
    /// most backends execute everything and report `None`).
    fn result_cache_stats(&self) -> Option<CacheStats> {
        None
    }
}

/// How much work one backend performed for a batch: circuits routed to it,
/// shots spent there (0 for exact backends), and the dispatch-layer
/// lifecycle counters (jobs that failed here, circuits that landed here as
/// retries after failing elsewhere).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BackendUsage {
    /// The backend's label (registry name, or [`ExecutionBackend::label`]).
    pub backend: String,
    /// Circuits executed successfully on this backend.
    pub circuits: u64,
    /// Total shots spent on this backend (0 when the backend is exact).
    pub shots: u64,
    /// Circuit executions that **failed** on this backend (each one either
    /// became a retry elsewhere or exhausted the retry budget).
    pub failures: u64,
    /// Successful circuit executions that reached this backend as a
    /// **retry** after failing on another backend.
    pub retries: u64,
}

impl BackendUsage {
    /// Merges this usage into a per-label list: an existing entry with the
    /// same label accumulates, otherwise the usage is appended. The one
    /// definition of "merge usage by label", shared by
    /// [`ExecutionResults::record_usage`] and the scheduler's report.
    pub(crate) fn merge_into(self, list: &mut Vec<BackendUsage>) {
        match list.iter_mut().find(|u| u.backend == self.backend) {
            Some(existing) => {
                existing.circuits += self.circuits;
                existing.shots += self.shots;
                existing.failures += self.failures;
                existing.retries += self.retries;
            }
            None => list.push(self),
        }
    }
}

/// Distributions of an executed batch, keyed by structural [`VariantKey`].
///
/// Produced by [`execute_requests`] / the
/// [`Scheduler`](crate::schedule::Scheduler) and consumed by the
/// reconstructors. Also records the dedup accounting — how many variants
/// were requested, how many unique keys survived, how many circuits were
/// actually executed after structural dedup — and the per-backend routing
/// stats ([`ExecutionResults::routing`]).
#[derive(Debug, Clone, Default)]
pub struct ExecutionResults {
    distributions: HashMap<VariantKey, Vec<f64>>,
    requested: u64,
    executed: u64,
    routing: Vec<BackendUsage>,
    kernel_stats: Option<CompileStats>,
    cache_stats: Option<CacheStats>,
}

impl ExecutionResults {
    /// An empty result set carrying only dedup accounting — the scheduler
    /// fills it key by key as a chunk's backends return.
    pub(crate) fn new_accounted(requested: u64, executed: u64) -> Self {
        ExecutionResults {
            distributions: HashMap::new(),
            requested,
            executed,
            routing: Vec::new(),
            kernel_stats: None,
            cache_stats: None,
        }
    }

    /// Stores one key's distribution (later inserts win).
    pub(crate) fn insert(&mut self, key: VariantKey, distribution: Vec<f64>) {
        self.distributions.insert(key, distribution);
    }

    /// The distribution for `key`, or an error naming the missing fragment —
    /// the consume-phase signal that the enumerate phase forgot a variant.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingVariant`] when `key` was not part of the
    /// executed batch.
    pub fn distribution(&self, key: &VariantKey) -> Result<&[f64], CoreError> {
        self.distributions
            .get(key)
            .map(Vec::as_slice)
            .ok_or(CoreError::MissingVariant { fragment: key.fragment })
    }

    /// The distribution for `key`, if present.
    pub fn get(&self, key: &VariantKey) -> Option<&[f64]> {
        self.distributions.get(key).map(Vec::as_slice)
    }

    /// Whether the batch contains `key`.
    pub fn contains(&self, key: &VariantKey) -> bool {
        self.distributions.contains_key(key)
    }

    /// Number of distinct variant keys held.
    pub fn unique_variants(&self) -> usize {
        self.distributions.len()
    }

    /// Total number of variant requests that went into this batch, including
    /// duplicates collapsed by dedup.
    pub fn requested(&self) -> u64 {
        self.requested
    }

    /// Number of circuits actually executed (after key dedup *and*
    /// structural-circuit dedup).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Whether no variants are held.
    pub fn is_empty(&self) -> bool {
        self.distributions.is_empty()
    }

    /// Iterates over the held `(key, distribution)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&VariantKey, &[f64])> {
        self.distributions.iter().map(|(k, d)| (k, d.as_slice()))
    }

    /// Per-backend routing stats: which backends ran how many circuits with
    /// how many shots. A single-backend [`execute_requests`] batch holds one
    /// entry; scheduled batches hold one per routed backend.
    pub fn routing(&self) -> &[BackendUsage] {
        &self.routing
    }

    /// Total shots spent across all backends (0 for exact-only batches).
    pub fn shots_spent(&self) -> u64 {
        self.routing.iter().map(|usage| usage.shots).sum()
    }

    /// Total circuit executions that failed on some backend while this batch
    /// was dispatched (0 unless a fault-tolerant dispatch run re-routed
    /// work).
    pub fn failures(&self) -> u64 {
        self.routing.iter().map(|usage| usage.failures).sum()
    }

    /// Total successful executions that were retries — circuits that failed
    /// elsewhere first and were re-routed here by the dispatcher.
    pub fn retries(&self) -> u64 {
        self.routing.iter().map(|usage| usage.retries).sum()
    }

    /// Records work done by one backend, merging with an existing entry of
    /// the same label.
    pub fn record_usage(&mut self, usage: BackendUsage) {
        usage.merge_into(&mut self.routing);
    }

    /// Kernel-compilation statistics of the simulator backend that executed
    /// this batch (`None` when every backend interpreted gate-by-gate, or
    /// when the producer did not record them). Filled by [`execute_requests`]
    /// and the scheduler's merged-results path from
    /// [`ExecutionBackend::compile_stats`].
    pub fn kernel_stats(&self) -> Option<&CompileStats> {
        self.kernel_stats.as_ref()
    }

    /// Records the kernel-compilation statistics of the executing backend
    /// (replacing any previous record — the stats are cumulative cache
    /// aggregates, not per-batch deltas, so the latest snapshot wins).
    pub fn set_kernel_stats(&mut self, stats: Option<CompileStats>) {
        self.kernel_stats = stats;
    }

    /// Result-cache counters of the cache that served (part of) this batch
    /// (`None` when no cache was consulted). Filled by the dispatch layer
    /// when a [`ResultCache`](crate::cache::ResultCache) is attached to the
    /// registry, and by [`execute_requests`] from
    /// [`ExecutionBackend::result_cache_stats`].
    pub fn cache_stats(&self) -> Option<&CacheStats> {
        self.cache_stats.as_ref()
    }

    /// Records the result-cache counters (replacing any previous record —
    /// like kernel stats, these are cumulative snapshots, so the latest
    /// wins).
    pub fn set_cache_stats(&mut self, stats: Option<CacheStats>) {
        self.cache_stats = stats;
    }

    /// Merges another batch into this one (later batches win on key
    /// collisions). Accounting is summed; routing stats merge by label.
    pub fn extend(&mut self, other: ExecutionResults) {
        self.distributions.extend(other.distributions);
        self.requested += other.requested;
        self.executed += other.executed;
        for usage in other.routing {
            self.record_usage(usage);
        }
        // Kernel stats are cumulative snapshots of the producing backend's
        // cache, so a later batch from the same backend supersedes — keep the
        // newest non-empty record.
        if other.kernel_stats.is_some() {
            self.kernel_stats = other.kernel_stats;
        }
        // Same snapshot semantics for the result-cache counters.
        if other.cache_stats.is_some() {
            self.cache_stats = other.cache_stats;
        }
    }
}

/// The dedup phase's output: the unique variant keys of a request list, the
/// deduplicated circuits they instantiate, and the key → circuit mapping.
/// Shared by the single-backend [`execute_requests`] path and the
/// multi-backend [`Scheduler`](crate::schedule::Scheduler).
#[derive(Debug, Clone)]
pub(crate) struct PreparedBatch<'a> {
    /// First-seen-ordered unique keys.
    pub(crate) unique_keys: Vec<&'a VariantKey>,
    /// The deduplicated circuits to execute.
    pub(crate) circuits: Vec<Circuit>,
    /// For each unique key, the index of its circuit in `circuits`.
    pub(crate) circuit_of_key: Vec<usize>,
    /// Per unique key, the largest caller-supplied request weight among its
    /// duplicate requests.
    pub(crate) key_weight: Vec<f64>,
    /// Per unique key, how many duplicate requests collapsed into it.
    pub(crate) key_count: Vec<u64>,
    /// Total requests before dedup.
    pub(crate) requested: u64,
}

/// Phase 2 of the protocol: deduplicates `requests` by [`VariantKey`],
/// instantiates each unique key once, and collapses structurally identical
/// circuits (verifying equality on hash-bucket collisions) so e.g. the two
/// measuring gate-cut instances of a half run once.
///
/// # Errors
///
/// [`CoreError::InvalidCutSolution`] for keys that do not match `fragments`.
pub(crate) fn prepare_batch<'a>(
    fragments: &FragmentSet,
    requests: &'a [VariantRequest],
) -> Result<PreparedBatch<'a>, CoreError> {
    // Dedup by key, preserving first-seen order for reproducible batches.
    let mut seen: HashMap<&VariantKey, usize> = HashMap::with_capacity(requests.len());
    let mut unique_keys: Vec<&VariantKey> = Vec::new();
    let mut key_weight: Vec<f64> = Vec::new();
    let mut key_count: Vec<u64> = Vec::new();
    for request in requests {
        match seen.get(&request.key) {
            Some(&slot) => {
                key_weight[slot] = key_weight[slot].max(request.weight);
                key_count[slot] += 1;
            }
            None => {
                seen.insert(&request.key, unique_keys.len());
                unique_keys.push(&request.key);
                key_weight.push(request.weight);
                key_count.push(1);
            }
        }
    }

    let mut circuits: Vec<Circuit> = Vec::new();
    let mut circuit_of_key: Vec<usize> = Vec::with_capacity(unique_keys.len());
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for key in &unique_keys {
        let circuit = fragments.instantiate_key(key)?;
        let hash = circuit.structural_hash();
        let bucket = buckets.entry(hash).or_default();
        let existing = bucket.iter().copied().find(|&i| circuits[i].structurally_equal(&circuit));
        let index = match existing {
            Some(i) => i,
            None => {
                circuits.push(circuit);
                bucket.push(circuits.len() - 1);
                circuits.len() - 1
            }
        };
        circuit_of_key.push(index);
    }

    Ok(PreparedBatch {
        unique_keys,
        circuits,
        circuit_of_key,
        key_weight,
        key_count,
        requested: requests.len() as u64,
    })
}

impl PreparedBatch<'_> {
    /// Assembles [`ExecutionResults`] from per-circuit outcomes covering
    /// `self.circuits` in order, propagating the first error.
    pub(crate) fn into_results(
        self,
        outcomes: Vec<Result<Vec<f64>, CoreError>>,
    ) -> Result<ExecutionResults, CoreError> {
        if outcomes.len() != self.circuits.len() {
            return Err(CoreError::InvalidCutSolution {
                reason: format!(
                    "backend returned {} results for a batch of {} circuits",
                    outcomes.len(),
                    self.circuits.len()
                ),
            });
        }
        let mut distributions: Vec<Vec<f64>> = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            distributions.push(outcome?);
        }
        let mut results = ExecutionResults {
            distributions: HashMap::with_capacity(self.unique_keys.len()),
            requested: self.requested,
            executed: self.circuits.len() as u64,
            routing: Vec::new(),
            kernel_stats: None,
            cache_stats: None,
        };
        for (key, &circuit_index) in self.unique_keys.iter().zip(&self.circuit_of_key) {
            results.distributions.insert((*key).clone(), distributions[circuit_index].clone());
        }
        Ok(results)
    }
}

/// Phases 2+4 for a single backend: deduplicates `requests` by
/// [`VariantKey`], collapses structurally identical circuits, and executes
/// the survivors as one [`ExecutionBackend::run_batch`] call. Multi-backend
/// routing, shot allocation and chunking live in
/// [`crate::schedule::Scheduler`].
///
/// # Errors
///
/// * [`CoreError::InvalidCutSolution`] for keys that do not match `fragments`.
/// * The first backend error of the batch, if any.
pub fn execute_requests(
    fragments: &FragmentSet,
    requests: &[VariantRequest],
    backend: &dyn ExecutionBackend,
) -> Result<ExecutionResults, CoreError> {
    let batch = prepare_batch(fragments, requests)?;
    // One batch submission; backends parallelise internally.
    let outcomes = backend.run_batch(&batch.circuits);
    let circuits = batch.circuits.len() as u64;
    let mut results = batch.into_results(outcomes)?;
    results.record_usage(BackendUsage {
        backend: backend.label(),
        circuits,
        shots: circuits * backend.shots_per_circuit().unwrap_or(0),
        ..BackendUsage::default()
    });
    results.set_kernel_stats(backend.compile_stats());
    results.set_cache_stats(backend.result_cache_stats());
    Ok(results)
}

/// Exact backend: enumerates measurement branches with a state-vector
/// simulator. Intended for verification and small fragments. Batches run
/// rayon-parallel across all cores.
///
/// By default circuits run through the compiled kernel path: each circuit is
/// lowered to a fused [`KernelProgram`](qrcc_sim::compile::KernelProgram)
/// memoised in a [`KernelCache`], so QRCC's deduplicated variant batches —
/// which differ only in their init prologue and measurement epilogue — share
/// one compiled body. [`ExactBackend::interpreted`] (or the
/// `QRCC_SIM_INTERPRETED=1` environment variable) opts back into the per-gate
/// interpreter for differential testing.
///
/// An optional width cap ([`ExactBackend::capped`]) makes the backend refuse
/// circuits wider than a pretend device — useful for registering exact
/// "devices" of different sizes in a
/// [`DeviceRegistry`](crate::schedule::DeviceRegistry) and checking
/// multi-device routing against noise-free ground truth.
#[derive(Debug)]
pub struct ExactBackend {
    count: Mutex<u64>,
    max_qubits: Option<usize>,
    kernels: KernelCache,
    use_compiled: bool,
}

impl Default for ExactBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactBackend {
    /// Creates the backend (unbounded width, compiled kernel path).
    pub fn new() -> Self {
        ExactBackend {
            count: Mutex::new(0),
            max_qubits: None,
            kernels: KernelCache::new(),
            use_compiled: !interpreted_forced_by_env(),
        }
    }

    /// Creates a backend that refuses circuits wider than `max_qubits`.
    pub fn capped(max_qubits: usize) -> Self {
        ExactBackend { max_qubits: Some(max_qubits), ..ExactBackend::new() }
    }

    /// Creates a backend that interprets gate-by-gate instead of compiling
    /// kernel programs — the differential-testing reference path.
    pub fn interpreted() -> Self {
        ExactBackend { use_compiled: false, ..ExactBackend::new() }
    }

    /// Opts this backend out of the compiled kernel path (builder form).
    pub fn with_interpreted(mut self) -> Self {
        self.use_compiled = false;
        self
    }

    /// The backend's kernel cache (empty when running interpreted).
    pub fn kernel_cache(&self) -> &KernelCache {
        &self.kernels
    }

    fn check_width(&self, circuit: &Circuit) -> Result<(), CoreError> {
        match self.max_qubits {
            Some(max) if circuit.num_qubits() > max => {
                Err(CoreError::Simulation(qrcc_sim::SimError::TooManyQubits {
                    required: circuit.num_qubits(),
                    available: max,
                }))
            }
            _ => Ok(()),
        }
    }

    fn distribution(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
        self.check_width(circuit)?;
        if self.use_compiled {
            Ok(self.kernels.get_or_compile(circuit).classical_distribution()?)
        } else {
            Ok(classical_distribution(circuit)?)
        }
    }
}

impl ExecutionBackend for ExactBackend {
    fn run_one(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
        *self.count.lock() += 1;
        self.distribution(circuit)
    }

    fn run_batch(&self, circuits: &[Circuit]) -> Vec<Result<Vec<f64>, CoreError>> {
        *self.count.lock() += circuits.len() as u64;
        circuits.par_iter().map(|circuit| self.distribution(circuit)).collect()
    }

    fn max_qubits(&self) -> Option<usize> {
        self.max_qubits
    }

    fn label(&self) -> String {
        match self.max_qubits {
            Some(max) => format!("exact({max}q)"),
            None => "exact".into(),
        }
    }

    fn executions(&self) -> u64 {
        *self.count.lock()
    }

    fn compile_stats(&self) -> Option<CompileStats> {
        self.use_compiled.then(|| self.kernels.stats())
    }
}

/// Shots backend: runs each variant on a simulated [`Device`] (optionally
/// noisy) with a fixed shot budget and reports the empirical distribution.
///
/// Batches run rayon-parallel; every circuit in a batch gets its own
/// deterministic sampling stream (derived from the batch base position), so a
/// batched run reproduces the serial execution of the same circuits in order,
/// independent of thread scheduling.
#[derive(Debug)]
pub struct ShotsBackend {
    device: Device,
    shots: u64,
}

impl ShotsBackend {
    /// Creates a backend running `shots` shots per variant on `device`.
    pub fn new(device: Device, shots: u64) -> Self {
        ShotsBackend { device, shots }
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Shots per variant.
    pub fn shots(&self) -> u64 {
        self.shots
    }
}

impl ShotsBackend {
    /// The shared batch path: executes circuit `i` with `shots_of(i)` shots
    /// on its own deterministic sampling stream.
    ///
    /// Stream reservation must stay deterministic even when some circuits
    /// error mid-batch: a stream is assigned to circuit `i` **iff** a serial
    /// [`ShotsBackend::run_one`] pass over the same circuits would consume
    /// one for it — the circuit validates against the device and its shot
    /// count is positive. Both checks run *before* any sampling (the same
    /// order [`Device::execute`] applies them in), so a failing circuit can
    /// never shift the streams of the circuits after it, regardless of where
    /// in the batch it sits or how the per-circuit shot allocation splits
    /// the budget.
    fn run_batch_streams(
        &self,
        circuits: &[Circuit],
        shots_of: impl Fn(usize) -> u64 + Sync,
    ) -> Vec<Result<Vec<f64>, CoreError>> {
        let runnable: Vec<bool> = circuits
            .iter()
            .enumerate()
            .map(|(i, c)| shots_of(i) > 0 && self.device.validate(c).is_ok())
            .collect();
        let base = self.device.reserve_streams(runnable.iter().filter(|&&r| r).count() as u64);
        let mut next = base;
        let streams: Vec<u64> = runnable
            .iter()
            .map(|&r| {
                if r {
                    next += 1;
                    next - 1
                } else {
                    0 // never sampled: execute_stream fails validation first
                }
            })
            .collect();
        circuits
            .par_iter()
            .enumerate()
            .map(|(i, circuit)| {
                self.device
                    .execute_stream(circuit, shots_of(i), streams[i])
                    .map(|counts| counts.probability_vector())
                    .map_err(CoreError::from)
            })
            .collect()
    }
}

impl ExecutionBackend for ShotsBackend {
    fn run_one(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
        let counts = self.device.execute(circuit, self.shots)?;
        Ok(counts.probability_vector())
    }

    fn run_batch(&self, circuits: &[Circuit]) -> Vec<Result<Vec<f64>, CoreError>> {
        self.run_batch_streams(circuits, |_| self.shots)
    }

    fn run_batch_with_shots(
        &self,
        circuits: &[Circuit],
        shots: &[u64],
    ) -> Vec<Result<Vec<f64>, CoreError>> {
        debug_assert_eq!(circuits.len(), shots.len(), "one shot count per circuit");
        self.run_batch_streams(circuits, |i| shots[i])
    }

    fn max_qubits(&self) -> Option<usize> {
        Some(self.device.config().num_qubits)
    }

    fn can_run(&self, circuit: &Circuit) -> bool {
        self.device.validate(circuit).is_ok()
    }

    fn shots_per_circuit(&self) -> Option<u64> {
        Some(self.shots)
    }

    fn label(&self) -> String {
        format!("shots({}q)", self.device.config().num_qubits)
    }

    fn executions(&self) -> u64 {
        self.device.executions()
    }

    fn compile_stats(&self) -> Option<CompileStats> {
        self.device.compile_stats()
    }
}

/// A memoising wrapper: identical variant circuits are executed once.
///
/// Since the [`cache`](crate::cache) module landed this is a thin adapter
/// over a shared [`ResultCache`] — the same shot-aware, content-addressed
/// store the scheduled dispatch path consults via
/// [`DeviceRegistry::with_result_cache`](crate::schedule::DeviceRegistry::with_result_cache).
/// The wrapper exists for callers that drive a backend circuit-by-circuit
/// (or across independent batches) outside the scheduler. Keys are the
/// 64-bit [`Circuit::structural_hash`] with an equality check on bucket
/// collisions — no QASM serialisation. Entries remember the shot count they
/// were executed with, so a request the inner backend would over-sample is
/// a hit and an under-sampled entry triggers only a shot top-up (see
/// [`CacheLookup::Delta`]).
pub struct CachingBackend<B> {
    inner: B,
    cache: std::sync::Arc<ResultCache>,
}

impl<B: ExecutionBackend> CachingBackend<B> {
    /// Wraps a backend with a fresh, effectively unbounded in-memory cache —
    /// the classic memoiser.
    pub fn new(inner: B) -> Self {
        Self::with_cache(inner, std::sync::Arc::new(ResultCache::new(u64::MAX)))
    }

    /// Wraps a backend around an existing (possibly shared) cache.
    pub fn with_cache(inner: B, cache: std::sync::Arc<ResultCache>) -> Self {
        CachingBackend { inner, cache }
    }

    /// Wraps a backend with a cache built from `policy` (bounded capacity,
    /// optional persistence snapshot).
    pub fn from_policy(inner: B, policy: &ResultCachePolicy) -> Self {
        Self::with_cache(inner, std::sync::Arc::new(ResultCache::open(policy)))
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The underlying result cache.
    pub fn cache(&self) -> &std::sync::Arc<ResultCache> {
        &self.cache
    }

    /// Number of distinct circuits held in the cache.
    pub fn cached_circuits(&self) -> usize {
        self.cache.entries()
    }

    /// Serves a batch where circuit `i` needs `requested(i)` shots (`None` =
    /// exact): full hits skip the inner backend, misses run as one inner
    /// batch, delta hits run only their shot top-up, and structurally
    /// identical circuits collapse so the inner backend runs each distinct
    /// circuit once per batch — the wrapper's once-per-circuit promise holds
    /// within a batch, not just across calls.
    fn serve_batch(
        &self,
        circuits: &[Circuit],
        requested: impl Fn(usize) -> Option<u64>,
    ) -> Vec<Result<Vec<f64>, CoreError>> {
        let hashes: Vec<u64> = circuits.iter().map(Circuit::structural_hash).collect();
        let mut reps: Vec<usize> = Vec::new();
        let mut rep_of: Vec<usize> = Vec::with_capacity(circuits.len());
        for i in 0..circuits.len() {
            let found = reps.iter().position(|&r| {
                hashes[r] == hashes[i] && circuits[r].structurally_equal(&circuits[i])
            });
            match found {
                Some(p) => rep_of.push(p),
                None => {
                    reps.push(i);
                    rep_of.push(reps.len() - 1);
                }
            }
        }
        // Duplicates may request different shot counts; the representative
        // asks for the largest so one execution serves them all.
        let rep_request: Vec<Option<u64>> = reps
            .iter()
            .enumerate()
            .map(|(p, _)| {
                rep_of
                    .iter()
                    .enumerate()
                    .filter(|&(_, &r)| r == p)
                    .map(|(i, _)| requested(i))
                    .try_fold(0u64, |acc, r| r.map(|r| acc.max(r)))
            })
            .collect();

        let mut outcomes: Vec<Option<Result<Vec<f64>, CoreError>>> = vec![None; reps.len()];
        let mut misses: Vec<usize> = Vec::new(); // rep slots
        let mut deltas: Vec<(usize, Vec<f64>, u64, u64)> = Vec::new();
        for (slot, &rep) in reps.iter().enumerate() {
            match self.cache.lookup(&circuits[rep], rep_request[slot]) {
                CacheLookup::Hit(dist) => outcomes[slot] = Some(Ok(dist)),
                CacheLookup::Delta { base, base_shots, missing } => {
                    deltas.push((slot, base, base_shots, missing));
                }
                CacheLookup::Miss => misses.push(slot),
            }
        }

        // Misses run as one inner batch at their requested shot counts.
        let miss_circuits: Vec<Circuit> =
            misses.iter().map(|&slot| circuits[reps[slot]].clone()).collect();
        let miss_results = if miss_circuits.is_empty() {
            Vec::new()
        } else if misses.iter().all(|&slot| rep_request[slot].is_some()) {
            let shots: Vec<u64> =
                misses.iter().map(|&slot| rep_request[slot].unwrap_or(0)).collect();
            self.inner.run_batch_with_shots(&miss_circuits, &shots)
        } else {
            self.inner.run_batch(&miss_circuits)
        };
        for (&slot, result) in misses.iter().zip(miss_results) {
            if let Ok(dist) = &result {
                self.cache.store(&circuits[reps[slot]], dist, rep_request[slot]);
            }
            outcomes[slot] = Some(result);
        }

        // Delta hits execute only their top-up, then merge and write back.
        if !deltas.is_empty() {
            let delta_circuits: Vec<Circuit> =
                deltas.iter().map(|&(slot, ..)| circuits[reps[slot]].clone()).collect();
            let top_ups: Vec<u64> = deltas.iter().map(|&(.., missing)| missing).collect();
            let delta_results = self.inner.run_batch_with_shots(&delta_circuits, &top_ups);
            for ((slot, base, base_shots, missing), result) in deltas.into_iter().zip(delta_results)
            {
                outcomes[slot] = Some(result.map(|fresh| {
                    let merged = merge_distributions(&base, base_shots, &fresh, missing);
                    self.cache.store(&circuits[reps[slot]], &merged, Some(base_shots + missing));
                    merged
                }));
            }
        }

        rep_of
            .iter()
            .map(|&slot| outcomes[slot].clone().expect("every representative served"))
            .collect()
    }
}

impl<B: ExecutionBackend> ExecutionBackend for CachingBackend<B> {
    fn run_one(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
        match self.cache.lookup(circuit, self.inner.shots_per_circuit()) {
            CacheLookup::Hit(dist) => Ok(dist),
            CacheLookup::Delta { base, base_shots, missing } => {
                let fresh = self
                    .inner
                    .run_batch_with_shots(std::slice::from_ref(circuit), &[missing])
                    .pop()
                    .expect("one result per circuit")?;
                let merged = merge_distributions(&base, base_shots, &fresh, missing);
                self.cache.store(circuit, &merged, Some(base_shots + missing));
                Ok(merged)
            }
            CacheLookup::Miss => {
                let dist = self.inner.run_one(circuit)?;
                self.cache.store(circuit, &dist, self.inner.shots_per_circuit());
                Ok(dist)
            }
        }
    }

    fn run_batch(&self, circuits: &[Circuit]) -> Vec<Result<Vec<f64>, CoreError>> {
        self.serve_batch(circuits, |_| self.inner.shots_per_circuit())
    }

    fn run_batch_with_shots(
        &self,
        circuits: &[Circuit],
        shots: &[u64],
    ) -> Vec<Result<Vec<f64>, CoreError>> {
        debug_assert_eq!(circuits.len(), shots.len(), "one shot count per circuit");
        self.serve_batch(circuits, |i| Some(shots[i]))
    }

    fn max_qubits(&self) -> Option<usize> {
        self.inner.max_qubits()
    }

    fn can_run(&self, circuit: &Circuit) -> bool {
        self.inner.can_run(circuit)
    }

    fn shots_per_circuit(&self) -> Option<u64> {
        self.inner.shots_per_circuit()
    }

    fn label(&self) -> String {
        format!("cached[{}]", self.inner.label())
    }

    fn executions(&self) -> u64 {
        self.inner.executions()
    }

    fn compile_stats(&self) -> Option<CompileStats> {
        self.inner.compile_stats()
    }

    fn result_cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentVariant;
    use crate::planner::CutPlanner;
    use crate::QrccConfig;
    use qrcc_sim::device::DeviceConfig;
    use std::time::Duration;

    fn bell_with_measures() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    #[test]
    fn exact_backend_returns_exact_distribution() {
        let backend = ExactBackend::new();
        let dist = backend.run_one(&bell_with_measures()).unwrap();
        assert!((dist[0b00] - 0.5).abs() < 1e-12);
        assert!((dist[0b11] - 0.5).abs() < 1e-12);
        assert_eq!(backend.executions(), 1);
    }

    #[test]
    fn shots_backend_approximates_the_distribution() {
        let backend = ShotsBackend::new(Device::new(DeviceConfig::ideal(2).with_seed(7)), 20_000);
        let dist = backend.run_one(&bell_with_measures()).unwrap();
        assert!((dist[0b00] - 0.5).abs() < 0.02);
        assert!((dist[0b01]).abs() < 1e-12);
        assert_eq!(backend.shots(), 20_000);
    }

    #[test]
    fn batch_matches_serial_execution_exactly() {
        let mut circuits = Vec::new();
        for n in 0..6 {
            let mut c = Circuit::new(3);
            c.h(0).ry(0.2 * (n as f64 + 1.0), 1).cx(0, 1).cx(1, 2).measure_all();
            circuits.push(c);
        }
        let serial = ExactBackend::new();
        let serial_dists: Vec<Vec<f64>> =
            circuits.iter().map(|c| serial.run_one(c).unwrap()).collect();
        let batched = ExactBackend::new();
        let batch_dists = batched.run_batch(&circuits);
        assert_eq!(batched.executions(), circuits.len() as u64);
        for (a, b) in serial_dists.iter().zip(batch_dists) {
            let b = b.unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shots_batch_is_deterministic_and_matches_serial_order() {
        let mut circuits = Vec::new();
        for n in 0..4 {
            let mut c = Circuit::new(2);
            c.h(0).ry(0.3 * (n as f64 + 1.0), 1).cx(0, 1).measure_all();
            circuits.push(c);
        }
        let serial = ShotsBackend::new(Device::new(DeviceConfig::ideal(2).with_seed(5)), 2_000);
        let serial_dists: Vec<Vec<f64>> =
            circuits.iter().map(|c| serial.run_one(c).unwrap()).collect();
        let batched = ShotsBackend::new(Device::new(DeviceConfig::ideal(2).with_seed(5)), 2_000);
        let batch_dists = batched.run_batch(&circuits);
        for (a, b) in serial_dists.iter().zip(batch_dists) {
            assert_eq!(a, &b.unwrap(), "batch must reproduce the serial sampling streams");
        }
    }

    #[test]
    fn default_run_batch_loops_run_one() {
        // A minimal backend implementing only run_one still gets batching.
        struct OneShot;
        impl ExecutionBackend for OneShot {
            fn run_one(&self, circuit: &Circuit) -> Result<Vec<f64>, CoreError> {
                Ok(classical_distribution(circuit)?)
            }
            fn executions(&self) -> u64 {
                0
            }
        }
        let circuits = vec![bell_with_measures(), bell_with_measures()];
        let results = OneShot.run_batch(&circuits);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(Result::is_ok));
    }

    #[test]
    fn caching_backend_deduplicates_executions() {
        let backend = CachingBackend::new(ExactBackend::new());
        let c = bell_with_measures();
        backend.run_one(&c).unwrap();
        backend.run_one(&c).unwrap();
        assert_eq!(backend.executions(), 1);
        // a different circuit is executed separately
        let mut other = Circuit::new(1);
        other.h(0).measure(0, 0);
        backend.run_one(&other).unwrap();
        assert_eq!(backend.executions(), 2);
        assert_eq!(backend.cached_circuits(), 2);
    }

    #[test]
    fn caching_backend_batches_only_misses() {
        let backend = CachingBackend::new(ExactBackend::new());
        let a = bell_with_measures();
        backend.run_one(&a).unwrap();
        let mut b = Circuit::new(1);
        b.h(0).measure(0, 0);
        let results = backend.run_batch(&[a.clone(), b.clone(), a.clone(), b.clone()]);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(Result::is_ok));
        // `a` was cached; `b` appears twice in the batch but structurally
        // identical misses collapse, so the inner backend ran it once.
        assert_eq!(backend.executions(), 2);
        // a second identical batch is served fully from cache
        backend.run_batch(&[a, b]);
        assert_eq!(backend.executions(), 2);
    }

    #[test]
    fn width_violations_surface_as_errors() {
        let backend = ShotsBackend::new(Device::ideal(1), 10);
        let err = backend.run_one(&bell_with_measures());
        assert!(matches!(err, Err(CoreError::Simulation(_))));
        let errs = backend.run_batch(&[bell_with_measures()]);
        assert!(matches!(&errs[0], Err(CoreError::Simulation(_))));
        // a failed run consumes no sampling stream and is not counted
        assert_eq!(backend.executions(), 0);
    }

    #[test]
    fn invalid_circuits_in_a_batch_do_not_shift_sampling_streams() {
        let mut wide = Circuit::new(3);
        wide.h(0).cx(0, 1).cx(1, 2).measure_all();
        let bell = bell_with_measures();

        // serial reference: the invalid circuit consumes no stream
        let serial = ShotsBackend::new(Device::new(DeviceConfig::ideal(2).with_seed(3)), 2_000);
        assert!(serial.run_one(&wide).is_err());
        let first = serial.run_one(&bell).unwrap();
        let second = serial.run_one(&bell).unwrap();

        // batched: [invalid, bell, bell] must sample the same streams
        let batched = ShotsBackend::new(Device::new(DeviceConfig::ideal(2).with_seed(3)), 2_000);
        let results = batched.run_batch(&[wide, bell.clone(), bell]);
        assert!(results[0].is_err());
        assert_eq!(results[1].as_ref().unwrap(), &first);
        assert_eq!(results[2].as_ref().unwrap(), &second);
        // only the two real runs are counted
        assert_eq!(batched.executions(), 2);
    }

    #[test]
    fn per_circuit_shots_keep_streams_deterministic_around_errors() {
        // Regression for the scheduled path: when an allocator hands each
        // circuit its own shot count and some circuits error mid-batch (an
        // over-wide circuit, a zero-shot allocation), the stream reservation
        // must still mirror a serial pass — no error may shift the sampling
        // streams of the circuits after it.
        let mut wide = Circuit::new(3);
        wide.h(0).cx(0, 1).cx(1, 2).measure_all();
        let bell = bell_with_measures();

        // serial reference: only the two valid, positively-allocated bells
        // consume streams (in order)
        let serial = ShotsBackend::new(Device::new(DeviceConfig::ideal(2).with_seed(3)), 0);
        let base = serial.device().reserve_streams(2);
        let first = serial.device().execute_stream(&bell, 1_500, base).unwrap();
        let second = serial.device().execute_stream(&bell, 2_500, base + 1).unwrap();

        // batched: [bell(1500), wide(2000), bell(0 shots), bell(2500)]
        let batched = ShotsBackend::new(Device::new(DeviceConfig::ideal(2).with_seed(3)), 9999);
        let results = batched.run_batch_with_shots(
            &[bell.clone(), wide, bell.clone(), bell.clone()],
            &[1_500, 2_000, 0, 2_500],
        );
        assert_eq!(results[0].as_ref().unwrap(), &first.probability_vector());
        assert!(matches!(results[1], Err(CoreError::Simulation(_))), "over-wide errors");
        assert!(results[2].is_err(), "zero allocated shots errors");
        assert_eq!(results[3].as_ref().unwrap(), &second.probability_vector());
        // exactly the two real runs consumed streams
        assert_eq!(batched.executions(), 2);
    }

    #[test]
    fn dedup_ignores_circuit_names() {
        let backend = CachingBackend::new(ExactBackend::new());
        let a = bell_with_measures();
        let mut renamed = bell_with_measures();
        renamed.set_name("same_structure_different_name");
        backend.run_one(&a).unwrap();
        backend.run_one(&renamed).unwrap();
        assert_eq!(backend.executions(), 1, "renamed circuit must hit the cache");
    }

    #[test]
    fn execute_requests_dedups_by_key_and_structure() {
        // Plan a small chain so we have real fragments to instantiate.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let plan = CutPlanner::new(
            QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO),
        )
        .plan(&c)
        .unwrap();
        let fragments = crate::fragment::FragmentSet::from_plan(&plan).unwrap();
        let fragment = &fragments.fragments[0];
        let variant = fragment.default_variant();
        // The same key requested three times executes once.
        let requests = vec![
            VariantRequest::new(0, variant.clone()),
            VariantRequest::new(0, variant.clone()),
            VariantRequest::new(0, variant),
        ];
        let backend = ExactBackend::new();
        let results = execute_requests(&fragments, &requests, &backend).unwrap();
        assert_eq!(results.requested(), 3);
        assert_eq!(results.unique_variants(), 1);
        assert_eq!(results.executed(), 1);
        assert_eq!(backend.executions(), 1);
    }

    #[test]
    fn compiled_backend_matches_interpreted_and_reports_stats() {
        let mut circuits = Vec::new();
        for n in 0..5 {
            let mut c = Circuit::new(3);
            c.h(0).rz(0.3 * (n as f64 + 1.0), 0).s(0).cx(0, 1).t(1).cx(1, 2).measure_all();
            circuits.push(c);
        }
        let compiled = ExactBackend::new();
        let interpreted = ExactBackend::interpreted();
        let fast = compiled.run_batch(&circuits);
        let slow = interpreted.run_batch(&circuits);
        for (a, b) in fast.iter().zip(&slow) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "compiled and interpreted paths must agree");
            }
        }
        assert!(interpreted.compile_stats().is_none(), "interpreted path records none");
        if interpreted_forced_by_env() {
            return; // differential CI leg: only the parity checks above apply
        }
        let stats = compiled.compile_stats().expect("compiled path records stats");
        assert!(stats.gates_in > 0);
        assert!(stats.fusion_ratio() > 1.0, "h·rz·s and cx·t chains must fuse");
    }

    #[test]
    fn execute_requests_records_kernel_stats() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let plan = CutPlanner::new(
            QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO),
        )
        .plan(&c)
        .unwrap();
        let fragments = crate::fragment::FragmentSet::from_plan(&plan).unwrap();
        let requests =
            crate::reconstruct::ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let backend = ExactBackend::new();
        let compiled = execute_requests(&fragments, &requests, &backend).unwrap();
        if !interpreted_forced_by_env() {
            let stats = compiled.kernel_stats().expect("compiled backend records stats");
            assert!(stats.gates_in > 0);
            assert!(stats.cache_misses > 0, "first batch compiles bodies: {stats}");
            // a second identical batch reuses the compiled bodies
            let again = execute_requests(&fragments, &requests, &backend).unwrap();
            let stats = again.kernel_stats().expect("stats persist across batches");
            assert!(stats.cache_hits > 0, "repeated batches share compiled bodies: {stats}");
        }
        let interpreted =
            execute_requests(&fragments, &requests, &ExactBackend::interpreted()).unwrap();
        assert!(interpreted.kernel_stats().is_none());
        // interpreted and compiled agree on every variant distribution
        for (key, dist) in compiled.iter() {
            let other = interpreted.distribution(key).unwrap();
            for (a, b) in dist.iter().zip(other) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn config_backend_honours_interpreted_knob() {
        let config = QrccConfig::new(3);
        // the env override trumps the config default in the differential CI leg
        assert_eq!(config.exact_backend().compile_stats().is_some(), !interpreted_forced_by_env());
        let interpreted = config.with_interpreted_sim(true);
        assert!(interpreted.exact_backend().compile_stats().is_none());
    }

    #[test]
    fn execute_requests_rejects_malformed_keys() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let plan = CutPlanner::new(
            QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO),
        )
        .plan(&c)
        .unwrap();
        let fragments = crate::fragment::FragmentSet::from_plan(&plan).unwrap();
        let bogus = VariantRequest::new(
            99,
            FragmentVariant {
                init_states: vec![],
                cut_bases: vec![],
                gate_instances: vec![],
                output_bases: vec![],
            },
        );
        let backend = ExactBackend::new();
        assert!(matches!(
            execute_requests(&fragments, &[bogus], &backend),
            Err(CoreError::InvalidCutSolution { .. })
        ));
    }

    #[test]
    fn missing_variant_lookup_is_a_typed_error() {
        let results = ExecutionResults::default();
        let key = VariantKey::new(
            7,
            FragmentVariant {
                init_states: vec![],
                cut_bases: vec![],
                gate_instances: vec![],
                output_bases: vec![],
            },
        );
        assert!(matches!(
            results.distribution(&key),
            Err(CoreError::MissingVariant { fragment: 7 })
        ));
    }
}
