//! Subcircuit fragments: the executable pieces a cut plan produces.
//!
//! A [`Fragment`] is one subcircuit, already mapped onto physical qubits
//! (with qubit reuse applied), with *slots* at every cut point:
//!
//! * incoming wire cuts become preparation slots (|0⟩, |1⟩, |+⟩ or |i⟩ per
//!   variant),
//! * outgoing wire cuts become measurement slots (Z, X or Y basis per
//!   variant),
//! * gate-cut halves become instance slots (one of the six Mitarai–Fujii
//!   instances per variant),
//! * original-circuit outputs become terminal measurements (optionally
//!   rotated into a Pauli basis for expectation-value workloads).
//!
//! [`Fragment::instantiate`] turns a fragment plus a [`FragmentVariant`] into
//! a concrete [`Circuit`] ready for a device or simulator.

use crate::gatecut::{instance_op, zz_form, GateHalf, InstanceOp, ZzForm};
use crate::planner::CutPlan;
use crate::reuse::assign_intervals;
use crate::spec::WireCutPoint;
use crate::CoreError;
use qrcc_circuit::dag::NodeId;
use qrcc_circuit::observable::Pauli;
use qrcc_circuit::{Circuit, Gate, Operation, QubitId};
use std::collections::HashMap;

/// Initial state of a wire-cut initialisation slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InitState {
    /// |0⟩
    Zero,
    /// |1⟩
    One,
    /// |+⟩
    Plus,
    /// |i⟩ = (|0⟩ + i|1⟩)/√2
    PlusI,
}

impl InitState {
    /// All four initialisation states, in reconstruction order.
    pub const ALL: [InitState; 4] =
        [InitState::Zero, InitState::One, InitState::Plus, InitState::PlusI];
}

/// Measurement basis of a wire-cut measurement slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutBasis {
    /// Computational (Z) basis — also covers the identity attribution.
    Z,
    /// X basis.
    X,
    /// Y basis.
    Y,
}

impl CutBasis {
    /// All three bases, in reconstruction order.
    pub const ALL: [CutBasis; 3] = [CutBasis::Z, CutBasis::X, CutBasis::Y];
}

/// One executable configuration of a fragment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FragmentVariant {
    /// Initialisation state per incoming cut (parallel to
    /// [`Fragment::incoming_cuts`]).
    pub init_states: Vec<InitState>,
    /// Measurement basis per outgoing cut (parallel to
    /// [`Fragment::outgoing_cuts`]).
    pub cut_bases: Vec<CutBasis>,
    /// Gate-cut instance (1..=6) per gate-cut role (parallel to
    /// [`Fragment::gate_cut_roles`]).
    pub gate_instances: Vec<usize>,
    /// Measurement basis per original-circuit output (parallel to
    /// [`Fragment::output_clbits`]); `Pauli::I`/`Pauli::Z` measure in the
    /// computational basis.
    pub output_bases: Vec<Pauli>,
}

/// Structural identity of one fragment variant: the fragment index plus the
/// full slot configuration. Two requests with equal keys instantiate to the
/// same circuit, so the execution layer deduplicates on this key — no QASM
/// serialisation involved.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VariantKey {
    /// Index of the fragment within its [`FragmentSet`].
    pub fragment: usize,
    /// The slot configuration.
    pub variant: FragmentVariant,
}

impl VariantKey {
    /// Builds a key for `fragment` with the given slot configuration.
    pub fn new(fragment: usize, variant: FragmentVariant) -> Self {
        VariantKey { fragment, variant }
    }
}

/// A request for one fragment-variant execution, as pure data.
///
/// Reconstructors *enumerate* the requests they need, the pipeline
/// *deduplicates* them by [`VariantKey`] and executes one batch, and the
/// reconstructors then *consume* the resulting
/// [`ExecutionResults`](crate::execute::ExecutionResults).
///
/// Beyond the structural key, a request carries a caller-supplied
/// reconstruction `weight` (default `1.0`). The shot
/// [`allocator`](crate::schedule) multiplies this by the structural variance
/// weight it derives from the cut coefficients, so callers can bias the shot
/// split (e.g. by an observable coefficient) without re-deriving the cut
/// structure.
#[derive(Debug, Clone)]
pub struct VariantRequest {
    /// The structural identity of the requested variant.
    pub key: VariantKey,
    /// Caller-supplied reconstruction weight multiplier (default `1.0`);
    /// must be non-negative and finite.
    pub weight: f64,
}

impl VariantRequest {
    /// Builds a request for `fragment` with the given slot configuration and
    /// the default weight of `1.0`.
    pub fn new(fragment: usize, variant: FragmentVariant) -> Self {
        VariantRequest { key: VariantKey::new(fragment, variant), weight: 1.0 }
    }

    /// Sets the caller-supplied reconstruction weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "request weight must be finite and >= 0");
        self.weight = weight;
        self
    }
}

impl PartialEq for VariantRequest {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.weight.to_bits() == other.weight.to_bits()
    }
}

impl Eq for VariantRequest {}

impl std::hash::Hash for VariantRequest {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key.hash(state);
        self.weight.to_bits().hash(state);
    }
}

/// One operation of a fragment's skeleton.
#[derive(Debug, Clone, PartialEq)]
enum FragmentOp {
    Gate { gate: Gate, qubits: Vec<usize> },
    Prep { slot: usize, phys: usize },
    CutMeasure { slot: usize, phys: usize, clbit: usize },
    OutputMeasure { slot: usize, phys: usize, clbit: usize },
    GateCutHalf { role: usize, phys: usize, clbit: usize },
    Reset { phys: usize },
}

/// One subcircuit of a cut plan, mapped to physical qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    /// Subcircuit index within the plan.
    pub index: usize,
    /// Number of physical qubits the fragment needs.
    pub num_physical: usize,
    /// Number of classical bits of every instantiated variant.
    pub num_clbits: usize,
    skeleton: Vec<FragmentOp>,
    /// Global wire-cut ids whose initialisation side lands in this fragment.
    pub incoming_cuts: Vec<usize>,
    /// Global wire-cut ids whose measurement side lands in this fragment.
    pub outgoing_cuts: Vec<usize>,
    /// Gate-cut roles hosted by this fragment: (global gate-cut id, half).
    pub gate_cut_roles: Vec<(usize, GateHalf)>,
    /// `(original qubit, classical bit)` pairs for the original-circuit
    /// outputs this fragment produces.
    pub output_clbits: Vec<(usize, usize)>,
    /// `(global wire-cut id, classical bit)` pairs for outgoing-cut
    /// measurements.
    pub cut_clbits: Vec<(usize, usize)>,
    /// `(global gate-cut id, classical bit)` pairs for gate-cut instance
    /// measurements (the bit is only written by measuring instances).
    pub gatecut_clbits: Vec<(usize, usize)>,
    /// ZZ normal form of each gate cut this fragment participates in.
    gate_forms: HashMap<usize, ZzForm>,
}

impl Fragment {
    /// The number of cut legs this fragment carries: incoming and outgoing
    /// wire cuts plus gate-cut roles — the axes of its reconstruction tensor.
    pub fn cut_leg_count(&self) -> usize {
        self.incoming_cuts.len() + self.outgoing_cuts.len() + self.gate_cut_roles.len()
    }

    /// The number of executable variants this fragment has:
    /// `4^incoming · 3^outgoing · 6^gate_roles` (ignoring output-basis
    /// changes).
    pub fn variant_count(&self) -> u64 {
        4u64.pow(self.incoming_cuts.len() as u32)
            * 3u64.pow(self.outgoing_cuts.len() as u32)
            * 6u64.pow(self.gate_cut_roles.len() as u32)
    }

    /// A variant with |0⟩ initialisations, Z bases everywhere and gate-cut
    /// instance 1 — the "identity" configuration.
    pub fn default_variant(&self) -> FragmentVariant {
        FragmentVariant {
            init_states: vec![InitState::Zero; self.incoming_cuts.len()],
            cut_bases: vec![CutBasis::Z; self.outgoing_cuts.len()],
            gate_instances: vec![1; self.gate_cut_roles.len()],
            output_bases: vec![Pauli::Z; self.output_clbits.len()],
        }
    }

    /// Builds the concrete circuit of one variant.
    ///
    /// # Panics
    ///
    /// Panics if the variant's vectors do not match the fragment's slot
    /// counts or a gate instance index is outside `1..=6`.
    pub fn instantiate(&self, variant: &FragmentVariant) -> Circuit {
        assert_eq!(variant.init_states.len(), self.incoming_cuts.len(), "init slot mismatch");
        assert_eq!(variant.cut_bases.len(), self.outgoing_cuts.len(), "basis slot mismatch");
        assert_eq!(
            variant.gate_instances.len(),
            self.gate_cut_roles.len(),
            "instance slot mismatch"
        );
        assert_eq!(variant.output_bases.len(), self.output_clbits.len(), "output basis mismatch");

        let mut circuit = Circuit::with_clbits(self.num_physical.max(1), self.num_clbits);
        circuit.set_name(format!("fragment_{}", self.index));
        for op in &self.skeleton {
            match op {
                FragmentOp::Gate { gate, qubits } => {
                    let ids: Vec<QubitId> = qubits.iter().map(|&q| QubitId::new(q)).collect();
                    circuit.push(Operation::gate(*gate, &ids).expect("valid skeleton gate"));
                }
                FragmentOp::Prep { slot, phys } => match variant.init_states[*slot] {
                    InitState::Zero => {}
                    InitState::One => {
                        circuit.x(*phys);
                    }
                    InitState::Plus => {
                        circuit.h(*phys);
                    }
                    InitState::PlusI => {
                        circuit.h(*phys).s(*phys);
                    }
                },
                FragmentOp::CutMeasure { slot, phys, clbit } => {
                    match variant.cut_bases[*slot] {
                        CutBasis::Z => {}
                        CutBasis::X => {
                            circuit.h(*phys);
                        }
                        CutBasis::Y => {
                            circuit.sdg(*phys).h(*phys);
                        }
                    }
                    circuit.measure(*phys, *clbit);
                }
                FragmentOp::OutputMeasure { slot, phys, clbit } => {
                    match variant.output_bases[*slot] {
                        Pauli::I | Pauli::Z => {}
                        Pauli::X => {
                            circuit.h(*phys);
                        }
                        Pauli::Y => {
                            circuit.sdg(*phys).h(*phys);
                        }
                    }
                    circuit.measure(*phys, *clbit);
                }
                FragmentOp::GateCutHalf { role, phys, clbit } => {
                    let (cut_id, half) = self.gate_cut_roles[*role];
                    let form = &self.gate_forms[&cut_id];
                    let (pre, post) = form.locals(half);
                    for g in pre {
                        circuit.push(
                            Operation::gate(*g, &[QubitId::new(*phys)])
                                .expect("single-qubit local"),
                        );
                    }
                    let instance = variant.gate_instances[*role];
                    match instance_op(instance, half) {
                        InstanceOp::Nothing => {}
                        InstanceOp::PauliZ => {
                            circuit.z(*phys);
                        }
                        InstanceOp::Rz(angle) => {
                            circuit.rz(angle, *phys);
                        }
                        InstanceOp::MeasureSign => {
                            circuit.measure(*phys, *clbit);
                        }
                    }
                    for g in post {
                        circuit.push(
                            Operation::gate(*g, &[QubitId::new(*phys)])
                                .expect("single-qubit local"),
                        );
                    }
                }
                FragmentOp::Reset { phys } => {
                    circuit.reset(*phys);
                }
            }
        }
        circuit
    }
}

/// All fragments of a cut plan plus the bookkeeping needed to reconstruct.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentSet {
    /// The fragments, indexed by subcircuit id.
    pub fragments: Vec<Fragment>,
    /// The plan's wire cuts; global wire-cut id = index into this vector.
    pub wire_cuts: Vec<WireCutPoint>,
    /// The plan's gate-cut DAG nodes; global gate-cut id = index.
    pub gate_cut_nodes: Vec<NodeId>,
    /// ZZ normal form of every gate cut (indexed by gate-cut id).
    pub gate_cut_forms: Vec<ZzForm>,
    /// Number of qubits of the original circuit.
    pub original_qubits: usize,
    /// For each original qubit, the fragment producing its final value
    /// (`None` for idle wires, which stay in |0⟩).
    pub output_owner: Vec<Option<usize>>,
}

impl FragmentSet {
    /// Number of wire cuts.
    pub fn num_wire_cuts(&self) -> usize {
        self.wire_cuts.len()
    }

    /// Number of gate cuts.
    pub fn num_gate_cuts(&self) -> usize {
        self.gate_cut_nodes.len()
    }

    /// Total number of subcircuit instances that need to be executed
    /// (the paper's "42 instances" accounting for its Table 3 example).
    pub fn total_variants(&self) -> u64 {
        self.fragments.iter().map(Fragment::variant_count).sum()
    }

    /// For each wire cut id, the fragments hosting its two sides:
    /// `(measuring fragment, preparing fragment)`. A side is `None` only for
    /// inconsistent plans (every planner-produced cut has both).
    pub fn wire_cut_endpoints(&self) -> Vec<(Option<usize>, Option<usize>)> {
        let mut endpoints = vec![(None, None); self.num_wire_cuts()];
        for fragment in &self.fragments {
            for &cut in &fragment.outgoing_cuts {
                endpoints[cut].0 = Some(fragment.index);
            }
            for &cut in &fragment.incoming_cuts {
                endpoints[cut].1 = Some(fragment.index);
            }
        }
        endpoints
    }

    /// For each gate cut id, the fragments hosting its two halves:
    /// `(top fragment, bottom fragment)`.
    pub fn gate_cut_endpoints(&self) -> Vec<(Option<usize>, Option<usize>)> {
        let mut endpoints = vec![(None, None); self.num_gate_cuts()];
        for fragment in &self.fragments {
            for &(cut, half) in &fragment.gate_cut_roles {
                match half {
                    GateHalf::Top => endpoints[cut].0 = Some(fragment.index),
                    GateHalf::Bottom => endpoints[cut].1 = Some(fragment.index),
                }
            }
        }
        endpoints
    }

    /// The cut graph over fragments: `adjacency[f]` lists the fragments that
    /// share at least one wire or gate cut with fragment `f`, sorted and
    /// deduplicated. The contraction engine's pairwise merges walk the edges
    /// of this graph; its connectivity determines how far the `Contract`
    /// strategy can undercut the dense `4^cuts` loop.
    pub fn cut_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adjacency = vec![Vec::new(); self.fragments.len()];
        let link = |a: Option<usize>, b: Option<usize>, adjacency: &mut Vec<Vec<usize>>| {
            if let (Some(a), Some(b)) = (a, b) {
                if a != b {
                    adjacency[a].push(b);
                    adjacency[b].push(a);
                }
            }
        };
        for (measure, prepare) in self.wire_cut_endpoints() {
            link(measure, prepare, &mut adjacency);
        }
        for (top, bottom) in self.gate_cut_endpoints() {
            link(top, bottom, &mut adjacency);
        }
        for neighbours in &mut adjacency {
            neighbours.sort_unstable();
            neighbours.dedup();
        }
        adjacency
    }

    /// Instantiates the circuit a [`VariantKey`] identifies, validating the
    /// key against this set first.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCutSolution`] when the fragment index is
    /// out of range or a slot vector's length does not match the fragment.
    pub fn instantiate_key(&self, key: &VariantKey) -> Result<Circuit, CoreError> {
        let fragment =
            self.fragments.get(key.fragment).ok_or_else(|| CoreError::InvalidCutSolution {
                reason: format!(
                    "variant key references fragment {} but the set has {}",
                    key.fragment,
                    self.fragments.len()
                ),
            })?;
        let v = &key.variant;
        let slots_match = v.init_states.len() == fragment.incoming_cuts.len()
            && v.cut_bases.len() == fragment.outgoing_cuts.len()
            && v.gate_instances.len() == fragment.gate_cut_roles.len()
            && v.output_bases.len() == fragment.output_clbits.len();
        if !slots_match {
            return Err(CoreError::InvalidCutSolution {
                reason: format!("variant key slot counts do not match fragment {}", key.fragment),
            });
        }
        if v.gate_instances.iter().any(|&i| !(1..=6).contains(&i)) {
            return Err(CoreError::InvalidCutSolution {
                reason: format!(
                    "gate-cut instance outside 1..=6 in key for fragment {}",
                    key.fragment
                ),
            });
        }
        Ok(fragment.instantiate(v))
    }

    /// Builds the fragments of a cut plan.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::GateNotCuttable`] if the plan gate-cuts a gate
    /// without a ZZ normal form (the planner never does), and
    /// [`CoreError::InvalidCutSolution`] on internal inconsistencies.
    pub fn from_plan(plan: &CutPlan) -> Result<Self, CoreError> {
        let dag = plan.dag();
        let solution = plan.solution();
        let circuit = plan.circuit();
        let reuse = plan.config().qubit_reuse_enabled;

        let wire_cuts = solution.wire_cuts(dag);
        let segments = solution.segments(dag);
        let gate_cut_nodes = solution.gate_cuts.clone();
        let mut gate_cut_forms = Vec::with_capacity(gate_cut_nodes.len());
        for &node in &gate_cut_nodes {
            let gate = dag.node(node).op.as_gate().expect("gate-cut node is a gate");
            let form = zz_form(gate)
                .ok_or_else(|| CoreError::GateNotCuttable { gate: gate.name().to_string() })?;
            gate_cut_forms.push(form);
        }

        let mut output_owner = vec![None; circuit.num_qubits()];
        let mut fragments = Vec::with_capacity(solution.num_subcircuits);
        for sub in 0..solution.num_subcircuits {
            let fragment = build_fragment(
                sub,
                plan,
                &segments,
                &wire_cuts,
                &gate_cut_nodes,
                &gate_cut_forms,
                reuse,
            )?;
            for &(orig, _) in &fragment.output_clbits {
                output_owner[orig] = Some(sub);
            }
            fragments.push(fragment);
        }

        Ok(FragmentSet {
            fragments,
            wire_cuts,
            gate_cut_nodes,
            gate_cut_forms,
            original_qubits: circuit.num_qubits(),
            output_owner,
        })
    }
}

fn build_fragment(
    sub: usize,
    plan: &CutPlan,
    all_segments: &[crate::spec::Segment],
    wire_cuts: &[WireCutPoint],
    gate_cut_nodes: &[NodeId],
    gate_cut_forms: &[ZzForm],
    reuse: bool,
) -> Result<Fragment, CoreError> {
    let dag = plan.dag();
    let solution = plan.solution();

    // Segments of this fragment, ordered by (start layer, qubit) so that the
    // interval assignment below is deterministic.
    let mut segment_ids: Vec<usize> =
        (0..all_segments.len()).filter(|&i| all_segments[i].subcircuit == sub).collect();
    segment_ids.sort_by_key(|&i| (all_segments[i].start_layer, all_segments[i].qubit.index()));

    // Physical qubit per segment.
    let intervals: Vec<(usize, usize)> = segment_ids
        .iter()
        .map(|&i| (all_segments[i].start_layer, all_segments[i].end_layer))
        .collect();
    let physical: Vec<usize> = if reuse {
        assign_intervals(&intervals).physical
    } else {
        (0..segment_ids.len()).collect()
    };
    let num_physical = physical.iter().copied().max().map_or(0, |m| m + 1);

    // Map (node, wire) -> local segment slot.
    let mut node_segment: HashMap<(NodeId, usize), usize> = HashMap::new();
    for (slot, &seg_id) in segment_ids.iter().enumerate() {
        let seg = &all_segments[seg_id];
        for &node in &seg.nodes {
            node_segment.insert((node, seg.qubit.index()), slot);
        }
    }

    // Classical bit layout: outputs (by original qubit), then outgoing cuts
    // (by cut id), then gate-cut roles (by gate-cut id).
    let mut output_clbits = Vec::new();
    let mut cut_clbits = Vec::new();
    let mut incoming_cuts = Vec::new();
    let mut outgoing_cuts = Vec::new();
    let mut output_segments: Vec<(usize, usize)> = Vec::new(); // (orig qubit, slot)
    for (slot, &seg_id) in segment_ids.iter().enumerate() {
        let seg = &all_segments[seg_id];
        if let Some(cut) = seg.incoming_cut {
            incoming_cuts.push((cut, slot));
        }
        if let Some(cut) = seg.outgoing_cut {
            outgoing_cuts.push((cut, slot));
        } else {
            output_segments.push((seg.qubit.index(), slot));
        }
    }
    output_segments.sort_unstable();
    incoming_cuts.sort_unstable();
    outgoing_cuts.sort_unstable();

    let mut clbit = 0usize;
    let mut output_clbit_of_slot: HashMap<usize, usize> = HashMap::new();
    for &(orig, slot) in &output_segments {
        output_clbits.push((orig, clbit));
        output_clbit_of_slot.insert(slot, clbit);
        clbit += 1;
    }
    let mut cut_clbit_of_slot: HashMap<usize, usize> = HashMap::new();
    for &(cut, slot) in &outgoing_cuts {
        cut_clbits.push((cut, clbit));
        cut_clbit_of_slot.insert(slot, clbit);
        clbit += 1;
    }

    // Gate-cut roles hosted by this fragment.
    let mut gate_cut_roles = Vec::new();
    let mut gatecut_clbits = Vec::new();
    let mut gate_forms = HashMap::new();
    for (cut_id, &node) in gate_cut_nodes.iter().enumerate() {
        let pos = solution.gate_cuts.iter().position(|&g| g == node).expect("listed gate cut");
        let (top, bottom) = solution.gate_cut_assignment[pos];
        if top == sub {
            gate_cut_roles.push((cut_id, GateHalf::Top));
        } else if bottom == sub {
            gate_cut_roles.push((cut_id, GateHalf::Bottom));
        } else {
            continue;
        }
        gate_forms.insert(cut_id, gate_cut_forms[cut_id].clone());
        gatecut_clbits.push((cut_id, clbit));
        clbit += 1;
    }
    let role_of_cut: HashMap<usize, usize> =
        gate_cut_roles.iter().enumerate().map(|(i, &(cut, _))| (cut, i)).collect();
    let gatecut_clbit_of_role: HashMap<usize, usize> =
        gate_cut_roles.iter().enumerate().map(|(i, _)| (i, gatecut_clbits[i].1)).collect();

    // Emit the skeleton in (layer, node id) order.
    let mut nodes: Vec<NodeId> = Vec::new();
    for &seg_id in &segment_ids {
        nodes.extend(all_segments[seg_id].nodes.iter().copied());
    }
    nodes.sort_unstable();
    nodes.dedup();
    nodes.sort_by_key(|&id| (dag.node(id).layer, id));

    let mut skeleton = Vec::new();
    let mut physical_dirty = vec![false; num_physical.max(1)];
    let mut remaining_in_segment: Vec<usize> =
        segment_ids.iter().map(|&i| all_segments[i].nodes.len()).collect();
    let mut started_segment = vec![false; segment_ids.len()];

    let incoming_slot_order: Vec<usize> = incoming_cuts.iter().map(|&(c, _)| c).collect();
    let slot_prep_index: HashMap<usize, usize> =
        incoming_cuts.iter().enumerate().map(|(i, &(_, slot))| (slot, i)).collect();
    let slot_cutmeasure_index: HashMap<usize, usize> =
        outgoing_cuts.iter().enumerate().map(|(i, &(_, slot))| (slot, i)).collect();
    let slot_output_index: HashMap<usize, usize> =
        output_segments.iter().enumerate().map(|(i, &(_, slot))| (slot, i)).collect();

    for &node in &nodes {
        let dag_node = dag.node(node);
        let node_qubits = dag_node.op.qubits();
        // start any segments this node begins (on wires owned by this fragment)
        for q in &node_qubits {
            if let Some(&slot) = node_segment.get(&(node, q.index())) {
                if !started_segment[slot] {
                    started_segment[slot] = true;
                    let phys = physical[slot];
                    if physical_dirty[phys] {
                        skeleton.push(FragmentOp::Reset { phys });
                    }
                    physical_dirty[phys] = true;
                    if let Some(&prep_index) = slot_prep_index.get(&slot) {
                        skeleton.push(FragmentOp::Prep { slot: prep_index, phys });
                    }
                }
            }
        }
        // emit the node itself
        if let Some(cut_id) = gate_cut_nodes.iter().position(|&g| g == node) {
            if let Some(&role) = role_of_cut.get(&cut_id) {
                let half = gate_cut_roles[role].1;
                let wire_slot = match half {
                    GateHalf::Top => node_qubits[0].index(),
                    GateHalf::Bottom => node_qubits[1].index(),
                };
                let slot = node_segment[&(node, wire_slot)];
                skeleton.push(FragmentOp::GateCutHalf {
                    role,
                    phys: physical[slot],
                    clbit: gatecut_clbit_of_role[&role],
                });
            }
        } else {
            match &dag_node.op {
                Operation::Single { gate, qubit } => {
                    let slot = node_segment[&(node, qubit.index())];
                    skeleton.push(FragmentOp::Gate { gate: *gate, qubits: vec![physical[slot]] });
                }
                Operation::Two { gate, qubits } => {
                    let slot_a = node_segment[&(node, qubits[0].index())];
                    let slot_b = node_segment[&(node, qubits[1].index())];
                    skeleton.push(FragmentOp::Gate {
                        gate: *gate,
                        qubits: vec![physical[slot_a], physical[slot_b]],
                    });
                }
                other => {
                    return Err(CoreError::InvalidCutSolution {
                        reason: format!("unexpected non-gate operation {other:?} in cut circuit"),
                    })
                }
            }
        }
        // finish any segments this node ends
        for q in &node_qubits {
            if let Some(&slot) = node_segment.get(&(node, q.index())) {
                remaining_in_segment[slot] -= 1;
                if remaining_in_segment[slot] == 0 {
                    let phys = physical[slot];
                    if let Some(&idx) = slot_cutmeasure_index.get(&slot) {
                        skeleton.push(FragmentOp::CutMeasure {
                            slot: idx,
                            phys,
                            clbit: cut_clbit_of_slot[&slot],
                        });
                    } else if let Some(&idx) = slot_output_index.get(&slot) {
                        skeleton.push(FragmentOp::OutputMeasure {
                            slot: idx,
                            phys,
                            clbit: output_clbit_of_slot[&slot],
                        });
                    }
                }
            }
        }
    }

    let _ = wire_cuts;
    Ok(Fragment {
        index: sub,
        num_physical: num_physical.max(1),
        num_clbits: clbit,
        skeleton,
        incoming_cuts: incoming_slot_order,
        outgoing_cuts: outgoing_cuts.iter().map(|&(c, _)| c).collect(),
        gate_cut_roles,
        output_clbits,
        cut_clbits,
        gatecut_clbits,
        gate_forms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::CutPlanner;
    use crate::QrccConfig;
    use qrcc_circuit::generators;
    use std::time::Duration;

    fn plan_chain(n: usize, d: usize) -> CutPlan {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c.rz(0.3, n - 1);
        CutPlanner::new(
            QrccConfig::new(d).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO),
        )
        .plan(&c)
        .unwrap()
    }

    #[test]
    fn fragments_respect_the_device_budget() {
        let plan = plan_chain(6, 3);
        let set = FragmentSet::from_plan(&plan).unwrap();
        assert_eq!(set.fragments.len(), plan.num_subcircuits());
        for fragment in &set.fragments {
            assert!(fragment.num_physical <= 3, "fragment width {}", fragment.num_physical);
            // every variant instantiates to a circuit that fits the device
            let circuit = fragment.instantiate(&fragment.default_variant());
            assert!(circuit.num_qubits() <= 3);
            assert_eq!(circuit.num_clbits(), fragment.num_clbits);
        }
        // every original qubit's output is produced by exactly one fragment
        assert!(set.output_owner.iter().all(Option::is_some));
    }

    #[test]
    fn cut_accounting_matches_the_plan() {
        let plan = plan_chain(6, 3);
        let set = FragmentSet::from_plan(&plan).unwrap();
        assert_eq!(set.num_wire_cuts(), plan.wire_cut_count());
        assert_eq!(set.num_gate_cuts(), plan.gate_cut_count());
        let incoming: usize = set.fragments.iter().map(|f| f.incoming_cuts.len()).sum();
        let outgoing: usize = set.fragments.iter().map(|f| f.outgoing_cuts.len()).sum();
        assert_eq!(incoming, set.num_wire_cuts());
        assert_eq!(outgoing, set.num_wire_cuts());
        let legs: usize = set.fragments.iter().map(Fragment::cut_leg_count).sum();
        assert_eq!(legs, 2 * set.num_wire_cuts() + 2 * set.num_gate_cuts());
    }

    #[test]
    fn cut_adjacency_connects_every_cut_endpoint_pair() {
        let plan = plan_chain(6, 3);
        let set = FragmentSet::from_plan(&plan).unwrap();
        // every wire cut has both endpoints, in different fragments
        for (cut, (measure, prepare)) in set.wire_cut_endpoints().into_iter().enumerate() {
            let measure = measure.unwrap_or_else(|| panic!("cut {cut} lacks a measuring side"));
            let prepare = prepare.unwrap_or_else(|| panic!("cut {cut} lacks a preparing side"));
            assert_ne!(measure, prepare, "cut {cut} must cross fragments");
            let adjacency = set.cut_adjacency();
            assert!(adjacency[measure].contains(&prepare));
            assert!(adjacency[prepare].contains(&measure));
        }
        // a chain plan's cut graph is connected: no isolated fragment
        let adjacency = set.cut_adjacency();
        assert!(adjacency.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn variant_count_matches_paper_formula() {
        let plan = plan_chain(5, 3);
        let set = FragmentSet::from_plan(&plan).unwrap();
        for fragment in &set.fragments {
            let expected = 4u64.pow(fragment.incoming_cuts.len() as u32)
                * 3u64.pow(fragment.outgoing_cuts.len() as u32)
                * 6u64.pow(fragment.gate_cut_roles.len() as u32);
            assert_eq!(fragment.variant_count(), expected);
        }
    }

    #[test]
    fn instantiation_reflects_variant_choices() {
        let plan = plan_chain(6, 3);
        let set = FragmentSet::from_plan(&plan).unwrap();
        // find a fragment with an incoming cut and one with an outgoing cut
        let downstream =
            set.fragments.iter().find(|f| !f.incoming_cuts.is_empty()).expect("has incoming");
        let mut variant = downstream.default_variant();
        variant.init_states[0] = InitState::PlusI;
        let circuit = downstream.instantiate(&variant);
        // |i> preparation adds an H and an S
        assert!(circuit.count_ops().get("s").copied().unwrap_or(0) >= 1);

        let upstream =
            set.fragments.iter().find(|f| !f.outgoing_cuts.is_empty()).expect("has outgoing");
        let mut variant = upstream.default_variant();
        variant.cut_bases[0] = CutBasis::Y;
        let circuit = upstream.instantiate(&variant);
        assert!(circuit.count_ops().get("sdg").copied().unwrap_or(0) >= 1);
    }

    #[test]
    fn gate_cut_fragments_host_instance_slots() {
        let (circuit, _) = generators::qaoa_regular(6, 3, 1, 11);
        let config = QrccConfig::new(4)
            .with_subcircuit_range(2, 3)
            .with_gate_cuts(true)
            .with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&circuit).unwrap();
        let set = FragmentSet::from_plan(&plan).unwrap();
        if set.num_gate_cuts() == 0 {
            // the heuristic decided wire cuts alone were cheaper; nothing to check
            return;
        }
        let roles: usize = set.fragments.iter().map(|f| f.gate_cut_roles.len()).sum();
        assert_eq!(roles, 2 * set.num_gate_cuts());
        // a measuring instance adds a mid-circuit measurement
        let fragment =
            set.fragments.iter().find(|f| !f.gate_cut_roles.is_empty()).expect("has role");
        let mut variant = fragment.default_variant();
        let half = fragment.gate_cut_roles[0].1;
        variant.gate_instances[0] = if half == GateHalf::Top { 3 } else { 5 };
        let measuring = fragment.instantiate(&variant);
        let baseline = fragment.instantiate(&fragment.default_variant());
        assert_eq!(measuring.count_ops()["measure"], baseline.count_ops()["measure"] + 1);
    }
}
