//! QRCC — integrated qubit reuse and circuit cutting.
//!
//! This crate implements the paper's primary contribution: a compiler pass
//! that evaluates large quantum circuits on small quantum devices by jointly
//! exploiting **wire cutting**, **gate cutting** and **qubit reuse**, plus the
//! classical post-processing that reconstructs the original circuit's output.
//!
//! The main entry points are:
//!
//! * [`planner::CutPlanner`] — finds a reuse-aware cutting solution for a
//!   device size (heuristic search plus an exact ILP refinement on small
//!   instances, built on [`qrcc_ilp`]).
//! * [`cutqc::CutQcPlanner`] — the CutQC-style baseline (wire cuts only, no
//!   reuse) used throughout the paper's comparisons.
//! * [`reuse::ReusePass`] — a standalone CaQR-style qubit-reuse pass.
//! * [`fragment::FragmentSet`] — turns a plan into executable subcircuit
//!   variants (measurement/initialisation variants for wire cuts, the six
//!   Mitarai–Fujii instances for gate cuts).
//! * [`execute`] — the batch-first execution layer: enumerate
//!   [`fragment::VariantRequest`]s, deduplicate by structural
//!   [`fragment::VariantKey`], run one rayon-parallel batch on an
//!   [`execute::ExecutionBackend`].
//! * [`schedule`] — the execution scheduler between batching and
//!   reconstruction: route each deduplicated circuit across a
//!   [`schedule::DeviceRegistry`] of heterogeneous backends, split a global
//!   shot budget by reconstruction-variance weight (ShotQC-style), and
//!   stream result chunks into incremental reconstruction.
//! * [`dispatch`] — the fault-tolerant async dispatch engine inside the
//!   scheduler: a channel-driven event loop over per-backend worker threads
//!   with a bounded in-flight chunk window (backpressure from slow
//!   reconstruction), retry with failer exclusion, and per-job lifecycle
//!   telemetry; plus the `dispatch::FlakyBackend` /
//!   `dispatch::QueueBackend` fault-injection doubles (behind the
//!   `testing` feature).
//! * [`cache`] — the shot-aware, content-addressed result cache: executed
//!   distributions keyed by structural hash with full/delta-hit shot
//!   semantics, LRU weight eviction and snapshot persistence, consulted by
//!   the dispatcher (via [`schedule::DeviceRegistry::with_result_cache`])
//!   and by `QrccServer` workers.
//! * [`reconstruct`] — probability-vector and expectation-value
//!   reconstruction through a shared contraction engine (dense global loop
//!   or pairwise fragment-tensor contraction with sparse pruning, selected
//!   by [`ReconstructionStrategy`]), and the post-processing cost models of
//!   Figure 6.
//! * [`pipeline::QrccPipeline`] — the end-to-end flow
//!   (plan → fragments → execute → reconstruct).
//!
//! # Example
//!
//! ```rust
//! use qrcc_circuit::Circuit;
//! use qrcc_core::pipeline::{ExactBackend, QrccPipeline};
//! use qrcc_core::QrccConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Evaluate a 4-qubit GHZ circuit using only a 3-qubit device.
//! let mut ghz = Circuit::new(4);
//! ghz.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
//! let pipeline = QrccPipeline::plan(&ghz, QrccConfig::new(3))?;
//! // execute once (deduplicated, parallel batch), then consume
//! let backend = ExactBackend::new();
//! let results = pipeline.execute(&backend)?;
//! let p = pipeline.reconstruct_probabilities_from(&results)?;
//! assert!((p[0b0000] - 0.5).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod error;

pub mod analyze;
pub mod cache;
pub mod cutqc;
pub mod dispatch;
pub mod execute;
pub mod fragment;
pub mod gatecut;
pub mod heuristic;
pub mod model;
pub mod obs;
pub mod pipeline;
pub mod planner;
pub mod reconstruct;
pub mod reuse;
pub mod schedule;
pub mod spec;

pub use analyze::{
    AnalysisContext, AnalysisReport, Analyzer, Diagnostic, Lint, LintLevel, Location, Severity,
};
pub use cache::{CacheLookup, CacheStats, ResultCache, ResultCachePolicy};
pub use config::{QrccConfig, SchedulePolicy, ShotAllocation, ALPHA_WIRE_CUT, BETA_GATE_CUT};
pub use error::CoreError;
pub use obs::{
    Histogram, MetricsSnapshot, MonitorPolicy, ObsPolicy, PhaseProfile, QrccReport, RateCounter,
    SloEvaluation, SloSpec, SloStatus, WindowedHistogram,
};
pub use reconstruct::{ReconstructionOptions, ReconstructionReport, ReconstructionStrategy};
pub use schedule::{DeviceRegistry, ScheduleReport, Scheduler};
pub use spec::{CutMetrics, CutSolution, Segment, SubcircuitId, WireCutPoint};
