//! The end-to-end QRCC pipeline: plan → fragments → execute → reconstruct.
//!
//! [`QrccPipeline`] bundles the steps the paper's Figure 4 / Table 3 flow
//! performs: plan a cut for a device size, generate the subcircuit variants,
//! run them on a backend (exact simulator or a noisy shots-based device), and
//! reconstruct either the probability distribution (wire cuts only) or an
//! observable's expectation value (wire + gate cuts).

use crate::execute::ExecutionBackend;
use crate::fragment::FragmentSet;
use crate::planner::{CutPlan, CutPlanner};
use crate::reconstruct::{ExpectationReconstructor, ProbabilityReconstructor};
use crate::{CoreError, QrccConfig};
use qrcc_circuit::observable::PauliObservable;
use qrcc_circuit::Circuit;

pub use crate::execute::{CachingBackend, ExactBackend, ExecutionBackend as Backend, ShotsBackend};

/// End-to-end QRCC pipeline for one circuit.
///
/// ```rust
/// use qrcc_circuit::Circuit;
/// use qrcc_core::pipeline::{ExactBackend, QrccPipeline};
/// use qrcc_core::QrccConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ghz = Circuit::new(4);
/// ghz.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
/// let config = QrccConfig::new(3).with_ilp_time_limit(std::time::Duration::ZERO);
/// let pipeline = QrccPipeline::plan(&ghz, config)?;
/// let probabilities = pipeline.reconstruct_probabilities(&ExactBackend::new())?;
/// assert!((probabilities[0] - 0.5).abs() < 1e-6);
/// assert!((probabilities[0b1111] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrccPipeline {
    plan: CutPlan,
    fragments: FragmentSet,
}

impl QrccPipeline {
    /// Plans a cut for `circuit` and builds its fragments.
    ///
    /// # Errors
    ///
    /// Propagates planner errors ([`CoreError::NoCutFound`],
    /// [`CoreError::InvalidDeviceSize`]) and fragment-construction errors.
    pub fn plan(circuit: &Circuit, config: QrccConfig) -> Result<Self, CoreError> {
        let plan = CutPlanner::new(config).plan(circuit)?;
        Self::from_plan(plan)
    }

    /// Builds the pipeline from an existing plan.
    ///
    /// # Errors
    ///
    /// Propagates fragment-construction errors.
    pub fn from_plan(plan: CutPlan) -> Result<Self, CoreError> {
        let fragments = FragmentSet::from_plan(&plan)?;
        Ok(QrccPipeline { plan, fragments })
    }

    /// The cut plan.
    pub fn plan_ref(&self) -> &CutPlan {
        &self.plan
    }

    /// The subcircuit fragments.
    pub fn fragments(&self) -> &FragmentSet {
        &self.fragments
    }

    /// Total number of subcircuit instances the plan requires.
    pub fn total_instances(&self) -> u64 {
        self.fragments.total_variants()
    }

    /// Reconstructs the original circuit's probability distribution by
    /// executing every wire-cut variant on `backend`.
    ///
    /// # Errors
    ///
    /// See [`ProbabilityReconstructor::reconstruct`].
    pub fn reconstruct_probabilities(
        &self,
        backend: &dyn ExecutionBackend,
    ) -> Result<Vec<f64>, CoreError> {
        ProbabilityReconstructor::new().reconstruct(&self.fragments, backend)
    }

    /// Reconstructs the expectation value of `observable`.
    ///
    /// # Errors
    ///
    /// See [`ExpectationReconstructor::reconstruct`].
    pub fn reconstruct_expectation(
        &self,
        backend: &dyn ExecutionBackend,
        observable: &PauliObservable,
    ) -> Result<f64, CoreError> {
        ExpectationReconstructor::new().reconstruct(&self.fragments, backend, observable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrcc_circuit::observable::PauliString;
    use qrcc_sim::device::{Device, DeviceConfig};
    use qrcc_sim::noise::NoiseModel;
    use qrcc_sim::StateVector;
    use std::time::Duration;

    fn small_config(d: usize) -> QrccConfig {
        QrccConfig::new(d).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO)
    }

    #[test]
    fn pipeline_probability_path_end_to_end() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).t(1).cx(1, 2).ry(0.4, 2).cx(2, 3);
        let pipeline = QrccPipeline::plan(&c, small_config(3)).unwrap();
        assert!(pipeline.total_instances() > 0);
        let backend = ExactBackend::new();
        let reconstructed = pipeline.reconstruct_probabilities(&backend).unwrap();
        let exact = StateVector::from_circuit(&c).unwrap().probabilities();
        for (a, b) in exact.iter().zip(&reconstructed) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn pipeline_expectation_path_with_shots_backend() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.8, 1).cx(1, 2).cx(2, 3).rz(0.3, 3);
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, PauliString::zz(4, 0, 3));
        let config = small_config(3).with_gate_cuts(true);
        let pipeline = QrccPipeline::plan(&c, config).unwrap();
        // shots on an ideal device large enough for every fragment
        let device = Device::new(DeviceConfig::ideal(3).with_seed(11));
        let backend = ShotsBackend::new(device, 60_000);
        let estimate = pipeline.reconstruct_expectation(&backend, &obs).unwrap();
        let exact = StateVector::from_circuit(&c).unwrap().expectation(&obs);
        assert!(
            (estimate - exact).abs() < 0.08,
            "shots estimate {estimate} vs exact {exact}"
        );
    }

    #[test]
    fn noisy_subcircuits_beat_noisy_whole_circuit() {
        // Miniature version of Table 3: a whole-circuit run on a noisy device
        // loses more accuracy than QRCC's smaller subcircuits with the same
        // noise model.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).ry(0.9, 3).cx(2, 3).cx(1, 2).cx(0, 1);
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, PauliString::zz(4, 0, 1));
        let exact = StateVector::from_circuit(&c).unwrap().expectation(&obs);

        let noise = NoiseModel { single_qubit_error: 5e-3, two_qubit_error: 5e-2, readout_error: 2e-2 };
        // whole-circuit execution on a noisy 4-qubit device
        let whole_device = Device::new(DeviceConfig::noisy(4, noise).with_seed(5));
        let whole = whole_device.estimate_expectation(&c, &obs, 8192).unwrap();

        // QRCC: subcircuits on a noisy 3-qubit device
        let pipeline = QrccPipeline::plan(&c, small_config(3)).unwrap();
        let sub_device = Device::new(DeviceConfig::noisy(3, noise).with_seed(5));
        let backend = ShotsBackend::new(sub_device, 8192);
        let qrcc = pipeline.reconstruct_expectation(&backend, &obs).unwrap();

        let whole_error = (whole - exact).abs();
        let qrcc_error = (qrcc - exact).abs();
        assert!(
            qrcc_error <= whole_error + 0.05,
            "qrcc error {qrcc_error} should not be much worse than whole-circuit error {whole_error}"
        );
    }
}
