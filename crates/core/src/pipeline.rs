//! The end-to-end QRCC pipeline: plan → fragments → execute → reconstruct.
//!
//! [`QrccPipeline`] bundles the steps the paper's Figure 4 / Table 3 flow
//! performs: plan a cut for a device size, generate the subcircuit variants,
//! run them on a backend (exact simulator or a noisy shots-based device), and
//! reconstruct either the probability distribution (wire cuts only) or an
//! observable's expectation value (wire + gate cuts).
//!
//! Execution is batch-first: [`QrccPipeline::execute`] (and
//! [`QrccPipeline::execute_observables`]) enumerate every needed
//! [`FragmentVariant`](crate::fragment::FragmentVariant) as pure data,
//! deduplicate by structural [`VariantKey`](crate::fragment::VariantKey), and
//! submit **one batch** to the backend — which the provided backends run
//! rayon-parallel. The returned [`ExecutionResults`] can then feed
//! [`QrccPipeline::reconstruct_probabilities_from`] and any number of
//! [`QrccPipeline::reconstruct_expectation_from`] calls without touching the
//! device again.
//!
//! Multi-device runs go through a [`Scheduler`]:
//! [`QrccPipeline::execute_scheduled`] routes the batch across a device
//! registry and dispatches it fault-tolerantly (bounded in-flight windows,
//! retry with failer exclusion — see [`crate::dispatch`]), while
//! [`QrccPipeline::execute_streaming`] and
//! [`QrccPipeline::execute_observables_streaming`] additionally fold each
//! delivered chunk into fragment tensors as it arrives, overlapping
//! reconstruction with device execution for both workloads.

use crate::analyze::{AnalysisContext, AnalysisReport, Analyzer};
use crate::execute::{execute_requests, ExecutionBackend, ExecutionResults};
use crate::fragment::{FragmentSet, VariantRequest};
use crate::planner::{CutPlan, CutPlanner};
use crate::reconstruct::{
    ExpectationAccumulator, ExpectationReconstructor, ProbabilityAccumulator,
    ProbabilityReconstructor, ReconstructionOptions, ReconstructionReport,
};
use crate::schedule::{ScheduleReport, Scheduler};
use crate::{CoreError, QrccConfig};
use qrcc_circuit::observable::PauliObservable;
use qrcc_circuit::Circuit;
use std::time::Duration;

pub use crate::execute::{CachingBackend, ExactBackend, ExecutionBackend as Backend, ShotsBackend};

/// End-to-end QRCC pipeline for one circuit.
///
/// ```rust
/// use qrcc_circuit::Circuit;
/// use qrcc_core::pipeline::{ExactBackend, QrccPipeline};
/// use qrcc_core::QrccConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ghz = Circuit::new(4);
/// ghz.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
/// let config = QrccConfig::new(3).with_ilp_time_limit(std::time::Duration::ZERO);
/// let pipeline = QrccPipeline::plan(&ghz, config)?;
/// // enumerate → dedup → one parallel batch → consume
/// let backend = ExactBackend::new();
/// let results = pipeline.execute(&backend)?;
/// let probabilities = pipeline.reconstruct_probabilities_from(&results)?;
/// assert!((probabilities[0] - 0.5).abs() < 1e-6);
/// assert!((probabilities[0b1111] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrccPipeline {
    plan: CutPlan,
    fragments: FragmentSet,
}

impl QrccPipeline {
    /// Plans a cut for `circuit` and builds its fragments.
    ///
    /// # Errors
    ///
    /// Propagates planner errors ([`CoreError::NoCutFound`],
    /// [`CoreError::InvalidDeviceSize`]) and fragment-construction errors.
    pub fn plan(circuit: &Circuit, config: QrccConfig) -> Result<Self, CoreError> {
        // a config with tracing enabled turns the global tracer on; a
        // default config leaves it untouched
        crate::obs::tracer().configure(&config.obs);
        let _span = crate::obs::tracer().span("phase.plan");
        let plan = CutPlanner::new(config).plan(circuit)?;
        Self::from_plan(plan)
    }

    /// Builds the pipeline from an existing plan.
    ///
    /// # Errors
    ///
    /// Propagates fragment-construction errors.
    pub fn from_plan(plan: CutPlan) -> Result<Self, CoreError> {
        let fragments = FragmentSet::from_plan(&plan)?;
        Ok(QrccPipeline { plan, fragments })
    }

    /// The cut plan.
    pub fn plan_ref(&self) -> &CutPlan {
        &self.plan
    }

    /// The subcircuit fragments.
    pub fn fragments(&self) -> &FragmentSet {
        &self.fragments
    }

    /// Total number of subcircuit instances the plan requires.
    pub fn total_instances(&self) -> u64 {
        self.fragments.total_variants()
    }

    /// The reconstruction options the plan's [`QrccConfig`] selects
    /// (strategy and sparse-pruning tolerance).
    pub fn reconstruction_options(&self) -> ReconstructionOptions {
        ReconstructionOptions::from_config(self.plan.config())
    }

    fn probability_reconstructor(&self) -> ProbabilityReconstructor {
        ProbabilityReconstructor::with_options(self.reconstruction_options())
    }

    fn expectation_reconstructor(&self) -> ExpectationReconstructor {
        ExpectationReconstructor::with_options(self.reconstruction_options())
    }

    // ---- phase 0: pre-flight static analysis ----

    /// Runs the pre-flight [`analyze`](crate::analyze) pass over the plan:
    /// circuit lints (`QL01xx`) on the original circuit and plan lints
    /// (`QL02xx`) on the fragments, using the plan's [`QrccConfig`]. Fleet
    /// lints need a registry — see [`QrccPipeline::analyze_with_fleet`].
    pub fn analyze(&self) -> AnalysisReport {
        Analyzer::new().run(
            &AnalysisContext::new()
                .with_circuit(self.plan.circuit())
                .with_fragments(&self.fragments)
                .with_config(self.plan.config()),
        )
    }

    /// Runs the full pre-flight pass — circuit, plan **and** fleet lints
    /// (`QL03xx`): statically predicting
    /// [`CoreError::NoCompatibleBackend`] and
    /// [`CoreError::ShotBudgetTooSmall`] against `fleet` before any backend
    /// is contacted.
    pub fn analyze_with_fleet(&self, fleet: &crate::schedule::DeviceRegistry) -> AnalysisReport {
        Analyzer::new().run(
            &AnalysisContext::new()
                .with_circuit(self.plan.circuit())
                .with_fragments(&self.fragments)
                .with_config(self.plan.config())
                .with_fleet(fleet),
        )
    }

    /// [`QrccPipeline::analyze_with_fleet`] plus the severity gate of the
    /// plan's [`QrccConfig::lint_level`]: returns the report when it passes,
    /// fails fast otherwise — call this before
    /// [`QrccPipeline::execute_scheduled`] to turn mid-dispatch failures
    /// into a pre-flight [`CoreError::AnalysisFailed`].
    ///
    /// # Errors
    ///
    /// [`CoreError::AnalysisFailed`] when the report holds diagnostics at or
    /// above the configured [`LintLevel`](crate::analyze::LintLevel).
    pub fn preflight(
        &self,
        fleet: &crate::schedule::DeviceRegistry,
    ) -> Result<AnalysisReport, CoreError> {
        let report = self.analyze_with_fleet(fleet);
        report.gate(self.plan.config().lint_level)?;
        Ok(report)
    }

    // ---- phase 1+2: enumerate, deduplicate and execute ----

    /// Executes the probability workload's variants as one deduplicated
    /// batch on `backend`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::GateCutNeedsExpectation`] if the plan contains gate
    ///   cuts (use [`QrccPipeline::execute_observables`] instead).
    /// * [`CoreError::TooManyCuts`] if the plan exceeds what the configured
    ///   reconstruction strategy supports (total cuts for `Dense`,
    ///   per-contraction legs for `Contract`).
    /// * Any backend error.
    pub fn execute(&self, backend: &dyn ExecutionBackend) -> Result<ExecutionResults, CoreError> {
        let requests = self.probability_reconstructor().requests(&self.fragments)?;
        self.execute_requests(backend, &requests)
    }

    /// Executes, as **one** deduplicated batch, every variant needed to
    /// evaluate all `observables` — Pauli terms (within and across
    /// observables) that share measurement-basis signatures run once.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`ExpectationReconstructor::requests`], plus any backend error.
    pub fn execute_observables(
        &self,
        backend: &dyn ExecutionBackend,
        observables: &[&PauliObservable],
    ) -> Result<ExecutionResults, CoreError> {
        let reconstructor = self.expectation_reconstructor();
        let mut requests = Vec::new();
        for observable in observables {
            requests.extend(reconstructor.requests(&self.fragments, observable)?);
        }
        self.execute_requests(backend, &requests)
    }

    /// Executes, as one deduplicated batch, the union of the probability
    /// workload (when the plan is wire-cut-only) and every observable's
    /// variants — the result serves
    /// [`QrccPipeline::reconstruct_probabilities_from`] *and*
    /// [`QrccPipeline::reconstruct_expectation_from`] for each observable
    /// without re-execution.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QrccPipeline::execute`] /
    /// [`QrccPipeline::execute_observables`] (gate-cut plans skip the
    /// probability part instead of erroring), plus any backend error.
    pub fn execute_all(
        &self,
        backend: &dyn ExecutionBackend,
        observables: &[&PauliObservable],
    ) -> Result<ExecutionResults, CoreError> {
        let mut requests = Vec::new();
        if self.fragments.num_gate_cuts() == 0 {
            requests.extend(self.probability_reconstructor().requests(&self.fragments)?);
        }
        let reconstructor = self.expectation_reconstructor();
        for observable in observables {
            requests.extend(reconstructor.requests(&self.fragments, observable)?);
        }
        self.execute_requests(backend, &requests)
    }

    /// Executes an explicit request list (phase 2 only): deduplicates by
    /// [`VariantKey`](crate::fragment::VariantKey), collapses structurally
    /// identical circuits and submits one batch.
    ///
    /// # Errors
    ///
    /// See [`execute_requests`].
    pub fn execute_requests(
        &self,
        backend: &dyn ExecutionBackend,
        requests: &[VariantRequest],
    ) -> Result<ExecutionResults, CoreError> {
        execute_requests(&self.fragments, requests, backend)
    }

    // ---- scheduled execution: multi-device routing + shot allocation ----

    /// Executes the probability workload through a multi-device
    /// [`Scheduler`]: the deduplicated batch is routed across the
    /// scheduler's [`DeviceRegistry`](crate::schedule::DeviceRegistry)
    /// (backends run concurrently), and an optional global shot budget is
    /// split by reconstruction-variance weight. Returns the merged results
    /// plus the [`ScheduleReport`] (per-backend routing, shots spent).
    ///
    /// # Errors
    ///
    /// See [`QrccPipeline::execute`] and [`Scheduler::execute_chunked`].
    pub fn execute_scheduled(
        &self,
        scheduler: &Scheduler<'_>,
    ) -> Result<(ExecutionResults, ScheduleReport), CoreError> {
        let requests = self.probability_reconstructor().requests(&self.fragments)?;
        scheduler.execute_with_report(&self.fragments, &requests)
    }

    /// Executes every observable's variants through a multi-device
    /// [`Scheduler`] — the scheduled counterpart of
    /// [`QrccPipeline::execute_observables`].
    ///
    /// # Errors
    ///
    /// See [`QrccPipeline::execute_observables`] and
    /// [`Scheduler::execute_chunked`].
    pub fn execute_observables_scheduled(
        &self,
        scheduler: &Scheduler<'_>,
        observables: &[&PauliObservable],
    ) -> Result<(ExecutionResults, ScheduleReport), CoreError> {
        let reconstructor = self.expectation_reconstructor();
        let mut requests = Vec::new();
        for observable in observables {
            requests.extend(reconstructor.requests(&self.fragments, observable)?);
        }
        scheduler.execute_with_report(&self.fragments, &requests)
    }

    /// Streams the probability workload: the scheduler executes the batch in
    /// chunks (size from
    /// [`SchedulePolicy::chunk_size`](crate::SchedulePolicy::chunk_size)) on
    /// a worker thread while this thread folds every finished chunk into the
    /// fragment tensors — so
    /// classical reconstruction overlaps device execution, and only the
    /// final contraction remains once the last chunk lands.
    ///
    /// # Errors
    ///
    /// See [`QrccPipeline::execute_scheduled`] and
    /// [`ProbabilityAccumulator`].
    pub fn execute_streaming(
        &self,
        scheduler: &Scheduler<'_>,
    ) -> Result<(Vec<f64>, ReconstructionReport, ScheduleReport), CoreError> {
        let tracer = crate::obs::tracer();
        let root = tracer.span("pipeline.execute");
        let root_id = root.id();
        let started = std::time::Instant::now();
        let mut profile = crate::obs::PhaseProfile::new();

        let phase = std::time::Instant::now();
        let requests = {
            let _span = tracer.span("phase.enumerate");
            self.probability_reconstructor().requests(&self.fragments)?
        };
        let mut accumulator =
            ProbabilityAccumulator::new(&self.fragments, self.reconstruction_options())?;
        profile.add("enumerate", phase.elapsed());

        let mut fold_wall = Duration::ZERO;
        let phase = std::time::Instant::now();
        let schedule_report = std::thread::scope(|scope| -> Result<ScheduleReport, CoreError> {
            let (sender, receiver) = std::sync::mpsc::channel::<ExecutionResults>();
            let fragments = &self.fragments;
            let producer = scope.spawn(move || {
                let _span = tracer.span_under("phase.dispatch", root_id);
                scheduler.execute_chunked(fragments, &requests, |chunk| {
                    // an unbounded channel: send fails only when the
                    // consumer stopped folding (it hit an error)
                    sender.send(chunk).map_err(|_| CoreError::InvalidCutSolution {
                        reason: "streaming consumer stopped folding".into(),
                    })
                })
            });
            // fold chunks as they arrive, overlapping with execution
            for chunk in receiver {
                let fold_started = std::time::Instant::now();
                let _span = tracer.span("phase.fold");
                accumulator.absorb(chunk)?;
                fold_wall += fold_started.elapsed();
            }
            producer.join().expect("scheduler thread panicked")
        })?;
        profile.add("dispatch", phase.elapsed());
        profile.add("fold", fold_wall);

        let phase = std::time::Instant::now();
        let (probabilities, mut reconstruction_report) = {
            let _span = tracer.span("phase.contract");
            accumulator.finish()?
        };
        profile.add("contract", phase.elapsed());
        profile.total = started.elapsed();
        reconstruction_report.profile = Some(profile);
        Ok((probabilities, reconstruction_report, schedule_report))
    }

    /// Streams an expectation workload: the scheduler dispatches the
    /// observable's deduplicated batch in chunks on a worker thread while
    /// this thread folds every finished chunk into per-Pauli scalar tensors
    /// (an [`ExpectationAccumulator`]) — the expectation counterpart of
    /// [`QrccPipeline::execute_streaming`], valid for wire- **and** gate-cut
    /// plans. Only the per-term final contraction runs after the last chunk
    /// lands.
    ///
    /// # Errors
    ///
    /// See [`QrccPipeline::execute_observables_scheduled`] and
    /// [`ExpectationAccumulator`].
    pub fn execute_observables_streaming(
        &self,
        scheduler: &Scheduler<'_>,
        observable: &PauliObservable,
    ) -> Result<(f64, ReconstructionReport, ScheduleReport), CoreError> {
        let tracer = crate::obs::tracer();
        let root = tracer.span("pipeline.execute");
        let root_id = root.id();
        let started = std::time::Instant::now();
        let mut profile = crate::obs::PhaseProfile::new();

        let phase = std::time::Instant::now();
        let requests = {
            let _span = tracer.span("phase.enumerate");
            self.expectation_reconstructor().requests(&self.fragments, observable)?
        };
        let mut accumulator = ExpectationAccumulator::new(
            &self.fragments,
            observable,
            self.reconstruction_options(),
        )?;
        profile.add("enumerate", phase.elapsed());

        let mut fold_wall = Duration::ZERO;
        let phase = std::time::Instant::now();
        let schedule_report = std::thread::scope(|scope| -> Result<ScheduleReport, CoreError> {
            let (sender, receiver) = std::sync::mpsc::channel::<ExecutionResults>();
            let fragments = &self.fragments;
            let producer = scope.spawn(move || {
                let _span = tracer.span_under("phase.dispatch", root_id);
                scheduler.execute_chunked(fragments, &requests, |chunk| {
                    sender.send(chunk).map_err(|_| CoreError::InvalidCutSolution {
                        reason: "streaming consumer stopped folding".into(),
                    })
                })
            });
            // fold chunks as they arrive, overlapping with execution
            for chunk in receiver {
                let fold_started = std::time::Instant::now();
                let _span = tracer.span("phase.fold");
                accumulator.absorb(chunk)?;
                fold_wall += fold_started.elapsed();
            }
            producer.join().expect("scheduler thread panicked")
        })?;
        profile.add("dispatch", phase.elapsed());
        profile.add("fold", fold_wall);

        let phase = std::time::Instant::now();
        let (expectation, mut reconstruction_report) = {
            let _span = tracer.span("phase.contract");
            accumulator.finish()?
        };
        profile.add("contract", phase.elapsed());
        profile.total = started.elapsed();
        reconstruction_report.profile = Some(profile);
        Ok((expectation, reconstruction_report, schedule_report))
    }

    // ---- phase 3: consume ----

    /// Reconstructs the original circuit's probability distribution from an
    /// executed batch, using the strategy and pruning tolerance of the
    /// plan's [`QrccConfig`].
    ///
    /// # Errors
    ///
    /// See [`ProbabilityReconstructor::reconstruct`].
    pub fn reconstruct_probabilities_from(
        &self,
        results: &ExecutionResults,
    ) -> Result<Vec<f64>, CoreError> {
        self.probability_reconstructor().reconstruct(&self.fragments, results)
    }

    /// Like [`QrccPipeline::reconstruct_probabilities_from`], also returning
    /// the engine's [`ReconstructionReport`] (resolved strategy, contraction
    /// count, pruned mass).
    ///
    /// # Errors
    ///
    /// See [`ProbabilityReconstructor::reconstruct`].
    pub fn reconstruct_probabilities_with_report_from(
        &self,
        results: &ExecutionResults,
    ) -> Result<(Vec<f64>, ReconstructionReport), CoreError> {
        self.probability_reconstructor().reconstruct_with_report(&self.fragments, results)
    }

    /// Reconstructs the expectation value of `observable` from an executed
    /// batch, using the strategy and pruning tolerance of the plan's
    /// [`QrccConfig`].
    ///
    /// # Errors
    ///
    /// See [`ExpectationReconstructor::reconstruct`].
    pub fn reconstruct_expectation_from(
        &self,
        results: &ExecutionResults,
        observable: &PauliObservable,
    ) -> Result<f64, CoreError> {
        self.expectation_reconstructor().reconstruct(&self.fragments, results, observable)
    }

    /// Like [`QrccPipeline::reconstruct_expectation_from`], also returning
    /// the engine's [`ReconstructionReport`] accumulated over the
    /// observable's Pauli terms.
    ///
    /// # Errors
    ///
    /// See [`ExpectationReconstructor::reconstruct`].
    pub fn reconstruct_expectation_with_report_from(
        &self,
        results: &ExecutionResults,
        observable: &PauliObservable,
    ) -> Result<(f64, ReconstructionReport), CoreError> {
        self.expectation_reconstructor().reconstruct_with_report(
            &self.fragments,
            results,
            observable,
        )
    }

    // ---- convenience: all three phases in one call ----

    /// Reconstructs the original circuit's probability distribution,
    /// executing the (deduplicated, parallel) batch on `backend` internally.
    ///
    /// # Errors
    ///
    /// See [`QrccPipeline::execute`] and
    /// [`ProbabilityReconstructor::reconstruct`].
    pub fn reconstruct_probabilities(
        &self,
        backend: &dyn ExecutionBackend,
    ) -> Result<Vec<f64>, CoreError> {
        let results = self.execute(backend)?;
        self.reconstruct_probabilities_from(&results)
    }

    /// Reconstructs the expectation value of `observable`, executing the
    /// (deduplicated, parallel) batch on `backend` internally.
    ///
    /// # Errors
    ///
    /// See [`QrccPipeline::execute_observables`] and
    /// [`ExpectationReconstructor::reconstruct`].
    pub fn reconstruct_expectation(
        &self,
        backend: &dyn ExecutionBackend,
        observable: &PauliObservable,
    ) -> Result<f64, CoreError> {
        let results = self.execute_observables(backend, &[observable])?;
        self.reconstruct_expectation_from(&results, observable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrcc_circuit::observable::PauliString;
    use qrcc_sim::device::{Device, DeviceConfig};
    use qrcc_sim::noise::NoiseModel;
    use qrcc_sim::StateVector;
    use std::time::Duration;

    fn small_config(d: usize) -> QrccConfig {
        QrccConfig::new(d).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO)
    }

    #[test]
    fn pipeline_probability_path_end_to_end() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).t(1).cx(1, 2).ry(0.4, 2).cx(2, 3);
        let pipeline = QrccPipeline::plan(&c, small_config(3)).unwrap();
        assert!(pipeline.total_instances() > 0);
        let backend = ExactBackend::new();
        let reconstructed = pipeline.reconstruct_probabilities(&backend).unwrap();
        let exact = StateVector::from_circuit(&c).unwrap().probabilities();
        for (a, b) in exact.iter().zip(&reconstructed) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn pipeline_expectation_path_with_shots_backend() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.8, 1).cx(1, 2).cx(2, 3).rz(0.3, 3);
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, PauliString::zz(4, 0, 3));
        let config = small_config(3).with_gate_cuts(true);
        let pipeline = QrccPipeline::plan(&c, config).unwrap();
        // shots on an ideal device large enough for every fragment
        let device = Device::new(DeviceConfig::ideal(3).with_seed(11));
        let backend = ShotsBackend::new(device, 60_000);
        let estimate = pipeline.reconstruct_expectation(&backend, &obs).unwrap();
        let exact = StateVector::from_circuit(&c).unwrap().expectation(&obs);
        assert!((estimate - exact).abs() < 0.08, "shots estimate {estimate} vs exact {exact}");
    }

    #[test]
    fn one_batch_serves_probabilities_and_multiple_observables() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.6, 1).cx(1, 2).cx(2, 3);
        let pipeline = QrccPipeline::plan(&c, small_config(3)).unwrap();
        let mut obs_a = PauliObservable::new(4);
        obs_a.add_term(1.0, PauliString::zz(4, 0, 3));
        let mut obs_b = PauliObservable::new(4);
        obs_b.add_term(0.5, PauliString::z(4, 1));
        obs_b.add_term(-0.25, PauliString::x(4, 2));

        let backend = ExactBackend::new();
        let results = pipeline.execute_all(&backend, &[&obs_a, &obs_b]).unwrap();
        let executed_after_batch = backend.executions();

        // every consumer below is served from the same batch: no re-execution
        let probabilities = pipeline.reconstruct_probabilities_from(&results).unwrap();
        let ea = pipeline.reconstruct_expectation_from(&results, &obs_a).unwrap();
        let eb = pipeline.reconstruct_expectation_from(&results, &obs_b).unwrap();
        assert_eq!(backend.executions(), executed_after_batch);

        let sv = StateVector::from_circuit(&c).unwrap();
        let exact_p = sv.probabilities();
        for (a, b) in exact_p.iter().zip(&probabilities) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!((ea - sv.expectation(&obs_a)).abs() < 1e-6);
        assert!((eb - sv.expectation(&obs_b)).abs() < 1e-6);
    }

    #[test]
    fn config_selects_the_reconstruction_strategy_and_reports_it() {
        use crate::reconstruct::ReconstructionStrategy;
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).t(1).cx(1, 2).ry(0.4, 2).cx(2, 3);
        let exact = StateVector::from_circuit(&c).unwrap().probabilities();
        let backend = ExactBackend::new();
        for strategy in [ReconstructionStrategy::Dense, ReconstructionStrategy::Contract] {
            let config = small_config(3).with_reconstruction_strategy(strategy);
            let pipeline = QrccPipeline::plan(&c, config).unwrap();
            assert_eq!(pipeline.reconstruction_options().strategy, strategy);
            let results = pipeline.execute(&backend).unwrap();
            let (p, report) =
                pipeline.reconstruct_probabilities_with_report_from(&results).unwrap();
            assert_eq!(report.strategy, strategy);
            for (a, b) in exact.iter().zip(&p) {
                assert!((a - b).abs() < 1e-6, "{strategy:?} mismatch");
            }
        }
    }

    #[test]
    fn reuse_absorbed_empty_fragments_execute_trivially() {
        // With qubit reuse, a GHZ chain can collapse onto very few physical
        // qubits, and the planner may emit an empty (clbit-free) subcircuit.
        // The batch layer must skip it instead of executing a circuit with
        // nothing to measure (the seed's quickstart crashed here).
        let mut ghz = Circuit::new(6);
        ghz.h(0);
        for q in 0..5 {
            ghz.cx(q, q + 1);
        }
        let pipeline = QrccPipeline::plan(&ghz, QrccConfig::new(3)).unwrap();
        let backend = ExactBackend::new();
        let results = pipeline.execute(&backend).unwrap();
        let p = pipeline.reconstruct_probabilities_from(&results).unwrap();
        assert!((p[0] - 0.5).abs() < 1e-6, "P(|0…0⟩) = {}", p[0]);
        assert!((p[(1 << 6) - 1] - 0.5).abs() < 1e-6, "P(|1…1⟩) = {}", p[63]);
    }

    #[test]
    fn noisy_subcircuits_beat_noisy_whole_circuit() {
        // Miniature version of Table 3: a whole-circuit run on a noisy device
        // loses more accuracy than QRCC's smaller subcircuits with the same
        // noise model.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).ry(0.9, 3).cx(2, 3).cx(1, 2).cx(0, 1);
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, PauliString::zz(4, 0, 1));
        let exact = StateVector::from_circuit(&c).unwrap().expectation(&obs);

        let noise =
            NoiseModel { single_qubit_error: 5e-3, two_qubit_error: 5e-2, readout_error: 2e-2 };
        // whole-circuit execution on a noisy 4-qubit device
        let whole_device = Device::new(DeviceConfig::noisy(4, noise).with_seed(5));
        let whole = whole_device.estimate_expectation(&c, &obs, 8192).unwrap();

        // QRCC: subcircuits on a noisy 3-qubit device
        let pipeline = QrccPipeline::plan(&c, small_config(3)).unwrap();
        let sub_device = Device::new(DeviceConfig::noisy(3, noise).with_seed(5));
        let backend = ShotsBackend::new(sub_device, 8192);
        let qrcc = pipeline.reconstruct_expectation(&backend, &obs).unwrap();

        let whole_error = (whole - exact).abs();
        let qrcc_error = (qrcc - exact).abs();
        assert!(
            qrcc_error <= whole_error + 0.05,
            "qrcc error {qrcc_error} should not be much worse than whole-circuit error {whole_error}"
        );
    }
}
