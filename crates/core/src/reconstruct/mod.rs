//! Classical post-processing: reconstructing the original circuit's output
//! from subcircuit-variant distributions.
//!
//! Both reconstructors follow the batch-first protocol of
//! [`crate::execute`]: they **enumerate** the variant requests they need
//! (`requests`), leave deduplication and batch execution to the caller, and
//! **consume** the resulting
//! [`ExecutionResults`](crate::execute::ExecutionResults) (`reconstruct`) —
//! they never call a backend per variant.
//!
//! # Reconstruction strategies
//!
//! Every executed variant is first folded into one cut-indexed
//! [`engine`] tensor per fragment; what happens next is selected by
//! [`ReconstructionStrategy`] (via
//! [`QrccConfig`](crate::QrccConfig::with_reconstruction_strategy) or
//! [`ReconstructionOptions`]):
//!
//! * [`ReconstructionStrategy::Dense`] — the paper's FRP/FRE model: one
//!   global mixed-radix loop over all `4^wire · 6^gate` attribution
//!   components, multiplying every fragment's tensor entry per combination.
//!   The outer component loop is split into deterministic chunks and run
//!   rayon-parallel, and the probability path iterates only the non-idle
//!   output subspace. Limited to [`MAX_DENSE_CUTS`] wire cuts.
//! * [`ReconstructionStrategy::Contract`] — the paper's ARP
//!   (divide-and-conquer) model made executable: fragment tensors are merged
//!   **pairwise along shared cuts**, order chosen greedily by the size of the
//!   intermediate tensor. Only the cut legs alive in one pairwise merge are
//!   ever enumerated together, so plans whose *total* cut count exceeds
//!   [`MAX_DENSE_CUTS`] reconstruct fine as long as every single merge stays
//!   under the cap. Supports **sparse term pruning**: attribution entries
//!   whose accumulated absolute weight falls below a tolerance are dropped,
//!   and the dropped mass is reported in a [`ReconstructionReport`].
//! * [`ReconstructionStrategy::Auto`] — compares the [`cost`] models of the
//!   two executable paths ([`cost::frp_log2_flops`] /
//!   [`cost::fre_log2_flops`] against [`cost::contract_log2_flops`] of the
//!   greedy schedule) and picks the cheaper feasible one. In practice:
//!   `Dense` on small, densely connected cut graphs; `Contract` as soon as
//!   the cut graph is chain- or tree-like, or the total cut count exceeds
//!   the dense cap.
//!
//! * [`ProbabilityReconstructor`] — rebuilds the full probability vector from
//!   wire-cut fragments (the CutQC-style path; gate cuts are not allowed).
//! * [`ExpectationReconstructor`] — rebuilds the expectation value of a Pauli
//!   observable from wire- *and* gate-cut fragments (paper §4.3).
//! * [`ProbabilityAccumulator`] / [`ExpectationAccumulator`] — the streaming
//!   front-ends: fold [`ExecutionResults`](crate::execute::ExecutionResults)
//!   chunks into fragment tensors as they arrive (from a chunked
//!   [`Scheduler`](crate::schedule::Scheduler)) — full output distributions
//!   for the probability workload, per-Pauli scalar tensors for expectation
//!   observables — so only the final contraction remains once the last
//!   chunk lands; shot top-ups re-fold only the touched fragment.
//! * [`cost`] — analytic floating-point-operation cost models of the
//!   reconstruction strategies compared in Figure 6.

mod engine;
mod expectation;
mod probability;
mod streaming;

pub mod cost;

pub(crate) use engine::{expectation_variants, probability_variants, resolve_strategy};
pub use engine::{ReconstructionOptions, ReconstructionReport, ReconstructionStrategy, Workload};
pub use expectation::ExpectationReconstructor;
pub use probability::ProbabilityReconstructor;
pub use streaming::{ExpectationAccumulator, ProbabilityAccumulator};

use crate::fragment::{CutBasis, InitState};

/// Maximum number of wire cuts the dense reconstructors accept (4^k terms),
/// and the per-contraction leg cap of the `Contract` strategy.
pub const MAX_DENSE_CUTS: usize = 14;

/// Weight of an executed initialisation state in the downstream combination
/// of attribution component `component` (paper Eq. (3): the four terms
/// A₁..A₄ expressed over the four initialisation runs).
pub(crate) fn init_weight(component: usize, state: InitState) -> f64 {
    match (component, state) {
        (0, InitState::Zero) => 1.0,
        (1, InitState::One) => 1.0,
        (2, InitState::Plus) => 2.0,
        (2, InitState::Zero) | (2, InitState::One) => -1.0,
        (3, InitState::PlusI) => 2.0,
        (3, InitState::Zero) | (3, InitState::One) => -1.0,
        _ => 0.0,
    }
}

/// The measurement basis attribution component `component` requires on the
/// upstream side.
pub(crate) fn required_basis(component: usize) -> CutBasis {
    match component {
        0 | 1 => CutBasis::Z,
        2 => CutBasis::X,
        3 => CutBasis::Y,
        _ => unreachable!("component index out of range"),
    }
}

/// Weight of a measured cut bit for attribution component `component` (the
/// upstream factors of Eq. (3): `2·p(0)`, `2·p(1)`, `Tr(ρX)`, `Tr(ρY)`).
pub(crate) fn cut_bit_weight(component: usize, bit: bool) -> f64 {
    match component {
        0 => {
            if bit {
                0.0
            } else {
                2.0
            }
        }
        1 => {
            if bit {
                2.0
            } else {
                0.0
            }
        }
        2 | 3 => {
            if bit {
                -1.0
            } else {
                1.0
            }
        }
        _ => unreachable!("component index out of range"),
    }
}

/// An allocation-free mixed-radix odometer: enumerates all digit vectors for
/// a fixed per-digit radix list, reusing **one** internal digit buffer.
///
/// This is the hot-loop counterpart of [`mixed_radix`]: `next` hands out a
/// borrowed `&[usize]` instead of a fresh `Vec`, so the innermost loops of
/// tensor building and reconstruction never allocate. The borrow ends before
/// the next `next` call (a lending iterator), which is exactly the shape of
/// every `while let Some(digits) = od.next()` loop in this module.
#[derive(Debug, Clone)]
pub(crate) struct Odometer {
    digits: Vec<usize>,
    radices: Vec<usize>,
    /// `false` until the first `next` call (which yields the all-zero state).
    started: bool,
    done: bool,
}

impl Odometer {
    /// An odometer over `radices[i]` values per digit `i` (least significant
    /// digit first, matching the tensor stride convention).
    pub(crate) fn new(radices: Vec<usize>) -> Self {
        let done = radices.contains(&0);
        Odometer { digits: vec![0; radices.len()], radices, started: false, done }
    }

    /// An odometer with `len` digits all of radix `radix`.
    pub(crate) fn uniform(len: usize, radix: usize) -> Self {
        Odometer::new(vec![radix; len])
    }

    /// Rewinds to the all-zero state.
    pub(crate) fn reset(&mut self) {
        self.digits.iter_mut().for_each(|d| *d = 0);
        self.started = false;
        self.done = self.radices.contains(&0);
    }

    /// Positions the odometer so the next `next` call yields the digit
    /// vector whose little-endian mixed-radix value is `index`.
    pub(crate) fn seek(&mut self, mut index: usize) {
        self.reset();
        for (digit, &radix) in self.digits.iter_mut().zip(&self.radices) {
            *digit = index % radix;
            index /= radix;
        }
    }

    /// The next digit vector, or `None` once every combination was yielded.
    #[allow(clippy::should_implement_trait)] // lending: the borrow ties to &mut self
    pub(crate) fn next(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.digits);
        }
        for (digit, &radix) in self.digits.iter_mut().zip(&self.radices) {
            *digit += 1;
            if *digit < radix {
                return Some(&self.digits);
            }
            *digit = 0;
        }
        self.done = true;
        None
    }

    /// Total number of combinations.
    #[cfg(test)]
    pub(crate) fn combinations(&self) -> usize {
        self.radices.iter().product()
    }
}

/// Iterates mixed-radix counters: all vectors of length `len` with entries in
/// `0..radix`.
///
/// This owned-`Vec` form exists for variant *enumeration*, where the digits
/// are moved into [`FragmentVariant`](crate::fragment::FragmentVariant)s; the
/// reconstruction hot loops use the allocation-free [`Odometer`] instead.
pub(crate) fn mixed_radix(len: usize, radix: usize) -> impl Iterator<Item = Vec<usize>> {
    let mut odometer = Odometer::uniform(len, radix);
    std::iter::from_fn(move || odometer.next().map(<[usize]>::to_vec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_weights_reproduce_the_four_terms() {
        // component 2 is 2|+⟩⟨+| − |0⟩⟨0| − |1⟩⟨1|
        assert_eq!(init_weight(2, InitState::Plus), 2.0);
        assert_eq!(init_weight(2, InitState::Zero), -1.0);
        assert_eq!(init_weight(2, InitState::One), -1.0);
        assert_eq!(init_weight(2, InitState::PlusI), 0.0);
        // components 0/1 are pure projectors
        assert_eq!(init_weight(0, InitState::Zero), 1.0);
        assert_eq!(init_weight(0, InitState::One), 0.0);
        assert_eq!(init_weight(1, InitState::One), 1.0);
    }

    #[test]
    fn each_component_requires_one_basis() {
        assert_eq!(required_basis(0), CutBasis::Z);
        assert_eq!(required_basis(1), CutBasis::Z);
        assert_eq!(required_basis(2), CutBasis::X);
        assert_eq!(required_basis(3), CutBasis::Y);
    }

    #[test]
    fn cut_bit_weights_match_trace_identities() {
        // component 0: 2·p(outcome 0)
        assert_eq!(cut_bit_weight(0, false), 2.0);
        assert_eq!(cut_bit_weight(0, true), 0.0);
        // component 2/3: expectation of the Pauli, i.e. ±1 per outcome
        assert_eq!(cut_bit_weight(2, false), 1.0);
        assert_eq!(cut_bit_weight(2, true), -1.0);
    }

    #[test]
    fn mixed_radix_enumerates_all_combinations() {
        let all: Vec<Vec<usize>> = mixed_radix(2, 3).collect();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[8], vec![2, 2]);
        assert_eq!(mixed_radix(0, 4).count(), 1);
    }

    #[test]
    fn odometer_matches_mixed_radix_without_allocating_per_step() {
        let mut od = Odometer::uniform(3, 4);
        let mut seen = Vec::new();
        while let Some(digits) = od.next() {
            seen.push(digits.to_vec());
        }
        let expected: Vec<Vec<usize>> = mixed_radix(3, 4).collect();
        assert_eq!(seen, expected);
        assert_eq!(od.combinations(), 64);
        // reset replays from the start
        od.reset();
        assert_eq!(od.next().unwrap(), &[0, 0, 0]);
    }

    #[test]
    fn odometer_seek_starts_mid_sequence() {
        let mut od = Odometer::uniform(3, 4);
        od.seek(27); // 27 = 3 + 2·4 + 1·16
        assert_eq!(od.next().unwrap(), &[3, 2, 1]);
        assert_eq!(od.next().unwrap(), &[0, 3, 1]);
        // a zero-length odometer yields exactly the empty vector
        let mut empty = Odometer::uniform(0, 4);
        assert_eq!(empty.next().unwrap(), &[] as &[usize]);
        assert!(empty.next().is_none());
        // mixed radices count correctly
        let mut mixed = Odometer::new(vec![4, 6]);
        assert_eq!(mixed.combinations(), 24);
        let mut count = 0;
        while mixed.next().is_some() {
            count += 1;
        }
        assert_eq!(count, 24);
    }
}
