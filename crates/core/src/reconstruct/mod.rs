//! Classical post-processing: reconstructing the original circuit's output
//! from subcircuit-variant distributions.
//!
//! Both reconstructors follow the batch-first protocol of
//! [`crate::execute`]: they **enumerate** the variant requests they need
//! (`requests`), leave deduplication and batch execution to the caller, and
//! **consume** the resulting
//! [`ExecutionResults`](crate::execute::ExecutionResults) (`reconstruct`) —
//! they never call a backend per variant.
//!
//! * [`ProbabilityReconstructor`] — rebuilds the full probability vector from
//!   wire-cut fragments (the CutQC-style path; gate cuts are not allowed).
//! * [`ExpectationReconstructor`] — rebuilds the expectation value of a Pauli
//!   observable from wire- *and* gate-cut fragments (paper §4.3).
//! * [`cost`] — analytic floating-point-operation cost models of the
//!   reconstruction strategies compared in Figure 6.

mod expectation;
mod probability;

pub mod cost;

pub use expectation::ExpectationReconstructor;
pub use probability::ProbabilityReconstructor;

use crate::fragment::{CutBasis, InitState};

/// Maximum number of wire cuts the dense reconstructors accept (4^k terms).
pub const MAX_DENSE_CUTS: usize = 14;

/// Weight of an executed initialisation state in the downstream combination
/// of attribution component `component` (paper Eq. (3): the four terms
/// A₁..A₄ expressed over the four initialisation runs).
pub(crate) fn init_weight(component: usize, state: InitState) -> f64 {
    match (component, state) {
        (0, InitState::Zero) => 1.0,
        (1, InitState::One) => 1.0,
        (2, InitState::Plus) => 2.0,
        (2, InitState::Zero) | (2, InitState::One) => -1.0,
        (3, InitState::PlusI) => 2.0,
        (3, InitState::Zero) | (3, InitState::One) => -1.0,
        _ => 0.0,
    }
}

/// The measurement basis attribution component `component` requires on the
/// upstream side.
pub(crate) fn required_basis(component: usize) -> CutBasis {
    match component {
        0 | 1 => CutBasis::Z,
        2 => CutBasis::X,
        3 => CutBasis::Y,
        _ => unreachable!("component index out of range"),
    }
}

/// Weight of a measured cut bit for attribution component `component` (the
/// upstream factors of Eq. (3): `2·p(0)`, `2·p(1)`, `Tr(ρX)`, `Tr(ρY)`).
pub(crate) fn cut_bit_weight(component: usize, bit: bool) -> f64 {
    match component {
        0 => {
            if bit {
                0.0
            } else {
                2.0
            }
        }
        1 => {
            if bit {
                2.0
            } else {
                0.0
            }
        }
        2 | 3 => {
            if bit {
                -1.0
            } else {
                1.0
            }
        }
        _ => unreachable!("component index out of range"),
    }
}

/// Iterates mixed-radix counters: all vectors of length `len` with entries in
/// `0..radix`.
pub(crate) fn mixed_radix(len: usize, radix: usize) -> impl Iterator<Item = Vec<usize>> {
    let total = radix.pow(len as u32);
    (0..total).map(move |mut index| {
        let mut digits = vec![0usize; len];
        for d in digits.iter_mut() {
            *d = index % radix;
            index /= radix;
        }
        digits
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_weights_reproduce_the_four_terms() {
        // component 2 is 2|+⟩⟨+| − |0⟩⟨0| − |1⟩⟨1|
        assert_eq!(init_weight(2, InitState::Plus), 2.0);
        assert_eq!(init_weight(2, InitState::Zero), -1.0);
        assert_eq!(init_weight(2, InitState::One), -1.0);
        assert_eq!(init_weight(2, InitState::PlusI), 0.0);
        // components 0/1 are pure projectors
        assert_eq!(init_weight(0, InitState::Zero), 1.0);
        assert_eq!(init_weight(0, InitState::One), 0.0);
        assert_eq!(init_weight(1, InitState::One), 1.0);
    }

    #[test]
    fn each_component_requires_one_basis() {
        assert_eq!(required_basis(0), CutBasis::Z);
        assert_eq!(required_basis(1), CutBasis::Z);
        assert_eq!(required_basis(2), CutBasis::X);
        assert_eq!(required_basis(3), CutBasis::Y);
    }

    #[test]
    fn cut_bit_weights_match_trace_identities() {
        // component 0: 2·p(outcome 0)
        assert_eq!(cut_bit_weight(0, false), 2.0);
        assert_eq!(cut_bit_weight(0, true), 0.0);
        // component 2/3: expectation of the Pauli, i.e. ±1 per outcome
        assert_eq!(cut_bit_weight(2, false), 1.0);
        assert_eq!(cut_bit_weight(2, true), -1.0);
    }

    #[test]
    fn mixed_radix_enumerates_all_combinations() {
        let all: Vec<Vec<usize>> = mixed_radix(2, 3).collect();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[8], vec![2, 2]);
        assert_eq!(mixed_radix(0, 4).count(), 1);
    }
}
