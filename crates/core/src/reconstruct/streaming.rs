//! Streaming partial reconstruction: fold executed variants into fragment
//! tensors **as chunks arrive**, so classical contraction overlaps device
//! execution instead of waiting for the last variant.
//!
//! [`ProbabilityAccumulator`] and [`ExpectationAccumulator`] are the
//! consume-phase counterparts of the chunked
//! [`Scheduler`](crate::schedule::Scheduler): every [`ExecutionResults`]
//! chunk they `absorb` is folded immediately into the owning fragment's cut
//! tensor (the incremental `CutTensor::fold_partial` /
//! `fold_expectation_partial` units of the engine — the expectation
//! accumulator keeps one scalar tensor per fragment per Pauli term), and
//! `finish` runs only the final contraction (dense loop or pairwise
//! contraction) over the accumulated tensors. Re-delivering a variant that
//! was already folded — a **shot top-up** that replaces its distribution
//! with a higher-shot estimate — marks just the owning fragment dirty, and
//! the next `finish` re-folds only that fragment's tensor before
//! re-contracting.

use super::engine::{
    self, expectation_variants, normalized_output_bases, probability_variants, ExpectationFolder,
    FragmentFolder, ReconstructionOptions, ReconstructionReport, ReconstructionStrategy, Workload,
};
use super::expectation::vanishes_on_idle_wires;
use crate::execute::ExecutionResults;
use crate::fragment::{Fragment, FragmentSet, FragmentVariant, VariantKey};
use crate::CoreError;
use qrcc_circuit::observable::{Pauli, PauliObservable, PauliString};
use std::collections::HashSet;

/// Whether `variant` is one of the probability workload's enumerated
/// variants for `fragment` (all-Z outputs, no gate instances, matching slot
/// counts). Scheduled batches may interleave expectation variants; the
/// accumulator skips those instead of mis-folding them.
fn is_probability_variant(fragment: &Fragment, variant: &FragmentVariant) -> bool {
    variant.gate_instances.is_empty()
        && variant.init_states.len() == fragment.incoming_cuts.len()
        && variant.cut_bases.len() == fragment.outgoing_cuts.len()
        && variant.output_bases.len() == fragment.output_clbits.len()
        && variant.output_bases.iter().all(|&p| p == Pauli::Z)
}

/// Incremental probability reconstruction over streamed
/// [`ExecutionResults`] chunks.
///
/// ```text
/// let mut acc = ProbabilityAccumulator::new(fragments, options)?;
/// for chunk in scheduler_chunks {   // arrives while devices still run
///     acc.absorb(chunk)?;           // folds into fragment tensors now
/// }
/// let (probabilities, report) = acc.finish()?;  // contraction only
/// ```
#[derive(Debug, Clone)]
pub struct ProbabilityAccumulator<'a> {
    fragments: &'a FragmentSet,
    options: ReconstructionOptions,
    tensors: Vec<engine::CutTensor>,
    folders: Vec<FragmentFolder>,
    folded: Vec<HashSet<FragmentVariant>>,
    expected: Vec<u64>,
    dirty: Vec<bool>,
    store: ExecutionResults,
}

impl<'a> ProbabilityAccumulator<'a> {
    /// Creates an accumulator for `fragments`, validating the plan the same
    /// way [`ProbabilityReconstructor`](super::ProbabilityReconstructor)
    /// does (wire cuts only, feasible strategy). Clbit-free fragments are
    /// pre-folded with their trivial `[1.0]` distribution, so only executed
    /// variants need to arrive.
    ///
    /// # Errors
    ///
    /// * [`CoreError::GateCutNeedsExpectation`] for gate-cut plans.
    /// * [`CoreError::TooManyCuts`] when the configured strategy cannot
    ///   handle the plan.
    pub fn new(
        fragments: &'a FragmentSet,
        options: ReconstructionOptions,
    ) -> Result<Self, CoreError> {
        if fragments.num_gate_cuts() > 0 {
            return Err(CoreError::GateCutNeedsExpectation);
        }
        engine::resolve_strategy(fragments, &options, Workload::Probability)?;
        let mut tensors = Vec::with_capacity(fragments.fragments.len());
        let mut folders = Vec::with_capacity(fragments.fragments.len());
        let mut folded = vec![HashSet::new(); fragments.fragments.len()];
        let mut expected = Vec::with_capacity(fragments.fragments.len());
        for fragment in &fragments.fragments {
            let (mut tensor, mut folder) = FragmentFolder::probability(fragment);
            if fragment.num_clbits == 0 {
                // never executed: fold the constant distribution up front
                for variant in probability_variants(fragment) {
                    tensor.fold_partial(&mut folder, &variant, &engine::TRIVIAL);
                    folded[fragment.index].insert(variant);
                }
            }
            expected.push(
                4u64.pow(fragment.incoming_cuts.len() as u32)
                    * 3u64.pow(fragment.outgoing_cuts.len() as u32),
            );
            tensors.push(tensor);
            folders.push(folder);
        }
        Ok(ProbabilityAccumulator {
            fragments,
            options,
            tensors,
            folders,
            folded,
            expected,
            dirty: vec![false; fragments.fragments.len()],
            store: ExecutionResults::default(),
        })
    }

    /// Folds a partial batch into the fragment tensors.
    ///
    /// New probability variants fold immediately; a variant seen before is a
    /// shot top-up — its distribution replaces the stored one and only the
    /// owning fragment is marked for re-folding at the next
    /// [`finish`](ProbabilityAccumulator::finish). Variants that belong to
    /// other workloads (expectation bases, gate instances) are skipped, so a
    /// mixed `execute_all` batch streams fine.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidCutSolution`] when a key references a fragment
    /// outside the plan.
    pub fn absorb(&mut self, partial: ExecutionResults) -> Result<(), CoreError> {
        for (key, dist) in partial.iter() {
            let fragment = self.fragments.fragments.get(key.fragment).ok_or_else(|| {
                CoreError::InvalidCutSolution {
                    reason: format!(
                        "streamed batch references fragment {} but the plan has {}",
                        key.fragment,
                        self.fragments.fragments.len()
                    ),
                }
            })?;
            if fragment.num_clbits == 0 || !is_probability_variant(fragment, &key.variant) {
                continue;
            }
            if self.folded[key.fragment].contains(&key.variant) {
                // shot top-up: re-fold only this fragment at finish time
                self.dirty[key.fragment] = true;
            } else {
                self.tensors[key.fragment].fold_partial(
                    &mut self.folders[key.fragment],
                    &key.variant,
                    dist,
                );
                self.folded[key.fragment].insert(key.variant.clone());
            }
        }
        self.store.extend(partial);
        Ok(())
    }

    /// `(folded, expected)` distinct-variant counts across all fragments —
    /// reconstruction progress while the stream is still running.
    pub fn progress(&self) -> (u64, u64) {
        let folded = self.folded.iter().map(|set| set.len() as u64).sum();
        (folded, self.expected.iter().sum())
    }

    /// Everything absorbed so far, merged (latest distribution per key wins).
    pub fn results(&self) -> &ExecutionResults {
        &self.store
    }

    /// Runs the final contraction over the accumulated fragment tensors,
    /// re-folding any fragment dirtied by a shot top-up first.
    ///
    /// Callable repeatedly: absorb more chunks (or top-ups) and finish again
    /// for a refined estimate — only dirty fragments re-fold, the rest of
    /// the tensor work is already done.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingVariant`] when some fragment's variants have not
    /// all arrived yet.
    pub fn finish(&mut self) -> Result<(Vec<f64>, ReconstructionReport), CoreError> {
        // shot top-ups: rebuild only the touched fragments' tensors
        for index in 0..self.fragments.fragments.len() {
            if !self.dirty[index] {
                continue;
            }
            let fragment = &self.fragments.fragments[index];
            self.tensors[index].clear();
            for variant in probability_variants(fragment) {
                if !self.folded[index].contains(&variant) {
                    continue;
                }
                let key = VariantKey::new(index, variant);
                let dist = self.store.distribution(&key)?;
                // borrow juggling: distribution lookup borrows store, fold
                // needs the tensor — clone the slice reference lifetime away
                let dist = dist.to_vec();
                self.tensors[index].fold_partial(&mut self.folders[index], &key.variant, &dist);
            }
            self.dirty[index] = false;
        }
        for (index, fragment) in self.fragments.fragments.iter().enumerate() {
            if fragment.num_clbits > 0 && (self.folded[index].len() as u64) < self.expected[index] {
                return Err(CoreError::MissingVariant { fragment: index });
            }
        }
        let (strategy, plan) =
            engine::resolve_strategy(self.fragments, &self.options, Workload::Probability)?;
        let mut report = ReconstructionReport {
            strategy,
            prune_tolerance: self.options.prune_tolerance,
            shots_spent: self.store.shots_spent(),
            backends_used: self.store.routing().len(),
            dispatch_failures: self.store.failures(),
            dispatch_retries: self.store.retries(),
            kernel_compile: self.store.kernel_stats().cloned(),
            result_cache: self.store.cache_stats().cloned(),
            ..ReconstructionReport::default()
        };
        // refresh liveness in place (idempotent); only the contract path
        // clones, because normalisation/pruning mutate the tensors it is
        // handed and later absorb/finish cycles still need the originals
        self.tensors.iter_mut().for_each(engine::CutTensor::refresh_active);
        let probabilities = match strategy {
            ReconstructionStrategy::Contract => engine::contract_probabilities_from_tensors(
                self.fragments,
                self.tensors.clone(),
                &plan,
                self.options.prune_tolerance,
                &mut report,
            ),
            _ => engine::dense_probabilities(self.fragments, &self.tensors),
        };
        Ok((probabilities, report))
    }
}

/// Whether `variant` is one of a term's enumerated expectation variants for
/// `fragment` (matching slot counts, the term's precomputed normalised
/// output bases, gate instances in range). Scheduled batches may interleave
/// probability or other-term variants; each term folds only its own.
fn is_expectation_variant(
    fragment: &Fragment,
    normalized_bases: &[Pauli],
    variant: &FragmentVariant,
) -> bool {
    variant.init_states.len() == fragment.incoming_cuts.len()
        && variant.cut_bases.len() == fragment.outgoing_cuts.len()
        && variant.gate_instances.len() == fragment.gate_cut_roles.len()
        && variant.gate_instances.iter().all(|i| (1..=6).contains(i))
        && variant.output_bases == normalized_bases
}

/// Per-Pauli-term folding state of an [`ExpectationAccumulator`]: one scalar
/// cut tensor per fragment, plus the bookkeeping that makes shot top-ups
/// re-fold only the touched fragment.
#[derive(Debug, Clone)]
struct TermState {
    coefficient: f64,
    string: PauliString,
    /// X/Y on an idle wire: the term is identically zero and never folds.
    vanishes: bool,
    /// Per fragment, the term's normalised output bases — precomputed once
    /// so the absorb hot path compares without re-deriving them per key.
    normalized_bases: Vec<Vec<Pauli>>,
    tensors: Vec<engine::CutTensor>,
    folders: Vec<ExpectationFolder>,
    folded: Vec<HashSet<FragmentVariant>>,
    expected: Vec<u64>,
    dirty: Vec<bool>,
}

/// Incremental expectation-value reconstruction over streamed
/// [`ExecutionResults`] chunks — the expectation counterpart of
/// [`ProbabilityAccumulator`], for wire- **and** gate-cut plans.
///
/// Every chunk absorbed folds each contained variant into the scalar cut
/// tensor of every Pauli term it serves (terms sharing a measurement-basis
/// signature are served by the same executed circuit, so one arriving
/// distribution may fold into several tensors), and
/// [`finish`](ExpectationAccumulator::finish) runs only the per-term final
/// contraction, summing `Σ coefficient · ⟨term⟩`.
///
/// ```text
/// let mut acc = ExpectationAccumulator::new(fragments, &observable, options)?;
/// for chunk in scheduler_chunks {   // arrives while devices still run
///     acc.absorb(chunk)?;           // folds per-Pauli scalar tensors now
/// }
/// let (expectation, report) = acc.finish()?;  // contraction only
/// ```
#[derive(Debug, Clone)]
pub struct ExpectationAccumulator<'a> {
    fragments: &'a FragmentSet,
    options: ReconstructionOptions,
    terms: Vec<TermState>,
    store: ExecutionResults,
}

impl<'a> ExpectationAccumulator<'a> {
    /// Creates an accumulator for every Pauli term of `observable`,
    /// validating the plan the same way
    /// [`ExpectationReconstructor`](super::ExpectationReconstructor) does.
    /// Clbit-free fragments are pre-folded with their trivial `[1.0]`
    /// distribution, so only executed variants need to arrive.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidCutSolution`] when the observable width does
    ///   not match the original circuit.
    /// * [`CoreError::TooManyCuts`] when the configured strategy cannot
    ///   handle the plan.
    pub fn new(
        fragments: &'a FragmentSet,
        observable: &PauliObservable,
        options: ReconstructionOptions,
    ) -> Result<Self, CoreError> {
        if observable.num_qubits() != fragments.original_qubits {
            return Err(CoreError::InvalidCutSolution {
                reason: format!(
                    "observable acts on {} qubits but the circuit has {}",
                    observable.num_qubits(),
                    fragments.original_qubits
                ),
            });
        }
        engine::resolve_strategy(fragments, &options, Workload::Expectation)?;
        let mut terms = Vec::with_capacity(observable.terms().len());
        for (coefficient, string) in observable.terms() {
            let vanishes = vanishes_on_idle_wires(fragments, string);
            let mut normalized_bases = Vec::new();
            let mut tensors = Vec::new();
            let mut folders = Vec::new();
            let mut folded = Vec::new();
            let mut expected = Vec::new();
            if !vanishes {
                for fragment in &fragments.fragments {
                    let (mut tensor, mut folder) = ExpectationFolder::expectation(fragment, string);
                    normalized_bases.push(normalized_output_bases(fragment, string));
                    let mut seen = HashSet::new();
                    if fragment.num_clbits == 0 {
                        // never executed: fold the constant distribution now
                        for variant in expectation_variants(fragment, string) {
                            tensor.fold_expectation_partial(
                                &mut folder,
                                &variant,
                                &engine::TRIVIAL,
                            );
                            seen.insert(variant);
                        }
                    }
                    expected.push(
                        6u64.pow(fragment.gate_cut_roles.len() as u32)
                            * 4u64.pow(fragment.incoming_cuts.len() as u32)
                            * 3u64.pow(fragment.outgoing_cuts.len() as u32),
                    );
                    tensors.push(tensor);
                    folders.push(folder);
                    folded.push(seen);
                }
            }
            let dirty = vec![false; tensors.len()];
            terms.push(TermState {
                coefficient: *coefficient,
                string: string.clone(),
                vanishes,
                normalized_bases,
                tensors,
                folders,
                folded,
                expected,
                dirty,
            });
        }
        Ok(ExpectationAccumulator { fragments, options, terms, store: ExecutionResults::default() })
    }

    /// Folds a partial batch into every term's fragment tensors.
    ///
    /// New variants fold immediately into each term whose enumeration
    /// contains them; a variant seen before is a shot top-up — its
    /// distribution replaces the stored one and only the owning fragment of
    /// the affected terms is marked for re-folding at the next
    /// [`finish`](ExpectationAccumulator::finish). Variants that belong to
    /// other workloads (probability variants on gate-cut-free plans, other
    /// observables' bases) are skipped, so a mixed `execute_all` batch
    /// streams fine.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidCutSolution`] when a key references a fragment
    /// outside the plan.
    pub fn absorb(&mut self, partial: ExecutionResults) -> Result<(), CoreError> {
        for (key, dist) in partial.iter() {
            let fragment = self.fragments.fragments.get(key.fragment).ok_or_else(|| {
                CoreError::InvalidCutSolution {
                    reason: format!(
                        "streamed batch references fragment {} but the plan has {}",
                        key.fragment,
                        self.fragments.fragments.len()
                    ),
                }
            })?;
            if fragment.num_clbits == 0 {
                continue;
            }
            for term in &mut self.terms {
                if term.vanishes
                    || !is_expectation_variant(
                        fragment,
                        &term.normalized_bases[key.fragment],
                        &key.variant,
                    )
                {
                    continue;
                }
                if term.folded[key.fragment].contains(&key.variant) {
                    // shot top-up: re-fold only this fragment at finish time
                    term.dirty[key.fragment] = true;
                } else {
                    term.tensors[key.fragment].fold_expectation_partial(
                        &mut term.folders[key.fragment],
                        &key.variant,
                        dist,
                    );
                    term.folded[key.fragment].insert(key.variant.clone());
                }
            }
        }
        self.store.extend(partial);
        Ok(())
    }

    /// `(folded, expected)` distinct variant-fold counts summed over all
    /// terms and fragments — reconstruction progress while the stream is
    /// still running. Terms sharing basis signatures fold the same executed
    /// variant once per term, so both counts scale with the term count.
    pub fn progress(&self) -> (u64, u64) {
        let folded =
            self.terms.iter().flat_map(|t| t.folded.iter()).map(|set| set.len() as u64).sum();
        let expected = self.terms.iter().flat_map(|t| t.expected.iter()).sum();
        (folded, expected)
    }

    /// Everything absorbed so far, merged (latest distribution per key wins).
    pub fn results(&self) -> &ExecutionResults {
        &self.store
    }

    /// Runs the final per-term contraction over the accumulated scalar
    /// tensors and sums the observable, re-folding any fragment dirtied by a
    /// shot top-up first.
    ///
    /// Callable repeatedly: absorb more chunks (or top-ups) and finish again
    /// for a refined estimate — only dirty fragments re-fold.
    ///
    /// # Errors
    ///
    /// [`CoreError::MissingVariant`] when some term still lacks variants of
    /// some fragment.
    pub fn finish(&mut self) -> Result<(f64, ReconstructionReport), CoreError> {
        let (strategy, plan) =
            engine::resolve_strategy(self.fragments, &self.options, Workload::Expectation)?;
        let mut report = ReconstructionReport {
            strategy,
            prune_tolerance: self.options.prune_tolerance,
            shots_spent: self.store.shots_spent(),
            backends_used: self.store.routing().len(),
            dispatch_failures: self.store.failures(),
            dispatch_retries: self.store.retries(),
            kernel_compile: self.store.kernel_stats().cloned(),
            result_cache: self.store.cache_stats().cloned(),
            ..ReconstructionReport::default()
        };
        let mut total = 0.0;
        for term in &mut self.terms {
            if term.vanishes {
                continue;
            }
            // shot top-ups: rebuild only the touched fragments' tensors
            for index in 0..self.fragments.fragments.len() {
                if !term.dirty[index] {
                    continue;
                }
                let fragment = &self.fragments.fragments[index];
                term.tensors[index].clear();
                for variant in expectation_variants(fragment, &term.string) {
                    if !term.folded[index].contains(&variant) {
                        continue;
                    }
                    let key = VariantKey::new(index, variant);
                    let dist = self.store.distribution(&key)?.to_vec();
                    term.tensors[index].fold_expectation_partial(
                        &mut term.folders[index],
                        &key.variant,
                        &dist,
                    );
                }
                term.dirty[index] = false;
            }
            for (index, fragment) in self.fragments.fragments.iter().enumerate() {
                if fragment.num_clbits > 0
                    && (term.folded[index].len() as u64) < term.expected[index]
                {
                    return Err(CoreError::MissingVariant { fragment: index });
                }
            }
            // refresh liveness in place (idempotent); the contract path gets
            // clones because normalisation/pruning mutate the tensors it is
            // handed and later absorb/finish cycles still need the originals
            term.tensors.iter_mut().for_each(engine::CutTensor::refresh_active);
            let value = match strategy {
                ReconstructionStrategy::Contract => engine::contract_expectation_from_tensors(
                    self.fragments,
                    term.tensors.clone(),
                    &plan,
                    self.options.prune_tolerance,
                    &mut report,
                ),
                _ => engine::dense_expectation(self.fragments, &term.tensors),
            };
            total += term.coefficient * value;
        }
        Ok((total, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::{execute_requests, ExactBackend};
    use crate::planner::CutPlanner;
    use crate::reconstruct::ProbabilityReconstructor;
    use crate::QrccConfig;
    use qrcc_circuit::Circuit;
    use qrcc_sim::StateVector;
    use std::time::Duration;

    fn plan_fragments(circuit: &Circuit, device: usize) -> FragmentSet {
        let config =
            QrccConfig::new(device).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(circuit).unwrap();
        FragmentSet::from_plan(&plan).unwrap()
    }

    #[test]
    fn chunked_absorption_matches_one_shot_reconstruction() {
        let mut c = Circuit::new(4);
        c.h(0).ry(0.7, 1).cx(0, 1).rz(0.3, 1).cx(1, 2).t(2).cx(2, 3).rx(1.1, 3);
        let fragments = plan_fragments(&c, 3);
        let reconstructor = ProbabilityReconstructor::new();
        let requests = reconstructor.requests(&fragments).unwrap();
        let backend = ExactBackend::new();

        // execute the batch in three separate chunks of requests
        let third = requests.len() / 3;
        let mut acc =
            ProbabilityAccumulator::new(&fragments, ReconstructionOptions::default()).unwrap();
        for chunk in requests.chunks(third.max(1)) {
            let partial = execute_requests(&fragments, chunk, &backend).unwrap();
            acc.absorb(partial).unwrap();
        }
        let (folded, expected) = acc.progress();
        assert_eq!(folded, expected, "all variants absorbed");
        let (streamed, report) = acc.finish().unwrap();
        assert_ne!(report.strategy, ReconstructionStrategy::Auto);

        let exact = StateVector::from_circuit(&c).unwrap().probabilities();
        for (a, b) in exact.iter().zip(&streamed) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn incomplete_stream_reports_missing_variants() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let fragments = plan_fragments(&c, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let backend = ExactBackend::new();
        let mut acc =
            ProbabilityAccumulator::new(&fragments, ReconstructionOptions::default()).unwrap();
        // absorb only the first half of the variants
        let partial =
            execute_requests(&fragments, &requests[..requests.len() / 2], &backend).unwrap();
        acc.absorb(partial).unwrap();
        assert!(matches!(acc.finish(), Err(CoreError::MissingVariant { .. })));
    }

    #[test]
    fn shot_top_up_refolds_only_the_touched_fragment() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.4, 2).cx(1, 2).cx(2, 3);
        let fragments = plan_fragments(&c, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let backend = ExactBackend::new();
        let full = execute_requests(&fragments, &requests, &backend).unwrap();

        let mut acc =
            ProbabilityAccumulator::new(&fragments, ReconstructionOptions::default()).unwrap();
        acc.absorb(full.clone()).unwrap();
        let (first, _) = acc.finish().unwrap();

        // re-deliver the variants of fragment 0 (identical distributions):
        // a top-up that must dirty exactly that fragment and change nothing
        let fragment0: Vec<_> = requests.iter().filter(|r| r.key.fragment == 0).cloned().collect();
        let topup = execute_requests(&fragments, &fragment0, &backend).unwrap();
        acc.absorb(topup).unwrap();
        assert!(acc.dirty[0]);
        assert!(acc.dirty[1..].iter().all(|&d| !d));
        let (second, _) = acc.finish().unwrap();
        for (a, b) in first.iter().zip(&second) {
            assert!((a - b).abs() < 1e-12, "identical top-up must not change the result");
        }
    }

    fn mixed_cut_fragments() -> (Circuit, FragmentSet) {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.4, 1).h(2).cx(2, 3).rz(0.7, 3).rzz(0.9, 1, 2).rx(0.3, 1).ry(0.2, 2);
        let config = QrccConfig::new(2)
            .with_subcircuit_range(2, 2)
            .with_gate_cuts(true)
            .with_max_wire_cuts(0)
            .with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        (c, fragments)
    }

    fn test_observable() -> qrcc_circuit::observable::PauliObservable {
        use qrcc_circuit::observable::{PauliObservable, PauliString};
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, PauliString::zz(4, 1, 2));
        obs.add_term(0.5, PauliString::z(4, 0));
        obs.add_term(-0.25, PauliString::x(4, 3));
        obs
    }

    #[test]
    fn chunked_expectation_absorption_matches_one_shot_reconstruction() {
        let (c, fragments) = mixed_cut_fragments();
        assert!(fragments.num_gate_cuts() > 0, "the plan must exercise gate cuts");
        let observable = test_observable();
        let reconstructor = crate::reconstruct::ExpectationReconstructor::new();
        let requests = reconstructor.requests(&fragments, &observable).unwrap();
        let backend = ExactBackend::new();

        let mut acc =
            ExpectationAccumulator::new(&fragments, &observable, ReconstructionOptions::default())
                .unwrap();
        let third = (requests.len() / 3).max(1);
        for chunk in requests.chunks(third) {
            let partial = execute_requests(&fragments, chunk, &backend).unwrap();
            acc.absorb(partial).unwrap();
        }
        let (folded, expected) = acc.progress();
        assert_eq!(folded, expected, "all variants absorbed for every term");
        let (streamed, report) = acc.finish().unwrap();
        assert_ne!(report.strategy, ReconstructionStrategy::Auto);

        // one-shot reference and exact state vector agree with the stream
        let full = execute_requests(&fragments, &requests, &backend).unwrap();
        let blocking = reconstructor.reconstruct(&fragments, &full, &observable).unwrap();
        let exact = StateVector::from_circuit(&c).unwrap().expectation(&observable);
        assert!((streamed - blocking).abs() < 1e-9, "{streamed} vs blocking {blocking}");
        assert!((streamed - exact).abs() < 1e-6, "{streamed} vs exact {exact}");
    }

    #[test]
    fn incomplete_expectation_stream_reports_missing_variants() {
        let (_, fragments) = mixed_cut_fragments();
        let observable = test_observable();
        let requests = crate::reconstruct::ExpectationReconstructor::new()
            .requests(&fragments, &observable)
            .unwrap();
        let backend = ExactBackend::new();
        let mut acc =
            ExpectationAccumulator::new(&fragments, &observable, ReconstructionOptions::default())
                .unwrap();
        let partial =
            execute_requests(&fragments, &requests[..requests.len() / 2], &backend).unwrap();
        acc.absorb(partial).unwrap();
        assert!(matches!(acc.finish(), Err(CoreError::MissingVariant { .. })));
    }

    #[test]
    fn expectation_top_up_refolds_only_the_touched_fragment() {
        let (_, fragments) = mixed_cut_fragments();
        let observable = test_observable();
        let requests = crate::reconstruct::ExpectationReconstructor::new()
            .requests(&fragments, &observable)
            .unwrap();
        let backend = ExactBackend::new();
        let full = execute_requests(&fragments, &requests, &backend).unwrap();

        let mut acc =
            ExpectationAccumulator::new(&fragments, &observable, ReconstructionOptions::default())
                .unwrap();
        acc.absorb(full.clone()).unwrap();
        let (first, _) = acc.finish().unwrap();

        // re-deliver fragment 0's variants (identical distributions): every
        // term folding them must dirty exactly that fragment
        let fragment0: Vec<_> = requests.iter().filter(|r| r.key.fragment == 0).cloned().collect();
        let topup = execute_requests(&fragments, &fragment0, &backend).unwrap();
        acc.absorb(topup).unwrap();
        for term in &acc.terms {
            if term.vanishes {
                continue;
            }
            assert!(term.dirty[0], "fragment 0 must be dirty for every folded term");
            assert!(term.dirty[1..].iter().all(|&d| !d));
        }
        let (second, _) = acc.finish().unwrap();
        assert!((first - second).abs() < 1e-12, "identical top-up must not change the result");
    }

    #[test]
    fn expectation_accumulator_rejects_width_mismatch() {
        let (_, fragments) = mixed_cut_fragments();
        let wrong = qrcc_circuit::observable::PauliObservable::all_z(7);
        assert!(matches!(
            ExpectationAccumulator::new(&fragments, &wrong, ReconstructionOptions::default()),
            Err(CoreError::InvalidCutSolution { .. })
        ));
    }

    #[test]
    fn gate_cut_plans_are_rejected_up_front() {
        let mut c = Circuit::new(4);
        c.h(0).rzz(0.4, 0, 1).rzz(0.9, 1, 2).rzz(0.2, 2, 3);
        let config = QrccConfig::new(3)
            .with_subcircuit_range(2, 2)
            .with_gate_cuts(true)
            .with_max_wire_cuts(0)
            .with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        if fragments.num_gate_cuts() == 0 {
            return;
        }
        assert!(matches!(
            ProbabilityAccumulator::new(&fragments, ReconstructionOptions::default()),
            Err(CoreError::GateCutNeedsExpectation)
        ));
    }
}
