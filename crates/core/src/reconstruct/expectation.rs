//! Expectation-value reconstruction for plans with wire cuts and gate cuts
//! (paper §4.3 "Reconstruction after W-Cut and G-Cut").
//!
//! Follows the batch-first protocol: [`requests`] enumerates every variant
//! the observable needs (across *all* Pauli terms — terms sharing a
//! measurement-basis signature collapse to the same [`VariantKey`], so the
//! batch executes them once), the caller executes one batch, and
//! [`reconstruct`] consumes the results without ever touching a backend.
//!
//! [`requests`]: ExpectationReconstructor::requests
//! [`reconstruct`]: ExpectationReconstructor::reconstruct

use super::{cut_bit_weight, init_weight, mixed_radix, required_basis, MAX_DENSE_CUTS};
use crate::execute::{execute_requests, ExecutionBackend, ExecutionResults};
use crate::fragment::{
    CutBasis, Fragment, FragmentSet, FragmentVariant, InitState, VariantKey, VariantRequest,
};
use crate::gatecut::instance_measures;
use crate::CoreError;
use qrcc_circuit::observable::{Pauli, PauliObservable, PauliString};

/// Reconstructs expectation values of Pauli observables from a cut plan's
/// fragments.
#[derive(Debug, Clone, Default)]
pub struct ExpectationReconstructor {}

/// The output-measurement bases one fragment needs for one Pauli string,
/// normalised so that `I` measures like `Z`: both instantiate to a plain
/// computational-basis measurement, and normalising makes variant keys of
/// different Pauli terms collide exactly when their circuits are identical
/// (maximising batch dedup).
fn normalized_output_bases(fragment: &Fragment, string: &PauliString) -> Vec<Pauli> {
    fragment
        .output_clbits
        .iter()
        .map(|&(orig, _)| match string.pauli(orig) {
            Pauli::I => Pauli::Z,
            p => p,
        })
        .collect()
}

/// Whether a Pauli string's contribution is identically zero because it acts
/// with X or Y on an idle wire (idle original qubits stay in |0⟩).
fn vanishes_on_idle_wires(fragments: &FragmentSet, string: &PauliString) -> bool {
    (0..fragments.original_qubits).any(|q| {
        fragments.output_owner[q].is_none() && matches!(string.pauli(q), Pauli::X | Pauli::Y)
    })
}

/// Every variant one fragment needs for one Pauli string: all
/// `6^roles · 4^incoming · 3^outgoing` combinations with the string's output
/// bases.
fn expectation_variants<'a>(
    fragment: &'a Fragment,
    string: &PauliString,
) -> impl Iterator<Item = FragmentVariant> + 'a {
    let output_bases = normalized_output_bases(fragment, string);
    let num_in = fragment.incoming_cuts.len();
    let num_out = fragment.outgoing_cuts.len();
    let num_roles = fragment.gate_cut_roles.len();
    mixed_radix(num_roles, 6).flat_map(move |instance_digits| {
        let instances: Vec<usize> = instance_digits.iter().map(|&d| d + 1).collect();
        let output_bases = output_bases.clone();
        mixed_radix(num_in, 4).flat_map(move |init_digits| {
            let init_states: Vec<InitState> =
                init_digits.iter().map(|&d| InitState::ALL[d]).collect();
            let instances = instances.clone();
            let output_bases = output_bases.clone();
            mixed_radix(num_out, 3).map(move |basis_digits| FragmentVariant {
                init_states: init_states.clone(),
                cut_bases: basis_digits.iter().map(|&d| CutBasis::ALL[d]).collect(),
                gate_instances: instances.clone(),
                output_bases: output_bases.clone(),
            })
        })
    })
}

impl ExpectationReconstructor {
    /// Creates a reconstructor.
    pub fn new() -> Self {
        ExpectationReconstructor {}
    }

    fn check(
        &self,
        fragments: &FragmentSet,
        observable: &PauliObservable,
    ) -> Result<(), CoreError> {
        if observable.num_qubits() != fragments.original_qubits {
            return Err(CoreError::InvalidCutSolution {
                reason: format!(
                    "observable acts on {} qubits but the circuit has {}",
                    observable.num_qubits(),
                    fragments.original_qubits
                ),
            });
        }
        self.check_cuts(fragments)
    }

    fn check_cuts(&self, fragments: &FragmentSet) -> Result<(), CoreError> {
        let num_wire_cuts = fragments.num_wire_cuts();
        if num_wire_cuts > MAX_DENSE_CUTS {
            return Err(CoreError::TooManyCuts { cuts: num_wire_cuts, limit: MAX_DENSE_CUTS });
        }
        Ok(())
    }

    /// Phase 1 (enumerate): every variant request needed to evaluate all of
    /// `observable`'s Pauli terms. Terms whose fragment-level configurations
    /// coincide produce duplicate keys, which the execute phase collapses —
    /// this is where the old per-term re-execution cost disappears.
    ///
    /// # Errors
    ///
    /// * [`CoreError::TooManyCuts`] when the number of wire cuts exceeds the
    ///   dense-reconstruction limit.
    /// * [`CoreError::InvalidCutSolution`] when the observable width does not
    ///   match the original circuit.
    pub fn requests(
        &self,
        fragments: &FragmentSet,
        observable: &PauliObservable,
    ) -> Result<Vec<VariantRequest>, CoreError> {
        self.check(fragments, observable)?;
        let mut requests = Vec::new();
        for (_, string) in observable.terms() {
            requests.extend(self.requests_for_pauli(fragments, string)?);
        }
        Ok(requests)
    }

    /// Phase 1 for a single Pauli string.
    ///
    /// # Errors
    ///
    /// [`CoreError::TooManyCuts`] when the plan exceeds the dense limit.
    pub fn requests_for_pauli(
        &self,
        fragments: &FragmentSet,
        string: &PauliString,
    ) -> Result<Vec<VariantRequest>, CoreError> {
        self.check_cuts(fragments)?;
        if vanishes_on_idle_wires(fragments, string) {
            return Ok(Vec::new()); // the term contributes exactly zero
        }
        let mut requests = Vec::new();
        for fragment in &fragments.fragments {
            // Clbit-free fragments (reuse-absorbed empty subcircuits) measure
            // nothing; their contribution is the constant 1.
            if fragment.num_clbits == 0 {
                continue;
            }
            requests.extend(
                expectation_variants(fragment, string)
                    .map(|v| VariantRequest::new(fragment.index, v)),
            );
        }
        Ok(requests)
    }

    /// Phase 3 (consume): reconstructs `⟨H⟩` for a weighted Pauli observable
    /// from executed batch results.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExpectationReconstructor::requests`], plus
    /// [`CoreError::MissingVariant`] when `results` lacks a needed variant.
    pub fn reconstruct(
        &self,
        fragments: &FragmentSet,
        results: &ExecutionResults,
        observable: &PauliObservable,
    ) -> Result<f64, CoreError> {
        self.check(fragments, observable)?;
        let mut total = 0.0;
        for (coefficient, string) in observable.terms() {
            total += coefficient * self.reconstruct_pauli(fragments, results, string)?;
        }
        Ok(total)
    }

    /// Phase 3 for a single Pauli string.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExpectationReconstructor::reconstruct`].
    pub fn reconstruct_pauli(
        &self,
        fragments: &FragmentSet,
        results: &ExecutionResults,
        string: &PauliString,
    ) -> Result<f64, CoreError> {
        self.check_cuts(fragments)?;
        if vanishes_on_idle_wires(fragments, string) {
            return Ok(0.0);
        }
        let num_wire_cuts = fragments.num_wire_cuts();
        let num_gate_cuts = fragments.num_gate_cuts();

        // Per-fragment scalar tables indexed by (incoming components,
        // outgoing components, executed gate-cut instances).
        let tables: Vec<FragmentTable> = fragments
            .fragments
            .iter()
            .map(|f| build_table(f, results, string))
            .collect::<Result<_, _>>()?;

        let gate_coefficients: Vec<[f64; 6]> =
            fragments.gate_cut_forms.iter().map(|form| form.coefficients()).collect();

        let scale = 0.5f64.powi(num_wire_cuts as i32);
        let mut value = 0.0;
        for wire_components in mixed_radix(num_wire_cuts, 4) {
            for gate_instances in mixed_radix(num_gate_cuts, 6) {
                let mut term = scale;
                for (g, &instance) in gate_instances.iter().enumerate() {
                    term *= gate_coefficients[g][instance];
                }
                if term == 0.0 {
                    continue;
                }
                for (fragment, table) in fragments.fragments.iter().zip(&tables) {
                    let in_components: Vec<usize> =
                        fragment.incoming_cuts.iter().map(|&c| wire_components[c]).collect();
                    let out_components: Vec<usize> =
                        fragment.outgoing_cuts.iter().map(|&c| wire_components[c]).collect();
                    // `gate_instances` digits are 0-based; the table (and the
                    // paper) number instances 1..=6.
                    let instances: Vec<usize> = fragment
                        .gate_cut_roles
                        .iter()
                        .map(|&(cut, _)| gate_instances[cut] + 1)
                        .collect();
                    term *= table.value(&in_components, &out_components, &instances);
                    if term == 0.0 {
                        break;
                    }
                }
                value += term;
            }
        }
        Ok(value)
    }

    /// Convenience: runs all three phases against `backend` in one call.
    ///
    /// # Errors
    ///
    /// Any error of [`ExpectationReconstructor::requests`],
    /// [`execute_requests`] or [`ExpectationReconstructor::reconstruct`].
    pub fn run(
        &self,
        fragments: &FragmentSet,
        backend: &dyn ExecutionBackend,
        observable: &PauliObservable,
    ) -> Result<f64, CoreError> {
        let requests = self.requests(fragments, observable)?;
        let results = execute_requests(fragments, &requests, backend)?;
        self.reconstruct(fragments, &results, observable)
    }
}

/// Scalar attribution table of one fragment for one Pauli string.
struct FragmentTable {
    num_in: usize,
    num_out: usize,
    num_roles: usize,
    data: Vec<f64>,
}

impl FragmentTable {
    fn index(&self, in_c: &[usize], out_c: &[usize], instances: &[usize]) -> usize {
        debug_assert_eq!(in_c.len(), self.num_in);
        debug_assert_eq!(out_c.len(), self.num_out);
        debug_assert_eq!(instances.len(), self.num_roles);
        let mut idx = 0usize;
        let mut stride = 1usize;
        for &c in in_c {
            idx += c * stride;
            stride *= 4;
        }
        for &c in out_c {
            idx += c * stride;
            stride *= 4;
        }
        for &i in instances {
            idx += (i - 1) * stride;
            stride *= 6;
        }
        idx
    }

    fn value(&self, in_c: &[usize], out_c: &[usize], instances: &[usize]) -> f64 {
        self.data[self.index(in_c, out_c, instances)]
    }
}

fn build_table(
    fragment: &Fragment,
    results: &ExecutionResults,
    string: &PauliString,
) -> Result<FragmentTable, CoreError> {
    let num_in = fragment.incoming_cuts.len();
    let num_out = fragment.outgoing_cuts.len();
    let num_roles = fragment.gate_cut_roles.len();
    let size = 4usize.pow((num_in + num_out) as u32) * 6usize.pow(num_roles as u32);
    let mut table = FragmentTable { num_in, num_out, num_roles, data: vec![0.0; size] };

    // Which output bits enter the Pauli parity.
    let parity_bits: Vec<usize> = fragment
        .output_clbits
        .iter()
        .filter(|&&(orig, _)| string.pauli(orig) != Pauli::I)
        .map(|&(_, clbit)| clbit)
        .collect();
    let cut_bit_positions: Vec<usize> = fragment.cut_clbits.iter().map(|&(_, c)| c).collect();
    let gate_bit_positions: Vec<usize> = fragment.gatecut_clbits.iter().map(|&(_, c)| c).collect();
    let role_halves: Vec<crate::gatecut::GateHalf> =
        fragment.gate_cut_roles.iter().map(|&(_, h)| h).collect();

    // An empty (clbit-free) fragment was never executed: the distribution
    // over its zero classical bits is the constant [1.0].
    const TRIVIAL: [f64; 1] = [1.0];

    for variant in expectation_variants(fragment, string) {
        let key = VariantKey::new(fragment.index, variant);
        let init_states = &key.variant.init_states;
        let cut_bases = &key.variant.cut_bases;
        let instances = &key.variant.gate_instances;
        let dist: &[f64] =
            if fragment.num_clbits == 0 { &TRIVIAL } else { results.distribution(&key)? };

        // Weighted scalar for this executed variant.
        let mut weighted = vec![0.0f64; 4usize.pow(num_out as u32)];
        for (outcome, &p) in dist.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            // parity of the Pauli support bits
            let mut sign = 1.0;
            for &bit in &parity_bits {
                if outcome & (1 << bit) != 0 {
                    sign = -sign;
                }
            }
            // gate-cut measurement signs
            for (role, &instance) in instances.iter().enumerate() {
                if instance_measures(instance, role_halves[role])
                    && outcome & (1 << gate_bit_positions[role]) != 0
                {
                    sign = -sign;
                }
            }
            let cut_bits: Vec<bool> =
                cut_bit_positions.iter().map(|&pos| outcome & (1 << pos) != 0).collect();
            for (combo, slot) in weighted.iter_mut().enumerate() {
                let mut w = p * sign;
                let mut rest = combo;
                for (cut_slot, &basis) in cut_bases.iter().enumerate() {
                    let component = rest % 4;
                    rest /= 4;
                    if required_basis(component) != basis {
                        w = 0.0;
                        break;
                    }
                    w *= cut_bit_weight(component, cut_bits[cut_slot]);
                    if w == 0.0 {
                        break;
                    }
                }
                *slot += w;
            }
        }

        // Scatter into the table across compatible incoming components.
        for in_components in mixed_radix(num_in, 4) {
            let mut in_weight = 1.0;
            for (slot, &component) in in_components.iter().enumerate() {
                in_weight *= init_weight(component, init_states[slot]);
                if in_weight == 0.0 {
                    break;
                }
            }
            if in_weight == 0.0 {
                continue;
            }
            for (combo, &value) in weighted.iter().enumerate() {
                if value == 0.0 {
                    continue;
                }
                let out_components: Vec<usize> = {
                    let mut digits = Vec::with_capacity(num_out);
                    let mut rest = combo;
                    for _ in 0..num_out {
                        digits.push(rest % 4);
                        rest /= 4;
                    }
                    digits
                };
                let idx = table.index(&in_components, &out_components, instances);
                table.data[idx] += in_weight * value;
            }
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::ExactBackend;
    use crate::fragment::FragmentSet;
    use crate::planner::CutPlanner;
    use crate::QrccConfig;
    use qrcc_circuit::observable::PauliObservable;
    use qrcc_circuit::{generators, Circuit};
    use qrcc_sim::StateVector;
    use std::time::Duration;

    fn check_expectation(circuit: &Circuit, observable: &PauliObservable, config: QrccConfig) {
        let plan = CutPlanner::new(config).plan(circuit).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        let backend = ExactBackend::new();
        // three-phase flow: enumerate all terms, one batch, consume per term
        let reconstructor = ExpectationReconstructor::new();
        let requests = reconstructor.requests(&fragments, observable).unwrap();
        let results = execute_requests(&fragments, &requests, &backend).unwrap();
        let reconstructed = reconstructor.reconstruct(&fragments, &results, observable).unwrap();
        let exact = StateVector::from_circuit(circuit).unwrap().expectation(observable);
        assert!(
            (reconstructed - exact).abs() < 1e-6,
            "reconstructed {reconstructed} vs exact {exact} ({} wire cuts, {} gate cuts)",
            fragments.num_wire_cuts(),
            fragments.num_gate_cuts()
        );
    }

    #[test]
    fn wire_cut_expectation_matches_statevector() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.8, 1).cx(1, 2).rz(0.5, 2).cx(2, 3);
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, qrcc_circuit::observable::PauliString::zz(4, 0, 3));
        obs.add_term(-0.5, qrcc_circuit::observable::PauliString::z(4, 2));
        obs.add_term(0.25, qrcc_circuit::observable::PauliString::x(4, 1));
        let config =
            QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        check_expectation(&c, &obs, config);
    }

    #[test]
    fn gate_cut_expectation_matches_statevector() {
        // Two halves coupled by a single cuttable RZZ: the planner should
        // gate-cut it when gate cuts are enabled and wire cuts are scarce.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.4, 1).h(2).cx(2, 3).rz(0.7, 3).rzz(0.9, 1, 2).rx(0.3, 1).ry(0.2, 2);
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, qrcc_circuit::observable::PauliString::zz(4, 1, 2));
        obs.add_term(0.5, qrcc_circuit::observable::PauliString::z(4, 0));
        let config = QrccConfig::new(2)
            .with_subcircuit_range(2, 2)
            .with_gate_cuts(true)
            .with_max_wire_cuts(0)
            .with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config.clone()).plan(&c).unwrap();
        assert!(plan.gate_cut_count() >= 1, "expected at least one gate cut");
        check_expectation(&c, &obs, config);
    }

    #[test]
    fn mixed_wire_and_gate_cut_expectation_matches_statevector() {
        let (c, graph) = generators::qaoa_regular(4, 2, 1, 9);
        let obs = PauliObservable::maxcut(&graph);
        let config = QrccConfig::new(3)
            .with_subcircuit_range(2, 3)
            .with_gate_cuts(true)
            .with_ilp_time_limit(Duration::ZERO);
        check_expectation(&c, &obs, config);
    }

    #[test]
    fn shared_basis_signatures_deduplicate_across_terms() {
        // Two Z-like terms and an identity-ish term share every fragment
        // signature, so the batch executes each unique variant once even
        // though the enumerate phase requested it per term.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.8, 1).cx(1, 2).cx(2, 3);
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, qrcc_circuit::observable::PauliString::zz(4, 0, 3));
        obs.add_term(-0.5, qrcc_circuit::observable::PauliString::z(4, 2));
        obs.add_term(0.25, qrcc_circuit::observable::PauliString::zz(4, 1, 2));
        let config =
            QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        let reconstructor = ExpectationReconstructor::new();
        let requests = reconstructor.requests(&fragments, &obs).unwrap();
        let backend = ExactBackend::new();
        let results = execute_requests(&fragments, &requests, &backend).unwrap();
        // three terms × identical signatures → a third of the requests survive
        // key dedup (structural dedup may collapse the batch further)
        assert_eq!(results.requested(), 3 * results.unique_variants() as u64);
        assert!(results.executed() <= results.unique_variants() as u64);
        assert_eq!(backend.executions(), results.executed());
    }

    #[test]
    fn observable_width_mismatch_is_rejected() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let config =
            QrccConfig::new(2).with_subcircuit_range(2, 2).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        let obs = PauliObservable::all_z(5);
        assert!(matches!(
            ExpectationReconstructor::new().requests(&fragments, &obs),
            Err(CoreError::InvalidCutSolution { .. })
        ));
        assert!(matches!(
            ExpectationReconstructor::new().reconstruct(
                &fragments,
                &ExecutionResults::default(),
                &obs
            ),
            Err(CoreError::InvalidCutSolution { .. })
        ));
    }
}
