//! Expectation-value reconstruction for plans with wire cuts and gate cuts
//! (paper §4.3 "Reconstruction after W-Cut and G-Cut").
//!
//! A thin front-end over the contraction [`engine`](super::engine):
//! [`requests`] enumerates every variant the observable needs (across *all*
//! Pauli terms — terms sharing a measurement-basis signature collapse to the
//! same [`VariantKey`](crate::fragment::VariantKey), so the batch executes
//! them once), the caller executes one batch, and [`reconstruct`] folds each
//! fragment's results into scalar cut tensors and combines them with the
//! strategy resolved from its [`ReconstructionOptions`] — the rayon-parallel
//! dense loop or pairwise contraction with sparse pruning.
//!
//! [`requests`]: ExpectationReconstructor::requests
//! [`reconstruct`]: ExpectationReconstructor::reconstruct

use super::engine::{
    self, expectation_variants, ReconstructionOptions, ReconstructionReport,
    ReconstructionStrategy, Workload,
};
use crate::execute::{execute_requests, ExecutionBackend, ExecutionResults};
use crate::fragment::{FragmentSet, VariantRequest};
use crate::CoreError;
use qrcc_circuit::observable::{Pauli, PauliObservable, PauliString};

/// Reconstructs expectation values of Pauli observables from a cut plan's
/// fragments.
#[derive(Debug, Clone, Default)]
pub struct ExpectationReconstructor {
    options: ReconstructionOptions,
}

/// Whether a Pauli string's contribution is identically zero because it acts
/// with X or Y on an idle wire (idle original qubits stay in |0⟩).
pub(super) fn vanishes_on_idle_wires(fragments: &FragmentSet, string: &PauliString) -> bool {
    (0..fragments.original_qubits).any(|q| {
        fragments.output_owner[q].is_none() && matches!(string.pauli(q), Pauli::X | Pauli::Y)
    })
}

impl ExpectationReconstructor {
    /// Creates a reconstructor with default options (`Auto` strategy, no
    /// pruning).
    pub fn new() -> Self {
        ExpectationReconstructor::default()
    }

    /// Creates a reconstructor with explicit strategy / pruning options.
    pub fn with_options(options: ReconstructionOptions) -> Self {
        ExpectationReconstructor { options }
    }

    /// The options this reconstructor runs with.
    pub fn options(&self) -> &ReconstructionOptions {
        &self.options
    }

    fn check(
        &self,
        fragments: &FragmentSet,
        observable: &PauliObservable,
    ) -> Result<(), CoreError> {
        if observable.num_qubits() != fragments.original_qubits {
            return Err(CoreError::InvalidCutSolution {
                reason: format!(
                    "observable acts on {} qubits but the circuit has {}",
                    observable.num_qubits(),
                    fragments.original_qubits
                ),
            });
        }
        self.check_cuts(fragments)
    }

    fn check_cuts(&self, fragments: &FragmentSet) -> Result<(), CoreError> {
        engine::resolve_strategy(fragments, &self.options, Workload::Expectation)?;
        Ok(())
    }

    /// Phase 1 (enumerate): every variant request needed to evaluate all of
    /// `observable`'s Pauli terms. Terms whose fragment-level configurations
    /// coincide produce duplicate keys, which the execute phase collapses —
    /// this is where the old per-term re-execution cost disappears.
    ///
    /// # Errors
    ///
    /// * [`CoreError::TooManyCuts`] when the plan exceeds what the
    ///   configured strategy supports (total wire cuts for `Dense`,
    ///   per-contraction legs for `Contract`).
    /// * [`CoreError::InvalidCutSolution`] when the observable width does not
    ///   match the original circuit.
    pub fn requests(
        &self,
        fragments: &FragmentSet,
        observable: &PauliObservable,
    ) -> Result<Vec<VariantRequest>, CoreError> {
        self.check(fragments, observable)?;
        let mut requests = Vec::new();
        for (_, string) in observable.terms() {
            requests.extend(self.requests_for_pauli(fragments, string)?);
        }
        Ok(requests)
    }

    /// Phase 1 for a single Pauli string.
    ///
    /// # Errors
    ///
    /// [`CoreError::TooManyCuts`] when the plan exceeds the configured
    /// strategy's limit.
    pub fn requests_for_pauli(
        &self,
        fragments: &FragmentSet,
        string: &PauliString,
    ) -> Result<Vec<VariantRequest>, CoreError> {
        self.check_cuts(fragments)?;
        if vanishes_on_idle_wires(fragments, string) {
            return Ok(Vec::new()); // the term contributes exactly zero
        }
        let mut requests = Vec::new();
        for fragment in &fragments.fragments {
            // Clbit-free fragments (reuse-absorbed empty subcircuits) measure
            // nothing; their contribution is the constant 1.
            if fragment.num_clbits == 0 {
                continue;
            }
            requests.extend(
                expectation_variants(fragment, string)
                    .map(|v| VariantRequest::new(fragment.index, v)),
            );
        }
        Ok(requests)
    }

    /// Phase 3 (consume): reconstructs `⟨H⟩` for a weighted Pauli observable
    /// from executed batch results.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExpectationReconstructor::requests`], plus
    /// [`CoreError::MissingVariant`] when `results` lacks a needed variant.
    pub fn reconstruct(
        &self,
        fragments: &FragmentSet,
        results: &ExecutionResults,
        observable: &PauliObservable,
    ) -> Result<f64, CoreError> {
        self.reconstruct_with_report(fragments, results, observable).map(|(v, _)| v)
    }

    /// Phase 3 with the engine's [`ReconstructionReport`] accumulated over
    /// every Pauli term.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExpectationReconstructor::reconstruct`].
    pub fn reconstruct_with_report(
        &self,
        fragments: &FragmentSet,
        results: &ExecutionResults,
        observable: &PauliObservable,
    ) -> Result<(f64, ReconstructionReport), CoreError> {
        if observable.num_qubits() != fragments.original_qubits {
            return Err(CoreError::InvalidCutSolution {
                reason: format!(
                    "observable acts on {} qubits but the circuit has {}",
                    observable.num_qubits(),
                    fragments.original_qubits
                ),
            });
        }
        // resolve the strategy and greedy contraction schedule once; the
        // cut structure is the same for every Pauli term
        let (strategy, plan) =
            engine::resolve_strategy(fragments, &self.options, Workload::Expectation)?;
        let mut total = 0.0;
        let mut report = ReconstructionReport {
            strategy,
            prune_tolerance: self.options.prune_tolerance,
            shots_spent: results.shots_spent(),
            backends_used: results.routing().len(),
            dispatch_failures: results.failures(),
            dispatch_retries: results.retries(),
            kernel_compile: results.kernel_stats().cloned(),
            result_cache: results.cache_stats().cloned(),
            ..ReconstructionReport::default()
        };
        for (coefficient, string) in observable.terms() {
            total += coefficient
                * self.reconstruct_pauli_resolved(
                    fragments,
                    results,
                    string,
                    strategy,
                    &plan,
                    &mut report,
                )?;
        }
        Ok((total, report))
    }

    /// Phase 3 for a single Pauli string.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExpectationReconstructor::reconstruct`].
    pub fn reconstruct_pauli(
        &self,
        fragments: &FragmentSet,
        results: &ExecutionResults,
        string: &PauliString,
    ) -> Result<f64, CoreError> {
        self.reconstruct_pauli_with_report(fragments, results, string).map(|(v, _)| v)
    }

    /// Phase 3 for a single Pauli string, with the engine's report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExpectationReconstructor::reconstruct`].
    pub fn reconstruct_pauli_with_report(
        &self,
        fragments: &FragmentSet,
        results: &ExecutionResults,
        string: &PauliString,
    ) -> Result<(f64, ReconstructionReport), CoreError> {
        let (strategy, plan) =
            engine::resolve_strategy(fragments, &self.options, Workload::Expectation)?;
        let mut report = ReconstructionReport {
            strategy,
            prune_tolerance: self.options.prune_tolerance,
            shots_spent: results.shots_spent(),
            backends_used: results.routing().len(),
            dispatch_failures: results.failures(),
            dispatch_retries: results.retries(),
            kernel_compile: results.kernel_stats().cloned(),
            result_cache: results.cache_stats().cloned(),
            ..ReconstructionReport::default()
        };
        let value = self.reconstruct_pauli_resolved(
            fragments,
            results,
            string,
            strategy,
            &plan,
            &mut report,
        )?;
        Ok((value, report))
    }

    /// Phase 3 for one Pauli string with an already-resolved strategy and
    /// contraction schedule, accumulating into a shared report.
    fn reconstruct_pauli_resolved(
        &self,
        fragments: &FragmentSet,
        results: &ExecutionResults,
        string: &PauliString,
        strategy: ReconstructionStrategy,
        plan: &engine::ContractionPlan,
        report: &mut ReconstructionReport,
    ) -> Result<f64, CoreError> {
        if vanishes_on_idle_wires(fragments, string) {
            return Ok(0.0);
        }
        match strategy {
            ReconstructionStrategy::Contract => engine::contract_expectation(
                fragments,
                results,
                string,
                plan,
                self.options.prune_tolerance,
                report,
            ),
            _ => {
                let tensors: Vec<_> = fragments
                    .fragments
                    .iter()
                    .map(|f| engine::expectation_tensor(f, results, string))
                    .collect::<Result<_, _>>()?;
                Ok(engine::dense_expectation(fragments, &tensors))
            }
        }
    }

    /// Convenience: runs all three phases against `backend` in one call.
    ///
    /// # Errors
    ///
    /// Any error of [`ExpectationReconstructor::requests`],
    /// [`execute_requests`] or [`ExpectationReconstructor::reconstruct`].
    pub fn run(
        &self,
        fragments: &FragmentSet,
        backend: &dyn ExecutionBackend,
        observable: &PauliObservable,
    ) -> Result<f64, CoreError> {
        let requests = self.requests(fragments, observable)?;
        let results = execute_requests(fragments, &requests, backend)?;
        self.reconstruct(fragments, &results, observable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::ExactBackend;
    use crate::fragment::FragmentSet;
    use crate::planner::CutPlanner;
    use crate::QrccConfig;
    use qrcc_circuit::observable::PauliObservable;
    use qrcc_circuit::{generators, Circuit};
    use qrcc_sim::StateVector;
    use std::time::Duration;

    fn check_expectation(circuit: &Circuit, observable: &PauliObservable, config: QrccConfig) {
        let plan = CutPlanner::new(config).plan(circuit).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        let backend = ExactBackend::new();
        // three-phase flow: enumerate all terms, one batch, consume per term
        let reconstructor = ExpectationReconstructor::new();
        let requests = reconstructor.requests(&fragments, observable).unwrap();
        let results = execute_requests(&fragments, &requests, &backend).unwrap();
        let exact = StateVector::from_circuit(circuit).unwrap().expectation(observable);
        // every strategy must agree with the exact value
        for strategy in [
            ReconstructionStrategy::Auto,
            ReconstructionStrategy::Dense,
            ReconstructionStrategy::Contract,
        ] {
            let reconstructor = ExpectationReconstructor::with_options(ReconstructionOptions {
                strategy,
                ..ReconstructionOptions::default()
            });
            let (reconstructed, report) =
                reconstructor.reconstruct_with_report(&fragments, &results, observable).unwrap();
            assert_ne!(report.strategy, ReconstructionStrategy::Auto);
            assert!(
                (reconstructed - exact).abs() < 1e-6,
                "reconstructed {reconstructed} vs exact {exact} ({strategy:?}, {} wire cuts, {} gate cuts)",
                fragments.num_wire_cuts(),
                fragments.num_gate_cuts()
            );
        }
    }

    #[test]
    fn wire_cut_expectation_matches_statevector() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.8, 1).cx(1, 2).rz(0.5, 2).cx(2, 3);
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, qrcc_circuit::observable::PauliString::zz(4, 0, 3));
        obs.add_term(-0.5, qrcc_circuit::observable::PauliString::z(4, 2));
        obs.add_term(0.25, qrcc_circuit::observable::PauliString::x(4, 1));
        let config =
            QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        check_expectation(&c, &obs, config);
    }

    #[test]
    fn gate_cut_expectation_matches_statevector() {
        // Two halves coupled by a single cuttable RZZ: the planner should
        // gate-cut it when gate cuts are enabled and wire cuts are scarce.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.4, 1).h(2).cx(2, 3).rz(0.7, 3).rzz(0.9, 1, 2).rx(0.3, 1).ry(0.2, 2);
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, qrcc_circuit::observable::PauliString::zz(4, 1, 2));
        obs.add_term(0.5, qrcc_circuit::observable::PauliString::z(4, 0));
        let config = QrccConfig::new(2)
            .with_subcircuit_range(2, 2)
            .with_gate_cuts(true)
            .with_max_wire_cuts(0)
            .with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config.clone()).plan(&c).unwrap();
        assert!(plan.gate_cut_count() >= 1, "expected at least one gate cut");
        check_expectation(&c, &obs, config);
    }

    #[test]
    fn mixed_wire_and_gate_cut_expectation_matches_statevector() {
        let (c, graph) = generators::qaoa_regular(4, 2, 1, 9);
        let obs = PauliObservable::maxcut(&graph);
        let config = QrccConfig::new(3)
            .with_subcircuit_range(2, 3)
            .with_gate_cuts(true)
            .with_ilp_time_limit(Duration::ZERO);
        check_expectation(&c, &obs, config);
    }

    #[test]
    fn shared_basis_signatures_deduplicate_across_terms() {
        // Two Z-like terms and an identity-ish term share every fragment
        // signature, so the batch executes each unique variant once even
        // though the enumerate phase requested it per term.
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.8, 1).cx(1, 2).cx(2, 3);
        let mut obs = PauliObservable::new(4);
        obs.add_term(1.0, qrcc_circuit::observable::PauliString::zz(4, 0, 3));
        obs.add_term(-0.5, qrcc_circuit::observable::PauliString::z(4, 2));
        obs.add_term(0.25, qrcc_circuit::observable::PauliString::zz(4, 1, 2));
        let config =
            QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        let reconstructor = ExpectationReconstructor::new();
        let requests = reconstructor.requests(&fragments, &obs).unwrap();
        let backend = ExactBackend::new();
        let results = execute_requests(&fragments, &requests, &backend).unwrap();
        // three terms × identical signatures → a third of the requests survive
        // key dedup (structural dedup may collapse the batch further)
        assert_eq!(results.requested(), 3 * results.unique_variants() as u64);
        assert!(results.executed() <= results.unique_variants() as u64);
        assert_eq!(backend.executions(), results.executed());
    }

    #[test]
    fn observable_width_mismatch_is_rejected() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let config =
            QrccConfig::new(2).with_subcircuit_range(2, 2).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        let obs = PauliObservable::all_z(5);
        assert!(matches!(
            ExpectationReconstructor::new().requests(&fragments, &obs),
            Err(CoreError::InvalidCutSolution { .. })
        ));
        assert!(matches!(
            ExpectationReconstructor::new().reconstruct(
                &fragments,
                &ExecutionResults::default(),
                &obs
            ),
            Err(CoreError::InvalidCutSolution { .. })
        ));
    }
}
