//! Analytic post-processing cost models (floating-point operation counts)
//! for the reconstruction strategies compared in Figure 6 of the paper:
//!
//! * **FRP** — hybrid full-state reconstruction of the probability vector:
//!   `O(2^(N + 2·cuts))` FP operations.
//! * **FRE** — reconstruction of a single expectation value:
//!   `O(2^(2·cuts)) = O(4^cuts)` scalar multiplications, independent of `N`.
//! * **ARP-k** — approximate reconstruction over a truncated 2³⁰ state space,
//!   split across `k` subcircuits whose pairwise combinations are independent
//!   (divide-and-conquer), so only the largest per-pair cut count matters.
//! * **FSS** — the full-state simulation threshold (≈1e24 FP for a dense
//!   34-qubit, 1000-gate circuit) above which reconstruction is considered
//!   more expensive than simulating the original circuit outright.
//!
//! All results are returned as `log₂(#FP)` so that the astronomically large
//! counts of the paper's figure stay representable.

/// `log₂` of the FP-operation count of full-state probability reconstruction
/// (FRP) for an `n`-qubit circuit with `cuts` wire cuts.
pub fn frp_log2_flops(n: usize, cuts: usize) -> f64 {
    n as f64 + 2.0 * cuts as f64
}

/// `log₂` of the FP-operation count of expectation-value reconstruction
/// (FRE) with `cuts` effective cuts; independent of the circuit size.
pub fn fre_log2_flops(cuts: f64) -> f64 {
    2.0 * cuts
}

/// `log₂` of the FP-operation count of approximate probability
/// reconstruction (ARP) over a state space truncated to `min(n, 30)` qubits,
/// divided across `num_subcircuits` subcircuits combined pairwise.
///
/// # Panics
///
/// Panics if `num_subcircuits < 2`.
pub fn arp_log2_flops(n: usize, cuts: usize, num_subcircuits: usize) -> f64 {
    assert!(num_subcircuits >= 2, "approximate reconstruction needs at least two subcircuits");
    let truncated = n.min(30) as f64;
    let pairs = (num_subcircuits - 1) as f64;
    let cuts_per_pair = (cuts as f64 / pairs).ceil();
    truncated + 2.0 * cuts_per_pair + pairs.log2()
}

/// `log₂` of the full-state-simulation threshold (≈1e24 FP operations).
pub fn fss_threshold_log2() -> f64 {
    1e24f64.log2()
}

/// `log₂` of the total FP cost of an explicit pairwise-contraction schedule
/// (the executable ARP path), given each step's `log₂` size. An empty
/// schedule (a single-fragment plan) costs `0` (`= log₂ 1`).
///
/// The summation runs in the `log₂` domain (max-shifted) so schedules whose
/// steps are astronomically large still produce a finite, comparable value.
pub fn contract_log2_flops(step_log2_sizes: &[f64]) -> f64 {
    let Some(max) = step_log2_sizes.iter().copied().reduce(f64::max) else {
        return 0.0;
    };
    max + step_log2_sizes.iter().map(|&s| 2f64.powf(s - max)).sum::<f64>().log2()
}

/// The largest number of cuts a strategy tolerates before exceeding the FSS
/// threshold, searched over `0..=max_cuts`; `None` when even a cut-free
/// reconstruction exceeds the threshold (distinct from `Some(0)`, which
/// tolerates zero cuts but no more).
pub fn max_tolerable_cuts(log2_cost: impl Fn(usize) -> f64, max_cuts: usize) -> Option<usize> {
    let threshold = fss_threshold_log2();
    (0..=max_cuts).take_while(|&c| log2_cost(c) <= threshold).last()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fre_is_qubit_independent_and_cheapest() {
        assert_eq!(fre_log2_flops(10.0), 20.0);
        assert!(fre_log2_flops(10.0) < frp_log2_flops(32, 10));
        assert!(fre_log2_flops(10.0) < frp_log2_flops(48, 10));
    }

    #[test]
    fn frp48_tolerates_about_16_cuts() {
        // the paper reports FRP_48 hitting the threshold around 16 cuts
        let tolerated = max_tolerable_cuts(|c| frp_log2_flops(48, c), 64).unwrap();
        assert!((15..=17).contains(&tolerated), "tolerated {tolerated}");
    }

    #[test]
    fn fre_tolerates_about_40_cuts() {
        let tolerated = max_tolerable_cuts(|c| fre_log2_flops(c as f64), 64).unwrap();
        assert!((38..=41).contains(&tolerated), "tolerated {tolerated}");
    }

    #[test]
    fn approximate_reconstruction_tolerates_more_cuts_with_more_subcircuits() {
        let arp2 = max_tolerable_cuts(|c| arp_log2_flops(50, c, 2), 128).unwrap();
        let arp4 = max_tolerable_cuts(|c| arp_log2_flops(50, c, 4), 128).unwrap();
        assert!((20..=30).contains(&arp2), "arp2 tolerated {arp2}");
        assert!(arp4 > arp2, "arp4 {arp4} should tolerate more cuts than arp2 {arp2}");
    }

    #[test]
    fn intolerable_baseline_is_none_not_zero_cuts() {
        // a cost model already above the threshold at zero cuts tolerates
        // nothing — previously conflated with "tolerates exactly 0 cuts"
        let over = fss_threshold_log2() + 1.0;
        assert_eq!(max_tolerable_cuts(|_| over, 64), None);
        // a model that fits only the cut-free case reports Some(0)
        let threshold = fss_threshold_log2();
        assert_eq!(max_tolerable_cuts(|c| threshold + c as f64, 64), Some(0));
    }

    #[test]
    fn contract_cost_sums_step_sizes_in_log_space() {
        // two equally sized steps double the cost: +1 in log2
        assert!((contract_log2_flops(&[10.0, 10.0]) - 11.0).abs() < 1e-9);
        // a dominant step swamps a tiny one
        let dominated = contract_log2_flops(&[40.0, 1.0]);
        assert!((dominated - 40.0).abs() < 1e-6, "dominated {dominated}");
        // empty schedules (single fragment) cost log2(1) = 0
        assert_eq!(contract_log2_flops(&[]), 0.0);
        // astronomically large steps stay finite and ordered
        let huge = contract_log2_flops(&[2000.0, 1999.0]);
        assert!(huge > 2000.0 && huge.is_finite());
    }

    #[test]
    fn arp_is_qubit_independent_above_thirty_qubits() {
        assert_eq!(arp_log2_flops(50, 10, 2), arp_log2_flops(80, 10, 2));
        assert!(arp_log2_flops(20, 10, 2) < arp_log2_flops(50, 10, 2));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn arp_requires_two_subcircuits() {
        arp_log2_flops(40, 5, 1);
    }
}
