//! Full probability-vector reconstruction for wire-cut-only plans (the
//! CutQC-style path, paper §4.3 "Reconstruction after W-Cut").
//!
//! The reconstructor is a thin front-end over the contraction
//! [`engine`](super::engine): it enumerates the variants it needs
//! ([`requests`]), the caller executes them in one batch, and
//! [`reconstruct`] folds each fragment's results into a cut tensor and
//! reconstructs with the strategy resolved from its
//! [`ReconstructionOptions`] — the rayon-parallel dense loop or pairwise
//! contraction with sparse pruning.
//!
//! [`requests`]: ProbabilityReconstructor::requests
//! [`reconstruct`]: ProbabilityReconstructor::reconstruct

use super::engine::{
    self, probability_variants, ReconstructionOptions, ReconstructionReport,
    ReconstructionStrategy, Workload,
};
use crate::execute::{execute_requests, ExecutionBackend, ExecutionResults};
use crate::fragment::{FragmentSet, VariantRequest};
use crate::CoreError;

/// Reconstructs the original circuit's probability distribution from a
/// wire-cut [`FragmentSet`].
#[derive(Debug, Clone, Default)]
pub struct ProbabilityReconstructor {
    options: ReconstructionOptions,
}

impl ProbabilityReconstructor {
    /// Creates a reconstructor with default options (`Auto` strategy, no
    /// pruning).
    pub fn new() -> Self {
        ProbabilityReconstructor::default()
    }

    /// Creates a reconstructor with explicit strategy / pruning options.
    pub fn with_options(options: ReconstructionOptions) -> Self {
        ProbabilityReconstructor { options }
    }

    /// The options this reconstructor runs with.
    pub fn options(&self) -> &ReconstructionOptions {
        &self.options
    }

    fn check(&self, fragments: &FragmentSet) -> Result<(), CoreError> {
        if fragments.num_gate_cuts() > 0 {
            return Err(CoreError::GateCutNeedsExpectation);
        }
        engine::resolve_strategy(fragments, &self.options, Workload::Probability)?;
        Ok(())
    }

    /// Phase 1 (enumerate): every variant request the probability workload
    /// needs, as pure data. The request list is strategy-independent; only
    /// feasibility differs (`Contract` accepts plans whose total cut count
    /// exceeds the dense cap).
    ///
    /// # Errors
    ///
    /// * [`CoreError::GateCutNeedsExpectation`] if the plan contains gate
    ///   cuts (their post-processing cannot rebuild a distribution).
    /// * [`CoreError::TooManyCuts`] if the plan exceeds what the configured
    ///   strategy supports (total cuts for `Dense`, per-contraction legs for
    ///   `Contract`).
    pub fn requests(&self, fragments: &FragmentSet) -> Result<Vec<VariantRequest>, CoreError> {
        self.check(fragments)?;
        let mut requests = Vec::new();
        for fragment in &fragments.fragments {
            // A fragment with no classical bits (a reuse-absorbed empty
            // subcircuit) measures nothing: its distribution is trivially
            // [1.0], so nothing needs to run.
            if fragment.num_clbits == 0 {
                continue;
            }
            requests.extend(
                probability_variants(fragment).map(|v| VariantRequest::new(fragment.index, v)),
            );
        }
        Ok(requests)
    }

    /// Phase 3 (consume): rebuilds the `2^N` probability vector of the
    /// original circuit from executed batch results.
    ///
    /// # Errors
    ///
    /// Same plan conditions as [`ProbabilityReconstructor::requests`], plus
    /// [`CoreError::MissingVariant`] when `results` lacks a needed variant.
    pub fn reconstruct(
        &self,
        fragments: &FragmentSet,
        results: &ExecutionResults,
    ) -> Result<Vec<f64>, CoreError> {
        self.reconstruct_with_report(fragments, results).map(|(p, _)| p)
    }

    /// Phase 3 with the engine's [`ReconstructionReport`]: which strategy
    /// ran, how many pairwise contractions it took, and how much absolute
    /// weight sparse pruning dropped.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ProbabilityReconstructor::reconstruct`].
    pub fn reconstruct_with_report(
        &self,
        fragments: &FragmentSet,
        results: &ExecutionResults,
    ) -> Result<(Vec<f64>, ReconstructionReport), CoreError> {
        if fragments.num_gate_cuts() > 0 {
            return Err(CoreError::GateCutNeedsExpectation);
        }
        let (strategy, plan) =
            engine::resolve_strategy(fragments, &self.options, Workload::Probability)?;
        let mut report = ReconstructionReport {
            strategy,
            prune_tolerance: self.options.prune_tolerance,
            shots_spent: results.shots_spent(),
            backends_used: results.routing().len(),
            dispatch_failures: results.failures(),
            dispatch_retries: results.retries(),
            kernel_compile: results.kernel_stats().cloned(),
            result_cache: results.cache_stats().cloned(),
            ..ReconstructionReport::default()
        };
        let probabilities = match strategy {
            ReconstructionStrategy::Contract => engine::contract_probabilities(
                fragments,
                results,
                &plan,
                self.options.prune_tolerance,
                &mut report,
            )?,
            _ => {
                let tensors: Vec<_> = fragments
                    .fragments
                    .iter()
                    .map(|f| engine::probability_tensor(f, results))
                    .collect::<Result<_, _>>()?;
                engine::dense_probabilities(fragments, &tensors)
            }
        };
        Ok((probabilities, report))
    }

    /// Convenience: runs all three phases (enumerate → dedup/execute →
    /// consume) against `backend` in one call.
    ///
    /// # Errors
    ///
    /// Any error of [`ProbabilityReconstructor::requests`],
    /// [`execute_requests`] or [`ProbabilityReconstructor::reconstruct`].
    pub fn run(
        &self,
        fragments: &FragmentSet,
        backend: &dyn ExecutionBackend,
    ) -> Result<Vec<f64>, CoreError> {
        let requests = self.requests(fragments)?;
        let results = execute_requests(fragments, &requests, backend)?;
        self.reconstruct(fragments, &results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::ExactBackend;
    use crate::planner::CutPlanner;
    use crate::QrccConfig;
    use qrcc_circuit::Circuit;
    use qrcc_sim::StateVector;
    use std::time::Duration;

    fn plan_fragments(circuit: &Circuit, device_size: usize) -> FragmentSet {
        let config = QrccConfig::new(device_size)
            .with_subcircuit_range(2, 3)
            .with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(circuit).unwrap();
        FragmentSet::from_plan(&plan).unwrap()
    }

    fn reconstruct_and_compare(circuit: &Circuit, device_size: usize) {
        let fragments = plan_fragments(circuit, device_size);
        let backend = ExactBackend::new();
        // three-phase flow: enumerate, batch-execute, consume
        let reconstructor = ProbabilityReconstructor::new();
        let requests = reconstructor.requests(&fragments).unwrap();
        let results = execute_requests(&fragments, &requests, &backend).unwrap();
        assert_eq!(results.requested(), requests.len() as u64);
        let exact = StateVector::from_circuit(circuit).unwrap().probabilities();
        // every strategy must agree with the exact distribution
        for strategy in [
            ReconstructionStrategy::Auto,
            ReconstructionStrategy::Dense,
            ReconstructionStrategy::Contract,
        ] {
            let reconstructor = ProbabilityReconstructor::with_options(ReconstructionOptions {
                strategy,
                ..ReconstructionOptions::default()
            });
            let (reconstructed, report) =
                reconstructor.reconstruct_with_report(&fragments, &results).unwrap();
            assert_ne!(report.strategy, ReconstructionStrategy::Auto);
            assert_eq!(reconstructed.len(), exact.len());
            let total: f64 = reconstructed.iter().sum();
            assert!((total - 1.0).abs() < 1e-6, "reconstructed total {total} ({strategy:?})");
            for (i, (a, b)) in exact.iter().zip(&reconstructed).enumerate() {
                assert!(
                    (a - b).abs() < 1e-6,
                    "probability mismatch at {i}: exact {a} vs {b} ({strategy:?})"
                );
            }
        }
    }

    #[test]
    fn ghz_chain_reconstruction_matches_statevector() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        reconstruct_and_compare(&c, 3);
    }

    #[test]
    fn rotated_chain_reconstruction_matches_statevector() {
        let mut c = Circuit::new(4);
        c.h(0).ry(0.7, 1).cx(0, 1).rz(0.3, 1).cx(1, 2).t(2).cx(2, 3).rx(1.1, 3);
        reconstruct_and_compare(&c, 3);
    }

    #[test]
    fn run_convenience_matches_three_phase_flow() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).ry(0.4, 3).cx(2, 3);
        let config =
            QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        let backend = ExactBackend::new();
        let direct = ProbabilityReconstructor::new().run(&fragments, &backend).unwrap();
        let exact = StateVector::from_circuit(&c).unwrap().probabilities();
        for (a, b) in exact.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn pruned_contraction_reports_dropped_mass() {
        let mut c = Circuit::new(4);
        c.h(0).ry(0.7, 1).cx(0, 1).rz(0.3, 1).cx(1, 2).t(2).cx(2, 3).rx(1.1, 3);
        let fragments = plan_fragments(&c, 3);
        let backend = ExactBackend::new();
        let reconstructor = ProbabilityReconstructor::with_options(ReconstructionOptions {
            strategy: ReconstructionStrategy::Contract,
            prune_tolerance: 1e-9,
        });
        let requests = reconstructor.requests(&fragments).unwrap();
        let results = execute_requests(&fragments, &requests, &backend).unwrap();
        let (reconstructed, report) =
            reconstructor.reconstruct_with_report(&fragments, &results).unwrap();
        assert_eq!(report.strategy, ReconstructionStrategy::Contract);
        assert!(report.contractions >= 1, "multi-fragment plan must contract");
        assert!(report.kept_terms > 0);
        assert_eq!(report.prune_tolerance, 1e-9);
        // a tolerance this small must not visibly perturb the distribution
        let exact = StateVector::from_circuit(&c).unwrap().probabilities();
        for (a, b) in exact.iter().zip(&reconstructed) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gate_cut_plans_are_rejected() {
        let mut c = Circuit::new(4);
        c.h(0).rzz(0.4, 0, 1).rzz(0.9, 1, 2).rzz(0.2, 2, 3);
        let config = QrccConfig::new(3)
            .with_subcircuit_range(2, 2)
            .with_gate_cuts(true)
            .with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        if fragments.num_gate_cuts() == 0 {
            return; // the planner chose wire cuts only; nothing to test here
        }
        assert!(matches!(
            ProbabilityReconstructor::new().requests(&fragments),
            Err(CoreError::GateCutNeedsExpectation)
        ));
        assert!(matches!(
            ProbabilityReconstructor::new().reconstruct(&fragments, &ExecutionResults::default()),
            Err(CoreError::GateCutNeedsExpectation)
        ));
    }

    #[test]
    fn consuming_an_empty_batch_reports_missing_variants() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let config =
            QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        assert!(matches!(
            ProbabilityReconstructor::new().reconstruct(&fragments, &ExecutionResults::default()),
            Err(CoreError::MissingVariant { .. })
        ));
    }
}
