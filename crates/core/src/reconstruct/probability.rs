//! Full probability-vector reconstruction for wire-cut-only plans (the
//! CutQC-style path, paper §4.3 "Reconstruction after W-Cut").
//!
//! The reconstructor follows the batch-first protocol: [`requests`] lists the
//! variants it needs (enumerate), the caller executes them in one batch, and
//! [`reconstruct`] reads the distributions back out of the
//! [`ExecutionResults`] (consume) — it never talks to a backend itself.
//!
//! [`requests`]: ProbabilityReconstructor::requests
//! [`reconstruct`]: ProbabilityReconstructor::reconstruct

use super::{cut_bit_weight, init_weight, mixed_radix, required_basis, MAX_DENSE_CUTS};
use crate::execute::{execute_requests, ExecutionBackend, ExecutionResults};
use crate::fragment::{
    CutBasis, Fragment, FragmentSet, FragmentVariant, InitState, VariantKey, VariantRequest,
};
use crate::CoreError;

/// Reconstructs the original circuit's probability distribution from a
/// wire-cut [`FragmentSet`].
#[derive(Debug, Clone, Default)]
pub struct ProbabilityReconstructor {}

/// Per-fragment attribution tensor: for every combination of incoming and
/// outgoing attribution components, the (sub-normalised) distribution over
/// the fragment's output bits.
struct FragmentTensor {
    data: Vec<Vec<f64>>,
}

impl FragmentTensor {
    fn index(&self, in_components: &[usize], out_components: &[usize]) -> usize {
        let mut idx = 0usize;
        let mut stride = 1usize;
        for &c in in_components {
            idx += c * stride;
            stride *= 4;
        }
        for &c in out_components {
            idx += c * stride;
            stride *= 4;
        }
        idx
    }
}

/// Every variant the probability workload needs from one fragment: all
/// `4^incoming · 3^outgoing` combinations, outputs measured in Z.
fn probability_variants(fragment: &Fragment) -> impl Iterator<Item = FragmentVariant> + '_ {
    let num_in = fragment.incoming_cuts.len();
    let num_out = fragment.outgoing_cuts.len();
    let output_bits = fragment.output_clbits.len();
    mixed_radix(num_in, 4).flat_map(move |init_digits| {
        let init_states: Vec<InitState> = init_digits.iter().map(|&d| InitState::ALL[d]).collect();
        mixed_radix(num_out, 3).map(move |basis_digits| FragmentVariant {
            init_states: init_states.clone(),
            cut_bases: basis_digits.iter().map(|&d| CutBasis::ALL[d]).collect(),
            gate_instances: Vec::new(),
            output_bases: vec![qrcc_circuit::observable::Pauli::Z; output_bits],
        })
    })
}

impl ProbabilityReconstructor {
    /// Creates a reconstructor.
    pub fn new() -> Self {
        ProbabilityReconstructor {}
    }

    fn check(&self, fragments: &FragmentSet) -> Result<(), CoreError> {
        if fragments.num_gate_cuts() > 0 {
            return Err(CoreError::GateCutNeedsExpectation);
        }
        let num_cuts = fragments.num_wire_cuts();
        if num_cuts > MAX_DENSE_CUTS {
            return Err(CoreError::TooManyCuts { cuts: num_cuts, limit: MAX_DENSE_CUTS });
        }
        Ok(())
    }

    /// Phase 1 (enumerate): every variant request the probability workload
    /// needs, as pure data.
    ///
    /// # Errors
    ///
    /// * [`CoreError::GateCutNeedsExpectation`] if the plan contains gate
    ///   cuts (their post-processing cannot rebuild a distribution).
    /// * [`CoreError::TooManyCuts`] if the plan has more wire cuts than the
    ///   dense reconstruction supports.
    pub fn requests(&self, fragments: &FragmentSet) -> Result<Vec<VariantRequest>, CoreError> {
        self.check(fragments)?;
        let mut requests = Vec::new();
        for fragment in &fragments.fragments {
            // A fragment with no classical bits (a reuse-absorbed empty
            // subcircuit) measures nothing: its distribution is trivially
            // [1.0], so nothing needs to run.
            if fragment.num_clbits == 0 {
                continue;
            }
            requests.extend(
                probability_variants(fragment).map(|v| VariantRequest::new(fragment.index, v)),
            );
        }
        Ok(requests)
    }

    /// Phase 3 (consume): rebuilds the `2^N` probability vector of the
    /// original circuit from executed batch results.
    ///
    /// # Errors
    ///
    /// Same plan conditions as [`ProbabilityReconstructor::requests`], plus
    /// [`CoreError::MissingVariant`] when `results` lacks a needed variant.
    pub fn reconstruct(
        &self,
        fragments: &FragmentSet,
        results: &ExecutionResults,
    ) -> Result<Vec<f64>, CoreError> {
        self.check(fragments)?;
        let num_cuts = fragments.num_wire_cuts();

        let tensors: Vec<FragmentTensor> = fragments
            .fragments
            .iter()
            .map(|f| build_tensor(f, results))
            .collect::<Result<_, _>>()?;

        let n = fragments.original_qubits;
        let mut probabilities = vec![0.0; 1usize << n];
        let scale = 0.5f64.powi(num_cuts as i32);

        // Pre-compute, per fragment, the original-qubit position of every
        // output bit so full bitstrings can be assembled quickly.
        let output_positions: Vec<Vec<usize>> = fragments
            .fragments
            .iter()
            .map(|f| f.output_clbits.iter().map(|&(orig, _)| orig).collect())
            .collect();
        let idle_mask: usize =
            (0..n).filter(|&q| fragments.output_owner[q].is_none()).fold(0, |m, q| m | (1 << q));

        for components in mixed_radix(num_cuts, 4) {
            // factor vectors per fragment for this component assignment
            let mut factors: Vec<&Vec<f64>> = Vec::with_capacity(fragments.fragments.len());
            for (f, tensor) in fragments.fragments.iter().zip(&tensors) {
                let in_components: Vec<usize> =
                    f.incoming_cuts.iter().map(|&cut| components[cut]).collect();
                let out_components: Vec<usize> =
                    f.outgoing_cuts.iter().map(|&cut| components[cut]).collect();
                factors.push(&tensor.data[tensor.index(&in_components, &out_components)]);
            }
            // accumulate the outer product into the full distribution
            for (x, slot) in probabilities.iter_mut().enumerate() {
                if x & idle_mask != 0 {
                    continue; // idle qubits always read 0
                }
                let mut term = scale;
                for (f_idx, positions) in output_positions.iter().enumerate() {
                    let mut y = 0usize;
                    for (bit, &orig) in positions.iter().enumerate() {
                        if x & (1 << orig) != 0 {
                            y |= 1 << bit;
                        }
                    }
                    term *= factors[f_idx][y];
                    if term == 0.0 {
                        break;
                    }
                }
                *slot += term;
            }
        }
        Ok(probabilities)
    }

    /// Convenience: runs all three phases (enumerate → dedup/execute →
    /// consume) against `backend` in one call.
    ///
    /// # Errors
    ///
    /// Any error of [`ProbabilityReconstructor::requests`],
    /// [`execute_requests`] or [`ProbabilityReconstructor::reconstruct`].
    pub fn run(
        &self,
        fragments: &FragmentSet,
        backend: &dyn ExecutionBackend,
    ) -> Result<Vec<f64>, CoreError> {
        let requests = self.requests(fragments)?;
        let results = execute_requests(fragments, &requests, backend)?;
        self.reconstruct(fragments, &results)
    }
}

fn build_tensor(
    fragment: &Fragment,
    results: &ExecutionResults,
) -> Result<FragmentTensor, CoreError> {
    let num_in = fragment.incoming_cuts.len();
    let num_out = fragment.outgoing_cuts.len();
    let output_bits = fragment.output_clbits.len();
    let table_size = 4usize.pow((num_in + num_out) as u32);
    let mut tensor = FragmentTensor { data: vec![vec![0.0; 1 << output_bits]; table_size] };

    let output_bit_positions: Vec<usize> =
        fragment.output_clbits.iter().map(|&(_, clbit)| clbit).collect();
    let cut_bit_positions: Vec<usize> =
        fragment.cut_clbits.iter().map(|&(_, clbit)| clbit).collect();

    // An empty (clbit-free) fragment was never executed: the distribution
    // over its zero classical bits is the constant [1.0].
    const TRIVIAL: [f64; 1] = [1.0];

    for variant in probability_variants(fragment) {
        let key = VariantKey::new(fragment.index, variant);
        let init_states = &key.variant.init_states;
        let cut_bases = &key.variant.cut_bases;
        let dist: &[f64] =
            if fragment.num_clbits == 0 { &TRIVIAL } else { results.distribution(&key)? };

        for (outcome, &p) in dist.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let mut y = 0usize;
            for (bit, &pos) in output_bit_positions.iter().enumerate() {
                if outcome & (1 << pos) != 0 {
                    y |= 1 << bit;
                }
            }
            let cut_bits: Vec<bool> =
                cut_bit_positions.iter().map(|&pos| outcome & (1 << pos) != 0).collect();

            // distribute this outcome over every compatible component combo
            for in_components in mixed_radix(num_in, 4) {
                let mut weight = p;
                for (slot, &component) in in_components.iter().enumerate() {
                    weight *= init_weight(component, init_states[slot]);
                    if weight == 0.0 {
                        break;
                    }
                }
                if weight == 0.0 {
                    continue;
                }
                for out_components in mixed_radix(num_out, 4) {
                    let mut w = weight;
                    for (slot, &component) in out_components.iter().enumerate() {
                        if required_basis(component) != cut_bases[slot] {
                            w = 0.0;
                            break;
                        }
                        w *= cut_bit_weight(component, cut_bits[slot]);
                        if w == 0.0 {
                            break;
                        }
                    }
                    if w == 0.0 {
                        continue;
                    }
                    let idx = tensor.index(&in_components, &out_components);
                    tensor.data[idx][y] += w;
                }
            }
        }
    }
    Ok(tensor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::ExactBackend;
    use crate::planner::CutPlanner;
    use crate::QrccConfig;
    use qrcc_circuit::Circuit;
    use qrcc_sim::StateVector;
    use std::time::Duration;

    fn reconstruct_and_compare(circuit: &Circuit, device_size: usize) {
        let config = QrccConfig::new(device_size)
            .with_subcircuit_range(2, 3)
            .with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(circuit).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        let backend = ExactBackend::new();
        // three-phase flow: enumerate, batch-execute, consume
        let reconstructor = ProbabilityReconstructor::new();
        let requests = reconstructor.requests(&fragments).unwrap();
        let results = execute_requests(&fragments, &requests, &backend).unwrap();
        assert_eq!(results.requested(), requests.len() as u64);
        let reconstructed = reconstructor.reconstruct(&fragments, &results).unwrap();
        let exact = StateVector::from_circuit(circuit).unwrap().probabilities();
        assert_eq!(reconstructed.len(), exact.len());
        let total: f64 = reconstructed.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "reconstructed total {total}");
        for (i, (a, b)) in exact.iter().zip(&reconstructed).enumerate() {
            assert!((a - b).abs() < 1e-6, "probability mismatch at {i}: exact {a} vs {b}");
        }
    }

    #[test]
    fn ghz_chain_reconstruction_matches_statevector() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        reconstruct_and_compare(&c, 3);
    }

    #[test]
    fn rotated_chain_reconstruction_matches_statevector() {
        let mut c = Circuit::new(4);
        c.h(0).ry(0.7, 1).cx(0, 1).rz(0.3, 1).cx(1, 2).t(2).cx(2, 3).rx(1.1, 3);
        reconstruct_and_compare(&c, 3);
    }

    #[test]
    fn run_convenience_matches_three_phase_flow() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).ry(0.4, 3).cx(2, 3);
        let config =
            QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        let backend = ExactBackend::new();
        let direct = ProbabilityReconstructor::new().run(&fragments, &backend).unwrap();
        let exact = StateVector::from_circuit(&c).unwrap().probabilities();
        for (a, b) in exact.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gate_cut_plans_are_rejected() {
        let mut c = Circuit::new(4);
        c.h(0).rzz(0.4, 0, 1).rzz(0.9, 1, 2).rzz(0.2, 2, 3);
        let config = QrccConfig::new(3)
            .with_subcircuit_range(2, 2)
            .with_gate_cuts(true)
            .with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        if fragments.num_gate_cuts() == 0 {
            return; // the planner chose wire cuts only; nothing to test here
        }
        assert!(matches!(
            ProbabilityReconstructor::new().requests(&fragments),
            Err(CoreError::GateCutNeedsExpectation)
        ));
        assert!(matches!(
            ProbabilityReconstructor::new().reconstruct(&fragments, &ExecutionResults::default()),
            Err(CoreError::GateCutNeedsExpectation)
        ));
    }

    #[test]
    fn consuming_an_empty_batch_reports_missing_variants() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let config =
            QrccConfig::new(3).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&c).unwrap();
        let fragments = FragmentSet::from_plan(&plan).unwrap();
        assert!(matches!(
            ProbabilityReconstructor::new().reconstruct(&fragments, &ExecutionResults::default()),
            Err(CoreError::MissingVariant { .. })
        ));
    }
}
