//! The shared contraction engine behind both reconstructors.
//!
//! Every executed fragment variant is folded **once** into a cut-indexed
//! [`CutTensor`]: one axis per wire cut (radix 4, the attribution components
//! of Eq. (3)) or gate cut (radix 6, the Mitarai–Fujii instances), with a
//! payload per entry — the sub-normalised distribution over the fragment's
//! output bits for probability workloads, a parity-weighted scalar for
//! expectation workloads.
//!
//! Reconstruction then runs in one of two executable strategies:
//!
//! * **Dense** — the global mixed-radix loop of the paper's FRP/FRE models,
//!   chunked deterministically and executed rayon-parallel.
//! * **Contract** — the ARP divide-and-conquer model made executable:
//!   tensors are merged pairwise along shared cut legs (each contracted wire
//!   leg folds the `1/2` scale, each gate leg folds its quasi-probability
//!   coefficient), with the merge order chosen greedily by intermediate
//!   tensor size. Attribution entries whose accumulated absolute weight
//!   falls below a tolerance are pruned, and the dropped mass is reported.
//!
//! [`resolve_strategy`] turns a [`ReconstructionStrategy`] (possibly `Auto`)
//! into a concrete executable path using the [`cost`] models.

use super::{cut_bit_weight, init_weight, mixed_radix, required_basis, Odometer, MAX_DENSE_CUTS};
use crate::execute::ExecutionResults;
use crate::fragment::{CutBasis, Fragment, FragmentSet, FragmentVariant, InitState, VariantKey};
use crate::gatecut::instance_measures;
use crate::reconstruct::cost;
use crate::{CoreError, QrccConfig};
use qrcc_circuit::observable::{Pauli, PauliString};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Which classical post-processing path reconstructs the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReconstructionStrategy {
    /// The global `4^wire · 6^gate` mixed-radix loop (the paper's FRP/FRE
    /// models), rayon-parallel over deterministic component chunks. Capped at
    /// [`MAX_DENSE_CUTS`] wire cuts.
    Dense,
    /// Pairwise fragment-tensor contraction along shared cuts (the paper's
    /// ARP model made executable), with greedy ordering and sparse term
    /// pruning. Only per-contraction legs are capped, so plans whose total
    /// cut count exceeds [`MAX_DENSE_CUTS`] remain reconstructable.
    Contract,
    /// Pick whichever feasible strategy the [`cost`] models rate cheaper.
    #[default]
    Auto,
}

/// The two reconstruction workloads the engine serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Full probability-vector reconstruction (wire cuts only).
    Probability,
    /// Expectation-value reconstruction (wire and gate cuts).
    Expectation,
}

/// Tuning knobs of the reconstruction engine, shared by both reconstructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconstructionOptions {
    /// Strategy selection (`Auto` consults the [`cost`] models).
    pub strategy: ReconstructionStrategy,
    /// Sparse-pruning tolerance of the `Contract` strategy: attribution
    /// entries whose accumulated absolute weight stays below this value are
    /// dropped (`0.0` disables pruning; the dense path never prunes).
    pub prune_tolerance: f64,
}

impl Default for ReconstructionOptions {
    fn default() -> Self {
        ReconstructionOptions { strategy: ReconstructionStrategy::Auto, prune_tolerance: 0.0 }
    }
}

impl ReconstructionOptions {
    /// The options a [`QrccConfig`] selects.
    pub fn from_config(config: &QrccConfig) -> Self {
        ReconstructionOptions {
            strategy: config.reconstruction_strategy,
            prune_tolerance: config.prune_tolerance,
        }
    }
}

/// What one reconstruction actually did: the resolved strategy, the pairwise
/// contraction stats, and the mass dropped by sparse pruning.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReconstructionReport {
    /// The strategy that executed (never `Auto`; the default value `Auto`
    /// only appears in a freshly initialised report).
    pub strategy: ReconstructionStrategy,
    /// Number of pairwise tensor contractions performed (0 for `Dense`).
    pub contractions: usize,
    /// The largest number of cut legs alive in any single tensor or pairwise
    /// contraction — the quantity the per-contraction cap applies to.
    pub max_contraction_legs: usize,
    /// Attribution entries that survived pruning across all tensors built.
    pub kept_terms: usize,
    /// Attribution entries dropped because their absolute weight stayed
    /// below the tolerance.
    pub pruned_terms: usize,
    /// Total absolute weight of the dropped entries — an upper-bound proxy
    /// for the reconstruction error pruning introduced.
    pub pruned_weight: f64,
    /// The tolerance pruning ran with.
    pub prune_tolerance: f64,
    /// Total device shots the consumed [`ExecutionResults`] spent across all
    /// backends (0 for exact-only batches).
    pub shots_spent: u64,
    /// Number of distinct backends the consumed batch was routed across (1
    /// for single-backend execution, more after scheduled dispatch).
    pub backends_used: usize,
    /// Circuit executions that failed on some backend while the consumed
    /// batch was dispatched (0 unless fault-tolerant dispatch re-routed
    /// work).
    pub dispatch_failures: u64,
    /// Successful executions that were dispatch retries — circuits that
    /// failed elsewhere first and were re-routed by the dispatcher.
    pub dispatch_retries: u64,
    /// Kernel-compilation statistics of the simulator backend that produced
    /// the consumed [`ExecutionResults`]: gates lowered, kernels emitted,
    /// fusion ratio, per-family specialization coverage and cache hit rate.
    /// `None` when execution interpreted gate-by-gate (or the producer did
    /// not record stats).
    pub kernel_compile: Option<qrcc_sim::compile::CompileStats>,
    /// Result-cache counters of the execution that produced the consumed
    /// [`ExecutionResults`]: full and delta hits, misses, and the device
    /// shots the cache saved. `None` when no result cache was attached.
    pub result_cache: Option<crate::cache::CacheStats>,
    /// Wall-clock attribution by pipeline phase ("where did the time go?"),
    /// measured by the streaming execution paths
    /// (`QrccPipeline::execute_streaming` and friends). `None` when the
    /// consumer reconstructed from a pre-executed batch.
    pub profile: Option<crate::obs::PhaseProfile>,
}

/// One cut axis of a [`CutTensor`], identified by its global cut id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Leg {
    /// A wire cut: 4 attribution components, contraction folds `1/2`.
    Wire(usize),
    /// A gate cut: 6 instances, contraction folds the instance coefficient.
    Gate(usize),
}

impl Leg {
    fn radix(self) -> usize {
        match self {
            Leg::Wire(_) => 4,
            Leg::Gate(_) => 6,
        }
    }
}

/// A fragment's executed variants folded into one cut-indexed tensor.
///
/// Entry `e` (mixed-radix over `legs`, least-significant leg first) holds a
/// payload of `2^bit_origins.len()` values: the weighted distribution over
/// the fragment's original-circuit output bits (`bit_origins[i]` names the
/// original qubit of payload bit `i`); expectation tensors carry scalar
/// payloads (`bit_origins` empty).
#[derive(Debug, Clone)]
pub(crate) struct CutTensor {
    legs: Vec<Leg>,
    strides: Vec<usize>,
    entries: usize,
    bit_origins: Vec<usize>,
    payload_len: usize,
    data: Vec<f64>,
    /// Per-entry liveness: `false` entries are all-zero (or pruned) and are
    /// skipped by both strategies.
    active: Vec<bool>,
}

impl CutTensor {
    fn new(legs: Vec<Leg>, bit_origins: Vec<usize>) -> Self {
        let mut strides = Vec::with_capacity(legs.len());
        let mut entries = 1usize;
        for leg in &legs {
            strides.push(entries);
            entries *= leg.radix();
        }
        let payload_len = 1usize << bit_origins.len();
        CutTensor {
            legs,
            strides,
            entries,
            bit_origins,
            payload_len,
            data: vec![0.0; entries * payload_len],
            active: vec![false; entries],
        }
    }

    fn payload(&self, entry: usize) -> &[f64] {
        &self.data[entry * self.payload_len..(entry + 1) * self.payload_len]
    }

    /// Recomputes the liveness flags from the payload contents.
    pub(crate) fn refresh_active(&mut self) {
        for entry in 0..self.entries {
            self.active[entry] = self.data
                [entry * self.payload_len..(entry + 1) * self.payload_len]
                .iter()
                .any(|&v| v != 0.0);
        }
    }

    /// Drops entries whose accumulated absolute weight stays below
    /// `tolerance`, recording the dropped mass in `report`. A tolerance of
    /// zero prunes nothing but still refreshes liveness and term counts.
    fn prune(&mut self, tolerance: f64, report: &mut ReconstructionReport) {
        for entry in 0..self.entries {
            let start = entry * self.payload_len;
            let slice = &mut self.data[start..start + self.payload_len];
            let mass: f64 = slice.iter().map(|v| v.abs()).sum();
            if mass == 0.0 {
                self.active[entry] = false;
            } else if mass < tolerance {
                slice.iter_mut().for_each(|v| *v = 0.0);
                self.active[entry] = false;
                report.pruned_terms += 1;
                report.pruned_weight += mass;
            } else {
                self.active[entry] = true;
                report.kept_terms += 1;
            }
        }
    }

    /// Sums out diagonal pairs of duplicated legs (a cut whose both sides
    /// land in the same fragment), folding the contraction weight. Such a
    /// cut is internal to the fragment — no other tensor carries its leg —
    /// so **both** axes disappear and the diagonal is summed over, exactly
    /// as the dense path's global component sum handles that cut. Real plans
    /// place the two sides of a cut in different fragments, so this is
    /// normally a no-op — but the contract path must not silently mis-handle
    /// a self-cut if a planner ever emits one.
    fn normalize_legs(mut self, coeffs: &[[f64; 6]]) -> CutTensor {
        loop {
            let dup = self.legs.iter().enumerate().find_map(|(p1, leg)| {
                self.legs[p1 + 1..].iter().position(|l| l == leg).map(|off| (p1, p1 + 1 + off))
            });
            let Some((p1, p2)) = dup else { return self };
            let legs: Vec<Leg> = self
                .legs
                .iter()
                .enumerate()
                .filter(|&(p, _)| p != p1 && p != p2)
                .map(|(_, &l)| l)
                .collect();
            let mut out = CutTensor::new(legs, self.bit_origins.clone());
            let diagonal_stride = self.strides[p1] + self.strides[p2];
            let radix = self.legs[p1].radix();
            let diagonal_weights: Vec<f64> = (0..radix)
                .map(|d| match self.legs[p1] {
                    Leg::Wire(_) => 0.5,
                    Leg::Gate(g) => coeffs[g][d],
                })
                .collect();
            let mut od = Odometer::new(out.legs.iter().map(|l| l.radix()).collect());
            let mut e_out = 0usize;
            while let Some(digits) = od.next() {
                // map the surviving out legs back to their original strides
                let mut base = 0usize;
                let mut out_digit = 0usize;
                for (tp, stride) in self.strides.iter().enumerate() {
                    if tp == p1 || tp == p2 {
                        continue;
                    }
                    base += digits[out_digit] * stride;
                    out_digit += 1;
                }
                let start = e_out * out.payload_len;
                for (d, &w) in diagonal_weights.iter().enumerate() {
                    if w == 0.0 {
                        continue;
                    }
                    let diag = self.payload(base + d * diagonal_stride);
                    for (slot, &v) in out.data[start..start + out.payload_len].iter_mut().zip(diag)
                    {
                        *slot += w * v;
                    }
                }
                e_out += 1;
            }
            out.refresh_active();
            self = out;
        }
    }
}

// ---------------------------------------------------------------------------
// Variant enumeration (phase 1 building blocks, shared with the front-ends)
// ---------------------------------------------------------------------------

/// Every variant the probability workload needs from one fragment: all
/// `4^incoming · 3^outgoing` combinations, outputs measured in Z.
pub(crate) fn probability_variants(
    fragment: &Fragment,
) -> impl Iterator<Item = FragmentVariant> + '_ {
    let num_in = fragment.incoming_cuts.len();
    let num_out = fragment.outgoing_cuts.len();
    let output_bits = fragment.output_clbits.len();
    mixed_radix(num_in, 4).flat_map(move |init_digits| {
        let init_states: Vec<InitState> = init_digits.iter().map(|&d| InitState::ALL[d]).collect();
        mixed_radix(num_out, 3).map(move |basis_digits| FragmentVariant {
            init_states: init_states.clone(),
            cut_bases: basis_digits.iter().map(|&d| CutBasis::ALL[d]).collect(),
            gate_instances: Vec::new(),
            output_bases: vec![Pauli::Z; output_bits],
        })
    })
}

/// The output-measurement bases one fragment needs for one Pauli string,
/// normalised so that `I` measures like `Z`: both instantiate to a plain
/// computational-basis measurement, and normalising makes variant keys of
/// different Pauli terms collide exactly when their circuits are identical
/// (maximising batch dedup).
pub(super) fn normalized_output_bases(fragment: &Fragment, string: &PauliString) -> Vec<Pauli> {
    fragment
        .output_clbits
        .iter()
        .map(|&(orig, _)| match string.pauli(orig) {
            Pauli::I => Pauli::Z,
            p => p,
        })
        .collect()
}

/// Every variant one fragment needs for one Pauli string: all
/// `6^roles · 4^incoming · 3^outgoing` combinations with the string's output
/// bases.
pub(crate) fn expectation_variants<'a>(
    fragment: &'a Fragment,
    string: &PauliString,
) -> impl Iterator<Item = FragmentVariant> + 'a {
    let output_bases = normalized_output_bases(fragment, string);
    let num_in = fragment.incoming_cuts.len();
    let num_out = fragment.outgoing_cuts.len();
    let num_roles = fragment.gate_cut_roles.len();
    mixed_radix(num_roles, 6).flat_map(move |instance_digits| {
        let instances: Vec<usize> = instance_digits.iter().map(|&d| d + 1).collect();
        let output_bases = output_bases.clone();
        mixed_radix(num_in, 4).flat_map(move |init_digits| {
            let init_states: Vec<InitState> =
                init_digits.iter().map(|&d| InitState::ALL[d]).collect();
            let instances = instances.clone();
            let output_bases = output_bases.clone();
            mixed_radix(num_out, 3).map(move |basis_digits| FragmentVariant {
                init_states: init_states.clone(),
                cut_bases: basis_digits.iter().map(|&d| CutBasis::ALL[d]).collect(),
                gate_instances: instances.clone(),
                output_bases: output_bases.clone(),
            })
        })
    })
}

// ---------------------------------------------------------------------------
// Tensor building (consume phase, step 1)
// ---------------------------------------------------------------------------

/// An empty (clbit-free) fragment was never executed: the distribution over
/// its zero classical bits is the constant `[1.0]`.
pub(crate) const TRIVIAL: [f64; 1] = [1.0];

/// Reusable scratch for folding one fragment's probability variants into its
/// cut tensor one at a time: precomputed clbit positions and allocation-free
/// odometers. One folder serves any number of [`CutTensor::fold_partial`]
/// calls for the same fragment, whether the variants arrive as one complete
/// batch or as streamed chunks.
#[derive(Debug, Clone)]
pub(crate) struct FragmentFolder {
    output_bit_positions: Vec<usize>,
    cut_bit_positions: Vec<usize>,
    cut_bits: Vec<bool>,
    in_od: Odometer,
    out_od: Odometer,
    num_in: usize,
}

impl FragmentFolder {
    /// A folder plus the empty probability tensor of `fragment`: legs are
    /// the incoming then outgoing wire cuts, payloads the weighted
    /// distributions over the fragment's output bits.
    pub(crate) fn probability(fragment: &Fragment) -> (CutTensor, FragmentFolder) {
        let num_in = fragment.incoming_cuts.len();
        let num_out = fragment.outgoing_cuts.len();
        let legs: Vec<Leg> = fragment
            .incoming_cuts
            .iter()
            .chain(&fragment.outgoing_cuts)
            .map(|&cut| Leg::Wire(cut))
            .collect();
        let bit_origins: Vec<usize> =
            fragment.output_clbits.iter().map(|&(orig, _)| orig).collect();
        let tensor = CutTensor::new(legs, bit_origins);
        let cut_bit_positions: Vec<usize> =
            fragment.cut_clbits.iter().map(|&(_, clbit)| clbit).collect();
        let folder = FragmentFolder {
            output_bit_positions: fragment.output_clbits.iter().map(|&(_, clbit)| clbit).collect(),
            cut_bits: vec![false; cut_bit_positions.len()],
            cut_bit_positions,
            in_od: Odometer::uniform(num_in, 4),
            out_od: Odometer::uniform(num_out, 4),
            num_in,
        };
        (tensor, folder)
    }
}

impl CutTensor {
    /// Folds **one** executed probability variant's distribution into this
    /// tensor — the incremental unit of tensor building. Calling it for
    /// every variant of a fragment (in any order, across any number of
    /// partial batches) accumulates exactly the tensor
    /// [`probability_tensor`] builds in one pass; callers must
    /// [`refresh_active`](CutTensor::refresh_active) (or prune) once folding
    /// is complete.
    pub(crate) fn fold_partial(
        &mut self,
        folder: &mut FragmentFolder,
        variant: &FragmentVariant,
        dist: &[f64],
    ) {
        let init_states = &variant.init_states;
        let cut_bases = &variant.cut_bases;
        let payload_len = self.payload_len;
        for (outcome, &p) in dist.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let mut y = 0usize;
            for (bit, &pos) in folder.output_bit_positions.iter().enumerate() {
                if outcome & (1 << pos) != 0 {
                    y |= 1 << bit;
                }
            }
            for (slot, &pos) in folder.cut_bit_positions.iter().enumerate() {
                folder.cut_bits[slot] = outcome & (1 << pos) != 0;
            }

            // distribute this outcome over every compatible component combo
            folder.in_od.reset();
            while let Some(in_components) = folder.in_od.next() {
                let mut weight = p;
                let mut idx_in = 0usize;
                for (slot, &component) in in_components.iter().enumerate() {
                    weight *= init_weight(component, init_states[slot]);
                    if weight == 0.0 {
                        break;
                    }
                    idx_in += component * self.strides[slot];
                }
                if weight == 0.0 {
                    continue;
                }
                folder.out_od.reset();
                while let Some(out_components) = folder.out_od.next() {
                    let mut w = weight;
                    let mut idx = idx_in;
                    for (slot, &component) in out_components.iter().enumerate() {
                        if required_basis(component) != cut_bases[slot] {
                            w = 0.0;
                            break;
                        }
                        w *= cut_bit_weight(component, folder.cut_bits[slot]);
                        if w == 0.0 {
                            break;
                        }
                        idx += component * self.strides[folder.num_in + slot];
                    }
                    if w == 0.0 {
                        continue;
                    }
                    self.data[idx * payload_len + y] += w;
                }
            }
        }
    }

    /// Zeroes the tensor so a dirty fragment can be re-folded from scratch
    /// (the shot-top-up path: only the touched fragment's tensor rebuilds).
    pub(crate) fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
        self.active.iter_mut().for_each(|a| *a = false);
    }
}

/// Folds one fragment's executed probability variants into a cut tensor in
/// one pass (the non-streaming path): every variant of the fragment must be
/// present in `results`.
pub(crate) fn probability_tensor(
    fragment: &Fragment,
    results: &ExecutionResults,
) -> Result<CutTensor, CoreError> {
    let (mut tensor, mut folder) = FragmentFolder::probability(fragment);
    for variant in probability_variants(fragment) {
        let key = VariantKey::new(fragment.index, variant);
        let dist: &[f64] =
            if fragment.num_clbits == 0 { &TRIVIAL } else { results.distribution(&key)? };
        tensor.fold_partial(&mut folder, &key.variant, dist);
    }
    tensor.refresh_active();
    Ok(tensor)
}

/// Reusable scratch for folding one fragment's expectation variants (for one
/// Pauli string) into its scalar cut tensor one at a time — the expectation
/// counterpart of [`FragmentFolder`]. One folder serves any number of
/// [`CutTensor::fold_expectation_partial`] calls, whether the variants
/// arrive as one complete batch or as streamed chunks.
#[derive(Debug, Clone)]
pub(crate) struct ExpectationFolder {
    /// Output clbits entering the Pauli parity.
    parity_bits: Vec<usize>,
    cut_bit_positions: Vec<usize>,
    gate_bit_positions: Vec<usize>,
    role_halves: Vec<crate::gatecut::GateHalf>,
    cut_bits: Vec<bool>,
    weighted: Vec<f64>,
    in_od: Odometer,
    out_stride: usize,
    gate_base_stride: usize,
    num_roles: usize,
}

impl ExpectationFolder {
    /// A folder plus the empty expectation tensor of `fragment` for one
    /// Pauli `string`: legs are the incoming and outgoing wire cuts plus the
    /// fragment's gate-cut roles, payloads are parity-weighted scalars.
    pub(crate) fn expectation(
        fragment: &Fragment,
        string: &PauliString,
    ) -> (CutTensor, ExpectationFolder) {
        let num_in = fragment.incoming_cuts.len();
        let num_out = fragment.outgoing_cuts.len();
        let num_roles = fragment.gate_cut_roles.len();
        let legs: Vec<Leg> = fragment
            .incoming_cuts
            .iter()
            .chain(&fragment.outgoing_cuts)
            .map(|&cut| Leg::Wire(cut))
            .chain(fragment.gate_cut_roles.iter().map(|&(cut, _)| Leg::Gate(cut)))
            .collect();
        let tensor = CutTensor::new(legs, Vec::new());
        let cut_bit_positions: Vec<usize> = fragment.cut_clbits.iter().map(|&(_, c)| c).collect();
        let folder = ExpectationFolder {
            parity_bits: fragment
                .output_clbits
                .iter()
                .filter(|&&(orig, _)| string.pauli(orig) != Pauli::I)
                .map(|&(_, clbit)| clbit)
                .collect(),
            cut_bits: vec![false; cut_bit_positions.len()],
            cut_bit_positions,
            gate_bit_positions: fragment.gatecut_clbits.iter().map(|&(_, c)| c).collect(),
            role_halves: fragment.gate_cut_roles.iter().map(|&(_, h)| h).collect(),
            weighted: vec![0.0f64; 4usize.pow(num_out as u32)],
            in_od: Odometer::uniform(num_in, 4),
            out_stride: 4usize.pow(num_in as u32),
            gate_base_stride: 4usize.pow((num_in + num_out) as u32),
            num_roles,
        };
        (tensor, folder)
    }
}

impl CutTensor {
    /// Folds **one** executed expectation variant's distribution into this
    /// scalar tensor — the incremental unit of expectation tensor building,
    /// mirroring [`CutTensor::fold_partial`] for probability tensors.
    /// Calling it for every variant of `(fragment, string)` accumulates
    /// exactly the tensor [`expectation_tensor`] builds in one pass; callers
    /// must [`refresh_active`](CutTensor::refresh_active) (or prune) once
    /// folding is complete.
    pub(crate) fn fold_expectation_partial(
        &mut self,
        folder: &mut ExpectationFolder,
        variant: &FragmentVariant,
        dist: &[f64],
    ) {
        let init_states = &variant.init_states;
        let cut_bases = &variant.cut_bases;
        let instances = &variant.gate_instances;

        // entry-index contribution of this variant's gate instances
        let mut idx_gate = 0usize;
        let mut stride = folder.gate_base_stride;
        for (role, &instance) in instances.iter().enumerate() {
            debug_assert!(role < folder.num_roles);
            idx_gate += (instance - 1) * stride;
            stride *= 6;
        }

        // Weighted scalar for this executed variant, per outgoing combo.
        folder.weighted.iter_mut().for_each(|w| *w = 0.0);
        for (outcome, &p) in dist.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            // parity of the Pauli support bits
            let mut sign = 1.0;
            for &bit in &folder.parity_bits {
                if outcome & (1 << bit) != 0 {
                    sign = -sign;
                }
            }
            // gate-cut measurement signs
            for (role, &instance) in instances.iter().enumerate() {
                if instance_measures(instance, folder.role_halves[role])
                    && outcome & (1 << folder.gate_bit_positions[role]) != 0
                {
                    sign = -sign;
                }
            }
            for (slot, &pos) in folder.cut_bit_positions.iter().enumerate() {
                folder.cut_bits[slot] = outcome & (1 << pos) != 0;
            }
            for (combo, slot) in folder.weighted.iter_mut().enumerate() {
                let mut w = p * sign;
                let mut rest = combo;
                for (cut_slot, &basis) in cut_bases.iter().enumerate() {
                    let component = rest % 4;
                    rest /= 4;
                    if required_basis(component) != basis {
                        w = 0.0;
                        break;
                    }
                    w *= cut_bit_weight(component, folder.cut_bits[cut_slot]);
                    if w == 0.0 {
                        break;
                    }
                }
                *slot += w;
            }
        }

        // Scatter into the tensor across compatible incoming components.
        folder.in_od.reset();
        while let Some(in_components) = folder.in_od.next() {
            let mut in_weight = 1.0;
            let mut idx_in = 0usize;
            for (slot, &component) in in_components.iter().enumerate() {
                in_weight *= init_weight(component, init_states[slot]);
                if in_weight == 0.0 {
                    break;
                }
                idx_in += component * self.strides[slot];
            }
            if in_weight == 0.0 {
                continue;
            }
            for (combo, &value) in folder.weighted.iter().enumerate() {
                if value == 0.0 {
                    continue;
                }
                let idx = idx_in + combo * folder.out_stride + idx_gate;
                self.data[idx] += in_weight * value;
            }
        }
    }
}

/// Folds one fragment's executed expectation variants (for one Pauli string)
/// into a cut tensor with scalar payloads in one pass (the non-streaming
/// path): every variant of the fragment must be present in `results`.
pub(crate) fn expectation_tensor(
    fragment: &Fragment,
    results: &ExecutionResults,
    string: &PauliString,
) -> Result<CutTensor, CoreError> {
    let (mut tensor, mut folder) = ExpectationFolder::expectation(fragment, string);
    for variant in expectation_variants(fragment, string) {
        let key = VariantKey::new(fragment.index, variant);
        let dist: &[f64] =
            if fragment.num_clbits == 0 { &TRIVIAL } else { results.distribution(&key)? };
        tensor.fold_expectation_partial(&mut folder, &key.variant, dist);
    }
    tensor.refresh_active();
    Ok(tensor)
}

// ---------------------------------------------------------------------------
// Contraction planning (greedy order + feasibility + cost)
// ---------------------------------------------------------------------------

/// Leg-level summary of one tensor, enough to plan a contraction order
/// without building the tensor.
#[derive(Debug, Clone)]
struct LegMeta {
    legs: Vec<Leg>,
    bits: usize,
}

/// A replayable pairwise-contraction schedule over an evolving tensor list:
/// step `(i, j)` contracts the tensors at positions `i < j`, removes both and
/// appends the result.
#[derive(Debug, Clone)]
pub(crate) struct ContractionPlan {
    steps: Vec<(usize, usize)>,
    /// Largest number of cut legs alive in any single tensor or pairwise
    /// contraction.
    pub(crate) max_step_legs: usize,
    /// `log₂` FP size of each step (for the [`cost`] comparison).
    pub(crate) step_log2_sizes: Vec<f64>,
}

fn leg_metas(fragments: &FragmentSet, workload: Workload) -> Vec<LegMeta> {
    fragments
        .fragments
        .iter()
        .map(|f| {
            let mut raw: Vec<Leg> =
                f.incoming_cuts.iter().chain(&f.outgoing_cuts).map(|&cut| Leg::Wire(cut)).collect();
            let bits = match workload {
                Workload::Probability => f.output_clbits.len(),
                Workload::Expectation => {
                    raw.extend(f.gate_cut_roles.iter().map(|&(cut, _)| Leg::Gate(cut)));
                    0
                }
            };
            // A leg appearing twice is a self-cut: `normalize_legs` sums it
            // out at tensor-build time, so it carries no axis at all.
            let legs: Vec<Leg> = raw
                .iter()
                .filter(|leg| raw.iter().filter(|l| l == leg).count() == 1)
                .copied()
                .collect();
            LegMeta { legs, bits }
        })
        .collect()
}

/// `log₂` of the FP cost of contracting two tensors: the full union of their
/// legs times both payload sizes.
fn pair_log2_size(a: &LegMeta, b: &LegMeta) -> f64 {
    let mut log2 = (a.bits + b.bits) as f64;
    for leg in &a.legs {
        log2 += (leg.radix() as f64).log2();
    }
    for leg in &b.legs {
        if !a.legs.contains(leg) {
            log2 += (leg.radix() as f64).log2();
        }
    }
    log2
}

/// Greedily orders pairwise contractions by smallest resulting intermediate
/// (ties broken by position, so the schedule is deterministic).
pub(crate) fn plan_contraction(fragments: &FragmentSet, workload: Workload) -> ContractionPlan {
    let mut metas = leg_metas(fragments, workload);
    let mut steps = Vec::new();
    let mut step_log2_sizes = Vec::new();
    let mut max_step_legs = metas.iter().map(|m| m.legs.len()).max().unwrap_or(0);
    while metas.len() > 1 {
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..metas.len() {
            for j in i + 1..metas.len() {
                let size = pair_log2_size(&metas[i], &metas[j]);
                if best.is_none_or(|(s, _, _)| size < s) {
                    best = Some((size, i, j));
                }
            }
        }
        let (size, i, j) = best.expect("at least one pair");
        let b = metas.remove(j);
        let a = metas.remove(i);
        let union_legs = a.legs.len() + b.legs.iter().filter(|l| !a.legs.contains(l)).count();
        max_step_legs = max_step_legs.max(union_legs);
        let merged_legs: Vec<Leg> = a
            .legs
            .iter()
            .filter(|l| !b.legs.contains(l))
            .chain(b.legs.iter().filter(|l| !a.legs.contains(l)))
            .copied()
            .collect();
        metas.push(LegMeta { legs: merged_legs, bits: a.bits + b.bits });
        steps.push((i, j));
        step_log2_sizes.push(size);
    }
    ContractionPlan { steps, max_step_legs, step_log2_sizes }
}

/// Resolves a requested strategy against a plan's feasibility and the
/// [`cost`] models: `Auto` picks the cheaper feasible path, explicit choices
/// fail with [`CoreError::TooManyCuts`] when infeasible.
pub(crate) fn resolve_strategy(
    fragments: &FragmentSet,
    options: &ReconstructionOptions,
    workload: Workload,
) -> Result<(ReconstructionStrategy, ContractionPlan), CoreError> {
    let plan = plan_contraction(fragments, workload);
    let wire_cuts = fragments.num_wire_cuts();
    let dense_feasible = wire_cuts <= MAX_DENSE_CUTS;
    let contract_feasible = plan.max_step_legs <= MAX_DENSE_CUTS;
    match options.strategy {
        ReconstructionStrategy::Dense => {
            if dense_feasible {
                Ok((ReconstructionStrategy::Dense, plan))
            } else {
                Err(CoreError::TooManyCuts { cuts: wire_cuts, limit: MAX_DENSE_CUTS })
            }
        }
        ReconstructionStrategy::Contract => {
            if contract_feasible {
                Ok((ReconstructionStrategy::Contract, plan))
            } else {
                Err(CoreError::TooManyCuts { cuts: plan.max_step_legs, limit: MAX_DENSE_CUTS })
            }
        }
        ReconstructionStrategy::Auto => match (dense_feasible, contract_feasible) {
            (false, false) => Err(CoreError::TooManyCuts {
                cuts: wire_cuts.max(plan.max_step_legs),
                limit: MAX_DENSE_CUTS,
            }),
            (true, false) => Ok((ReconstructionStrategy::Dense, plan)),
            (false, true) => Ok((ReconstructionStrategy::Contract, plan)),
            (true, true) => {
                let dense_log2 = match workload {
                    Workload::Probability => {
                        let measured =
                            fragments.output_owner.iter().filter(|o| o.is_some()).count();
                        cost::frp_log2_flops(measured, wire_cuts)
                    }
                    Workload::Expectation => {
                        // fold gate cuts into an effective cut count so that
                        // 2·cuts_eff = log₂(4^wire · 6^gate)
                        let effective =
                            wire_cuts as f64 + fragments.num_gate_cuts() as f64 * 6f64.log2() / 2.0;
                        cost::fre_log2_flops(effective)
                    }
                };
                let contract_log2 = cost::contract_log2_flops(&plan.step_log2_sizes);
                if contract_log2 < dense_log2 {
                    Ok((ReconstructionStrategy::Contract, plan))
                } else {
                    Ok((ReconstructionStrategy::Dense, plan))
                }
            }
        },
    }
}

// ---------------------------------------------------------------------------
// Contract strategy (pairwise contraction)
// ---------------------------------------------------------------------------

/// Contracts two tensors along their shared legs: each shared wire leg folds
/// the `1/2` reconstruction scale, each shared gate leg folds its instance
/// coefficient, and the payloads combine as an outer product (`a`'s bits stay
/// low, `b`'s go high).
fn contract_pair(a: &CutTensor, b: &CutTensor, coeffs: &[[f64; 6]]) -> CutTensor {
    let shared: Vec<(usize, usize)> = a
        .legs
        .iter()
        .enumerate()
        .filter_map(|(pa, la)| b.legs.iter().position(|lb| lb == la).map(|pb| (pa, pb)))
        .collect();
    let free_a: Vec<usize> =
        (0..a.legs.len()).filter(|p| !shared.iter().any(|&(pa, _)| pa == *p)).collect();
    let free_b: Vec<usize> =
        (0..b.legs.len()).filter(|p| !shared.iter().any(|&(_, pb)| pb == *p)).collect();
    let legs: Vec<Leg> =
        free_a.iter().map(|&p| a.legs[p]).chain(free_b.iter().map(|&p| b.legs[p])).collect();
    let bit_origins: Vec<usize> = a.bit_origins.iter().chain(&b.bit_origins).copied().collect();
    let mut out = CutTensor::new(legs, bit_origins);

    let pa_len = a.payload_len;
    let out_payload_len = out.payload_len;
    let mut out_od = Odometer::new(out.legs.iter().map(|l| l.radix()).collect());
    let mut sh_od = Odometer::new(shared.iter().map(|&(pa, _)| a.legs[pa].radix()).collect());
    let mut e_out = 0usize;
    while let Some(digits) = out_od.next() {
        let base_a: usize =
            digits[..free_a.len()].iter().zip(&free_a).map(|(&d, &p)| d * a.strides[p]).sum();
        let base_b: usize =
            digits[free_a.len()..].iter().zip(&free_b).map(|(&d, &p)| d * b.strides[p]).sum();
        let start = e_out * out_payload_len;
        let acc = &mut out.data[start..start + out_payload_len];
        sh_od.reset();
        while let Some(shared_digits) = sh_od.next() {
            let mut w = 1.0f64;
            let mut ia = base_a;
            let mut ib = base_b;
            for (k, &(pa, pb)) in shared.iter().enumerate() {
                let d = shared_digits[k];
                ia += d * a.strides[pa];
                ib += d * b.strides[pb];
                w *= match a.legs[pa] {
                    Leg::Wire(_) => 0.5,
                    Leg::Gate(g) => coeffs[g][d],
                };
            }
            if w == 0.0 || !a.active[ia] || !b.active[ib] {
                continue;
            }
            let pa_slice = a.payload(ia);
            let pb_slice = b.payload(ib);
            for (yb, &vb) in pb_slice.iter().enumerate() {
                let f = w * vb;
                if f == 0.0 {
                    continue;
                }
                let row = &mut acc[yb * pa_len..(yb + 1) * pa_len];
                for (slot, &va) in row.iter_mut().zip(pa_slice) {
                    *slot += f * va;
                }
            }
        }
        e_out += 1;
    }
    out
}

/// Replays a [`ContractionPlan`] over concrete tensors, pruning every
/// intermediate, and returns the final (leg-free) tensor.
fn contract_all(
    mut tensors: Vec<CutTensor>,
    plan: &ContractionPlan,
    coeffs: &[[f64; 6]],
    tolerance: f64,
    report: &mut ReconstructionReport,
) -> CutTensor {
    for &(i, j) in &plan.steps {
        let b = tensors.remove(j);
        let a = tensors.remove(i);
        let mut merged = contract_pair(&a, &b, coeffs);
        report.contractions += 1;
        merged.prune(tolerance, report);
        tensors.push(merged);
    }
    tensors.pop().expect("contraction leaves one tensor")
}

/// The `Contract` strategy's back half for the probability workload, fed
/// with already-built (raw, un-normalised) fragment tensors: normalise,
/// prune, pairwise-contract, scatter into the `2^N` vector. Shared by the
/// one-pass [`contract_probabilities`] and the streaming accumulator.
pub(crate) fn contract_probabilities_from_tensors(
    fragments: &FragmentSet,
    tensors: Vec<CutTensor>,
    plan: &ContractionPlan,
    tolerance: f64,
    report: &mut ReconstructionReport,
) -> Vec<f64> {
    let coeffs: Vec<[f64; 6]> = Vec::new();
    let tensors: Vec<CutTensor> = tensors
        .into_iter()
        .map(|tensor| {
            let mut tensor = tensor.normalize_legs(&coeffs);
            tensor.prune(tolerance, report);
            tensor
        })
        .collect();
    report.max_contraction_legs = plan.max_step_legs;
    let final_tensor = contract_all(tensors, plan, &coeffs, tolerance, report);
    debug_assert!(final_tensor.legs.is_empty(), "all cut legs must be contracted");

    let mut probabilities = vec![0.0; 1usize << fragments.original_qubits];
    for (y, &p) in final_tensor.payload(0).iter().enumerate() {
        let mut x = 0usize;
        for (bit, &orig) in final_tensor.bit_origins.iter().enumerate() {
            if y & (1 << bit) != 0 {
                x |= 1 << orig;
            }
        }
        probabilities[x] += p;
    }
    probabilities
}

/// The `Contract` strategy for the probability workload: build, prune,
/// pairwise-contract, scatter into the `2^N` vector.
pub(crate) fn contract_probabilities(
    fragments: &FragmentSet,
    results: &ExecutionResults,
    plan: &ContractionPlan,
    tolerance: f64,
    report: &mut ReconstructionReport,
) -> Result<Vec<f64>, CoreError> {
    let mut tensors = Vec::with_capacity(fragments.fragments.len());
    for fragment in &fragments.fragments {
        tensors.push(probability_tensor(fragment, results)?);
    }
    Ok(contract_probabilities_from_tensors(fragments, tensors, plan, tolerance, report))
}

/// The `Contract` strategy's back half for one Pauli string of the
/// expectation workload, fed with already-built (raw, un-normalised)
/// fragment tensors: normalise, prune, pairwise-contract, read the final
/// scalar. Shared by the one-pass [`contract_expectation`] and the streaming
/// accumulator.
pub(crate) fn contract_expectation_from_tensors(
    fragments: &FragmentSet,
    tensors: Vec<CutTensor>,
    plan: &ContractionPlan,
    tolerance: f64,
    report: &mut ReconstructionReport,
) -> f64 {
    let coeffs: Vec<[f64; 6]> =
        fragments.gate_cut_forms.iter().map(|form| form.coefficients()).collect();
    let tensors: Vec<CutTensor> = tensors
        .into_iter()
        .map(|tensor| {
            let mut tensor = tensor.normalize_legs(&coeffs);
            tensor.prune(tolerance, report);
            tensor
        })
        .collect();
    report.max_contraction_legs = report.max_contraction_legs.max(plan.max_step_legs);
    let final_tensor = contract_all(tensors, plan, &coeffs, tolerance, report);
    debug_assert!(final_tensor.legs.is_empty(), "all cut legs must be contracted");
    final_tensor.payload(0)[0]
}

/// The `Contract` strategy for one Pauli string of the expectation workload.
pub(crate) fn contract_expectation(
    fragments: &FragmentSet,
    results: &ExecutionResults,
    string: &PauliString,
    plan: &ContractionPlan,
    tolerance: f64,
    report: &mut ReconstructionReport,
) -> Result<f64, CoreError> {
    let mut tensors = Vec::with_capacity(fragments.fragments.len());
    for fragment in &fragments.fragments {
        tensors.push(expectation_tensor(fragment, results, string)?);
    }
    Ok(contract_expectation_from_tensors(fragments, tensors, plan, tolerance, report))
}

// ---------------------------------------------------------------------------
// Dense strategy (global mixed-radix loop, rayon-parallel)
// ---------------------------------------------------------------------------

/// Splits `total` combinations into deterministic contiguous chunk bounds.
/// The chunk count depends only on the problem size (not the thread count),
/// so the ordered reduction gives bit-identical results on any machine;
/// `payload_bits` bounds per-chunk memory for the probability path.
fn chunk_bounds(total: usize, payload_bits: usize) -> Vec<(usize, usize)> {
    // All chunks together hold at most ~2^23 partial accumulator slots
    // (64 MiB of f64), so wide-output circuits degrade to fewer chunks
    // instead of exhausting memory.
    let memory_cap = (1usize << 23).checked_shr(payload_bits as u32).unwrap_or(1).max(1);
    let chunks = total.min(64).min(memory_cap).max(1);
    (0..chunks).map(|c| (c * total / chunks, (c + 1) * total / chunks)).collect()
}

/// Per-fragment entry-index descriptors: `(stride, global cut id)` per wire
/// leg and `(stride, global gate id)` per gate leg.
fn leg_descriptors(tensors: &[CutTensor]) -> Vec<Vec<(usize, Leg)>> {
    tensors
        .iter()
        .map(|t| t.strides.iter().copied().zip(t.legs.iter().copied()).collect())
        .collect()
}

/// The dense (FRP) probability reconstruction: one global `4^cuts` component
/// loop, rayon-parallel over deterministic chunks, iterating only the
/// non-idle output subspace and scattering at the end.
pub(crate) fn dense_probabilities(fragments: &FragmentSet, tensors: &[CutTensor]) -> Vec<f64> {
    let cuts = fragments.num_wire_cuts();
    let n = fragments.original_qubits;
    let scale = 0.5f64.powi(cuts as i32);

    // Compact, idle-free output subspace: qubit `non_idle[j]` is compact bit
    // `j`; idle wires always read 0 and are skipped entirely.
    let non_idle: Vec<usize> = (0..n).filter(|&q| fragments.output_owner[q].is_some()).collect();
    let mut rank = vec![usize::MAX; n];
    for (j, &q) in non_idle.iter().enumerate() {
        rank[q] = j;
    }
    let compact_positions: Vec<Vec<usize>> = fragments
        .fragments
        .iter()
        .map(|f| f.output_clbits.iter().map(|&(orig, _)| rank[orig]).collect())
        .collect();
    let descriptors = leg_descriptors(tensors);
    let m = non_idle.len();
    let total = 1usize << (2 * cuts);

    let partials: Vec<Vec<f64>> = chunk_bounds(total, m)
        .into_par_iter()
        .map(|(start, end)| {
            let mut local = vec![0.0f64; 1 << m];
            let mut factors: Vec<&[f64]> = Vec::with_capacity(tensors.len());
            let mut od = Odometer::uniform(cuts, 4);
            od.seek(start);
            let mut remaining = end - start;
            'combos: while remaining > 0 {
                let Some(components) = od.next() else { break };
                remaining -= 1;
                factors.clear();
                for (tensor, legs) in tensors.iter().zip(&descriptors) {
                    let mut idx = 0usize;
                    for &(stride, leg) in legs {
                        let Leg::Wire(cut) = leg else {
                            unreachable!("probability tensors carry wire legs only")
                        };
                        idx += components[cut] * stride;
                    }
                    if !tensor.active[idx] {
                        continue 'combos; // a zero block annihilates the combo
                    }
                    factors.push(tensor.payload(idx));
                }
                for (x, slot) in local.iter_mut().enumerate() {
                    let mut term = scale;
                    for (factor, positions) in factors.iter().zip(&compact_positions) {
                        let mut y = 0usize;
                        for (bit, &cpos) in positions.iter().enumerate() {
                            if x & (1 << cpos) != 0 {
                                y |= 1 << bit;
                            }
                        }
                        term *= factor[y];
                        if term == 0.0 {
                            break;
                        }
                    }
                    *slot += term;
                }
            }
            local
        })
        .collect();

    // Ordered reduction: chunk results are summed in chunk order, so the
    // outcome is independent of the worker-thread schedule.
    let mut compact = vec![0.0f64; 1 << m];
    for partial in partials {
        for (slot, value) in compact.iter_mut().zip(&partial) {
            *slot += value;
        }
    }

    let mut probabilities = vec![0.0f64; 1 << n];
    for (y, &p) in compact.iter().enumerate() {
        let mut x = 0usize;
        for (j, &q) in non_idle.iter().enumerate() {
            if y & (1 << j) != 0 {
                x |= 1 << q;
            }
        }
        probabilities[x] = p;
    }
    probabilities
}

/// The dense (FRE) expectation reconstruction for one Pauli string: a global
/// `4^wire · 6^gate` loop, rayon-parallel over deterministic wire-component
/// chunks with an ordered scalar reduction.
pub(crate) fn dense_expectation(fragments: &FragmentSet, tensors: &[CutTensor]) -> f64 {
    let wire_cuts = fragments.num_wire_cuts();
    let gate_cuts = fragments.num_gate_cuts();
    let scale = 0.5f64.powi(wire_cuts as i32);
    let coeffs: Vec<[f64; 6]> =
        fragments.gate_cut_forms.iter().map(|form| form.coefficients()).collect();
    let descriptors = leg_descriptors(tensors);
    let total = 1usize << (2 * wire_cuts);

    let partials: Vec<f64> = chunk_bounds(total, 0)
        .into_par_iter()
        .map(|(start, end)| {
            let mut sum = 0.0f64;
            let mut wire_od = Odometer::uniform(wire_cuts, 4);
            wire_od.seek(start);
            let mut gate_od = Odometer::uniform(gate_cuts, 6);
            let mut remaining = end - start;
            while remaining > 0 {
                let Some(wire_components) = wire_od.next() else { break };
                remaining -= 1;
                gate_od.reset();
                'instances: while let Some(gate_instances) = gate_od.next() {
                    let mut term = scale;
                    for (g, &instance) in gate_instances.iter().enumerate() {
                        term *= coeffs[g][instance];
                        if term == 0.0 {
                            continue 'instances;
                        }
                    }
                    for (tensor, legs) in tensors.iter().zip(&descriptors) {
                        let mut idx = 0usize;
                        for &(stride, leg) in legs {
                            idx += match leg {
                                Leg::Wire(cut) => wire_components[cut] * stride,
                                Leg::Gate(cut) => gate_instances[cut] * stride,
                            };
                        }
                        if !tensor.active[idx] {
                            continue 'instances;
                        }
                        term *= tensor.payload(idx)[0];
                    }
                    sum += term;
                }
            }
            sum
        })
        .collect();

    partials.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_default_is_auto() {
        assert_eq!(ReconstructionStrategy::default(), ReconstructionStrategy::Auto);
        let options = ReconstructionOptions::default();
        assert_eq!(options.strategy, ReconstructionStrategy::Auto);
        assert_eq!(options.prune_tolerance, 0.0);
    }

    #[test]
    fn leg_radices_match_the_paper() {
        assert_eq!(Leg::Wire(0).radix(), 4);
        assert_eq!(Leg::Gate(0).radix(), 6);
    }

    #[test]
    fn prune_drops_small_entries_and_reports_mass() {
        let mut tensor = CutTensor::new(vec![Leg::Wire(0)], vec![0]);
        // entry 0: mass 0.3; entry 1: mass 0.001; entries 2/3: zero
        tensor.data[0] = 0.1;
        tensor.data[1] = -0.2;
        tensor.data[2] = 0.001;
        let mut report = ReconstructionReport::default();
        tensor.prune(0.01, &mut report);
        assert_eq!(report.kept_terms, 1);
        assert_eq!(report.pruned_terms, 1);
        assert!((report.pruned_weight - 0.001).abs() < 1e-12);
        assert!(tensor.active[0]);
        assert!(!tensor.active[1]);
        assert_eq!(tensor.payload(1), &[0.0, 0.0]);
    }

    #[test]
    fn contract_pair_sums_shared_wire_legs_with_half_weight() {
        // a[c] payload [p] = c+1; b[c] scalar = 1 for all c
        let mut a = CutTensor::new(vec![Leg::Wire(0)], Vec::new());
        let mut b = CutTensor::new(vec![Leg::Wire(0)], Vec::new());
        for c in 0..4 {
            a.data[c] = (c + 1) as f64;
            b.data[c] = 1.0;
        }
        a.refresh_active();
        b.refresh_active();
        let out = contract_pair(&a, &b, &[]);
        assert!(out.legs.is_empty());
        // 0.5 · (1 + 2 + 3 + 4) = 5
        assert!((out.payload(0)[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn contract_pair_outer_products_disjoint_payloads() {
        let mut a = CutTensor::new(Vec::new(), vec![0]);
        a.data.copy_from_slice(&[0.25, 0.75]);
        a.refresh_active();
        let mut b = CutTensor::new(Vec::new(), vec![1]);
        b.data.copy_from_slice(&[0.5, 0.5]);
        b.refresh_active();
        let out = contract_pair(&a, &b, &[]);
        assert_eq!(out.bit_origins, vec![0, 1]);
        let expected = [0.125, 0.375, 0.125, 0.375];
        for (got, want) in out.payload(0).iter().zip(&expected) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_legs_sums_out_a_self_cut_diagonally() {
        // tensor with the same wire leg twice: T[c1, c2] = c1 + 4·c2 + 1
        let mut tensor = CutTensor::new(vec![Leg::Wire(3), Leg::Wire(3)], Vec::new());
        for (i, v) in tensor.data.iter_mut().enumerate() {
            *v = (i + 1) as f64;
        }
        tensor.refresh_active();
        let merged = tensor.normalize_legs(&[]);
        // the cut is internal: both axes disappear and the diagonal is
        // summed with the 0.5 cut scale: 0.5·(1 + 6 + 11 + 16) = 17
        assert!(merged.legs.is_empty());
        assert!((merged.payload(0)[0] - 17.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_legs_keeps_unique_legs_intact() {
        // a unique second leg survives the self-cut merge untouched
        let mut tensor = CutTensor::new(vec![Leg::Wire(0), Leg::Wire(1), Leg::Wire(0)], Vec::new());
        // T[c0, c1, c0'] = 1 when c0 == c0' == 0, marked per c1
        for c1 in 0..4 {
            tensor.data[c1 * 4] = (c1 + 1) as f64; // entry (0, c1, 0)
        }
        tensor.refresh_active();
        let merged = tensor.normalize_legs(&[]);
        assert_eq!(merged.legs, vec![Leg::Wire(1)]);
        for c1 in 0..4 {
            // only diagonal digit 0 holds data: 0.5 · (c1 + 1)
            assert!((merged.payload(c1)[0] - 0.5 * (c1 + 1) as f64).abs() < 1e-12);
        }
    }
}
