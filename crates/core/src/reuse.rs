//! Qubit reuse: interval-based physical-qubit assignment and a standalone
//! CaQR-style reuse pass.
//!
//! Mid-circuit Measure-and-Reset lets a physical qubit that has finished all
//! of its operations be measured, reset and handed to a logical qubit whose
//! operations have not started yet. Inside QRCC this is what shrinks
//! subcircuit widths; standalone (the [`ReusePass`]) it reproduces the
//! CaQR-style compiler pass the paper compares against in Table 6.

use crate::CoreError;
use qrcc_circuit::dag::CircuitDag;
use qrcc_circuit::{Circuit, QubitId};

/// Assignment of interval-shaped lifetimes to physical qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalAssignment {
    /// Physical qubit for each input interval (same order as the input).
    pub physical: Vec<usize>,
    /// Number of physical qubits used (the maximum interval overlap).
    pub num_physical: usize,
}

/// Greedily assigns `[start, end]` lifetimes (both inclusive) to physical
/// qubits so that two lifetimes sharing a physical qubit never overlap; a
/// physical qubit is handed over only when the previous lifetime ended
/// *strictly before* the next one starts (measurement and reset are assumed
/// to take no extra depth, as in the paper).
///
/// The greedy sweep over start-sorted intervals is optimal for interval
/// graphs, so `num_physical` equals the maximum overlap.
pub fn assign_intervals(intervals: &[(usize, usize)]) -> IntervalAssignment {
    let mut order: Vec<usize> = (0..intervals.len()).collect();
    order.sort_by_key(|&i| (intervals[i].0, intervals[i].1));
    let mut physical = vec![usize::MAX; intervals.len()];
    // free_at[p] = first layer at which physical qubit p is available again
    let mut free_at: Vec<usize> = Vec::new();
    for &i in &order {
        let (start, end) = intervals[i];
        // pick the physical qubit that has been free the longest (stable,
        // deterministic choice)
        let mut chosen = None;
        for (p, &free) in free_at.iter().enumerate() {
            if free <= start && chosen.map(|(_, f)| free < f).unwrap_or(true) {
                chosen = Some((p, free));
            }
        }
        let p = match chosen {
            Some((p, _)) => p,
            None => {
                free_at.push(0);
                free_at.len() - 1
            }
        };
        physical[i] = p;
        free_at[p] = end + 1;
    }
    IntervalAssignment { physical, num_physical: free_at.len() }
}

/// Result of applying the standalone reuse pass to a circuit.
#[derive(Debug, Clone)]
pub struct ReusedCircuit {
    /// The transformed circuit over `num_physical` qubits; every original
    /// qubit is measured into classical bit `original qubit index`.
    pub circuit: Circuit,
    /// Number of physical qubits used.
    pub num_physical: usize,
    /// Physical qubit hosting each original qubit (indexed by original qubit).
    /// Idle original qubits map to `None`.
    pub mapping: Vec<Option<usize>>,
}

/// A CaQR-style standalone qubit-reuse pass.
///
/// The pass measures each original qubit in the computational basis as soon
/// as its last gate has executed (valid by the deferred-measurement
/// principle, since nothing acts on the wire afterwards), resets the physical
/// qubit and hands it to a logical qubit that has not started yet. The
/// transformed circuit therefore produces the same joint measurement
/// distribution as measuring the original circuit at the end, using
/// `max-overlap` many physical qubits instead of `N`.
///
/// ```rust
/// use qrcc_circuit::Circuit;
/// use qrcc_core::reuse::ReusePass;
///
/// // A GHZ chain only ever has two wires active at once.
/// let mut chain = Circuit::new(4);
/// chain.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
/// let reused = ReusePass::new().apply(&chain).unwrap();
/// assert_eq!(reused.num_physical, 2);
/// assert_eq!(reused.circuit.num_clbits(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReusePass {}

impl ReusePass {
    /// Creates the pass.
    pub fn new() -> Self {
        ReusePass {}
    }

    /// The minimum number of physical qubits the pass would need for
    /// `circuit` (without building the transformed circuit).
    pub fn required_qubits(&self, circuit: &Circuit) -> usize {
        let dag = CircuitDag::from_circuit(circuit);
        let intervals = wire_intervals(&dag);
        assign_intervals(&intervals.1).num_physical
    }

    /// Applies the pass.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCutSolution`] if the circuit already
    /// contains measurements or resets (the pass expects a unitary circuit
    /// and inserts its own terminal measurements).
    pub fn apply(&self, circuit: &Circuit) -> Result<ReusedCircuit, CoreError> {
        if !circuit.is_unitary_only() {
            return Err(CoreError::InvalidCutSolution {
                reason: "reuse pass expects a unitary circuit without measurements".into(),
            });
        }
        let dag = CircuitDag::from_circuit(circuit);
        let (wires, intervals) = wire_intervals(&dag);
        let assignment = assign_intervals(&intervals);

        let mut mapping: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (slot, &wire) in wires.iter().enumerate() {
            mapping[wire] = Some(assignment.physical[slot]);
        }

        // Emit nodes in (layer, id) order — a topological order in which a
        // wire's last gate always precedes the first gate of any wire reusing
        // the same physical qubit.
        let mut node_order: Vec<usize> = (0..dag.nodes().len()).collect();
        node_order.sort_by_key(|&id| (dag.node(id).layer, id));

        let mut out = Circuit::with_clbits(assignment.num_physical.max(1), circuit.num_qubits());
        out.set_name(format!("{}_reused", circuit.name()));
        let mut started = vec![false; circuit.num_qubits()];
        let mut physical_dirty = vec![false; assignment.num_physical.max(1)];
        let remaining: Vec<usize> =
            (0..circuit.num_qubits()).map(|q| dag.wire(QubitId::new(q)).len()).collect();
        let mut remaining = remaining;

        for id in node_order {
            let node = dag.node(id);
            // prepare any wires this node starts
            for q in node.op.qubits() {
                let wire = q.index();
                if !started[wire] {
                    started[wire] = true;
                    let phys = mapping[wire].expect("active wire has a physical qubit");
                    if physical_dirty[phys] {
                        out.reset(phys);
                    }
                    physical_dirty[phys] = true;
                }
            }
            let mapped = node.op.map_qubits(|q| {
                QubitId::new(mapping[q.index()].expect("active wire has a physical qubit"))
            });
            out.push(mapped);
            // terminate any wires this node finishes
            for q in node.op.qubits() {
                let wire = q.index();
                remaining[wire] -= 1;
                if remaining[wire] == 0 {
                    let phys = mapping[wire].expect("active wire has a physical qubit");
                    out.measure(phys, wire);
                }
            }
        }
        // Idle original qubits measure trivially to 0; nothing to emit.
        Ok(ReusedCircuit { circuit: out, num_physical: assignment.num_physical.max(1), mapping })
    }
}

/// The wires that carry at least one operation, and their `[first layer,
/// last layer]` lifetimes, in wire order.
fn wire_intervals(dag: &CircuitDag) -> (Vec<usize>, Vec<(usize, usize)>) {
    let mut wires = Vec::new();
    let mut intervals = Vec::new();
    for q in 0..dag.num_qubits() {
        let qubit = QubitId::new(q);
        if let (Some(first), Some(last)) = (dag.first_layer_of(qubit), dag.last_layer_of(qubit)) {
            wires.push(q);
            intervals.push((first, last));
        }
    }
    (wires, intervals)
}

/// Number of measurement/reset pairs the reuse pass introduces for a circuit
/// (how many times a physical qubit is handed over).
pub fn reuse_count(circuit: &Circuit) -> usize {
    let dag = CircuitDag::from_circuit(circuit);
    let (_, intervals) = wire_intervals(&dag);
    let assignment = assign_intervals(&intervals);
    intervals.len().saturating_sub(assignment.num_physical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrcc_circuit::generators;
    use qrcc_sim::branching::classical_distribution;
    use qrcc_sim::StateVector;

    #[test]
    fn interval_assignment_is_optimal_for_simple_cases() {
        // disjoint intervals share one qubit
        let a = assign_intervals(&[(0, 1), (2, 3), (4, 5)]);
        assert_eq!(a.num_physical, 1);
        // nested intervals need as many qubits as the overlap
        let b = assign_intervals(&[(0, 9), (1, 2), (3, 4)]);
        assert_eq!(b.num_physical, 2);
        let c = assign_intervals(&[(0, 5), (1, 5), (2, 5)]);
        assert_eq!(c.num_physical, 3);
        // touching endpoints cannot share (measurement has no room)
        let d = assign_intervals(&[(0, 2), (2, 4)]);
        assert_eq!(d.num_physical, 2);
        assert_eq!(assign_intervals(&[]).num_physical, 0);
    }

    #[test]
    fn ghz_chain_runs_on_two_physical_qubits() {
        let mut chain = Circuit::new(5);
        chain.h(0);
        for q in 0..4 {
            chain.cx(q, q + 1);
        }
        let pass = ReusePass::new();
        assert_eq!(pass.required_qubits(&chain), 2);
        let reused = pass.apply(&chain).unwrap();
        assert_eq!(reused.num_physical, 2);
        assert_eq!(reused.circuit.num_qubits(), 2);
        // reuse introduces measure + reset pairs
        assert!(reused.circuit.count_ops().get("reset").copied().unwrap_or(0) >= 3);
    }

    #[test]
    fn reused_circuit_preserves_the_measurement_distribution() {
        let mut chain = Circuit::new(4);
        chain.h(0).cx(0, 1).ry(0.7, 1).cx(1, 2).cx(2, 3).rz(0.3, 3);
        let reused = ReusePass::new().apply(&chain).unwrap();
        assert!(reused.num_physical < 4);

        let exact = StateVector::from_circuit(&chain).unwrap().probabilities();
        let reused_dist = classical_distribution(&reused.circuit).unwrap();
        assert_eq!(reused_dist.len(), exact.len());
        for (i, (a, b)) in exact.iter().zip(&reused_dist).enumerate() {
            assert!((a - b).abs() < 1e-9, "distribution mismatch at {i}: {a} vs {b}");
        }
    }

    #[test]
    fn qft_cannot_be_compressed_by_reuse_alone() {
        // all-to-all interactions keep every wire alive to the end
        let qft = generators::qft_no_swap(5);
        assert_eq!(ReusePass::new().required_qubits(&qft), 5);
        assert_eq!(reuse_count(&qft), 0);
    }

    #[test]
    fn pass_rejects_measured_circuits() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0, 0);
        assert!(ReusePass::new().apply(&c).is_err());
    }

    #[test]
    fn idle_qubits_do_not_consume_physical_qubits() {
        let mut c = Circuit::new(4);
        c.h(1).cx(1, 2);
        let reused = ReusePass::new().apply(&c).unwrap();
        assert_eq!(reused.num_physical, 2);
        assert_eq!(reused.mapping[0], None);
        assert_eq!(reused.mapping[3], None);
    }
}
