//! CutQC-style baseline planner: wire cuts only, no qubit reuse.
//!
//! The baseline reproduces the width model of CutQC (Tang et al., ASPLOS'21):
//! every wire segment of a subcircuit occupies its own physical qubit for the
//! whole execution — the measurement side keeps the original qubit and the
//! initialisation side adds a fresh "initialization qubit" per cut — and
//! mid-circuit measurement/reset is not exploited. Comparing
//! [`CutQcPlanner`] against [`CutPlanner`](crate::planner::CutPlanner) is what
//! Tables 1, 2 and 6 of the paper do.
//!
//! Baseline plans produce ordinary [`FragmentSet`](crate::fragment::FragmentSet)s,
//! so they execute through the same batch-first layer
//! ([`crate::execute`]) as QRCC plans — mirroring CutQC's own evaluator,
//! which batches all subcircuit instances up front.

use crate::planner::{CutPlan, CutPlanner};
use crate::spec::CutSolution;
use crate::{CoreError, QrccConfig};
use qrcc_circuit::dag::CircuitDag;
use qrcc_circuit::Circuit;
use qrcc_ilp::SolveStatus;
use std::time::Duration;

/// The CutQC-style baseline planner (wire cuts only, no qubit reuse).
///
/// ```rust
/// use qrcc_circuit::generators;
/// use qrcc_core::cutqc::CutQcPlanner;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = generators::qft(5);
/// let plan = CutQcPlanner::new(4).plan(&circuit)?;
/// assert!(plan.subcircuit_widths().iter().all(|&w| w <= 4));
/// assert_eq!(plan.gate_cut_count(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CutQcPlanner {
    config: QrccConfig,
}

impl CutQcPlanner {
    /// A baseline planner targeting a `device_size`-qubit device.
    pub fn new(device_size: usize) -> Self {
        let config = QrccConfig::new(device_size).with_gate_cuts(false).with_qubit_reuse(false);
        CutQcPlanner { config }
    }

    /// Overrides the underlying configuration (gate cuts and qubit reuse are
    /// forced off regardless).
    pub fn with_config(mut self, config: QrccConfig) -> Self {
        self.config = config.with_gate_cuts(false).with_qubit_reuse(false);
        self
    }

    /// The effective configuration.
    pub fn config(&self) -> &QrccConfig {
        &self.config
    }

    /// Plans a wire-cut-only, no-reuse cut for `circuit`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CutPlanner::plan`].
    pub fn plan(&self, circuit: &Circuit) -> Result<CutPlan, CoreError> {
        CutPlanner::new(self.config.clone()).plan(circuit)
    }
}

/// Builds and solves a CutQC-style MIP for the search-time comparison
/// (Table 4).
///
/// The baseline model has the same assignment variables as the QRCC model but
/// (i) counts every incoming initialization qubit against the subcircuit
/// width for the whole run instead of per layer (no reuse), which requires
/// one extra indicator per (wire segment boundary, subcircuit) — the
/// linearised stand-in for CutQC's quadratic constraints — and (ii) has no
/// gate-cut variables. Returns the solution, solver status and solve time.
pub fn solve_cutqc_model(
    dag: &CircuitDag,
    device_size: usize,
    num_subcircuits: usize,
    time_limit: Duration,
) -> Option<(CutSolution, SolveStatus, Duration)> {
    use qrcc_ilp::{solver, LinExpr, Model, SolverConfig};
    let start = std::time::Instant::now();
    let mut ilp = Model::new();
    let num_nodes = dag.nodes().len();

    // assignment variables
    let assign: Vec<Vec<qrcc_ilp::VarId>> = (0..num_nodes)
        .map(|x| (0..num_subcircuits).map(|c| ilp.add_binary(format!("a_{x}_{c}"))).collect())
        .collect();
    for row in &assign {
        let mut expr = LinExpr::new();
        for &a in row {
            expr.add_term(1.0, a);
        }
        ilp.add_eq(expr, 1.0);
    }

    // wire-cut indicators
    let mut total_cuts = LinExpr::new();
    for q in 0..dag.num_qubits() {
        let qubit = qrcc_circuit::QubitId::new(q);
        let nodes = dag.wire(qubit);
        for pair in nodes.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let w = ilp.add_binary(format!("w_{q}_{a}_{b}"));
            for (&in_a, &in_b) in assign[a].iter().zip(&assign[b]) {
                ilp.add_le(LinExpr::new().term(-1.0, w).term(1.0, in_a).term(-1.0, in_b), 0.0);
                ilp.add_le(LinExpr::new().term(-1.0, w).term(1.0, in_b).term(-1.0, in_a), 0.0);
            }
            total_cuts.add_term(1.0, w);
        }
    }

    // Width constraint without reuse: every wire *segment* of a subcircuit
    // occupies its own physical qubit for the whole run. A segment of wire q
    // starts in c either because the wire's first node is in c, or because a
    // cut boundary (a, b) has its downstream node b in c while a is elsewhere
    // (CutQC's "initialization qubit"). The latter product is linearised with
    // one auxiliary binary per (boundary, subcircuit).
    // `c` is simultaneously an index into per-node variable rows and part of
    // the generated variable names, so a plain range loop reads best here.
    #[allow(clippy::needless_range_loop)]
    for c in 0..num_subcircuits {
        let mut width = LinExpr::new();
        for q in 0..dag.num_qubits() {
            let qubit = qrcc_circuit::QubitId::new(q);
            let nodes = dag.wire(qubit);
            let Some(&first) = nodes.first() else { continue };
            width.add_term(1.0, assign[first][c]);
            for pair in nodes.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let extra = ilp.add_binary(format!("init_{q}_{a}_{b}_{c}"));
                // extra >= assign[b][c] - assign[a][c]  (cut with downstream in c)
                ilp.add_le(
                    LinExpr::new()
                        .term(-1.0, extra)
                        .term(1.0, assign[b][c])
                        .term(-1.0, assign[a][c]),
                    0.0,
                );
                width.add_term(1.0, extra);
            }
        }
        if !width.is_empty() {
            ilp.add_le(width, device_size as f64);
        }
    }

    ilp.minimize(total_cuts);

    let solver_config = SolverConfig { time_limit, ..SolverConfig::default() };
    let solution = solver::solve(&ilp, &solver_config).ok()?;
    let status = solution.status();
    let mut assignment = vec![0usize; num_nodes];
    for (x, row) in assign.iter().enumerate() {
        assignment[x] = (0..num_subcircuits).find(|&c| solution.is_one(row[c])).unwrap_or(0);
    }
    let cut_solution = CutSolution {
        num_subcircuits,
        assignment,
        gate_cuts: Vec::new(),
        gate_cut_assignment: Vec::new(),
    };
    Some((cut_solution, status, start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::CutPlanner;
    use qrcc_circuit::generators;

    #[test]
    fn baseline_never_uses_gate_cuts_or_reuse() {
        let circuit = generators::qft(5);
        let planner = CutQcPlanner::new(4);
        assert!(!planner.config().gate_cuts_enabled);
        assert!(!planner.config().qubit_reuse_enabled);
        let plan = planner.plan(&circuit).unwrap();
        assert_eq!(plan.gate_cut_count(), 0);
        assert!(plan.subcircuit_widths().iter().all(|&w| w <= 4));
    }

    #[test]
    fn qrcc_needs_no_more_cuts_than_the_baseline() {
        let circuit = generators::vqe_two_local(8, 2, 3);
        let baseline = CutQcPlanner::new(5).plan(&circuit);
        let qrcc = CutPlanner::new(QrccConfig::new(5).with_ilp_time_limit(Duration::ZERO))
            .plan(&circuit)
            .unwrap();
        if let Ok(baseline) = baseline {
            assert!(
                qrcc.wire_cut_count() <= baseline.wire_cut_count(),
                "qrcc {} vs cutqc {}",
                qrcc.wire_cut_count(),
                baseline.wire_cut_count()
            );
        }
    }

    #[test]
    fn cutqc_model_solves_small_chains() {
        let mut c = qrcc_circuit::Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let dag = CircuitDag::from_circuit(&c);
        let (solution, _status, _time) =
            solve_cutqc_model(&dag, 3, 2, Duration::from_secs(20)).expect("solvable");
        solution.validate(&dag).unwrap();
        // without reuse, splitting a 4-qubit chain for a 3-qubit device needs
        // at least one cut
        assert!(!solution.wire_cuts(&dag).is_empty());
        assert!(solution.subcircuit_widths(&dag, false).iter().all(|&w| w <= 3));
    }
}
