//! Fleet-monitor lints (`QL0307`): statically predicting a
//! [`MonitorPolicy`](crate::obs::MonitorPolicy) that can never observe what
//! it claims to — a degenerate window, an invalid SLO, a poll cadence that
//! re-reads the same partial bucket, or a scrape aimed at a server too old
//! to answer it.

use super::{AnalysisContext, AnalysisReport, Diagnostic, Lint, Location};

/// The first protocol version whose servers answer `GetMetrics` /
/// `GetHealth` (the live scrape frames the monitor polls).
const SCRAPE_PROTOCOL: u16 = 3;

/// `QL0307`: SLO / fleet-monitor misconfiguration. All findings are
/// **warnings** — a broken monitor degrades to blind spots, never to wrong
/// results.
///
/// Fires on:
/// * a zero-length window or zero rotation buckets — nothing can ever be
///   recorded, so every quantile readout is empty;
/// * an SLO that fails [`SloSpec::validation_errors`](crate::obs::SloSpec::validation_errors)
///   (quantile outside `(0, 1)`, zero latency cap, rates outside their
///   ranges) — the spec can never be evaluated meaningfully;
/// * a poll interval shorter than one window rotation
///   (`window_us / buckets`) — consecutive polls re-read the same partial
///   bucket and burn round-trips for no new signal;
/// * a target protocol older than v3 — `GetMetrics` / `GetHealth` do not
///   exist there, so every poll dies with a protocol error.
///
/// Silent when the config carries no monitor policy.
pub struct MonitorPolicyLint;

impl Lint for MonitorPolicyLint {
    fn code(&self) -> &'static str {
        "QL0307"
    }

    fn description(&self) -> &'static str {
        "fleet-monitor configurations that cannot observe what they claim to"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(config) = ctx.config else { return };
        let Some(policy) = config.monitor.as_ref() else { return };

        if policy.window_us == 0 {
            report.push(
                Diagnostic::warning(
                    "QL0307",
                    Location::Circuit,
                    "the monitor window is zero-length: no sample survives rotation, so \
                     every windowed quantile and rate reads empty",
                )
                .with_suggestion("set a positive window (e.g. 10_000_000 us = last 10 s)"),
            );
        }
        if policy.buckets == 0 {
            report.push(
                Diagnostic::warning(
                    "QL0307",
                    Location::Circuit,
                    "the monitor window has zero rotation buckets: the window cannot \
                     rotate and holds nothing",
                )
                .with_suggestion("use at least one bucket (10 gives 10% rotation granularity)"),
            );
        }
        if let Some(slo) = &policy.slo {
            for error in slo.validation_errors() {
                report.push(
                    Diagnostic::warning(
                        "QL0307",
                        Location::Circuit,
                        format!("SLO '{}' can never be evaluated: {error}", slo.name),
                    )
                    .with_suggestion(
                        "quantiles live in (0, 1), latency caps are positive, rates in \
                         their unit ranges",
                    ),
                );
            }
        }
        let rotation = policy.rotation_us();
        if rotation > 0 && policy.poll_interval_us < rotation {
            report.push(
                Diagnostic::warning(
                    "QL0307",
                    Location::Circuit,
                    format!(
                        "the poll interval ({} us) is shorter than one window rotation \
                         ({rotation} us): consecutive polls re-read the same partial \
                         bucket and gain no new signal",
                        policy.poll_interval_us
                    ),
                )
                .with_suggestion(
                    "poll at most once per rotation (window_us / buckets), or use more \
                     buckets for a finer grid",
                ),
            );
        }
        if policy.target_protocol < SCRAPE_PROTOCOL {
            report.push(
                Diagnostic::warning(
                    "QL0307",
                    Location::Circuit,
                    format!(
                        "the monitor targets protocol v{} but GetMetrics / GetHealth \
                         exist only from v{SCRAPE_PROTOCOL} on: every scrape would die \
                         with a protocol error",
                        policy.target_protocol
                    ),
                )
                .with_suggestion("upgrade the fleet's workers, or drop the monitor policy"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{AnalysisContext, Analyzer, Severity};
    use crate::obs::{MonitorPolicy, SloSpec};
    use crate::QrccConfig;

    fn diagnostics_for(config: &QrccConfig) -> Vec<String> {
        let report = Analyzer::new().run(&AnalysisContext::new().with_config(config));
        report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "QL0307")
            .map(|d| d.message.clone())
            .collect()
    }

    #[test]
    fn no_monitor_policy_is_silent() {
        assert!(diagnostics_for(&QrccConfig::new(3)).is_empty());
    }

    #[test]
    fn a_sane_policy_is_clean() {
        let policy = MonitorPolicy::default()
            .with_slo(SloSpec::new("fleet").with_latency(0.99, 250_000).with_max_error_rate(0.01));
        let config = QrccConfig::new(3).with_monitor(policy);
        assert!(diagnostics_for(&config).is_empty(), "{:?}", diagnostics_for(&config));
    }

    #[test]
    fn zero_window_and_zero_buckets_warn() {
        let policy = MonitorPolicy { window_us: 0, buckets: 0, ..MonitorPolicy::default() };
        let config = QrccConfig::new(3).with_monitor(policy);
        let messages = diagnostics_for(&config);
        assert!(messages.iter().any(|m| m.contains("zero-length")), "{messages:?}");
        assert!(messages.iter().any(|m| m.contains("zero rotation buckets")), "{messages:?}");
    }

    #[test]
    fn invalid_slo_quantile_warns_as_a_warning() {
        let policy = MonitorPolicy::default().with_slo(SloSpec::new("bad").with_latency(1.5, 100));
        let config = QrccConfig::new(3).with_monitor(policy);
        let report = Analyzer::new().run(&AnalysisContext::new().with_config(&config));
        let d = report.diagnostics().iter().find(|d| d.code == "QL0307").expect("fires");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("never be evaluated"), "{d}");
    }

    #[test]
    fn polling_faster_than_rotation_warns() {
        // 10 s window / 10 buckets = 1 s rotation; polling every 100 ms
        let policy = MonitorPolicy { poll_interval_us: 100_000, ..MonitorPolicy::default() };
        let config = QrccConfig::new(3).with_monitor(policy);
        let messages = diagnostics_for(&config);
        assert!(messages.iter().any(|m| m.contains("window rotation")), "{messages:?}");
    }

    #[test]
    fn pre_v3_target_protocol_warns() {
        let policy = MonitorPolicy { target_protocol: 2, ..MonitorPolicy::default() };
        let config = QrccConfig::new(3).with_monitor(policy);
        let messages = diagnostics_for(&config);
        assert!(messages.iter().any(|m| m.contains("protocol v2")), "{messages:?}");
    }
}
