//! Fleet/schedule lints (`QL03xx`): statically predicting the runtime
//! failures of the [`schedule`](crate::schedule) layer —
//! [`CoreError::NoCompatibleBackend`](crate::CoreError) and
//! [`CoreError::ShotBudgetTooSmall`](crate::CoreError) — before any backend
//! is contacted.

use super::{AnalysisContext, AnalysisReport, Diagnostic, Lint, Location};
use crate::execute::prepare_batch;
use crate::fragment::{FragmentSet, FragmentVariant, VariantRequest};
use crate::reconstruct::{expectation_variants, probability_variants};
use qrcc_circuit::observable::{Pauli, PauliString};

/// `QL0304`: the device registry is empty — every routing decision fails
/// immediately.
pub struct EmptyFleet;

impl Lint for EmptyFleet {
    fn code(&self) -> &'static str {
        "QL0304"
    }

    fn description(&self) -> &'static str {
        "an empty device registry"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(fleet) = ctx.fleet else { return };
        if fleet.is_empty() {
            report.push(
                Diagnostic::error(
                    "QL0304",
                    Location::Circuit,
                    "the device registry is empty: nothing can be scheduled",
                )
                .with_suggestion("register at least one backend before scheduling"),
            );
        }
    }
}

/// Per-fragment cap on how many variant circuits [`PredictedPlacement`]
/// instantiates. Every built-in backend's `can_run` depends only on the
/// circuit's width and its use of mid-circuit operations — both constant
/// across a fragment's variants — so checking a prefix is exhaustive in
/// practice; a capped fragment still gets a note for honesty.
const VARIANT_CHECK_CAP: u64 = 512;

/// The variant circuits the execution phase would instantiate for
/// `fragment`: the probability enumeration for wire-cut-only plans, the
/// all-Z expectation enumeration when gate cuts are present.
fn variant_circuits<'a>(
    fragments: &'a FragmentSet,
    fragment: &'a crate::fragment::Fragment,
    all_z: &PauliString,
) -> Box<dyn Iterator<Item = FragmentVariant> + 'a> {
    if fragments.num_gate_cuts() == 0 {
        Box::new(probability_variants(fragment))
    } else {
        Box::new(expectation_variants(fragment, all_z))
    }
}

/// `QL0301`: a statically-predicted
/// [`CoreError::NoCompatibleBackend`](crate::CoreError): some variant
/// circuit of a fragment cannot be placed on any registered backend.
pub struct PredictedPlacement;

impl Lint for PredictedPlacement {
    fn code(&self) -> &'static str {
        "QL0301"
    }

    fn description(&self) -> &'static str {
        "fragment variants no registered backend can run"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let (Some(fragments), Some(fleet)) = (ctx.fragments, ctx.fleet) else { return };
        if fleet.is_empty() {
            return; // QL0304 owns the empty-fleet finding
        }
        let all_z = PauliString::from_paulis(vec![Pauli::Z; fragments.original_qubits]);
        for fragment in &fragments.fragments {
            if fragment.num_clbits == 0 {
                continue; // never executed: its distribution is trivially [1.0]
            }
            let mut capped = false;
            for (checked, variant) in variant_circuits(fragments, fragment, &all_z).enumerate() {
                if checked as u64 >= VARIANT_CHECK_CAP {
                    capped = true;
                    break;
                }
                let circuit = fragment.instantiate(&variant);
                let placeable =
                    fleet.entries().iter().any(|entry| entry.backend().can_run(&circuit));
                if placeable {
                    continue;
                }
                let width = circuit.num_qubits();
                let width_fits_somewhere = fleet
                    .entries()
                    .iter()
                    .any(|entry| entry.max_qubits().is_none_or(|max| width <= max));
                let (cause, suggestion) = if width_fits_somewhere {
                    (
                        "a required capability (mid-circuit measurement/reset) is missing",
                        "register a backend with mid-circuit support, or replan with \
                         QrccConfig::with_qubit_reuse(false)"
                            .to_string(),
                    )
                } else {
                    (
                        "every backend is too small",
                        format!(
                            "register a backend with at least {width} qubits or replan with a \
                             smaller device_size"
                        ),
                    )
                };
                report.push(
                    Diagnostic::error(
                        "QL0301",
                        Location::Fragment(fragment.index),
                        format!(
                            "no backend of the {}-backend fleet can run a {width}-qubit variant \
                             of fragment {}: {cause}",
                            fleet.len(),
                            fragment.index
                        ),
                    )
                    .with_suggestion(suggestion),
                );
                break; // one finding per fragment
            }
            if capped {
                report.push(Diagnostic::note(
                    "QL0301",
                    Location::Fragment(fragment.index),
                    format!(
                        "fragment {} enumerates {} variants; placement was checked for the \
                         first {VARIANT_CHECK_CAP} (width and capabilities do not vary across \
                         variants for the built-in backends)",
                        fragment.index,
                        fragment.variant_count()
                    ),
                ));
            }
        }
    }
}

/// The number of deduplicated circuits the scheduler would allocate shots
/// over, mirroring its exact pipeline:
/// enumerate → [`prepare_batch`] structural dedup.
fn deduplicated_circuit_count(fragments: &FragmentSet, requests: &[VariantRequest]) -> usize {
    prepare_batch(fragments, requests).map_or(0, |batch| batch.circuits.len())
}

/// `QL0302`: a statically-predicted
/// [`CoreError::ShotBudgetTooSmall`](crate::CoreError): the configured
/// budget cannot give every deduplicated circuit its minimum shots.
///
/// For wire-cut-only plans the lint replays the scheduler's exact
/// probability-workload pipeline (same enumeration, same structural dedup),
/// so the finding is an **error**: the run is guaranteed to fail. Gate-cut
/// plans execute observable-dependent variants, so the lint checks a lower
/// bound (one default variant per executing fragment) and reports a
/// **warning**.
pub struct PredictedShotBudget;

impl Lint for PredictedShotBudget {
    fn code(&self) -> &'static str {
        "QL0302"
    }

    fn description(&self) -> &'static str {
        "shot budgets below the scheduled batch minimum"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let (Some(fragments), Some(config)) = (ctx.fragments, ctx.config) else { return };
        let policy = &config.schedule;
        let Some(budget) = policy.shot_budget else { return };
        let min_shots = policy.min_shots.max(1);
        let executing = || fragments.fragments.iter().filter(|f| f.num_clbits > 0);

        if fragments.num_gate_cuts() == 0 {
            // exact replay of the probability workload's batch
            let requests: Vec<VariantRequest> = executing()
                .flat_map(|fragment| {
                    probability_variants(fragment)
                        .map(|variant| VariantRequest::new(fragment.index, variant))
                })
                .collect();
            let circuits = deduplicated_circuit_count(fragments, &requests) as u64;
            let needed = circuits * min_shots;
            if circuits > 0 && budget < needed {
                report.push(
                    Diagnostic::error(
                        "QL0302",
                        Location::Circuit,
                        format!(
                            "shot budget {budget} is below the scheduled batch minimum of \
                             {needed} ({circuits} deduplicated circuit(s) × {min_shots} \
                             min_shots)"
                        ),
                    )
                    .with_suggestion(format!(
                        "raise the budget to at least {needed} or lower min_shots"
                    )),
                );
            }
        } else {
            // lower bound: every expectation batch holds at least one circuit
            // per executing fragment (before cross-fragment collisions)
            let requests: Vec<VariantRequest> = executing()
                .map(|fragment| VariantRequest::new(fragment.index, fragment.default_variant()))
                .collect();
            let circuits = deduplicated_circuit_count(fragments, &requests) as u64;
            let needed = circuits * min_shots;
            if circuits > 0 && budget < needed {
                report.push(
                    Diagnostic::warning(
                        "QL0302",
                        Location::Circuit,
                        format!(
                            "shot budget {budget} is below the batch lower bound of {needed} \
                             (≥{circuits} deduplicated circuit(s) × {min_shots} min_shots for \
                             any observable)"
                        ),
                    )
                    .with_suggestion(format!(
                        "raise the budget to at least {needed} or lower min_shots"
                    )),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{AnalysisContext, Analyzer, LintLevel, Severity};
    use crate::pipeline::{ExactBackend, QrccPipeline};
    use crate::schedule::{DeviceRegistry, Scheduler};
    use crate::{CoreError, QrccConfig};
    use qrcc_circuit::Circuit;
    use std::time::Duration;

    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
            c.ry(0.3 + q as f64 * 0.1, q + 1);
        }
        c
    }

    fn config(d: usize) -> QrccConfig {
        QrccConfig::new(d).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO)
    }

    #[test]
    fn an_empty_fleet_is_an_error() {
        let fleet = DeviceRegistry::new();
        let report = Analyzer::new().run(&AnalysisContext::new().with_fleet(&fleet));
        let d = report.diagnostics().iter().find(|d| d.code == "QL0304").expect("fires");
        assert_eq!(d.severity, Severity::Error);
        assert!(report.gate(LintLevel::Warn).is_err());
    }

    #[test]
    fn a_too_small_fleet_predicts_no_compatible_backend() {
        let pipeline = QrccPipeline::plan(&chain(6), config(4)).unwrap();
        let mut fleet = DeviceRegistry::new();
        // qubit reuse can shrink fragments to 2 physical qubits, but never
        // below the width of a CX — a 1-qubit backend can run nothing here
        fleet.register("tiny", ExactBackend::capped(1));
        let ctx = AnalysisContext::new().with_fragments(pipeline.fragments()).with_fleet(&fleet);
        let report = Analyzer::new().run(&ctx);
        let d = report.diagnostics().iter().find(|d| d.code == "QL0301").expect("fires");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("too small"), "{d}");

        // ... and the runtime agrees
        let scheduler = Scheduler::new(&fleet, pipeline.plan_ref().config().schedule);
        let err = pipeline.execute_scheduled(&scheduler).unwrap_err();
        assert!(
            matches!(err, CoreError::NoCompatibleBackend { .. })
                || matches!(err, CoreError::RetriesExhausted { .. }),
            "{err}"
        );
    }

    #[test]
    fn an_adequate_fleet_is_clean() {
        let pipeline = QrccPipeline::plan(&chain(6), config(4)).unwrap();
        let mut fleet = DeviceRegistry::new();
        fleet.register("roomy", ExactBackend::new());
        let ctx = AnalysisContext::new().with_fragments(pipeline.fragments()).with_fleet(&fleet);
        let report = Analyzer::new().run(&ctx);
        assert!(
            report.diagnostics().iter().all(|d| d.code != "QL0301" || d.severity < Severity::Error),
            "{report}"
        );
    }

    #[test]
    fn a_starved_budget_predicts_shot_budget_too_small_exactly() {
        let starved = config(4).with_shot_budget(3);
        let pipeline = QrccPipeline::plan(&chain(6), starved.clone()).unwrap();
        let ctx = AnalysisContext::new().with_config(&starved).with_fragments(pipeline.fragments());
        let report = Analyzer::new().run(&ctx);
        let d = report.diagnostics().iter().find(|d| d.code == "QL0302").expect("fires");
        assert_eq!(d.severity, Severity::Error);

        // the runtime fails with exactly the predicted error
        let mut fleet = DeviceRegistry::new();
        fleet.register("exact", ExactBackend::new());
        let scheduler = Scheduler::new(&fleet, starved.schedule);
        let err = pipeline.execute_scheduled(&scheduler).unwrap_err();
        assert!(matches!(err, CoreError::ShotBudgetTooSmall { .. }), "{err}");

        // a generous budget analyzes clean
        let generous = config(4).with_shot_budget(1_000_000);
        let pipeline = QrccPipeline::plan(&chain(6), generous.clone()).unwrap();
        let ctx =
            AnalysisContext::new().with_config(&generous).with_fragments(pipeline.fragments());
        let report = Analyzer::new().run(&ctx);
        assert!(report.diagnostics().iter().all(|d| d.code != "QL0302"), "{report}");
    }
}
