//! Cut-plan lints (`QL02xx`): findings derivable from a
//! [`FragmentSet`](crate::fragment::FragmentSet) (plus the configuration for
//! strategy/pruning checks and the fleet for width checks).

use super::{AnalysisContext, AnalysisReport, Diagnostic, Lint, Location};
use crate::reconstruct::cost::{fre_log2_flops, frp_log2_flops, fss_threshold_log2};
use crate::reconstruct::{
    resolve_strategy, ReconstructionOptions, ReconstructionStrategy, Workload, MAX_DENSE_CUTS,
};
use crate::CoreError;

/// `QL0201`: a wire cut whose upstream (measurement) or downstream
/// (initialisation) side lands in no fragment — the attribution loop would
/// sum over a leg nobody produces, so reconstruction is structurally broken.
pub struct DanglingWireCut;

impl Lint for DanglingWireCut {
    fn code(&self) -> &'static str {
        "QL0201"
    }

    fn description(&self) -> &'static str {
        "wire cuts with a missing upstream or downstream fragment"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(fragments) = ctx.fragments else { return };
        for (cut, (upstream, downstream)) in fragments.wire_cut_endpoints().iter().enumerate() {
            let missing = match (upstream, downstream) {
                (None, None) => "upstream and downstream fragments",
                (None, Some(_)) => "upstream (measurement) fragment",
                (Some(_), None) => "downstream (initialisation) fragment",
                (Some(_), Some(_)) => continue,
            };
            report.push(
                Diagnostic::error(
                    "QL0201",
                    Location::WireCut(cut),
                    format!("wire cut {cut} has no {missing}"),
                )
                .with_suggestion("rebuild the fragment set from a validated cut plan"),
            );
        }
    }
}

/// `QL0202`: a gate cut with an incomplete endpoint set — both halves of the
/// six-instance decomposition must land in (possibly the same) fragments.
pub struct IncompleteGateCut;

impl Lint for IncompleteGateCut {
    fn code(&self) -> &'static str {
        "QL0202"
    }

    fn description(&self) -> &'static str {
        "gate cuts with a missing control or target half"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(fragments) = ctx.fragments else { return };
        for (cut, (control, target)) in fragments.gate_cut_endpoints().iter().enumerate() {
            let missing = match (control, target) {
                (None, None) => "both halves",
                (None, Some(_)) => "control half",
                (Some(_), None) => "target half",
                (Some(_), Some(_)) => continue,
            };
            report.push(
                Diagnostic::error(
                    "QL0202",
                    Location::GateCut(cut),
                    format!("gate cut {cut} hosts {missing} in no fragment"),
                )
                .with_suggestion("rebuild the fragment set from a validated cut plan"),
            );
        }
    }
}

/// `QL0203`: a fragment wider than anything that could run it — wider than
/// every registered backend (error), or wider than the planned
/// `device_size` when no fleet is given (warning: the planner should never
/// produce this, so the plan was likely hand-edited).
pub struct FragmentWidth;

impl Lint for FragmentWidth {
    fn code(&self) -> &'static str {
        "QL0203"
    }

    fn description(&self) -> &'static str {
        "fragments wider than every backend (or the planned device size)"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(fragments) = ctx.fragments else { return };
        for fragment in &fragments.fragments {
            let width = fragment.num_physical;
            if let Some(fleet) = ctx.fleet {
                if fleet.is_empty() {
                    continue; // QL0304 owns the empty-fleet finding
                }
                let fits_somewhere = fleet
                    .entries()
                    .iter()
                    .any(|entry| entry.max_qubits().is_none_or(|max| width <= max));
                if !fits_somewhere {
                    let widest =
                        fleet.entries().iter().filter_map(|e| e.max_qubits()).max().unwrap_or(0);
                    report.push(
                        Diagnostic::error(
                            "QL0203",
                            Location::Fragment(fragment.index),
                            format!(
                                "fragment {} needs {width} qubits but the widest of the {} \
                                 registered backend(s) offers {widest}",
                                fragment.index,
                                fleet.len()
                            ),
                        )
                        .with_suggestion(format!(
                            "register a backend with at least {width} qubits or replan with a \
                             smaller device_size"
                        )),
                    );
                }
            } else if let Some(config) = ctx.config {
                if width > config.device_size {
                    report.push(
                        Diagnostic::warning(
                            "QL0203",
                            Location::Fragment(fragment.index),
                            format!(
                                "fragment {} needs {width} qubits but the plan targets a \
                                 {}-qubit device",
                                fragment.index, config.device_size
                            ),
                        )
                        .with_suggestion("replan instead of editing fragments by hand"),
                    );
                }
            }
        }
    }
}

/// `QL0204`: the configured reconstruction strategy cannot handle the plan's
/// cut structure — the run would end in [`CoreError::TooManyCuts`] after
/// paying for every shot.
pub struct InfeasibleStrategy;

impl Lint for InfeasibleStrategy {
    fn code(&self) -> &'static str {
        "QL0204"
    }

    fn description(&self) -> &'static str {
        "cut plans the configured reconstruction strategy cannot contract"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(fragments) = ctx.fragments else { return };
        let options = ctx.config.map(ReconstructionOptions::from_config).unwrap_or_default();
        let workload = if fragments.num_gate_cuts() > 0 {
            Workload::Expectation
        } else {
            Workload::Probability
        };
        if let Err(CoreError::TooManyCuts { cuts, limit }) =
            resolve_strategy(fragments, &options, workload)
        {
            let suggestion = if options.strategy == ReconstructionStrategy::Dense {
                "switch to ReconstructionStrategy::Contract (or Auto), which caps legs per \
                 pairwise merge instead of total cuts"
                    .to_string()
            } else {
                format!(
                    "replan with fewer cuts: even the greedy contraction needs more than \
                     {MAX_DENSE_CUTS} legs in one merge"
                )
            };
            report.push(
                Diagnostic::error(
                    "QL0204",
                    Location::Circuit,
                    format!(
                        "the plan's {cuts} cut(s) exceed what the configured reconstruction \
                         strategy supports (limit {limit})"
                    ),
                )
                .with_suggestion(suggestion),
            );
        }
    }
}

/// `QL0205`: a-priori sampling/post-processing overhead — the exponential
/// cost the cut count commits the run to, compared against the paper's
/// full-state-simulation threshold.
pub struct SamplingOverhead;

impl Lint for SamplingOverhead {
    fn code(&self) -> &'static str {
        "QL0205"
    }

    fn description(&self) -> &'static str {
        "a-priori sampling and reconstruction overhead of the cut count"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(fragments) = ctx.fragments else { return };
        let wire = fragments.num_wire_cuts();
        let gate = fragments.num_gate_cuts();
        if wire + gate == 0 {
            return;
        }
        // the paper's FRP/FRE models: 4^wire (·6^gate via the √6-per-gate-cut
        // effective count) attribution components
        let log2_flops = if gate > 0 {
            fre_log2_flops(wire as f64 + gate as f64 * 6f64.log2() / 2.0)
        } else {
            frp_log2_flops(fragments.original_qubits, wire)
        };
        let threshold = fss_threshold_log2();
        let variants = fragments.total_variants();
        if log2_flops > threshold {
            report.push(
                Diagnostic::warning(
                    "QL0205",
                    Location::Circuit,
                    format!(
                        "dense reconstruction of {wire} wire + {gate} gate cut(s) costs \
                         ~2^{log2_flops:.1} flops, above the full-state-simulation threshold \
                         (~2^{threshold:.1})"
                    ),
                )
                .with_suggestion(
                    "use ReconstructionStrategy::Contract/Auto or replan with fewer cuts",
                ),
            );
        } else {
            report.push(Diagnostic::note(
                "QL0205",
                Location::Circuit,
                format!(
                    "the plan enumerates {variants} variant circuit(s) across {} fragment(s); \
                     estimated dense reconstruction cost ~2^{log2_flops:.1} flops",
                    fragments.fragments.len()
                ),
            ));
        }
    }
}

/// `QL0206`: sparse pruning is enabled — reconstructed mass will be dropped
/// below the tolerance, silently biasing results when the tolerance is
/// large.
pub struct PruneMass;

impl Lint for PruneMass {
    fn code(&self) -> &'static str {
        "QL0206"
    }

    fn description(&self) -> &'static str {
        "sparse-pruning tolerances that may drop reconstructed mass"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(config) = ctx.config else { return };
        let tolerance = config.prune_tolerance;
        if tolerance <= 0.0 || config.reconstruction_strategy == ReconstructionStrategy::Dense {
            return;
        }
        if tolerance > 0.05 {
            report.push(
                Diagnostic::warning(
                    "QL0206",
                    Location::Circuit,
                    format!(
                        "prune tolerance {tolerance} is large: the Contract strategy may drop \
                         significant reconstructed mass"
                    ),
                )
                .with_suggestion("check ReconstructionReport::pruned_mass after the run"),
            );
        } else {
            report.push(Diagnostic::note(
                "QL0206",
                Location::Circuit,
                format!(
                    "sparse pruning is enabled (tolerance {tolerance}); dropped mass is \
                     reported in ReconstructionReport::pruned_mass"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{AnalysisContext, Analyzer, Severity};
    use crate::fragment::FragmentSet;
    use crate::pipeline::QrccPipeline;
    use crate::reconstruct::ReconstructionStrategy;
    use crate::schedule::DeviceRegistry;
    use crate::QrccConfig;
    use qrcc_circuit::Circuit;
    use qrcc_sim::device::{Device, DeviceConfig};
    use std::time::Duration;

    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
            c.ry(0.3 + q as f64 * 0.1, q + 1);
        }
        c
    }

    fn planned(n: usize, d: usize) -> (QrccConfig, FragmentSet) {
        let config =
            QrccConfig::new(d).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        let pipeline = QrccPipeline::plan(&chain(n), config.clone()).unwrap();
        (config, pipeline.fragments().clone())
    }

    fn run(config: &QrccConfig, fragments: &FragmentSet) -> super::super::AnalysisReport {
        Analyzer::new().run(&AnalysisContext::new().with_config(config).with_fragments(fragments))
    }

    #[test]
    fn a_planner_produced_plan_has_no_errors_or_warnings() {
        let (config, fragments) = planned(5, 3);
        let report = run(&config, &fragments);
        assert!(report.is_clean(), "{report}");
        // ... but the overhead note fires for any plan with cuts
        assert!(report.diagnostics().iter().any(|d| d.code == "QL0205"));
    }

    #[test]
    fn a_dangling_wire_cut_is_an_error() {
        let (config, mut fragments) = planned(5, 3);
        assert!(fragments.num_wire_cuts() > 0);
        // detach the measurement side of wire cut 0 everywhere
        for fragment in &mut fragments.fragments {
            fragment.outgoing_cuts.retain(|&cut| cut != 0);
        }
        let report = run(&config, &fragments);
        let d = report.diagnostics().iter().find(|d| d.code == "QL0201").expect("fires");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.to_string().contains("wire cut 0"), "{d}");
        assert!(report.gate(crate::analyze::LintLevel::Warn).is_err());
    }

    #[test]
    fn an_incomplete_gate_cut_is_an_error() {
        let config = QrccConfig::new(3)
            .with_subcircuit_range(2, 3)
            .with_gate_cuts(true)
            .with_ilp_time_limit(Duration::ZERO);
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).ry(0.8, 1).cx(1, 2).cx(2, 3).rz(0.3, 3);
        let pipeline = QrccPipeline::plan(&c, config.clone()).unwrap();
        let mut fragments = pipeline.fragments().clone();
        if fragments.num_gate_cuts() == 0 {
            return; // the planner chose pure wire cuts for this seed
        }
        for fragment in &mut fragments.fragments {
            fragment.gate_cut_roles.retain(|&(cut, _)| cut != 0);
        }
        let report = run(&config, &fragments);
        assert!(report.diagnostics().iter().any(|d| d.code == "QL0202"));
    }

    #[test]
    fn an_oversized_fragment_errors_against_the_fleet_and_warns_without_one() {
        let (config, mut fragments) = planned(5, 3);
        fragments.fragments[0].num_physical = 9;
        // no fleet: a warning against the planned device size
        let report = run(&config, &fragments);
        let d = report.diagnostics().iter().find(|d| d.code == "QL0203").expect("fires");
        assert_eq!(d.severity, Severity::Warning);
        // with a fleet that tops out below 9 qubits: an error
        let mut fleet = DeviceRegistry::new();
        fleet.register_device("small", Device::new(DeviceConfig::ideal(4)), 1024);
        let report = Analyzer::new().run(
            &AnalysisContext::new()
                .with_config(&config)
                .with_fragments(&fragments)
                .with_fleet(&fleet),
        );
        let d = report.diagnostics().iter().find(|d| d.code == "QL0203").expect("fires");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("widest"), "{d}");
    }

    #[test]
    fn too_many_cuts_for_the_dense_strategy_is_an_error() {
        // a long chain cut into many fragments overflows MAX_DENSE_CUTS
        let config = QrccConfig::new(2)
            .with_subcircuit_range(2, 24)
            .with_reconstruction_strategy(ReconstructionStrategy::Dense)
            .with_ilp_time_limit(Duration::ZERO);
        let pipeline = QrccPipeline::plan(&chain(18), config.clone()).unwrap();
        let fragments = pipeline.fragments().clone();
        if fragments.num_wire_cuts() <= super::MAX_DENSE_CUTS {
            return; // planner found a surprisingly cheap cut; nothing to lint
        }
        let report = run(&config, &fragments);
        let d = report.diagnostics().iter().find(|d| d.code == "QL0204").expect("fires");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.suggestion.as_deref().unwrap_or("").contains("Contract"), "{d}");
        // the same plan under Contract/Auto resolves fine
        let auto = config.with_reconstruction_strategy(ReconstructionStrategy::Auto);
        let report = run(&auto, &fragments);
        assert!(report.diagnostics().iter().all(|d| d.code != "QL0204"), "{report}");
    }

    #[test]
    fn prune_tolerance_notes_and_warns() {
        let (config, fragments) = planned(5, 3);
        let noted = config
            .clone()
            .with_reconstruction_strategy(ReconstructionStrategy::Contract)
            .with_prune_tolerance(1e-9);
        let report = run(&noted, &fragments);
        let d = report.diagnostics().iter().find(|d| d.code == "QL0206").expect("fires");
        assert_eq!(d.severity, Severity::Note);
        let coarse = noted.with_prune_tolerance(0.2);
        let report = run(&coarse, &fragments);
        let d = report.diagnostics().iter().find(|d| d.code == "QL0206").expect("fires");
        assert_eq!(d.severity, Severity::Warning);
    }
}
