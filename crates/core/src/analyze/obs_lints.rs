//! Observability lints (`QL0306`): statically predicting a tracing
//! configuration that can never deliver its trace — an
//! [`ObsPolicy`](crate::obs::ObsPolicy) whose span buffer holds nothing, or
//! whose trace-output path is guaranteed unwritable.

use super::{AnalysisContext, AnalysisReport, Diagnostic, Lint, Location};
use std::path::Path;

/// `QL0306`: tracing is enabled but the configuration cannot record or
/// write the trace. All findings are **warnings** — broken observability
/// degrades to a missing trace, never to wrong results.
///
/// Fires on:
/// * tracing enabled with a zero span-buffer capacity — every span is
///   counted as dropped, so the trace is always empty;
/// * a trace-output path that points at a directory — exporters write one
///   file, so the write is guaranteed to fail;
/// * a trace-output path whose parent is missing or not a directory —
///   nothing creates intermediate directories, so the write fails.
///
/// Silent when `obs.enabled` is false (the default): a path or capacity on
/// a disabled policy costs nothing.
pub struct ObsPolicyLint;

impl Lint for ObsPolicyLint {
    fn code(&self) -> &'static str {
        "QL0306"
    }

    fn description(&self) -> &'static str {
        "tracing configurations that cannot record or write their trace"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(config) = ctx.config else { return };
        let policy = &config.obs;
        if !policy.enabled {
            return;
        }
        if policy.buffer_capacity == 0 {
            report.push(
                Diagnostic::warning(
                    "QL0306",
                    Location::Circuit,
                    "tracing is enabled with a zero span-buffer capacity: every span is \
                     dropped, so the trace is always empty",
                )
                .with_suggestion(
                    "set a positive capacity (QrccConfig::with_trace_buffer) or disable tracing",
                ),
            );
        }
        let Some(path) = policy.trace_path.as_deref().map(Path::new) else { return };
        if path.is_dir() {
            report.push(
                Diagnostic::warning(
                    "QL0306",
                    Location::Circuit,
                    format!(
                        "the trace-output path '{}' is a directory: the trace write will fail",
                        path.display()
                    ),
                )
                .with_suggestion("point the trace output at a file path"),
            );
            return;
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() && !parent.is_dir() {
                report.push(
                    Diagnostic::warning(
                        "QL0306",
                        Location::Circuit,
                        format!(
                            "the trace-output path '{}' has a missing or non-directory \
                             parent: the trace can never be written there",
                            path.display()
                        ),
                    )
                    .with_suggestion(
                        "create the directory first, or point the trace output below an \
                         existing one",
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{AnalysisContext, Analyzer, Severity};
    use crate::QrccConfig;

    fn scratch(name: &str) -> std::path::PathBuf {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("qrcc-obs-lint-{}-{}-{}", std::process::id(), n, name))
    }

    fn diagnostics_for(config: &QrccConfig) -> Vec<String> {
        let report = Analyzer::new().run(&AnalysisContext::new().with_config(config));
        report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "QL0306")
            .map(|d| d.message.clone())
            .collect()
    }

    #[test]
    fn disabled_tracing_is_silent_even_when_misconfigured() {
        assert!(diagnostics_for(&QrccConfig::new(3)).is_empty());
        let mut config = QrccConfig::new(3);
        config.obs.buffer_capacity = 0;
        config.obs.trace_path = Some("/definitely/not/a/real/parent/trace.json".into());
        assert!(diagnostics_for(&config).is_empty());
    }

    #[test]
    fn zero_buffer_capacity_with_tracing_enabled_warns() {
        let config = QrccConfig::new(3).with_tracing(true).with_trace_buffer(0);
        let report = Analyzer::new().run(&AnalysisContext::new().with_config(&config));
        let d = report.diagnostics().iter().find(|d| d.code == "QL0306").expect("fires");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("zero span-buffer capacity"), "{d}");
    }

    #[test]
    fn a_directory_trace_path_warns() {
        let dir = scratch("as-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let config = QrccConfig::new(3).with_trace_output(dir.to_string_lossy().into_owned());
        let messages = diagnostics_for(&config);
        assert!(messages.iter().any(|m| m.contains("is a directory")), "{messages:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_missing_parent_warns_and_a_real_one_is_clean() {
        let config = QrccConfig::new(3)
            .with_trace_output("/definitely/not/a/real/parent/trace.json".to_string());
        let messages = diagnostics_for(&config);
        assert!(
            messages.iter().any(|m| m.contains("missing or non-directory parent")),
            "{messages:?}"
        );

        let path = scratch("trace.json");
        let config = QrccConfig::new(3).with_trace_output(path.to_string_lossy().into_owned());
        assert!(diagnostics_for(&config).is_empty());
    }
}
