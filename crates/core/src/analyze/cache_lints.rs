//! Result-cache lints (`QL0305`): statically predicting a misconfigured
//! [`cache::ResultCachePolicy`](crate::cache::ResultCachePolicy) — a cache
//! that silently stores nothing, a persistence path that can never be
//! written, or an on-disk snapshot the configured cache will ignore.

use super::{AnalysisContext, AnalysisReport, Diagnostic, Lint, Location};
use crate::cache::{ResultCache, SNAPSHOT_VERSION};
use std::path::Path;

/// `QL0305`: the configured result cache cannot do what the configuration
/// asks of it. All findings are **warnings** — a misconfigured cache degrades
/// to executing everything (or starting empty), never to wrong results.
///
/// Fires on:
/// * caching enabled with a zero weight budget — every insertion is dropped,
///   so the cache never serves anything;
/// * a persistence path whose parent exists but is not a directory, or that
///   points at a directory — the shutdown snapshot write is guaranteed to
///   fail;
/// * an existing snapshot written under a different format version (or a
///   file that is not a snapshot at all) — [`ResultCache::open`] ignores it
///   and starts empty.
///
/// Silent when `result_cache.enabled` is false (the default).
pub struct CachePolicy;

impl Lint for CachePolicy {
    fn code(&self) -> &'static str {
        "QL0305"
    }

    fn description(&self) -> &'static str {
        "result-cache configurations that cannot store, persist, or reload"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(config) = ctx.config else { return };
        let policy = &config.result_cache;
        if !policy.enabled {
            return;
        }
        if policy.capacity == 0 {
            report.push(
                Diagnostic::warning(
                    "QL0305",
                    Location::Circuit,
                    "the result cache is enabled with a zero weight budget: every insertion \
                     is dropped, so lookups can never hit",
                )
                .with_suggestion(
                    "set a positive capacity (ResultCachePolicy::with_capacity) or disable \
                     the cache",
                ),
            );
        }
        let Some(path) = policy.persist_path.as_deref().map(Path::new) else { return };
        if path.is_dir() {
            report.push(
                Diagnostic::warning(
                    "QL0305",
                    Location::Circuit,
                    format!(
                        "the result-cache persistence path '{}' is a directory: the shutdown \
                         snapshot write will fail",
                        path.display()
                    ),
                )
                .with_suggestion("point persist_path at a file path"),
            );
            return;
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() && parent.exists() && !parent.is_dir() {
                report.push(
                    Diagnostic::warning(
                        "QL0305",
                        Location::Circuit,
                        format!(
                            "the result-cache persistence path '{}' has a non-directory \
                             parent: the snapshot can never be written there",
                            path.display()
                        ),
                    )
                    .with_suggestion("point persist_path below a real (or creatable) directory"),
                );
                return;
            }
        }
        if path.exists() {
            match ResultCache::snapshot_version(path) {
                Some(version) if version == SNAPSHOT_VERSION => {}
                Some(version) => {
                    report.push(
                        Diagnostic::warning(
                            "QL0305",
                            Location::Circuit,
                            format!(
                                "the snapshot at '{}' was written under cache-format version \
                                 {version}, this build reads version {SNAPSHOT_VERSION}: it \
                                 will be ignored and the cache starts empty",
                                path.display()
                            ),
                        )
                        .with_suggestion(
                            "delete the stale snapshot (a fresh one is written at shutdown)",
                        ),
                    );
                }
                None => {
                    report.push(
                        Diagnostic::warning(
                            "QL0305",
                            Location::Circuit,
                            format!(
                                "the file at '{}' is not a result-cache snapshot: it will be \
                                 ignored (and overwritten at shutdown)",
                                path.display()
                            ),
                        )
                        .with_suggestion("point persist_path somewhere that is not already in use"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{AnalysisContext, Analyzer, Severity};
    use crate::cache::{ResultCache, ResultCachePolicy};
    use crate::QrccConfig;

    fn scratch(name: &str) -> std::path::PathBuf {
        static COUNTER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("qrcc-cache-lint-{}-{}-{}", std::process::id(), n, name))
    }

    fn diagnostics_for(config: &QrccConfig) -> Vec<String> {
        let report = Analyzer::new().run(&AnalysisContext::new().with_config(config));
        report
            .diagnostics()
            .iter()
            .filter(|d| d.code == "QL0305")
            .map(|d| d.message.clone())
            .collect()
    }

    #[test]
    fn a_disabled_cache_is_silent() {
        assert!(diagnostics_for(&QrccConfig::new(3)).is_empty());
        // zero capacity too: the cache is off, nothing to warn about
        let mut config = QrccConfig::new(3);
        config.result_cache.capacity = 0;
        assert!(diagnostics_for(&config).is_empty());
    }

    #[test]
    fn zero_capacity_with_caching_enabled_warns() {
        let config = QrccConfig::new(3).with_result_cache(true).with_result_cache_capacity(0);
        let report = Analyzer::new().run(&AnalysisContext::new().with_config(&config));
        let d = report.diagnostics().iter().find(|d| d.code == "QL0305").expect("fires");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("zero weight budget"), "{d}");
    }

    #[test]
    fn a_directory_persistence_path_warns() {
        let dir = scratch("as-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let config =
            QrccConfig::new(3).with_result_cache_persistence(dir.to_string_lossy().into_owned());
        let messages = diagnostics_for(&config);
        assert!(messages.iter().any(|m| m.contains("is a directory")), "{messages:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_version_mismatched_snapshot_warns_and_a_current_one_is_clean() {
        let path = scratch("versioned");
        std::fs::write(&path, "QRCC-RESULT-CACHE v999\n").unwrap();
        let config =
            QrccConfig::new(3).with_result_cache_persistence(path.to_string_lossy().into_owned());
        let messages = diagnostics_for(&config);
        assert!(messages.iter().any(|m| m.contains("version 999")), "{messages:?}");

        // a snapshot written by the current build analyzes clean
        let cache =
            ResultCache::open(&ResultCachePolicy::persisted(path.to_string_lossy().into_owned()));
        let mut circuit = qrcc_circuit::Circuit::new(1);
        circuit.h(0);
        cache.store(&circuit, &[0.5, 0.5], Some(100));
        cache.persist().unwrap();
        assert!(diagnostics_for(&config).is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_at_the_persistence_path_warns() {
        let path = scratch("garbage");
        std::fs::write(&path, "not a snapshot\n").unwrap();
        let config =
            QrccConfig::new(3).with_result_cache_persistence(path.to_string_lossy().into_owned());
        let messages = diagnostics_for(&config);
        assert!(messages.iter().any(|m| m.contains("not a result-cache snapshot")), "{messages:?}");
        std::fs::remove_file(&path).unwrap();
    }
}
