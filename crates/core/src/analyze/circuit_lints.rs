//! Circuit lints (`QL01xx`): findings derivable from the original circuit
//! alone (plus, for `QL0105`, the fleet's capability surface).

use super::{AnalysisContext, AnalysisReport, Diagnostic, Lint, Location};
use qrcc_circuit::{Circuit, Operation};

/// `QL0102`: qubits declared but never touched by any operation.
///
/// Dead qubits inflate the declared width — the planner sizes fragments and
/// rejects device sizes against `num_qubits`, so an untouched wire can force
/// unnecessary cuts or spurious [`InvalidDeviceSize`](crate::CoreError)
/// rejections.
pub struct DeadQubits;

impl Lint for DeadQubits {
    fn code(&self) -> &'static str {
        "QL0102"
    }

    fn description(&self) -> &'static str {
        "qubits declared but never used by any operation"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(circuit) = ctx.circuit else { return };
        let dead = circuit.num_qubits() - circuit.active_qubit_count();
        if dead == 0 {
            return;
        }
        let active = circuit.active_qubits();
        let first_dead = (0..circuit.num_qubits())
            .find(|&q| !active.iter().any(|id| id.index() == q))
            .unwrap_or(0);
        report.push(
            Diagnostic::warning(
                "QL0102",
                Location::Qubit(first_dead),
                format!(
                    "{dead} of {} declared qubit(s) are never used by any operation",
                    circuit.num_qubits()
                ),
            )
            .with_suggestion("declare only the qubits the circuit acts on"),
        );
    }
}

/// `QL0103`: a measurement of a qubit no gate has touched yet — its outcome
/// is deterministically 0, which usually means a mis-indexed operand.
pub struct MeasureBeforeUse;

impl Lint for MeasureBeforeUse {
    fn code(&self) -> &'static str {
        "QL0103"
    }

    fn description(&self) -> &'static str {
        "measurement of a qubit before any gate touches it"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(circuit) = ctx.circuit else { return };
        let mut touched = vec![false; circuit.num_qubits()];
        for (index, op) in circuit.operations().iter().enumerate() {
            match op {
                Operation::Single { qubit, .. } => touched[qubit.index()] = true,
                Operation::Two { qubits, .. } => {
                    touched[qubits[0].index()] = true;
                    touched[qubits[1].index()] = true;
                }
                Operation::Measure { qubit, .. } => {
                    let q = qubit.index();
                    if !touched[q] {
                        report.push(
                            Diagnostic::warning(
                                "QL0103",
                                Location::Gate(index),
                                format!(
                                    "qubit {q} is measured before any gate touches it \
                                     (the outcome is deterministically 0)"
                                ),
                            )
                            .with_suggestion("check the measurement's qubit operand"),
                        );
                        // one finding per qubit is enough
                        touched[q] = true;
                    }
                }
                Operation::Reset { .. } | Operation::Barrier { .. } => {}
            }
        }
    }
}

/// `QL0104`: classical-register hygiene — a classical bit written by two
/// measurements (the first outcome is lost) or declared but never written
/// (always reads 0).
pub struct ClassicalRegisterUsage;

impl Lint for ClassicalRegisterUsage {
    fn code(&self) -> &'static str {
        "QL0104"
    }

    fn description(&self) -> &'static str {
        "classical bits overwritten by a second measurement or never written"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(circuit) = ctx.circuit else { return };
        if circuit.num_clbits() == 0 {
            return;
        }
        let mut writes = vec![0usize; circuit.num_clbits()];
        for (index, op) in circuit.operations().iter().enumerate() {
            if let Operation::Measure { clbit, .. } = op {
                writes[*clbit] += 1;
                if writes[*clbit] == 2 {
                    report.push(
                        Diagnostic::warning(
                            "QL0104",
                            Location::Gate(index),
                            format!(
                                "classical bit {clbit} is written by a second measurement \
                                 (the earlier outcome is lost)"
                            ),
                        )
                        .with_suggestion("measure into a distinct classical bit"),
                    );
                }
            }
        }
        if let Some(unwritten) = writes.iter().position(|&w| w == 0) {
            let count = writes.iter().filter(|&&w| w == 0).count();
            report.push(Diagnostic::note(
                "QL0104",
                Location::Clbit(unwritten),
                format!("{count} declared classical bit(s) are never written and always read 0"),
            ));
        }
    }
}

/// `QL0105`: the circuit (or its cut fragments) needs mid-circuit
/// measurement/reset — the signature of qubit reuse — but no backend of the
/// fleet supports that capability, so every dispatch attempt is doomed.
pub struct ReuseCapability;

/// A 1-qubit measure-reset-measure probe: exactly the capability qubit reuse
/// needs, kept minimal so width never interferes with the check.
fn mid_circuit_probe() -> Circuit {
    let mut probe = Circuit::with_clbits(1, 2);
    probe.h(0);
    probe.measure(0, 0);
    probe.reset(0);
    probe.h(0);
    probe.measure(0, 1);
    probe
}

impl Lint for ReuseCapability {
    fn code(&self) -> &'static str {
        "QL0105"
    }

    fn description(&self) -> &'static str {
        "qubit-reuse circuits on a fleet without mid-circuit measurement"
    }

    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport) {
        let Some(fleet) = ctx.fleet else { return };
        if fleet.is_empty() {
            // QL0304 owns the empty-fleet finding
            return;
        }
        // Does anything we would execute need mid-circuit operations? Prefer
        // the instantiated fragments (what actually runs) over the original
        // circuit.
        let needs = match ctx.fragments {
            Some(fragments) => fragments.fragments.iter().any(|fragment| {
                qrcc_sim::device::needs_mid_circuit(
                    &fragment.instantiate(&fragment.default_variant()),
                )
            }),
            None => match ctx.circuit {
                Some(circuit) => qrcc_sim::device::needs_mid_circuit(circuit),
                None => false,
            },
        };
        if !needs {
            return;
        }
        let probe = mid_circuit_probe();
        if fleet.entries().iter().any(|entry| entry.backend().can_run(&probe)) {
            return;
        }
        report.push(
            Diagnostic::error(
                "QL0105",
                Location::Circuit,
                format!(
                    "the circuit relies on mid-circuit measurement/reset (qubit reuse) but none \
                     of the {} registered backend(s) supports it",
                    fleet.len()
                ),
            )
            .with_suggestion(
                "register a backend with mid-circuit support, or replan with \
                 QrccConfig::with_qubit_reuse(false)",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::super::{AnalysisContext, Analyzer, Severity};
    use crate::schedule::DeviceRegistry;
    use qrcc_circuit::Circuit;
    use qrcc_sim::device::{Device, DeviceConfig};

    fn run(circuit: &Circuit) -> super::super::AnalysisReport {
        Analyzer::new().run(&AnalysisContext::new().with_circuit(circuit))
    }

    #[test]
    fn dead_qubits_warn_once_with_the_first_dead_index() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 2); // qubits 1 and 3 unused
        let report = run(&c);
        let d = report.diagnostics().iter().find(|d| d.code == "QL0102").expect("fires");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.location, super::super::Location::Qubit(1));
        assert!(d.message.contains("2 of 4"));
    }

    #[test]
    fn measure_before_use_flags_untouched_qubits_only() {
        let mut c = Circuit::with_clbits(2, 2);
        c.h(0);
        c.measure(0, 0); // fine: h touched qubit 0
        c.measure(1, 1); // qubit 1 untouched
        let report = run(&c);
        let hits: Vec<_> = report.diagnostics().iter().filter(|d| d.code == "QL0103").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].location, super::super::Location::Gate(2));
    }

    #[test]
    fn classical_register_overwrite_and_unwritten_bits() {
        let mut c = Circuit::with_clbits(2, 3);
        c.h(0).h(1);
        c.measure(0, 0);
        c.measure(1, 0); // overwrites bit 0; bits 1 and 2 never written
        let report = run(&c);
        let hits: Vec<_> = report.diagnostics().iter().filter(|d| d.code == "QL0104").collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].severity, Severity::Warning);
        assert_eq!(hits[1].severity, Severity::Note);
        assert!(hits[1].message.contains("2 declared classical bit(s)"));
    }

    #[test]
    fn reuse_on_a_fleet_without_mid_circuit_support_errors() {
        let mut c = Circuit::with_clbits(2, 2);
        c.h(0);
        c.measure(0, 0);
        c.reset(0);
        c.cx(1, 0);
        c.measure(0, 1);
        assert!(qrcc_sim::device::needs_mid_circuit(&c));

        let mut no_reuse = DeviceRegistry::new();
        no_reuse.register_device(
            "rigid",
            Device::new(DeviceConfig::ideal(4).without_mid_circuit()),
            4096,
        );
        let report =
            Analyzer::new().run(&AnalysisContext::new().with_circuit(&c).with_fleet(&no_reuse));
        assert!(report.diagnostics().iter().any(|d| d.code == "QL0105"));

        let mut capable = DeviceRegistry::new();
        capable.register_device("reuse-ok", Device::new(DeviceConfig::ideal(4)), 4096);
        let report =
            Analyzer::new().run(&AnalysisContext::new().with_circuit(&c).with_fleet(&capable));
        assert!(report.diagnostics().iter().all(|d| d.code != "QL0105"));
    }

    #[test]
    fn a_clean_circuit_reports_nothing() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let report = run(&c);
        assert!(report.diagnostics().is_empty(), "{report}");
    }
}
