//! Pre-flight static analysis: a lint-style diagnostics engine for circuits,
//! cut plans and device fleets.
//!
//! The execution stack ([`schedule`](crate::schedule) →
//! [`dispatch`](crate::dispatch) → backends) discovers many failure classes
//! only *after* contacting a device: a fragment too wide for every registered
//! backend surfaces as [`CoreError::NoCompatibleBackend`] mid-dispatch, a
//! starved shot budget as [`CoreError::ShotBudgetTooSmall`], a reuse circuit
//! on a fleet without mid-circuit measurement as a per-circuit backend
//! failure. All of these are **statically decidable** from the circuit, the
//! cut plan and the fleet description alone. This module decides them up
//! front, rustc-style:
//!
//! * [`Diagnostic`] — one finding: a stable code (`QL0203`), a [`Severity`],
//!   a [`Location`] (qubit, gate index, fragment, cut id, QASM line/column),
//!   a message and an optional suggestion.
//! * [`Lint`] — one check over an [`AnalysisContext`]; the built-in registry
//!   of an [`Analyzer`] covers three families:
//!   circuit lints (`QL01xx`), cut-plan lints (`QL02xx`) and fleet/schedule
//!   lints (`QL03xx`). See the table in the workspace README.
//! * [`AnalysisReport`] — the ordered findings plus a severity gate:
//!   [`AnalysisReport::gate`] turns findings at or above the configured
//!   [`LintLevel`] into [`CoreError::AnalysisFailed`] *before* any backend is
//!   contacted.
//!
//! The high-level entry points are
//! [`QrccPipeline::analyze`](crate::pipeline::QrccPipeline::analyze) /
//! [`analyze_with_fleet`](crate::pipeline::QrccPipeline::analyze_with_fleet)
//! and the gating
//! [`preflight`](crate::pipeline::QrccPipeline::preflight); the remote
//! server uses [`preflight_backend`] to reject statically-invalid circuits
//! per batch entry.
//!
//! ```rust
//! use qrcc_circuit::Circuit;
//! use qrcc_core::analyze::{AnalysisContext, Analyzer};
//!
//! let mut circuit = Circuit::new(3);
//! circuit.h(0).cx(0, 1); // qubit 2 is never touched
//! let analyzer = Analyzer::new();
//! let report = analyzer.run(&AnalysisContext::new().with_circuit(&circuit));
//! assert!(report.diagnostics().iter().any(|d| d.code == "QL0102"));
//! ```

mod cache_lints;
mod circuit_lints;
mod fleet_lints;
mod monitor_lints;
mod obs_lints;
mod plan_lints;

pub use cache_lints::CachePolicy;
pub use circuit_lints::{ClassicalRegisterUsage, DeadQubits, MeasureBeforeUse, ReuseCapability};
pub use fleet_lints::{EmptyFleet, PredictedPlacement, PredictedShotBudget};
pub use monitor_lints::MonitorPolicyLint;
pub use obs_lints::ObsPolicyLint;
pub use plan_lints::{
    DanglingWireCut, FragmentWidth, IncompleteGateCut, InfeasibleStrategy, PruneMass,
    SamplingOverhead,
};

use crate::execute::ExecutionBackend;
use crate::fragment::FragmentSet;
use crate::schedule::DeviceRegistry;
use crate::{CoreError, QrccConfig};
use qrcc_circuit::{Circuit, CircuitError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a [`Diagnostic`] is. Ordered: `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — never gates execution (overhead estimates, capped
    /// enumerations).
    Note,
    /// Suspicious but runnable — gates execution only under
    /// [`LintLevel::Deny`].
    Warning,
    /// A statically-predicted runtime failure — gates execution under
    /// [`LintLevel::Warn`] (the default) and [`LintLevel::Deny`].
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The severity gate of the pre-flight analysis pass: which diagnostics make
/// [`AnalysisReport::gate`] fail (configured via
/// [`QrccConfig::with_lint_level`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LintLevel {
    /// Never fail — diagnostics are reported but never block execution.
    Allow,
    /// Fail on [`Severity::Error`] diagnostics (the default).
    #[default]
    Warn,
    /// Deny-warnings mode: fail on [`Severity::Warning`] **and**
    /// [`Severity::Error`] diagnostics.
    Deny,
}

/// Where a [`Diagnostic`] points. Every variant renders into the
/// parenthesised suffix of the diagnostic's [`Display`](fmt::Display) form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Location {
    /// The circuit (or plan) as a whole.
    Circuit,
    /// A qubit of the analyzed circuit.
    Qubit(usize),
    /// An operation index into [`Circuit::operations`].
    Gate(usize),
    /// A classical bit of the analyzed circuit.
    Clbit(usize),
    /// A fragment (subcircuit) index of the cut plan.
    Fragment(usize),
    /// A global wire-cut id of the cut plan.
    WireCut(usize),
    /// A global gate-cut id of the cut plan.
    GateCut(usize),
    /// A named backend of the fleet.
    Backend(String),
    /// A position in OpenQASM source text (both 1-based; 0 = unknown).
    Qasm {
        /// 1-based line of the offending statement.
        line: usize,
        /// 1-based byte column of the offending token (0 when unknown).
        column: usize,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Circuit => write!(f, "circuit"),
            Location::Qubit(q) => write!(f, "qubit {q}"),
            Location::Gate(i) => write!(f, "operation {i}"),
            Location::Clbit(c) => write!(f, "classical bit {c}"),
            Location::Fragment(i) => write!(f, "fragment {i}"),
            Location::WireCut(i) => write!(f, "wire cut {i}"),
            Location::GateCut(i) => write!(f, "gate cut {i}"),
            Location::Backend(name) => write!(f, "backend '{name}'"),
            Location::Qasm { line, column: 0 } => write!(f, "line {line}"),
            Location::Qasm { line, column } => write!(f, "line {line}, column {column}"),
        }
    }
}

/// One static-analysis finding.
///
/// Renders rustc-style:
/// `error[QL0203]: fragment 1 is 5 qubits wide ... (fragment 1); help: ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable lint code (`QL0101`–`QL03xx`); see the README table.
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// What the finding points at.
    pub location: Location,
    /// Human-readable description of the finding.
    pub message: String,
    /// Optional remediation hint, rendered as a `help:` suffix.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// An [`Severity::Error`] diagnostic.
    pub fn error(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location,
            message: message.into(),
            suggestion: None,
        }
    }

    /// A [`Severity::Warning`] diagnostic.
    pub fn warning(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            location,
            message: message.into(),
            suggestion: None,
        }
    }

    /// A [`Severity::Note`] diagnostic.
    pub fn note(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Note,
            location,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a remediation hint.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Converts a circuit-construction or QASM-parse error into a `QL0101`
    /// diagnostic. [`CircuitError::QasmParse`] keeps its line/column as a
    /// [`Location::Qasm`]; every other error points at the circuit.
    pub fn from_circuit_error(error: &CircuitError) -> Self {
        match error {
            CircuitError::QasmParse { line, column, reason } => Diagnostic::error(
                "QL0101",
                Location::Qasm { line: *line, column: *column },
                reason.clone(),
            ),
            other => Diagnostic::error("QL0101", Location::Circuit, other.to_string()),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if self.location != Location::Circuit {
            write!(f, " ({})", self.location)?;
        }
        if let Some(suggestion) = &self.suggestion {
            write!(f, "; help: {suggestion}")?;
        }
        Ok(())
    }
}

/// The ordered findings of one analysis run, plus the severity gate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// An empty report.
    pub fn new() -> Self {
        AnalysisReport::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// The findings, in lint-registry order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of [`Severity::Error`] findings.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of [`Severity::Warning`] findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Number of [`Severity::Note`] findings.
    pub fn notes(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Note).count()
    }

    /// `true` when the report holds no errors and no warnings (notes are
    /// always allowed).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0 && self.warnings() == 0
    }

    /// Applies the severity gate: [`LintLevel::Allow`] always passes,
    /// [`LintLevel::Warn`] fails on errors, [`LintLevel::Deny`] fails on
    /// warnings and errors.
    ///
    /// # Errors
    ///
    /// [`CoreError::AnalysisFailed`] carrying the error/warning counts and
    /// the first gating diagnostic, rendered.
    pub fn gate(&self, level: LintLevel) -> Result<(), CoreError> {
        let threshold = match level {
            LintLevel::Allow => return Ok(()),
            LintLevel::Warn => Severity::Error,
            LintLevel::Deny => Severity::Warning,
        };
        match self.diagnostics.iter().find(|d| d.severity >= threshold) {
            None => Ok(()),
            Some(first) => Err(CoreError::AnalysisFailed {
                errors: self.errors(),
                warnings: self.warnings(),
                first: first.to_string(),
            }),
        }
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for diagnostic in &self.diagnostics {
            writeln!(f, "{diagnostic}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} note(s)",
            self.errors(),
            self.warnings(),
            self.notes()
        )
    }
}

/// What a lint run can see. Every field is optional: a [`Lint`] inspects the
/// pieces it understands and stays silent when they are absent, so the same
/// [`Analyzer`] serves circuit-only, plan-only and full-fleet analyses.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisContext<'a> {
    /// The original (uncut) circuit.
    pub circuit: Option<&'a Circuit>,
    /// The cut plan's fragments.
    pub fragments: Option<&'a FragmentSet>,
    /// The planner/schedule configuration.
    pub config: Option<&'a QrccConfig>,
    /// The device fleet the batch would be scheduled on.
    pub fleet: Option<&'a DeviceRegistry>,
}

impl<'a> AnalysisContext<'a> {
    /// An empty context.
    pub fn new() -> Self {
        AnalysisContext::default()
    }

    /// Adds the original circuit.
    #[must_use]
    pub fn with_circuit(mut self, circuit: &'a Circuit) -> Self {
        self.circuit = Some(circuit);
        self
    }

    /// Adds the cut plan's fragments.
    #[must_use]
    pub fn with_fragments(mut self, fragments: &'a FragmentSet) -> Self {
        self.fragments = Some(fragments);
        self
    }

    /// Adds the planner/schedule configuration.
    #[must_use]
    pub fn with_config(mut self, config: &'a QrccConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Adds the device fleet.
    #[must_use]
    pub fn with_fleet(mut self, fleet: &'a DeviceRegistry) -> Self {
        self.fleet = Some(fleet);
        self
    }
}

/// One static check over an [`AnalysisContext`].
pub trait Lint {
    /// The stable code this lint reports under (`QL0102`, ...).
    fn code(&self) -> &'static str;
    /// One-line description of what the lint checks.
    fn description(&self) -> &'static str;
    /// Runs the check, appending findings to `report`. A lint must stay
    /// silent when the context pieces it needs are absent.
    fn check(&self, ctx: &AnalysisContext<'_>, report: &mut AnalysisReport);
}

/// The lint registry: runs every registered [`Lint`] over a context.
pub struct Analyzer {
    lints: Vec<Box<dyn Lint>>,
}

impl Analyzer {
    /// An analyzer with the full built-in registry (all `QL01xx`/`QL02xx`/
    /// `QL03xx` lints).
    pub fn new() -> Self {
        let mut analyzer = Analyzer::empty();
        analyzer
            .register(Box::new(DeadQubits))
            .register(Box::new(MeasureBeforeUse))
            .register(Box::new(ClassicalRegisterUsage))
            .register(Box::new(ReuseCapability))
            .register(Box::new(DanglingWireCut))
            .register(Box::new(IncompleteGateCut))
            .register(Box::new(FragmentWidth))
            .register(Box::new(InfeasibleStrategy))
            .register(Box::new(SamplingOverhead))
            .register(Box::new(PruneMass))
            .register(Box::new(EmptyFleet))
            .register(Box::new(PredictedPlacement))
            .register(Box::new(PredictedShotBudget))
            .register(Box::new(CachePolicy))
            .register(Box::new(ObsPolicyLint))
            .register(Box::new(MonitorPolicyLint));
        analyzer
    }

    /// An analyzer with no lints registered.
    pub fn empty() -> Self {
        Analyzer { lints: Vec::new() }
    }

    /// Registers an additional lint (appended after the existing ones).
    pub fn register(&mut self, lint: Box<dyn Lint>) -> &mut Self {
        self.lints.push(lint);
        self
    }

    /// The codes of every registered lint, in run order.
    pub fn codes(&self) -> Vec<&'static str> {
        self.lints.iter().map(|l| l.code()).collect()
    }

    /// Runs every registered lint over `ctx`.
    pub fn run(&self, ctx: &AnalysisContext<'_>) -> AnalysisReport {
        let mut report = AnalysisReport::new();
        for lint in &self.lints {
            lint.check(ctx, &mut report);
        }
        report
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Analyzer").field("lints", &self.codes()).finish()
    }
}

/// Parses OpenQASM source and runs the circuit lints over the result.
///
/// Parse failures become `QL0101` diagnostics carrying the line/column of
/// [`CircuitError::QasmParse`] — the same [`Diagnostic`] currency as every
/// other finding — and the circuit slot of the return value stays `None`.
pub fn analyze_qasm(source: &str) -> (Option<Circuit>, AnalysisReport) {
    match qrcc_circuit::qasm::from_qasm(source) {
        Ok(circuit) => {
            let report = Analyzer::new().run(&AnalysisContext::new().with_circuit(&circuit));
            (Some(circuit), report)
        }
        Err(error) => {
            let mut report = AnalysisReport::new();
            report.push(Diagnostic::from_circuit_error(&error));
            (None, report)
        }
    }
}

/// Statically checks whether `backend` can run `circuit` — the per-circuit
/// pre-flight the remote [`QrccServer`](../../qrcc_net) applies before
/// execution. Returns a `QL0301` error diagnostic when placement is
/// impossible (too wide, or a required capability such as mid-circuit
/// measurement is missing), `None` when the circuit passes.
pub fn preflight_backend(circuit: &Circuit, backend: &dyn ExecutionBackend) -> Option<Diagnostic> {
    if backend.can_run(circuit) {
        return None;
    }
    Some(
        Diagnostic::error(
            "QL0301",
            Location::Circuit,
            format!(
                "the target backend cannot run this {}-qubit circuit (too wide, or a required \
                 capability such as mid-circuit measurement is missing)",
                circuit.num_qubits()
            ),
        )
        .with_suggestion(
            "route the circuit to a backend with more qubits or the missing capability",
        ),
    )
}
