//! A registry of heterogeneous execution backends the scheduler routes over.

use crate::cache::{CacheStats, ResultCache, ResultCachePolicy};
use crate::execute::{ExecutionBackend, ShotsBackend};
use qrcc_sim::compile::CompileStats;
use qrcc_sim::device::Device;
use std::sync::Arc;

/// One backend of a [`DeviceRegistry`]: a name for accounting, the backend
/// itself, and its relative shot cost.
pub struct RegisteredBackend {
    name: String,
    backend: Box<dyn ExecutionBackend + Send + Sync>,
    cost_per_shot: f64,
}

impl RegisteredBackend {
    /// The registration name (used in routing stats).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backend.
    pub fn backend(&self) -> &(dyn ExecutionBackend + Send + Sync) {
        self.backend.as_ref()
    }

    /// Relative cost of one shot on this backend (the router's load unit —
    /// a busy or expensive device gets a higher factor and receives
    /// proportionally less work).
    pub fn cost_per_shot(&self) -> f64 {
        self.cost_per_shot
    }

    /// The widest circuit this backend accepts, or `None` when unbounded.
    pub fn max_qubits(&self) -> Option<usize> {
        self.backend.max_qubits()
    }
}

impl std::fmt::Debug for RegisteredBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegisteredBackend")
            .field("name", &self.name)
            .field("max_qubits", &self.max_qubits())
            .field("cost_per_shot", &self.cost_per_shot)
            .finish()
    }
}

/// A set of heterogeneous [`ExecutionBackend`]s (different qubit counts,
/// noise models, shot costs) the [`Scheduler`](crate::schedule::Scheduler)
/// places fragment circuits on.
///
/// ```rust
/// use qrcc_core::execute::ExactBackend;
/// use qrcc_core::schedule::DeviceRegistry;
///
/// let mut registry = DeviceRegistry::new();
/// registry.register("big", ExactBackend::capped(3));
/// registry.register("small", ExactBackend::capped(2));
/// assert_eq!(registry.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DeviceRegistry {
    entries: Vec<RegisteredBackend>,
    /// Shot-aware result cache the dispatch layer consults before routing
    /// circuits to any of the registered backends. `None` (the default)
    /// executes everything.
    result_cache: Option<Arc<ResultCache>>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a backend under `name` with unit shot cost.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        backend: impl ExecutionBackend + Send + 'static,
    ) -> &mut Self {
        self.register_with_cost(name, backend, 1.0)
    }

    /// Registers a backend with an explicit relative shot cost.
    ///
    /// # Panics
    ///
    /// Panics if `cost_per_shot` is not finite and positive.
    pub fn register_with_cost(
        &mut self,
        name: impl Into<String>,
        backend: impl ExecutionBackend + Send + 'static,
        cost_per_shot: f64,
    ) -> &mut Self {
        assert!(
            cost_per_shot.is_finite() && cost_per_shot > 0.0,
            "cost per shot must be finite and positive"
        );
        self.entries.push(RegisteredBackend {
            name: name.into(),
            backend: Box::new(backend),
            cost_per_shot,
        });
        self
    }

    /// Convenience: registers a simulated [`Device`] as a [`ShotsBackend`]
    /// running `shots` shots per circuit by default (a scheduler with a
    /// global budget overrides the per-circuit count).
    pub fn register_device(
        &mut self,
        name: impl Into<String>,
        device: Device,
        shots: u64,
    ) -> &mut Self {
        self.register(name, ShotsBackend::new(device, shots))
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no backend is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered backends, in registration order.
    pub fn entries(&self) -> &[RegisteredBackend] {
        &self.entries
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Total circuits executed across all backends.
    pub fn total_executions(&self) -> u64 {
        self.entries.iter().map(|e| e.backend.executions()).sum()
    }

    /// Attaches a result cache built from `policy` (builder form). With
    /// `policy.enabled == false` this detaches any cache — the knob mirrors
    /// [`QrccConfig::result_cache`](crate::QrccConfig::result_cache), so a
    /// config-driven caller can pass its policy through unconditionally.
    /// Once attached, the [`Dispatcher`](crate::dispatch::Dispatcher)
    /// consults the cache before routing: full hits skip the backend (their
    /// allocated shots are simply not spent), delta hits execute only the
    /// shot top-up, and every fresh execution is written back.
    #[must_use]
    pub fn with_result_cache(mut self, policy: &ResultCachePolicy) -> Self {
        self.result_cache = policy.enabled.then(|| Arc::new(ResultCache::open(policy)));
        self
    }

    /// Attaches an existing (possibly shared) result cache.
    pub fn set_result_cache(&mut self, cache: Arc<ResultCache>) {
        self.result_cache = Some(cache);
    }

    /// The attached result cache, if any.
    pub fn result_cache(&self) -> Option<&Arc<ResultCache>> {
        self.result_cache.as_ref()
    }

    /// Counters of the attached result cache, or `None` when no cache is
    /// attached.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.result_cache.as_ref().map(|cache| cache.stats())
    }

    /// Merged kernel-compilation statistics across every registered backend
    /// running the compiled simulator path, or `None` when all backends
    /// interpret gate-by-gate.
    pub fn compile_stats(&self) -> Option<CompileStats> {
        let mut merged: Option<CompileStats> = None;
        for entry in &self.entries {
            if let Some(stats) = entry.backend.compile_stats() {
                merged.get_or_insert_with(CompileStats::default).merge(&stats);
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::ExactBackend;
    use qrcc_sim::device::DeviceConfig;

    #[test]
    fn registration_preserves_order_and_metadata() {
        let mut registry = DeviceRegistry::new();
        registry
            .register("wide", ExactBackend::new())
            .register_with_cost("narrow", ExactBackend::capped(2), 2.5)
            .register_device("noisy", Device::new(DeviceConfig::ideal(3)), 1000);
        assert_eq!(registry.names(), vec!["wide", "narrow", "noisy"]);
        assert_eq!(registry.entries()[0].max_qubits(), None);
        assert_eq!(registry.entries()[1].max_qubits(), Some(2));
        assert_eq!(registry.entries()[1].cost_per_shot(), 2.5);
        assert_eq!(registry.entries()[2].max_qubits(), Some(3));
        assert_eq!(registry.entries()[2].backend().shots_per_circuit(), Some(1000));
        assert_eq!(registry.total_executions(), 0);
    }

    #[test]
    #[should_panic(expected = "cost per shot")]
    fn zero_cost_is_rejected() {
        DeviceRegistry::new().register_with_cost("free", ExactBackend::new(), 0.0);
    }
}
