//! ShotQC-style shot allocation: split a global shot budget across the
//! deduplicated batch proportionally to each circuit's reconstruction
//! variance contribution.
//!
//! Every executed variant's distribution enters the reconstruction
//! multiplied by cut coefficients — the Eq. (3) attribution weights of its
//! wire-cut legs and the quasi-probability coefficients of its gate-cut
//! instances. A variant whose coefficients are large transmits its sampling
//! noise into the output amplified; giving it proportionally more of the
//! budget minimises the total variance at fixed cost (the ShotQC
//! observation, see PAPERS.md).

use crate::config::{SchedulePolicy, ShotAllocation};
use crate::execute::PreparedBatch;
use crate::fragment::{CutBasis, FragmentSet, InitState, VariantKey};
use crate::CoreError;

/// Error-slope magnitude of an initialisation leg: the L2 norm of the
/// Eq. (3) attribution coefficients the state's empirical distribution is
/// combined with. |0⟩/|1⟩ feed three components with weights (1, −1, −1)
/// (L2 = √3); |+⟩/|i⟩ feed one component scaled by 2.
fn init_magnitude(state: InitState) -> f64 {
    match state {
        InitState::Zero | InitState::One => 1.7320508075688772, // √3
        InitState::Plus | InitState::PlusI => 2.0,
    }
}

/// Error-slope magnitude of a measurement leg, as a function of the
/// measured bit's empirical probability: Z-basis runs serve the two
/// projector components `2·p(0)` / `2·p(1)` (slopes ∓2, L2 = 2√2), X/Y
/// serve one Pauli expectation `1 − 2·p(1)` (slope 2).
fn basis_magnitude(basis: CutBasis) -> f64 {
    match basis {
        CutBasis::Z => 2.0 * std::f64::consts::SQRT_2,
        CutBasis::X | CutBasis::Y => 2.0,
    }
}

/// The structural reconstruction-variance weight of one variant: the product
/// over its cut legs of the error-slope magnitudes its measured distribution
/// is folded with (wire init/measure attribution slopes, gate-cut instance
/// coefficients — the dominant lever, since `cos²θ` vs `sin²θ` instances can
/// differ by orders of magnitude). Multiplied by the caller-supplied
/// [`VariantRequest::weight`](crate::fragment::VariantRequest::weight)
/// during scheduling.
pub fn variant_weight(fragments: &FragmentSet, key: &VariantKey) -> f64 {
    let Some(fragment) = fragments.fragments.get(key.fragment) else {
        return 0.0;
    };
    let mut weight = 1.0;
    for &state in &key.variant.init_states {
        weight *= init_magnitude(state);
    }
    for &basis in &key.variant.cut_bases {
        weight *= basis_magnitude(basis);
    }
    for (role, &instance) in key.variant.gate_instances.iter().enumerate() {
        // malformed keys (unknown role, instance outside 1..=6) weigh
        // nothing rather than panicking — consistent with the unknown-
        // fragment guard above
        let Some(&(cut, _)) = fragment.gate_cut_roles.get(role) else {
            return 0.0;
        };
        if !(1..=6).contains(&instance) {
            return 0.0;
        }
        let Some(form) = fragments.gate_cut_forms.get(cut) else {
            return 0.0;
        };
        weight *= form.coefficients()[instance - 1].abs();
    }
    weight
}

/// Splits a global shot budget across a deduplicated batch.
#[derive(Debug, Clone, Copy)]
pub struct ShotAllocator {
    policy: SchedulePolicy,
}

impl ShotAllocator {
    /// An allocator following `policy`.
    pub fn new(policy: SchedulePolicy) -> Self {
        ShotAllocator { policy }
    }

    /// The policy this allocator runs with.
    pub fn policy(&self) -> &SchedulePolicy {
        &self.policy
    }

    /// Per deduplicated circuit, the variance weight of the variant keys it
    /// serves (`structural weight × request weight` each). A circuit's
    /// sampling noise enters every reconstruction term its keys appear in as
    /// an independent contribution, so key weights combine in quadrature —
    /// the allocation that minimises `Σ w_k² / shots` at a fixed budget is
    /// `shots ∝ √(Σ w_k²)`.
    pub(crate) fn circuit_weights(
        &self,
        fragments: &FragmentSet,
        batch: &PreparedBatch<'_>,
    ) -> Vec<f64> {
        let mut weights = vec![0.0f64; batch.circuits.len()];
        for ((key, &circuit), &request_weight) in
            batch.unique_keys.iter().zip(&batch.circuit_of_key).zip(&batch.key_weight)
        {
            weights[circuit] += (variant_weight(fragments, key) * request_weight).powi(2);
        }
        weights.iter_mut().for_each(|w| *w = w.sqrt());
        weights
    }

    /// Splits the policy's budget across `weights.len()` circuits:
    /// `Ok(None)` when no budget is set (backends keep their own defaults),
    /// otherwise a per-circuit shot vector summing exactly to the budget,
    /// with every circuit receiving at least `min_shots`.
    ///
    /// Rounding is deterministic largest-remainder, so equal inputs always
    /// produce equal splits.
    ///
    /// # Errors
    ///
    /// [`CoreError::ShotBudgetTooSmall`] when the budget cannot cover
    /// `circuits × min_shots`.
    pub(crate) fn allocate(&self, weights: &[f64]) -> Result<Option<Vec<u64>>, CoreError> {
        let Some(budget) = self.policy.shot_budget else {
            return Ok(None);
        };
        let n = weights.len() as u64;
        if n == 0 {
            return Ok(Some(Vec::new()));
        }
        let min = self.policy.min_shots.max(1);
        let floor_total = n * min;
        if budget < floor_total {
            return Err(CoreError::ShotBudgetTooSmall { budget, needed: floor_total });
        }
        let spare = budget - floor_total;
        let total_weight: f64 = weights.iter().sum();
        let proportional = match self.policy.allocation {
            ShotAllocation::VarianceWeighted if total_weight > 0.0 => {
                weights.iter().map(|w| spare as f64 * w / total_weight).collect::<Vec<f64>>()
            }
            // uniform split (also the zero-weight fallback)
            _ => vec![spare as f64 / n as f64; weights.len()],
        };
        let mut shots: Vec<u64> = proportional.iter().map(|&t| min + t.floor() as u64).collect();
        let assigned: u64 = shots.iter().sum();
        // largest-remainder rounding: hand the leftover shots to the largest
        // fractional parts (ties broken by index) so the split is exact and
        // deterministic
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = proportional[a].fract();
            let fb = proportional[b].fract();
            fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        let mut leftover = budget - assigned;
        for &index in &order {
            if leftover == 0 {
                break;
            }
            shots[index] += 1;
            leftover -= 1;
        }
        debug_assert_eq!(shots.iter().sum::<u64>(), budget);
        Ok(Some(shots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulePolicy;

    fn allocate(policy: SchedulePolicy, weights: &[f64]) -> Vec<u64> {
        ShotAllocator::new(policy).allocate(weights).unwrap().unwrap()
    }

    #[test]
    fn uniform_allocation_splits_evenly_with_exact_total() {
        let policy = SchedulePolicy::with_budget(10).with_allocation(ShotAllocation::Uniform);
        let shots = allocate(policy, &[5.0, 1.0, 1.0]);
        assert_eq!(shots.iter().sum::<u64>(), 10);
        assert!(shots.iter().all(|&s| s == 3 || s == 4), "near-even split: {shots:?}");
    }

    #[test]
    fn variance_allocation_follows_weights() {
        let policy = SchedulePolicy::with_budget(1000);
        let shots = allocate(policy, &[6.0, 3.0, 1.0]);
        assert_eq!(shots.iter().sum::<u64>(), 1000);
        assert!(shots[0] > shots[1] && shots[1] > shots[2], "monotone in weight: {shots:?}");
        // proportionality within rounding error
        assert!((shots[0] as f64 - 600.0).abs() < 3.0);
    }

    #[test]
    fn min_shots_floor_is_respected() {
        let policy = SchedulePolicy::with_budget(100).with_min_shots(10);
        let shots = allocate(policy, &[1000.0, 0.0, 0.0]);
        assert_eq!(shots.iter().sum::<u64>(), 100);
        assert!(shots[1] >= 10 && shots[2] >= 10, "zero-weight circuits keep the floor");
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let policy = SchedulePolicy::with_budget(9);
        let shots = allocate(policy, &[0.0, 0.0, 0.0]);
        assert_eq!(shots, vec![3, 3, 3]);
    }

    #[test]
    fn too_small_budget_is_a_typed_error() {
        let allocator = ShotAllocator::new(SchedulePolicy::with_budget(5).with_min_shots(10));
        assert!(matches!(
            allocator.allocate(&[1.0, 1.0]),
            Err(CoreError::ShotBudgetTooSmall { budget: 5, needed: 20 })
        ));
    }

    #[test]
    fn no_budget_means_no_allocation() {
        let allocator = ShotAllocator::new(SchedulePolicy::default());
        assert!(allocator.allocate(&[1.0, 2.0]).unwrap().is_none());
    }
}
