//! The execution scheduler: multi-device routing, variance-aware shot
//! allocation, and chunked streaming between the batch-first execution API
//! and the reconstruction engine.
//!
//! [`execute_requests`](crate::execute::execute_requests) sends the whole
//! deduplicated batch to one backend and hands reconstruction a complete
//! [`ExecutionResults`]. The [`Scheduler`] generalises both ends of that
//! contract:
//!
//! * **Routing** — a [`DeviceRegistry`] holds heterogeneous
//!   [`ExecutionBackend`](crate::execute::ExecutionBackend)s (different
//!   qubit counts, noise models, shot costs). Each deduplicated circuit is
//!   placed on a compatible backend (widest circuits first, least projected
//!   load, deterministic), backends run their sub-batches **concurrently**,
//!   and the partial results merge by structural
//!   [`VariantKey`](crate::fragment::VariantKey).
//! * **Shot allocation** — a [`ShotAllocator`] splits a global shot budget
//!   across the batch proportionally to each circuit's
//!   reconstruction-variance weight (the magnitudes of the cut coefficients
//!   its distribution is folded with — ShotQC-style), instead of spending
//!   the budget uniformly.
//! * **Chunked streaming** — [`Scheduler::execute_chunked`] emits
//!   [`ExecutionResults`] in chunks as they complete, so a
//!   [`ProbabilityAccumulator`](crate::reconstruct::ProbabilityAccumulator)
//!   can fold fragment tensors while later chunks are still executing
//!   (see [`QrccPipeline::execute_streaming`]).
//!
//! [`QrccPipeline::execute_streaming`]: crate::pipeline::QrccPipeline::execute_streaming
//!
//! This module is the seam a future async/remote dispatcher plugs into: the
//! routing table, allocation and chunk protocol are all synchronous-agnostic.

mod allocator;
mod registry;
mod router;

pub use allocator::{variant_weight, ShotAllocator};
pub use registry::{DeviceRegistry, RegisteredBackend};

pub use crate::config::{SchedulePolicy, ShotAllocation};

use crate::execute::{prepare_batch, BackendUsage, ExecutionResults, PreparedBatch};
use crate::fragment::{FragmentSet, VariantRequest};
use crate::CoreError;
use qrcc_circuit::Circuit;

/// What one scheduled execution did: per-backend usage, shot totals and
/// chunk count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScheduleReport {
    /// Per-backend circuits routed and shots spent, in registry order of
    /// first use.
    pub backends: Vec<BackendUsage>,
    /// Total shots spent across all backends. Exact backends ignore shot
    /// allocations and spend none, so an exact-only registry reports 0 even
    /// under a budget.
    pub total_shots: u64,
    /// Number of deduplicated circuits executed.
    pub circuits: u64,
    /// Number of chunks the batch was streamed in.
    pub chunks: usize,
    /// The allocation mode that split the budget.
    pub allocation: ShotAllocation,
}

/// Routes a deduplicated batch across a [`DeviceRegistry`], splits the shot
/// budget, and executes backends concurrently — optionally streaming the
/// results in chunks.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler<'r> {
    registry: &'r DeviceRegistry,
    policy: SchedulePolicy,
}

impl<'r> Scheduler<'r> {
    /// A scheduler over `registry` following `policy`.
    pub fn new(registry: &'r DeviceRegistry, policy: SchedulePolicy) -> Self {
        Scheduler { registry, policy }
    }

    /// A scheduler following the [`SchedulePolicy`] of a
    /// [`QrccConfig`](crate::QrccConfig).
    pub fn from_config(registry: &'r DeviceRegistry, config: &crate::QrccConfig) -> Self {
        Scheduler::new(registry, config.schedule)
    }

    /// The policy this scheduler runs with.
    pub fn policy(&self) -> &SchedulePolicy {
        &self.policy
    }

    /// The registry this scheduler routes over.
    pub fn registry(&self) -> &'r DeviceRegistry {
        self.registry
    }

    /// Executes `requests` across the registry as one scheduled run and
    /// returns the merged results (routing stats are recorded in
    /// [`ExecutionResults::routing`]).
    ///
    /// # Errors
    ///
    /// See [`Scheduler::execute_chunked`].
    pub fn execute(
        &self,
        fragments: &FragmentSet,
        requests: &[VariantRequest],
    ) -> Result<ExecutionResults, CoreError> {
        Ok(self.execute_with_report(fragments, requests)?.0)
    }

    /// Executes `requests` across the registry and returns the merged
    /// results along with the [`ScheduleReport`].
    ///
    /// # Errors
    ///
    /// See [`Scheduler::execute_chunked`].
    pub fn execute_with_report(
        &self,
        fragments: &FragmentSet,
        requests: &[VariantRequest],
    ) -> Result<(ExecutionResults, ScheduleReport), CoreError> {
        let mut merged = ExecutionResults::default();
        let report = self.execute_chunked(fragments, requests, |chunk| {
            merged.extend(chunk);
            Ok(())
        })?;
        Ok((merged, report))
    }

    /// The full scheduled pipeline, streaming results chunk by chunk:
    /// deduplicate (`VariantKey` + structural circuit dedup), allocate the
    /// shot budget over the whole batch, then for each chunk of circuits
    /// route across the registry, run the routed backends **concurrently**,
    /// and hand the chunk's [`ExecutionResults`] to `sink` before the next
    /// chunk starts. `sink` typically folds into a
    /// [`ProbabilityAccumulator`](crate::reconstruct::ProbabilityAccumulator)
    /// or forwards over a channel so reconstruction overlaps execution.
    ///
    /// The chunk size comes from [`SchedulePolicy::chunk_size`] (`0` = one
    /// chunk). Accounting: each chunk's `requested()` counts the original
    /// (pre-dedup) requests its keys collapsed from, so summing over chunks
    /// reproduces the batch totals.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidCutSolution`] for keys that do not match
    ///   `fragments`.
    /// * [`CoreError::NoCompatibleBackend`] when a circuit fits no
    ///   registered backend.
    /// * [`CoreError::ShotBudgetTooSmall`] when the budget cannot cover the
    ///   per-circuit minimum.
    /// * The first backend error of any chunk, and any error `sink` returns.
    pub fn execute_chunked(
        &self,
        fragments: &FragmentSet,
        requests: &[VariantRequest],
        mut sink: impl FnMut(ExecutionResults) -> Result<(), CoreError>,
    ) -> Result<ScheduleReport, CoreError> {
        let batch = prepare_batch(fragments, requests)?;
        let allocator = ShotAllocator::new(self.policy);
        let weights = allocator.circuit_weights(fragments, &batch);
        let shots = allocator.allocate(&weights)?;

        let total = batch.circuits.len();
        let chunk_size =
            if self.policy.chunk_size == 0 { total.max(1) } else { self.policy.chunk_size };
        let mut report = ScheduleReport {
            allocation: self.policy.allocation,
            circuits: total as u64,
            ..ScheduleReport::default()
        };

        let mut start = 0;
        while start < total || (start == 0 && total == 0) {
            let end = (start + chunk_size).min(total);
            let chunk = self.run_chunk(&batch, shots.as_deref(), start, end)?;
            for usage in chunk.routing() {
                report.total_shots += usage.shots;
                usage.clone().merge_into(&mut report.backends);
            }
            report.chunks += 1;
            sink(chunk)?;
            if total == 0 {
                break;
            }
            start = end;
        }
        Ok(report)
    }

    /// Routes and executes the circuits `start..end` of the batch as one
    /// concurrent multi-backend chunk.
    fn run_chunk(
        &self,
        batch: &PreparedBatch<'_>,
        shots: Option<&[u64]>,
        start: usize,
        end: usize,
    ) -> Result<ExecutionResults, CoreError> {
        let chunk_circuits = &batch.circuits[start..end];
        let chunk_shots = shots.map(|s| &s[start..end]);
        let assignment = router::route(self.registry, chunk_circuits, chunk_shots)?;

        // group chunk-local circuit indices per backend entry
        let entries = self.registry.entries();
        let mut per_entry: Vec<Vec<usize>> = vec![Vec::new(); entries.len()];
        for (local, &entry) in assignment.iter().enumerate() {
            per_entry[entry].push(local);
        }

        // run every backend's sub-batch concurrently
        let mut outcomes: Vec<Option<Result<Vec<f64>, CoreError>>> =
            (0..chunk_circuits.len()).map(|_| None).collect();
        /// One backend's sub-batch outcomes, tagged with its registry index.
        type SubBatchResults = (usize, Vec<Result<Vec<f64>, CoreError>>);
        let sub_results: Vec<SubBatchResults> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_entry
                .iter()
                .enumerate()
                .filter(|(_, locals)| !locals.is_empty())
                .map(|(entry_index, locals)| {
                    let entry = &entries[entry_index];
                    let circuits: Vec<Circuit> =
                        locals.iter().map(|&l| chunk_circuits[l].clone()).collect();
                    let sub_shots: Option<Vec<u64>> =
                        chunk_shots.map(|s| locals.iter().map(|&l| s[l]).collect());
                    scope.spawn(move || {
                        let results = match &sub_shots {
                            Some(s) => entry.backend().run_batch_with_shots(&circuits, s),
                            None => entry.backend().run_batch(&circuits),
                        };
                        (entry_index, results)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("backend thread panicked"))
                .collect()
        });

        let mut usages: Vec<BackendUsage> = Vec::new();
        for (entry_index, results) in sub_results {
            let locals = &per_entry[entry_index];
            if results.len() != locals.len() {
                return Err(CoreError::InvalidCutSolution {
                    reason: format!(
                        "backend '{}' returned {} results for a sub-batch of {}",
                        entries[entry_index].name(),
                        results.len(),
                        locals.len()
                    ),
                });
            }
            // an exact backend ignores the allocated shot counts entirely
            // (its default `run_batch_with_shots` delegates to `run_batch`),
            // so it spends zero shots no matter what the allocator assigned
            let shots_spent: u64 =
                match (entries[entry_index].backend().shots_per_circuit(), chunk_shots) {
                    (None, _) => 0,
                    (Some(_), Some(s)) => locals.iter().map(|&l| s[l]).sum(),
                    (Some(per), None) => per * locals.len() as u64,
                };
            usages.push(BackendUsage {
                backend: entries[entry_index].name().to_string(),
                circuits: locals.len() as u64,
                shots: shots_spent,
            });
            for (&local, result) in locals.iter().zip(results) {
                outcomes[local] = Some(result);
            }
        }

        // assemble the chunk's ExecutionResults: the keys whose circuits
        // live in [start, end)
        let mut requested = 0u64;
        let mut distributions: Vec<(usize, &crate::fragment::VariantKey)> = Vec::new();
        for ((key, &circuit), &count) in
            batch.unique_keys.iter().zip(&batch.circuit_of_key).zip(&batch.key_count)
        {
            if (start..end).contains(&circuit) {
                requested += count;
                distributions.push((circuit - start, key));
            }
        }
        let mut chunk = ExecutionResults::new_accounted(requested, chunk_circuits.len() as u64);
        let resolved: Vec<Vec<f64>> = outcomes
            .into_iter()
            .map(|slot| slot.expect("every routed circuit has an outcome"))
            .collect::<Result<_, _>>()?;
        for (local, key) in distributions {
            chunk.insert((*key).clone(), resolved[local].clone());
        }
        for usage in usages {
            chunk.record_usage(usage);
        }
        Ok(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::{execute_requests, ExactBackend};
    use crate::planner::CutPlanner;
    use crate::reconstruct::ProbabilityReconstructor;
    use crate::QrccConfig;
    use qrcc_circuit::Circuit;
    use std::time::Duration;

    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
            c.ry(0.2 * (q as f64 + 1.0), q + 1);
        }
        c
    }

    fn fragments_for(circuit: &Circuit, device: usize) -> FragmentSet {
        let config =
            QrccConfig::new(device).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(circuit).unwrap();
        FragmentSet::from_plan(&plan).unwrap()
    }

    #[test]
    fn scheduled_execution_matches_single_backend() {
        let circuit = chain(5);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();

        let single = ExactBackend::new();
        let reference = execute_requests(&fragments, &requests, &single).unwrap();

        let mut registry = DeviceRegistry::new();
        registry.register("big", ExactBackend::capped(3));
        registry.register("small", ExactBackend::capped(2));
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default());
        let (scheduled, report) = scheduler.execute_with_report(&fragments, &requests).unwrap();

        assert_eq!(scheduled.requested(), reference.requested());
        assert_eq!(scheduled.executed(), reference.executed());
        assert_eq!(scheduled.unique_variants(), reference.unique_variants());
        assert_eq!(report.circuits, reference.executed());
        assert_eq!(report.chunks, 1);
        for (key, dist) in reference.iter() {
            let routed = scheduled.distribution(key).unwrap();
            for (a, b) in dist.iter().zip(routed) {
                assert!((a - b).abs() < 1e-12, "exact backends must agree bit-for-bit");
            }
        }
    }

    #[test]
    fn chunked_execution_covers_every_key_exactly_once() {
        let circuit = chain(5);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let mut registry = DeviceRegistry::new();
        registry.register("only", ExactBackend::new());
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default().with_chunk_size(3));
        let mut merged = ExecutionResults::default();
        let mut chunks = 0usize;
        let report = scheduler
            .execute_chunked(&fragments, &requests, |chunk| {
                assert!(!chunk.is_empty() || chunk.executed() == 0);
                chunks += 1;
                merged.extend(chunk);
                Ok(())
            })
            .unwrap();
        assert_eq!(report.chunks, chunks);
        assert!(chunks > 1, "a chunk size of 3 must split this batch");
        assert_eq!(merged.requested(), requests.len() as u64);
        let reference = execute_requests(&fragments, &requests, &ExactBackend::new()).unwrap();
        assert_eq!(merged.unique_variants(), reference.unique_variants());
        assert_eq!(merged.executed(), reference.executed());
    }

    #[test]
    fn budget_is_spent_exactly_and_reported() {
        let circuit = chain(5);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let mut registry = DeviceRegistry::new();
        registry.register_device(
            "dev3",
            qrcc_sim::device::Device::new(qrcc_sim::device::DeviceConfig::ideal(3).with_seed(7)),
            1024,
        );
        let scheduler =
            Scheduler::new(&registry, SchedulePolicy::with_budget(50_000).with_min_shots(8));
        let (results, report) = scheduler.execute_with_report(&fragments, &requests).unwrap();
        assert_eq!(report.total_shots, 50_000, "the whole budget is spent");
        assert_eq!(results.shots_spent(), 50_000);
        assert_eq!(report.backends.len(), 1);
        assert_eq!(report.backends[0].backend, "dev3");
    }

    #[test]
    fn empty_registry_cannot_place_anything() {
        let circuit = chain(4);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let registry = DeviceRegistry::new();
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default());
        assert!(matches!(
            scheduler.execute(&fragments, &requests),
            Err(CoreError::NoCompatibleBackend { backends: 0, .. })
        ));
    }

    #[test]
    fn empty_request_list_schedules_to_an_empty_result() {
        let circuit = chain(4);
        let fragments = fragments_for(&circuit, 3);
        let mut registry = DeviceRegistry::new();
        registry.register("only", ExactBackend::new());
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default());
        let (results, report) = scheduler.execute_with_report(&fragments, &[]).unwrap();
        assert!(results.is_empty());
        assert_eq!(report.circuits, 0);
    }
}
