//! The execution scheduler: multi-device routing, variance-aware shot
//! allocation, and fault-tolerant chunked dispatch between the batch-first
//! execution API and the reconstruction engine.
//!
//! Execution follows the six-phase **enumerate → dedup → route → dispatch →
//! fold → contract** protocol (see [`crate::execute`] for the full
//! walkthrough). [`execute_requests`](crate::execute::execute_requests)
//! collapses phases 3–4 by sending the whole deduplicated batch to one
//! backend; the [`Scheduler`] runs them in full:
//!
//! * **Route** — a [`DeviceRegistry`] holds heterogeneous
//!   [`ExecutionBackend`](crate::execute::ExecutionBackend)s (different
//!   qubit counts, noise models, shot costs). Each deduplicated circuit is
//!   placed on a compatible backend (widest circuits first, least projected
//!   load, deterministic), and a [`ShotAllocator`] splits a global shot
//!   budget across the batch proportionally to each circuit's
//!   reconstruction-variance weight (the magnitudes of the cut coefficients
//!   its distribution is folded with — ShotQC-style), instead of spending
//!   the budget uniformly.
//! * **Dispatch** — the [`dispatch`](crate::dispatch) event loop drives the
//!   routed sub-batches through one worker thread per backend: chunks flow
//!   under a **bounded in-flight window**
//!   ([`SchedulePolicy::max_in_flight_chunks`]) so a slow consumer throttles
//!   dispatch, circuits that fail on a backend are **retried** on another
//!   compatible backend with the failer excluded
//!   ([`SchedulePolicy::max_retries`]), and completed chunks are delivered
//!   in order, merging deterministically by structural
//!   [`VariantKey`](crate::fragment::VariantKey).
//! * **Fold** — [`Scheduler::execute_chunked`] hands each delivered
//!   [`ExecutionResults`] chunk to a sink, so a
//!   [`ProbabilityAccumulator`](crate::reconstruct::ProbabilityAccumulator)
//!   or [`ExpectationAccumulator`](crate::reconstruct::ExpectationAccumulator)
//!   can fold fragment tensors while later chunks are still executing (see
//!   [`QrccPipeline::execute_streaming`]).
//!
//! [`QrccPipeline::execute_streaming`]: crate::pipeline::QrccPipeline::execute_streaming
//! [`SchedulePolicy::max_in_flight_chunks`]: crate::SchedulePolicy::max_in_flight_chunks
//! [`SchedulePolicy::max_retries`]: crate::SchedulePolicy::max_retries

mod allocator;
mod registry;
pub(crate) mod router;

pub use allocator::{variant_weight, ShotAllocator};
pub use registry::{DeviceRegistry, RegisteredBackend};

pub use crate::config::{SchedulePolicy, ShotAllocation};

use crate::dispatch::{DispatchStats, Dispatcher};
use crate::execute::{prepare_batch, BackendUsage, ExecutionResults};
use crate::fragment::{FragmentSet, VariantRequest};
use crate::CoreError;

/// What one scheduled execution did: per-backend usage, shot totals, chunk
/// count, and the dispatch-layer lifecycle telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScheduleReport {
    /// Per-backend circuits routed and shots spent, in registry order of
    /// first use.
    pub backends: Vec<BackendUsage>,
    /// Total shots spent across all backends. Exact backends ignore shot
    /// allocations and spend none, so an exact-only registry reports 0 even
    /// under a budget.
    pub total_shots: u64,
    /// Number of deduplicated circuits executed.
    pub circuits: u64,
    /// Number of chunks the batch was streamed in.
    pub chunks: usize,
    /// The allocation mode that split the budget.
    pub allocation: ShotAllocation,
    /// Dispatch lifecycle telemetry: jobs dispatched / retried / requeued,
    /// observed in-flight window, and per-phase wall-clock.
    pub dispatch: DispatchStats,
}

/// Routes a deduplicated batch across a [`DeviceRegistry`], splits the shot
/// budget, and executes backends concurrently — optionally streaming the
/// results in chunks.
#[derive(Debug, Clone, Copy)]
pub struct Scheduler<'r> {
    registry: &'r DeviceRegistry,
    policy: SchedulePolicy,
}

impl<'r> Scheduler<'r> {
    /// A scheduler over `registry` following `policy`.
    pub fn new(registry: &'r DeviceRegistry, policy: SchedulePolicy) -> Self {
        Scheduler { registry, policy }
    }

    /// A scheduler following the [`SchedulePolicy`] of a
    /// [`QrccConfig`](crate::QrccConfig).
    pub fn from_config(registry: &'r DeviceRegistry, config: &crate::QrccConfig) -> Self {
        Scheduler::new(registry, config.schedule)
    }

    /// The policy this scheduler runs with.
    pub fn policy(&self) -> &SchedulePolicy {
        &self.policy
    }

    /// The registry this scheduler routes over.
    pub fn registry(&self) -> &'r DeviceRegistry {
        self.registry
    }

    /// Executes `requests` across the registry as one scheduled run and
    /// returns the merged results (routing stats are recorded in
    /// [`ExecutionResults::routing`]).
    ///
    /// # Errors
    ///
    /// See [`Scheduler::execute_chunked`].
    pub fn execute(
        &self,
        fragments: &FragmentSet,
        requests: &[VariantRequest],
    ) -> Result<ExecutionResults, CoreError> {
        Ok(self.execute_with_report(fragments, requests)?.0)
    }

    /// Executes `requests` across the registry and returns the merged
    /// results along with the [`ScheduleReport`].
    ///
    /// # Errors
    ///
    /// See [`Scheduler::execute_chunked`].
    pub fn execute_with_report(
        &self,
        fragments: &FragmentSet,
        requests: &[VariantRequest],
    ) -> Result<(ExecutionResults, ScheduleReport), CoreError> {
        let mut merged = ExecutionResults::default();
        let report = self.execute_chunked(fragments, requests, |chunk| {
            merged.extend(chunk);
            Ok(())
        })?;
        // Streamed chunks carry no kernel stats (they would double-count the
        // cumulative cache aggregates); the merged batch records one snapshot
        // across the registry instead. The result-cache counters are likewise
        // cumulative, so the merged batch keeps the final snapshot.
        merged.set_kernel_stats(self.registry.compile_stats());
        merged.set_cache_stats(self.registry.cache_stats());
        Ok((merged, report))
    }

    /// The full scheduled pipeline, streaming results chunk by chunk:
    /// deduplicate (`VariantKey` + structural circuit dedup), allocate the
    /// shot budget over the whole batch, then hand the batch to the
    /// [`Dispatcher`]: each chunk of circuits is routed across the registry
    /// and driven through one worker thread per backend, with at most
    /// [`SchedulePolicy::max_in_flight_chunks`] chunks dispatched but not
    /// yet delivered (a slow `sink` exerts backpressure on dispatch) and
    /// failed circuits re-routed to another compatible backend up to
    /// [`SchedulePolicy::max_retries`] times. Chunks reach `sink` strictly
    /// in order; `sink` typically folds into a
    /// [`ProbabilityAccumulator`](crate::reconstruct::ProbabilityAccumulator)
    /// or forwards over a channel so reconstruction overlaps execution.
    ///
    /// The chunk size comes from [`SchedulePolicy::chunk_size`] (`0` = one
    /// chunk). Accounting: each chunk's `requested()` counts the original
    /// (pre-dedup) requests its keys collapsed from, so summing over chunks
    /// reproduces the batch totals, and every circuit's allocated shots are
    /// spent exactly once — on the backend where it finally succeeded.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidCutSolution`] for keys that do not match
    ///   `fragments`.
    /// * [`CoreError::NoCompatibleBackend`] when a circuit fits no
    ///   registered backend.
    /// * [`CoreError::ShotBudgetTooSmall`] when the budget cannot cover the
    ///   per-circuit minimum.
    /// * [`CoreError::RetriesExhausted`] when a circuit keeps failing past
    ///   the retry budget (the first backend error, unwrapped, when
    ///   [`SchedulePolicy::max_retries`] is 0), and any error `sink`
    ///   returns.
    pub fn execute_chunked(
        &self,
        fragments: &FragmentSet,
        requests: &[VariantRequest],
        mut sink: impl FnMut(ExecutionResults) -> Result<(), CoreError>,
    ) -> Result<ScheduleReport, CoreError> {
        let batch = {
            let _span = crate::obs::tracer().span("phase.dedup");
            prepare_batch(fragments, requests)?
        };
        let allocator = ShotAllocator::new(self.policy);
        let weights = allocator.circuit_weights(fragments, &batch);
        let shots = allocator.allocate(&weights)?;

        let mut report = ScheduleReport {
            allocation: self.policy.allocation,
            circuits: batch.circuits.len() as u64,
            ..ScheduleReport::default()
        };
        let dispatcher = Dispatcher::new(self.registry, self.policy);
        let stats = dispatcher.run_batch(&batch, shots.as_deref(), |chunk| {
            for usage in chunk.routing() {
                report.total_shots += usage.shots;
                usage.clone().merge_into(&mut report.backends);
            }
            report.chunks += 1;
            sink(chunk)
        })?;
        report.dispatch = stats;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::{execute_requests, ExactBackend};
    use crate::planner::CutPlanner;
    use crate::reconstruct::ProbabilityReconstructor;
    use crate::QrccConfig;
    use qrcc_circuit::Circuit;
    use std::time::Duration;

    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
            c.ry(0.2 * (q as f64 + 1.0), q + 1);
        }
        c
    }

    fn fragments_for(circuit: &Circuit, device: usize) -> FragmentSet {
        let config =
            QrccConfig::new(device).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(circuit).unwrap();
        FragmentSet::from_plan(&plan).unwrap()
    }

    #[test]
    fn scheduled_execution_matches_single_backend() {
        let circuit = chain(5);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();

        let single = ExactBackend::new();
        let reference = execute_requests(&fragments, &requests, &single).unwrap();

        let mut registry = DeviceRegistry::new();
        registry.register("big", ExactBackend::capped(3));
        registry.register("small", ExactBackend::capped(2));
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default());
        let (scheduled, report) = scheduler.execute_with_report(&fragments, &requests).unwrap();

        assert_eq!(scheduled.requested(), reference.requested());
        assert_eq!(scheduled.executed(), reference.executed());
        assert_eq!(scheduled.unique_variants(), reference.unique_variants());
        assert_eq!(report.circuits, reference.executed());
        assert_eq!(report.chunks, 1);
        for (key, dist) in reference.iter() {
            let routed = scheduled.distribution(key).unwrap();
            for (a, b) in dist.iter().zip(routed) {
                assert!((a - b).abs() < 1e-12, "exact backends must agree bit-for-bit");
            }
        }
    }

    #[test]
    fn chunked_execution_covers_every_key_exactly_once() {
        let circuit = chain(5);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let mut registry = DeviceRegistry::new();
        registry.register("only", ExactBackend::new());
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default().with_chunk_size(3));
        let mut merged = ExecutionResults::default();
        let mut chunks = 0usize;
        let report = scheduler
            .execute_chunked(&fragments, &requests, |chunk| {
                assert!(!chunk.is_empty() || chunk.executed() == 0);
                chunks += 1;
                merged.extend(chunk);
                Ok(())
            })
            .unwrap();
        assert_eq!(report.chunks, chunks);
        assert!(chunks > 1, "a chunk size of 3 must split this batch");
        assert_eq!(merged.requested(), requests.len() as u64);
        let reference = execute_requests(&fragments, &requests, &ExactBackend::new()).unwrap();
        assert_eq!(merged.unique_variants(), reference.unique_variants());
        assert_eq!(merged.executed(), reference.executed());
    }

    #[test]
    fn budget_is_spent_exactly_and_reported() {
        let circuit = chain(5);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let mut registry = DeviceRegistry::new();
        registry.register_device(
            "dev3",
            qrcc_sim::device::Device::new(qrcc_sim::device::DeviceConfig::ideal(3).with_seed(7)),
            1024,
        );
        let scheduler =
            Scheduler::new(&registry, SchedulePolicy::with_budget(50_000).with_min_shots(8));
        let (results, report) = scheduler.execute_with_report(&fragments, &requests).unwrap();
        assert_eq!(report.total_shots, 50_000, "the whole budget is spent");
        assert_eq!(results.shots_spent(), 50_000);
        assert_eq!(report.backends.len(), 1);
        assert_eq!(report.backends[0].backend, "dev3");
    }

    #[test]
    fn empty_registry_cannot_place_anything() {
        let circuit = chain(4);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let registry = DeviceRegistry::new();
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default());
        assert!(matches!(
            scheduler.execute(&fragments, &requests),
            Err(CoreError::NoCompatibleBackend { backends: 0, .. })
        ));
    }

    #[test]
    fn transient_failures_are_retried_and_counted() {
        use crate::dispatch::FlakyBackend;
        let circuit = chain(5);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let reference = execute_requests(&fragments, &requests, &ExactBackend::new()).unwrap();

        // one flaky device (every circuit drops once) plus a healthy one
        let mut registry = DeviceRegistry::new();
        registry.register("flaky", FlakyBackend::transient(ExactBackend::capped(3), 11, 1.0));
        registry.register("healthy", ExactBackend::capped(3));
        let scheduler = Scheduler::new(
            &registry,
            SchedulePolicy::default().with_chunk_size(2).with_max_retries(3),
        );
        let (results, report) = scheduler.execute_with_report(&fragments, &requests).unwrap();

        assert_eq!(results.unique_variants(), reference.unique_variants());
        for (key, dist) in reference.iter() {
            let routed = results.distribution(key).unwrap();
            for (a, b) in dist.iter().zip(routed) {
                assert!((a - b).abs() < 1e-12, "retried execution must stay exact");
            }
        }
        assert!(report.dispatch.failures > 0, "the flaky device must have failed work");
        assert_eq!(report.dispatch.jobs_retried, report.dispatch.failures);
        assert_eq!(results.failures(), report.dispatch.failures);
        assert!(results.retries() > 0, "retried circuits must be counted on their rescuer");
        let flaky = report.backends.iter().find(|u| u.backend == "flaky").unwrap();
        assert!(flaky.failures > 0);
    }

    #[test]
    fn in_flight_window_is_respected_and_observed() {
        let circuit = chain(6);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let mut registry = DeviceRegistry::new();
        registry.register("only", ExactBackend::new());
        for window in [1usize, 2, 3] {
            let policy =
                SchedulePolicy::default().with_chunk_size(1).with_max_in_flight_chunks(window);
            let scheduler = Scheduler::new(&registry, policy);
            let (_, report) = scheduler.execute_with_report(&fragments, &requests).unwrap();
            assert!(report.chunks > window, "enough chunks to fill the window");
            assert!(
                report.dispatch.max_in_flight_chunks <= window,
                "window {window} exceeded: {}",
                report.dispatch.max_in_flight_chunks
            );
        }
    }

    #[test]
    fn exhausted_retries_surface_as_a_typed_error() {
        use crate::dispatch::FlakyBackend;
        let circuit = chain(4);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let mut registry = DeviceRegistry::new();
        registry.register("dead-a", FlakyBackend::always_failing(ExactBackend::new()));
        registry.register("dead-b", FlakyBackend::always_failing(ExactBackend::new()));
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default().with_max_retries(2));
        match scheduler.execute(&fragments, &requests) {
            Err(CoreError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 3, "initial attempt plus two retries");
                assert!(matches!(*last, CoreError::BackendUnavailable { .. }));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn panicking_backend_is_contained_and_its_work_is_rescued() {
        // The old scoped-thread loop propagated a backend panic (killing the
        // run); a dead worker must not hang the event loop either. The
        // dispatcher converts the panic into a per-circuit failure and
        // re-routes the work to the healthy device.
        struct PanickingBackend;
        impl crate::execute::ExecutionBackend for PanickingBackend {
            fn run_one(&self, _: &Circuit) -> Result<Vec<f64>, CoreError> {
                panic!("device firmware bug")
            }
            fn executions(&self) -> u64 {
                0
            }
        }

        let circuit = chain(4);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let reference = execute_requests(&fragments, &requests, &ExactBackend::new()).unwrap();

        let mut registry = DeviceRegistry::new();
        registry.register("panics", PanickingBackend);
        registry.register("healthy", ExactBackend::new());
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default().with_max_retries(2));
        let (results, report) = scheduler.execute_with_report(&fragments, &requests).unwrap();
        assert_eq!(results.unique_variants(), reference.unique_variants());
        assert!(report.dispatch.failures > 0, "the panic must be recorded as failures");

        // with no healthy fallback and no retries, the panic surfaces as a
        // typed error instead of hanging or aborting the process
        let mut lone = DeviceRegistry::new();
        lone.register("panics", PanickingBackend);
        let scheduler = Scheduler::new(&lone, SchedulePolicy::default().with_max_retries(0));
        match scheduler.execute(&fragments, &requests) {
            Err(CoreError::BackendUnavailable { reason, .. }) => {
                assert!(reason.contains("panicked"), "{reason}");
            }
            other => panic!("expected BackendUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn zero_retry_budget_propagates_the_first_error_unwrapped() {
        use crate::dispatch::FlakyBackend;
        let circuit = chain(4);
        let fragments = fragments_for(&circuit, 3);
        let requests = ProbabilityReconstructor::new().requests(&fragments).unwrap();
        let mut registry = DeviceRegistry::new();
        registry.register("dead", FlakyBackend::always_failing(ExactBackend::new()));
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default().with_max_retries(0));
        assert!(matches!(
            scheduler.execute(&fragments, &requests),
            Err(CoreError::BackendUnavailable { .. })
        ));
    }

    #[test]
    fn empty_request_list_schedules_to_an_empty_result() {
        let circuit = chain(4);
        let fragments = fragments_for(&circuit, 3);
        let mut registry = DeviceRegistry::new();
        registry.register("only", ExactBackend::new());
        let scheduler = Scheduler::new(&registry, SchedulePolicy::default());
        let (results, report) = scheduler.execute_with_report(&fragments, &[]).unwrap();
        assert!(results.is_empty());
        assert_eq!(report.circuits, 0);
    }
}
