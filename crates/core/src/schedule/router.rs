//! Deterministic per-circuit placement over a [`DeviceRegistry`].

use super::registry::DeviceRegistry;
use crate::CoreError;
use qrcc_circuit::Circuit;

/// Routes each circuit to a compatible registry backend, returning the entry
/// index per circuit.
///
/// Placement is a deterministic greedy pass: circuits are considered widest
/// first (so scarce large devices are claimed before narrow circuits fill
/// them), and each goes to the compatible backend with the smallest
/// projected load — `Σ shots × cost_per_shot` of the circuits already
/// assigned to it — with ties broken towards the smaller device, then the
/// earlier registration.
///
/// `shots[i]` is the allocated shot count of circuit `i`; when the batch
/// runs without a budget the backend's own default (or 1 for exact
/// backends) stands in as the load estimate.
///
/// # Errors
///
/// [`CoreError::NoCompatibleBackend`] when some circuit fits no registered
/// backend.
pub(crate) fn route(
    registry: &DeviceRegistry,
    circuits: &[Circuit],
    shots: Option<&[u64]>,
) -> Result<Vec<usize>, CoreError> {
    let entries = registry.entries();
    let mut order: Vec<usize> = (0..circuits.len()).collect();
    order.sort_by(|&a, &b| circuits[b].num_qubits().cmp(&circuits[a].num_qubits()).then(a.cmp(&b)));

    let mut load = vec![0.0f64; entries.len()];
    let mut assignment = vec![usize::MAX; circuits.len()];
    for &index in &order {
        let circuit = &circuits[index];
        let mut best: Option<(f64, usize)> = None;
        for (entry_index, entry) in entries.iter().enumerate() {
            if !entry.backend().can_run(circuit) {
                continue;
            }
            // load estimate: allocated shots, else the backend's default,
            // else one unit per circuit (exact backends)
            let effective = match shots {
                Some(s) => s[index],
                None => entry.backend().shots_per_circuit().unwrap_or(1),
            };
            let projected = load[entry_index] + effective.max(1) as f64 * entry.cost_per_shot();
            let better = match best {
                None => true,
                Some((best_load, best_entry)) => {
                    let best_max = entries[best_entry].max_qubits().unwrap_or(usize::MAX);
                    let this_max = entry.max_qubits().unwrap_or(usize::MAX);
                    projected < best_load || (projected == best_load && this_max < best_max)
                }
            };
            if better {
                best = Some((projected, entry_index));
            }
        }
        let Some((projected, entry_index)) = best else {
            return Err(CoreError::NoCompatibleBackend {
                required: circuit.num_qubits(),
                backends: entries.len(),
            });
        };
        load[entry_index] = projected;
        assignment[index] = entry_index;
    }
    Ok(assignment)
}

/// Re-routes one failed circuit for the dispatcher: picks the **narrowest**
/// compatible backend whose entry index is not in `excluded` (ties towards
/// the earlier registration). When every compatible backend has already
/// failed this circuit, the exclusion list is waived — the failure may have
/// been transient — and the second tuple element reports the fallback as a
/// *requeue* so telemetry can distinguish it from a clean re-route.
///
/// Unlike the batch [`route`] pass this ignores projected load: retries are
/// rare, and a load-free rule keeps the retry target a pure function of
/// `(circuit, excluded, registry)` — independent of worker timing, so retry
/// schedules stay reproducible.
///
/// # Errors
///
/// [`CoreError::NoCompatibleBackend`] when no registered backend can run the
/// circuit at all (impossible after a successful initial routing, but kept
/// as a typed guard).
pub(crate) fn route_retry(
    registry: &DeviceRegistry,
    circuit: &Circuit,
    excluded: &[usize],
) -> Result<(usize, bool), CoreError> {
    let entries = registry.entries();
    let pick = |waive_exclusions: bool| {
        entries
            .iter()
            .enumerate()
            .filter(|(index, entry)| {
                (waive_exclusions || !excluded.contains(index)) && entry.backend().can_run(circuit)
            })
            .min_by_key(|(index, entry)| (entry.max_qubits().unwrap_or(usize::MAX), *index))
            .map(|(index, _)| index)
    };
    if let Some(entry) = pick(false) {
        return Ok((entry, false));
    }
    match pick(true) {
        Some(entry) => Ok((entry, true)),
        None => Err(CoreError::NoCompatibleBackend {
            required: circuit.num_qubits(),
            backends: entries.len(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::ExactBackend;

    fn circuit(width: usize) -> Circuit {
        let mut c = Circuit::new(width);
        c.h(0).measure_all();
        c
    }

    #[test]
    fn wide_circuits_go_to_the_wide_backend() {
        let mut registry = DeviceRegistry::new();
        registry.register("big", ExactBackend::capped(3));
        registry.register("small", ExactBackend::capped(2));
        let circuits = vec![circuit(3), circuit(2), circuit(3), circuit(2)];
        let assignment = route(&registry, &circuits, None).unwrap();
        assert_eq!(assignment[0], 0);
        assert_eq!(assignment[2], 0);
        // narrow circuits land on the small (less loaded) device
        assert_eq!(assignment[1], 1);
        assert_eq!(assignment[3], 1);
    }

    #[test]
    fn load_balances_across_equal_backends() {
        let mut registry = DeviceRegistry::new();
        registry.register("a", ExactBackend::capped(2));
        registry.register("b", ExactBackend::capped(2));
        let circuits: Vec<Circuit> = (0..6).map(|_| circuit(2)).collect();
        let assignment = route(&registry, &circuits, None).unwrap();
        let on_a = assignment.iter().filter(|&&e| e == 0).count();
        assert_eq!(on_a, 3, "even split across equal devices: {assignment:?}");
    }

    #[test]
    fn allocated_shots_drive_the_balance() {
        let mut registry = DeviceRegistry::new();
        registry.register("a", ExactBackend::capped(2));
        registry.register("b", ExactBackend::capped(2));
        // one heavy circuit and three light ones: the heavy one should sit
        // alone while the light ones share the other backend
        let circuits: Vec<Circuit> = (0..4).map(|_| circuit(2)).collect();
        let shots = vec![900u64, 100, 100, 100];
        let assignment = route(&registry, &circuits, Some(&shots)).unwrap();
        let heavy = assignment[0];
        assert!(assignment[1..].iter().all(|&e| e != heavy), "{assignment:?}");
    }

    #[test]
    fn unplaceable_circuits_error() {
        let mut registry = DeviceRegistry::new();
        registry.register("small", ExactBackend::capped(2));
        let err = route(&registry, &[circuit(4)], None);
        assert!(matches!(err, Err(CoreError::NoCompatibleBackend { required: 4, backends: 1 })));
    }

    #[test]
    fn retry_routing_excludes_the_failer_then_requeues() {
        let mut registry = DeviceRegistry::new();
        registry.register("big", ExactBackend::capped(3));
        registry.register("small", ExactBackend::capped(2));
        let c = circuit(2);
        // nothing excluded: narrowest compatible wins
        assert_eq!(route_retry(&registry, &c, &[]).unwrap(), (1, false));
        // the narrow backend failed: fall over to the wide one
        assert_eq!(route_retry(&registry, &c, &[1]).unwrap(), (0, false));
        // both failed: requeue on the narrowest again, flagged as a requeue
        assert_eq!(route_retry(&registry, &c, &[1, 0]).unwrap(), (1, true));
        // a 3-wide circuit only ever fits the big backend
        assert_eq!(route_retry(&registry, &circuit(3), &[0]).unwrap(), (0, true));
        // nothing fits a 4-wide circuit at all
        assert!(matches!(
            route_retry(&registry, &circuit(4), &[]),
            Err(CoreError::NoCompatibleBackend { required: 4, backends: 2 })
        ));
    }
}
