//! Domain-specific heuristic cut search.
//!
//! The exact ILP model (see [`crate::model`]) is only tractable for small
//! circuits without a commercial solver, so the planner's workhorse is this
//! heuristic: several structured initial assignments (qubit blocks, a
//! layer/qubit staircase, and a temporal split), followed by first-improvement
//! local search over single-node moves, and a final pass that converts
//! beneficial pairs of wire cuts into gate cuts. The result is always a
//! *valid* [`CutSolution`]; feasibility (widths ≤ D) is driven by a large
//! penalty term in the search objective.

use crate::spec::CutSolution;
use crate::QrccConfig;
use qrcc_circuit::dag::CircuitDag;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Penalty applied per qubit of device-size violation and per cut above the
/// configured cut budgets; large enough to dominate any realistic objective.
const INFEASIBILITY_PENALTY: f64 = 10_000.0;

/// The search objective: post-processing cost and fidelity balancing as in
/// Eq. (18), plus infeasibility penalties for oversized subcircuits or
/// exceeded cut budgets. Lower is better.
pub fn solution_cost(solution: &CutSolution, dag: &CircuitDag, config: &QrccConfig) -> f64 {
    let metrics = solution.metrics(dag, config.qubit_reuse_enabled);
    let mut penalty = 0.0;
    for &w in &metrics.subcircuit_widths {
        penalty += w.saturating_sub(config.device_size) as f64 * INFEASIBILITY_PENALTY;
    }
    penalty +=
        metrics.wire_cuts.saturating_sub(config.max_wire_cuts) as f64 * INFEASIBILITY_PENALTY;
    penalty +=
        metrics.gate_cuts.saturating_sub(config.max_gate_cuts) as f64 * INFEASIBILITY_PENALTY;
    let pp_cost = config.linear_post_processing_cost(metrics.wire_cuts, metrics.gate_cuts);
    // The paper's example fidelity term f(TE) = 0.75·TE + 23 maps the
    // max-two-qubit-gate count into the same value range as PPCost.
    let c_error = 0.75 * metrics.max_two_qubit_gates as f64 + 23.0;
    penalty + config.delta * pp_cost + (1.0 - config.delta) * c_error
}

/// Whether every subcircuit of the solution fits the device and the cut
/// budgets are respected.
pub fn is_feasible(solution: &CutSolution, dag: &CircuitDag, config: &QrccConfig) -> bool {
    let metrics = solution.metrics(dag, config.qubit_reuse_enabled);
    metrics.subcircuit_widths.iter().all(|&w| w <= config.device_size)
        && metrics.wire_cuts <= config.max_wire_cuts
        && metrics.gate_cuts <= config.max_gate_cuts
}

/// Remaps subcircuit indices so that they are dense (no empty subcircuits)
/// and ordered by first appearance in program order.
pub fn normalize(solution: &mut CutSolution, dag: &CircuitDag) {
    let mut order: Vec<Option<usize>> = vec![None; solution.num_subcircuits];
    let mut next = 0usize;
    let mut visit = |sub: usize, order: &mut Vec<Option<usize>>| {
        if order[sub].is_none() {
            order[sub] = Some(next);
            next += 1;
        }
    };
    for node in 0..dag.nodes().len() {
        if let Some(pos) = solution.gate_cuts.iter().position(|&g| g == node) {
            let (t, b) = solution.gate_cut_assignment[pos];
            visit(t, &mut order);
            visit(b, &mut order);
        } else {
            visit(solution.assignment[node], &mut order);
        }
    }
    let map = |sub: usize| order[sub].expect("every used subcircuit was visited");
    for (node, a) in solution.assignment.iter_mut().enumerate() {
        if !solution.gate_cuts.contains(&node) {
            *a = map(*a);
        }
    }
    for pair in &mut solution.gate_cut_assignment {
        *pair = (map(pair.0), map(pair.1));
    }
    // Gate-cut nodes keep an assignment entry for bookkeeping; point it at the
    // top half's subcircuit.
    for (i, &node) in solution.gate_cuts.iter().enumerate() {
        solution.assignment[node] = solution.gate_cut_assignment[i].0;
    }
    solution.num_subcircuits = next;
}

/// Produces an initial assignment of nodes to `num_subs` subcircuits by
/// partitioning the original qubits into contiguous index blocks; each gate
/// goes to the block of its first qubit.
fn init_qubit_blocks(dag: &CircuitDag, num_subs: usize) -> CutSolution {
    let n = dag.num_qubits().max(1);
    let block = |q: usize| (q * num_subs / n).min(num_subs - 1);
    let assignment = dag.nodes().iter().map(|node| block(node.op.qubits()[0].index())).collect();
    CutSolution {
        num_subcircuits: num_subs,
        assignment,
        gate_cuts: Vec::new(),
        gate_cut_assignment: Vec::new(),
    }
}

/// Initial assignment using a "staircase" score mixing qubit index and layer,
/// which suits triangular circuits such as the QFT where early layers touch
/// low qubits and late layers touch high qubits.
fn init_staircase(dag: &CircuitDag, num_subs: usize) -> CutSolution {
    let n = dag.num_qubits().max(1) as f64;
    let layers = dag.num_layers().max(1) as f64;
    let assignment = dag
        .nodes()
        .iter()
        .map(|node| {
            let q = node.op.qubits()[0].index() as f64 / n;
            let l = node.layer as f64 / layers;
            let score = 0.5 * q + 0.5 * l;
            ((score * num_subs as f64) as usize).min(num_subs - 1)
        })
        .collect();
    CutSolution {
        num_subcircuits: num_subs,
        assignment,
        gate_cuts: Vec::new(),
        gate_cut_assignment: Vec::new(),
    }
}

/// Initial assignment splitting the circuit temporally into equal layer bands.
fn init_temporal(dag: &CircuitDag, num_subs: usize) -> CutSolution {
    let layers = dag.num_layers().max(1);
    let assignment =
        dag.nodes().iter().map(|node| (node.layer * num_subs / layers).min(num_subs - 1)).collect();
    CutSolution {
        num_subcircuits: num_subs,
        assignment,
        gate_cuts: Vec::new(),
        gate_cut_assignment: Vec::new(),
    }
}

/// First-improvement local search over single-node reassignment moves.
fn local_search(
    solution: &mut CutSolution,
    dag: &CircuitDag,
    config: &QrccConfig,
    rng: &mut StdRng,
    max_sweeps: usize,
) {
    let num_nodes = dag.nodes().len();
    let mut current_cost = solution_cost(solution, dag, config);
    for _ in 0..max_sweeps {
        let mut improved = false;
        let mut node_order: Vec<usize> = (0..num_nodes).collect();
        node_order.shuffle(rng);
        for node in node_order {
            if solution.gate_cuts.contains(&node) {
                continue;
            }
            let original = solution.assignment[node];
            let mut best = (original, current_cost);
            for target in 0..solution.num_subcircuits {
                if target == original {
                    continue;
                }
                solution.assignment[node] = target;
                let cost = solution_cost(solution, dag, config);
                if cost < best.1 - 1e-9 {
                    best = (target, cost);
                }
            }
            solution.assignment[node] = best.0;
            if best.0 != original {
                current_cost = best.1;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
}

/// Converts wire cuts into gate cuts where this lowers the objective: a
/// cuttable two-qubit gate sitting on a subcircuit boundary often needs two
/// wire cuts (cost 2α) that a single gate cut (cost β) can replace. Every
/// (top, bottom) subcircuit pair is tried for each cuttable gate.
fn gate_cut_pass(solution: &mut CutSolution, dag: &CircuitDag, config: &QrccConfig) {
    if !config.gate_cuts_enabled {
        return;
    }
    let mut current_cost = solution_cost(solution, dag, config);
    for node in 0..dag.nodes().len() {
        if solution.gate_cuts.contains(&node) {
            continue;
        }
        let op = &dag.node(node).op;
        let cuttable =
            op.as_gate().map(|g| g.is_gate_cuttable() && op.is_two_qubit_gate()).unwrap_or(false);
        if !cuttable {
            continue;
        }
        let mut best: Option<((usize, usize), f64)> = None;
        for t in 0..solution.num_subcircuits {
            for b in 0..solution.num_subcircuits {
                if t == b {
                    continue;
                }
                solution.gate_cuts.push(node);
                solution.gate_cut_assignment.push((t, b));
                let cost = solution_cost(solution, dag, config);
                solution.gate_cuts.pop();
                solution.gate_cut_assignment.pop();
                if cost < current_cost - 1e-9 && best.map(|(_, c)| cost < c).unwrap_or(true) {
                    best = Some(((t, b), cost));
                }
            }
        }
        if let Some(((t, b), cost)) = best {
            solution.gate_cuts.push(node);
            solution.gate_cut_assignment.push((t, b));
            current_cost = cost;
        }
    }
}

/// Like [`init_qubit_blocks`], but immediately gate-cuts every cuttable
/// two-qubit gate whose qubits land in different blocks (the Figure 2(d)
/// shape). Only used when gate cuts are enabled.
fn init_qubit_blocks_with_gate_cuts(dag: &CircuitDag, num_subs: usize) -> CutSolution {
    let n = dag.num_qubits().max(1);
    let block = |q: usize| (q * num_subs / n).min(num_subs - 1);
    let mut solution = init_qubit_blocks(dag, num_subs);
    for (id, node) in dag.nodes().iter().enumerate() {
        let cuttable = node
            .op
            .as_gate()
            .map(|g| g.is_gate_cuttable() && node.op.is_two_qubit_gate())
            .unwrap_or(false);
        if !cuttable {
            continue;
        }
        let qubits = node.op.qubits();
        let (top, bottom) = (block(qubits[0].index()), block(qubits[1].index()));
        if top != bottom {
            solution.gate_cuts.push(id);
            solution.gate_cut_assignment.push((top, bottom));
        }
    }
    solution
}

/// Runs the full heuristic for a fixed number of subcircuits and returns the
/// best solution found (which may be infeasible — the caller checks with
/// [`is_feasible`]).
pub fn search_with_subcircuits(
    dag: &CircuitDag,
    config: &QrccConfig,
    num_subs: usize,
    max_sweeps: usize,
) -> CutSolution {
    let mut initialisations = vec![
        init_qubit_blocks(dag, num_subs),
        init_staircase(dag, num_subs),
        init_temporal(dag, num_subs),
    ];
    if config.gate_cuts_enabled {
        initialisations.push(init_qubit_blocks_with_gate_cuts(dag, num_subs));
    }
    let mut best: Option<(CutSolution, f64)> = None;
    for (candidate_index, mut candidate) in initialisations.into_iter().enumerate() {
        // Each candidate gets its own deterministic RNG stream so that adding
        // or removing initialisations never perturbs the others.
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ ((num_subs as u64) << 32) ^ ((candidate_index as u64) << 48),
        );
        local_search(&mut candidate, dag, config, &mut rng, max_sweeps);
        gate_cut_pass(&mut candidate, dag, config);
        // Gate cuts change the boundary structure, so give the node moves one
        // more chance to clean up around them.
        local_search(&mut candidate, dag, config, &mut rng, max_sweeps / 2 + 1);
        normalize(&mut candidate, dag);
        let cost = solution_cost(&candidate, dag, config);
        if best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
            best = Some((candidate, cost));
        }
    }
    best.expect("at least one initialisation ran").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrcc_circuit::{generators, Circuit};

    #[test]
    fn ghz_chain_splits_cleanly() {
        let mut c = Circuit::new(6);
        c.h(0);
        for q in 0..5 {
            c.cx(q, q + 1);
        }
        let dag = CircuitDag::from_circuit(&c);
        let config = QrccConfig::new(4).with_subcircuit_range(2, 3);
        let solution = search_with_subcircuits(&dag, &config, 2, 20);
        assert!(solution.validate(&dag).is_ok());
        assert!(is_feasible(&solution, &dag, &config));
        let metrics = solution.metrics(&dag, true);
        // a linear chain needs at most one wire cut (zero if the search
        // discovers that qubit reuse alone already fits the device)
        assert!(metrics.wire_cuts <= 1);
        assert_eq!(metrics.gate_cuts, 0);
    }

    #[test]
    fn qubit_reuse_makes_tighter_devices_feasible() {
        let mut c = Circuit::new(6);
        c.h(0);
        for q in 0..5 {
            c.cx(q, q + 1);
        }
        let dag = CircuitDag::from_circuit(&c);
        // with reuse, a GHZ chain split in two halves fits a 4-qubit device
        // comfortably; without reuse the initialization qubit pushes one
        // subcircuit to 4 qubits as well, but a 3-qubit device separates them:
        let config_reuse = QrccConfig::new(3).with_subcircuit_range(2, 3);
        let with_reuse = search_with_subcircuits(&dag, &config_reuse, 2, 30);
        assert!(is_feasible(&with_reuse, &dag, &config_reuse));
        let config_plain = config_reuse.clone().with_qubit_reuse(false);
        let without_reuse = search_with_subcircuits(&dag, &config_plain, 2, 30);
        let m_plain = without_reuse.metrics(&dag, false);
        let m_reuse = with_reuse.metrics(&dag, true);
        // reuse never needs more cuts than the no-reuse plan at equal #SC
        assert!(m_reuse.wire_cuts <= m_plain.wire_cuts + 1);
    }

    #[test]
    fn gate_cut_pass_replaces_expensive_wire_cuts() {
        // QAOA-style circuit where every entangler is cuttable.
        let (c, _) = generators::qaoa_regular(6, 2, 1, 7);
        let dag = CircuitDag::from_circuit(&c);
        let without = QrccConfig::new(4).with_subcircuit_range(2, 2).with_gate_cuts(false);
        let with = without.clone().with_gate_cuts(true);
        let sol_without = search_with_subcircuits(&dag, &without, 2, 25);
        let sol_with = search_with_subcircuits(&dag, &with, 2, 25);
        assert!(sol_with.validate(&dag).is_ok());
        let cost_without = solution_cost(&sol_without, &dag, &without);
        let cost_with = solution_cost(&sol_with, &dag, &with);
        assert!(
            cost_with <= cost_without + 1e-9,
            "gate cuts should never make the objective worse ({cost_with} vs {cost_without})"
        );
    }

    #[test]
    fn normalize_removes_empty_subcircuits() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let dag = CircuitDag::from_circuit(&c);
        let mut solution = CutSolution {
            num_subcircuits: 4,
            assignment: vec![3, 3],
            gate_cuts: Vec::new(),
            gate_cut_assignment: Vec::new(),
        };
        normalize(&mut solution, &dag);
        assert_eq!(solution.num_subcircuits, 1);
        assert_eq!(solution.assignment, vec![0, 0]);
    }

    #[test]
    fn cost_penalises_oversized_subcircuits() {
        // The QFT has all-to-all interactions, so qubit reuse cannot shrink
        // it below its full width and the uncut circuit violates D = 2.
        let c = generators::qft(4);
        let dag = CircuitDag::from_circuit(&c);
        let config = QrccConfig::new(2);
        let trivial = CutSolution::trivial(&dag);
        assert!(solution_cost(&trivial, &dag, &config) >= INFEASIBILITY_PENALTY);
        assert!(!is_feasible(&trivial, &dag, &config));
    }
}
