//! Declarative service-level objectives evaluated over windowed metrics.
//!
//! An [`SloSpec`] names what "healthy" means for a serving fleet — a
//! latency quantile target, an error-rate ceiling, a minimum availability —
//! and [`SloSpec::evaluate`] scores an observed window against it with
//! **burn rates**: `observed / limit`, so `1.0` is exactly at the objective
//! and the [`SloStatus`] laddering (`Ok` → `Warn` at
//! [`SloSpec::warn_ratio`], → `Breached` at `1.0`) is uniform across
//! objective kinds. The load harness and fleet monitor evaluate specs
//! live; lint QL0307 rejects malformed specs before they ever run.

use serde::{Deserialize, Serialize};

use super::Histogram;

/// Health verdict for one objective or a whole spec, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SloStatus {
    /// All burn rates below the warn ratio.
    Ok,
    /// At least one burn rate at or above the warn ratio but below 1.0.
    Warn,
    /// At least one burn rate at or above 1.0 — the objective is violated.
    Breached,
}

impl std::fmt::Display for SloStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SloStatus::Ok => write!(f, "ok"),
            SloStatus::Warn => write!(f, "warn"),
            SloStatus::Breached => write!(f, "breached"),
        }
    }
}

/// A latency objective: the value of `quantile` (in `(0, 1)`) must stay at
/// or below `max_us` microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyTarget {
    /// Which quantile to hold (e.g. `0.99`). Must lie in the open interval
    /// `(0, 1)` — checked by lint QL0307.
    pub quantile: f64,
    /// Ceiling for that quantile, in microseconds.
    pub max_us: u64,
}

/// A declarative SLO: any subset of latency, error-rate and availability
/// objectives, plus the warn threshold shared by all of them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Human-readable spec name, echoed into evaluations and reports.
    pub name: String,
    /// Latency-quantile objectives (all must hold).
    #[serde(default)]
    pub latency: Vec<LatencyTarget>,
    /// Ceiling on `errors / requests` in the window, as a fraction.
    #[serde(default)]
    pub max_error_rate: Option<f64>,
    /// Floor on `successes / requests` in the window, as a fraction. The
    /// burn rate is computed on the *unavailability* budget:
    /// `(1 - availability) / (1 - min_availability)`.
    #[serde(default)]
    pub min_availability: Option<f64>,
    /// Burn-rate fraction at which a healthy objective degrades to
    /// [`SloStatus::Warn`]. Defaults to 0.8.
    #[serde(default = "default_warn_ratio")]
    pub warn_ratio: f64,
}

fn default_warn_ratio() -> f64 {
    0.8
}

/// One objective's score inside an [`SloEvaluation`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloObjective {
    /// What was measured (`latency p0.99`, `error_rate`, `availability`).
    pub name: String,
    /// The observed value (microseconds for latency, fraction otherwise).
    pub observed: f64,
    /// The configured limit the observation is scored against.
    pub limit: f64,
    /// `observed / limit` (budget-relative for availability); `>= 1.0`
    /// means the objective is violated.
    pub burn_rate: f64,
    /// This objective's verdict under the spec's warn ratio.
    pub status: SloStatus,
}

/// The result of scoring one window against an [`SloSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloEvaluation {
    /// Name of the spec that produced this evaluation.
    pub spec: String,
    /// Per-objective scores, in spec order.
    pub objectives: Vec<SloObjective>,
    /// The worst per-objective status (or `Ok` when no objective applies).
    pub status: SloStatus,
}

impl SloEvaluation {
    /// The highest burn rate across objectives (0.0 when none apply).
    pub fn max_burn_rate(&self) -> f64 {
        self.objectives.iter().map(|o| o.burn_rate).fold(0.0, f64::max)
    }
}

impl std::fmt::Display for SloEvaluation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slo {} [{}]", self.spec, self.status)?;
        for o in &self.objectives {
            write!(
                f,
                "\n  {:<16} observed {:>12.3} limit {:>12.3} burn {:>6.3} [{}]",
                o.name, o.observed, o.limit, o.burn_rate, o.status
            )?;
        }
        Ok(())
    }
}

impl SloSpec {
    /// A named spec with no objectives (add them with the builders).
    pub fn new(name: &str) -> Self {
        SloSpec {
            name: name.to_owned(),
            latency: Vec::new(),
            max_error_rate: None,
            min_availability: None,
            warn_ratio: default_warn_ratio(),
        }
    }

    /// Adds a latency objective: `quantile` must stay at or below `max_us`.
    pub fn with_latency(mut self, quantile: f64, max_us: u64) -> Self {
        self.latency.push(LatencyTarget { quantile, max_us });
        self
    }

    /// Caps the window error rate (`errors / requests`) at `rate`.
    pub fn with_max_error_rate(mut self, rate: f64) -> Self {
        self.max_error_rate = Some(rate);
        self
    }

    /// Requires at least `fraction` of window requests to succeed.
    pub fn with_min_availability(mut self, fraction: f64) -> Self {
        self.min_availability = Some(fraction);
        self
    }

    /// Sets the burn-rate fraction where `Ok` degrades to `Warn`.
    pub fn with_warn_ratio(mut self, ratio: f64) -> Self {
        self.warn_ratio = ratio;
        self
    }

    /// Structural problems lint QL0307 reports: a quantile outside `(0,1)`,
    /// a zero latency ceiling, a rate/fraction outside its meaningful
    /// range, or a warn ratio that cannot fire before the breach.
    pub fn validation_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        for t in &self.latency {
            if !(t.quantile > 0.0 && t.quantile < 1.0) {
                errors.push(format!(
                    "latency quantile {} is outside the open interval (0, 1)",
                    t.quantile
                ));
            }
            if t.max_us == 0 {
                errors.push(format!(
                    "latency target for p{} has a zero-microsecond ceiling",
                    t.quantile
                ));
            }
        }
        if let Some(rate) = self.max_error_rate {
            if !(0.0..=1.0).contains(&rate) {
                errors.push(format!("max_error_rate {rate} is outside [0, 1]"));
            }
        }
        if let Some(avail) = self.min_availability {
            if !(avail > 0.0 && avail < 1.0) {
                errors
                    .push(format!("min_availability {avail} is outside the open interval (0, 1)"));
            }
        }
        if !(self.warn_ratio > 0.0 && self.warn_ratio <= 1.0) {
            errors.push(format!("warn_ratio {} is outside (0, 1]", self.warn_ratio));
        }
        errors
    }

    fn status_for(&self, burn_rate: f64) -> SloStatus {
        if burn_rate >= 1.0 {
            SloStatus::Breached
        } else if burn_rate >= self.warn_ratio {
            SloStatus::Warn
        } else {
            SloStatus::Ok
        }
    }

    /// Scores one observed window: `latency` holds the window's request
    /// latencies (microseconds), `requests`/`errors` count the window's
    /// outcomes. An empty window trivially satisfies every objective.
    pub fn evaluate(&self, latency: &Histogram, requests: u64, errors: u64) -> SloEvaluation {
        let mut objectives = Vec::new();

        for target in &self.latency {
            let observed = latency.quantile(target.quantile).unwrap_or(0) as f64;
            let limit = target.max_us as f64;
            let burn_rate = if limit > 0.0 { observed / limit } else { f64::INFINITY };
            objectives.push(SloObjective {
                name: format!("latency p{}", target.quantile),
                observed,
                limit,
                burn_rate,
                status: self.status_for(burn_rate),
            });
        }

        if let Some(max_rate) = self.max_error_rate {
            let observed = if requests == 0 { 0.0 } else { errors as f64 / requests as f64 };
            let burn_rate = if max_rate > 0.0 {
                observed / max_rate
            } else if observed > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            objectives.push(SloObjective {
                name: "error_rate".to_owned(),
                observed,
                limit: max_rate,
                burn_rate,
                status: self.status_for(burn_rate),
            });
        }

        if let Some(min_avail) = self.min_availability {
            let observed = if requests == 0 {
                1.0
            } else {
                (requests.saturating_sub(errors)) as f64 / requests as f64
            };
            let budget = 1.0 - min_avail;
            let spent = 1.0 - observed;
            let burn_rate = if budget > 0.0 {
                spent / budget
            } else if spent > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            objectives.push(SloObjective {
                name: "availability".to_owned(),
                observed,
                limit: min_avail,
                burn_rate,
                status: self.status_for(burn_rate),
            });
        }

        let status = objectives.iter().map(|o| o.status).max().unwrap_or(SloStatus::Ok);
        SloEvaluation { spec: self.name.clone(), objectives, status }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latencies(values: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for v in values {
            h.record(*v);
        }
        h
    }

    #[test]
    fn healthy_window_is_ok() {
        let spec = SloSpec::new("serve")
            .with_latency(0.99, 10_000)
            .with_max_error_rate(0.05)
            .with_min_availability(0.99);
        let eval = spec.evaluate(&latencies(&[100, 200, 300]), 100, 0);
        assert_eq!(eval.status, SloStatus::Ok);
        assert_eq!(eval.objectives.len(), 3);
        assert!(eval.max_burn_rate() < 0.8);
    }

    #[test]
    fn latency_over_target_breaches() {
        let spec = SloSpec::new("serve").with_latency(0.5, 1_000);
        let eval = spec.evaluate(&latencies(&[5_000, 5_000, 5_000]), 3, 0);
        assert_eq!(eval.status, SloStatus::Breached);
        assert!(eval.max_burn_rate() >= 1.0);
    }

    #[test]
    fn warn_band_sits_between_ok_and_breach() {
        let spec = SloSpec::new("serve").with_latency(0.5, 1_000).with_warn_ratio(0.5);
        // p50 ~ 700 with a 1000 us target: burn ~0.7, inside [0.5, 1.0)
        let eval = spec.evaluate(&latencies(&[700; 10]), 10, 0);
        assert_eq!(eval.status, SloStatus::Warn);
    }

    #[test]
    fn error_rate_and_availability_burn_on_budget() {
        let spec = SloSpec::new("serve").with_max_error_rate(0.10).with_min_availability(0.90);
        // 5% errors: error burn 0.5, availability burn (0.05 / 0.10) = 0.5
        let eval = spec.evaluate(&Histogram::new(), 100, 5);
        assert_eq!(eval.status, SloStatus::Ok);
        for o in &eval.objectives {
            assert!((o.burn_rate - 0.5).abs() < 1e-9, "{}: {}", o.name, o.burn_rate);
        }
        // 20% errors: both burn 2.0
        let eval = spec.evaluate(&Histogram::new(), 100, 20);
        assert_eq!(eval.status, SloStatus::Breached);
    }

    #[test]
    fn empty_window_trivially_passes() {
        let spec = SloSpec::new("serve")
            .with_latency(0.99, 1)
            .with_max_error_rate(0.0)
            .with_min_availability(0.999);
        let eval = spec.evaluate(&Histogram::new(), 0, 0);
        assert_eq!(eval.status, SloStatus::Ok);
    }

    #[test]
    fn validation_catches_malformed_specs() {
        let ok = SloSpec::new("serve").with_latency(0.99, 1_000);
        assert!(ok.validation_errors().is_empty());

        let bad = SloSpec::new("serve")
            .with_latency(1.5, 0)
            .with_max_error_rate(2.0)
            .with_min_availability(1.0)
            .with_warn_ratio(0.0);
        let errors = bad.validation_errors();
        assert_eq!(errors.len(), 5, "{errors:?}");
    }

    #[test]
    fn evaluation_renders_and_orders_status() {
        assert!(SloStatus::Ok < SloStatus::Warn);
        assert!(SloStatus::Warn < SloStatus::Breached);
        let spec = SloSpec::new("serve").with_latency(0.5, 10);
        let text = spec.evaluate(&latencies(&[100]), 1, 0).to_string();
        assert!(text.contains("slo serve [breached]"));
        assert!(text.contains("latency p0.5"));
    }
}
