//! Unified observability: tracing spans, metrics, exporters and reports.
//!
//! The pipeline previously grew five disjoint telemetry islands
//! ([`DispatchStats`](crate::dispatch::DispatchStats),
//! `ServerStats` in `qrcc-net`, [`CacheStats`](crate::cache::CacheStats),
//! `CompileStats` in `qrcc-sim`, and the flat fields on
//! [`ReconstructionReport`](crate::ReconstructionReport)) with no way to
//! answer "where did this run's wall-clock go?". This module is the one
//! vocabulary over all of them:
//!
//! * [`Tracer`] / [`SpanGuard`] — RAII phase and per-job spans recorded
//!   into a sharded buffer; zero-cost when disabled (the default). Enable
//!   with [`QrccConfig::with_tracing`](crate::QrccConfig::with_tracing).
//! * [`Histogram`] — log-bucketed latencies with `p50/p90/p99/p999` and an
//!   associative merge, so per-worker histograms fold into fleet totals.
//! * [`Metrics`] / [`metrics()`] — the named counter/gauge/histogram
//!   registry with Prometheus text exposition.
//! * [`chrome_trace`] / [`spans_jsonl`] / [`validate_spans`] — exporters
//!   and the structural trace check used by the CI trace gate.
//! * [`PhaseProfile`] — the flame summary ("% of wall-clock by phase")
//!   attached to `ReconstructionReport::profile` by streaming execution.
//! * [`QrccReport`] — one renderable report over schedule, reconstruction,
//!   live metrics and per-server sections, via the [`report::adapt`]
//!   adapters.
//! * [`WindowedHistogram`] / [`RateCounter`] — last-N-seconds views (ring
//!   of rotated histogram buckets) for live p50/p99/p999 and req/s.
//! * [`SloSpec`] / [`SloEvaluation`] — declarative latency / error-rate /
//!   availability objectives scored over windows with burn-rate status.
//! * [`RemoteSpan`] — the wire form of a span subtree: `qrcc-net` carries
//!   trace context in `SubmitBatch` and returns the server's subtree in
//!   `BatchDone`, and [`Tracer::import`] grafts it under the local submit
//!   span so one trace tree spans client and servers.

use serde::{Deserialize, Serialize};

mod export;
mod histogram;
mod metrics;
mod report;
mod slo;
mod tracer;
mod window;

pub use export::{bench_json, chrome_trace, remote_subtree_stitched, spans_jsonl, validate_spans};
pub use histogram::Histogram;
pub use metrics::{Metrics, MetricsSnapshot};
pub use report::{adapt, PhaseProfile, QrccReport};
pub use slo::{LatencyTarget, SloEvaluation, SloObjective, SloSpec, SloStatus};
pub use tracer::{tracer, RemoteSpan, SpanGuard, SpanRecord, Tracer, DEFAULT_BUFFER_CAPACITY};
pub use window::{RateCounter, WindowedHistogram};

/// Observability policy carried by [`QrccConfig`](crate::QrccConfig):
/// whether tracing is on (off by default — and when off, every span site
/// costs one relaxed atomic load), how many spans the buffer holds, and
/// where the trace should be written.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsPolicy {
    /// Record spans and hot-path metrics. Off by default.
    #[serde(default)]
    pub enabled: bool,
    /// Span-buffer capacity across all shards; overflowing spans are
    /// counted as dropped, never reallocated. A zero capacity is flagged by
    /// lint QL0306 — every span would be dropped.
    #[serde(default)]
    pub buffer_capacity: usize,
    /// Where exporters should write the trace (consumers decide the
    /// format by extension; `None` leaves the trace in memory). Checked by
    /// lint QL0306.
    #[serde(default)]
    pub trace_path: Option<String>,
}

impl Default for ObsPolicy {
    fn default() -> Self {
        ObsPolicy { enabled: false, buffer_capacity: DEFAULT_BUFFER_CAPACITY, trace_path: None }
    }
}

impl ObsPolicy {
    /// Policy with tracing enabled and default capacity.
    pub fn enabled() -> Self {
        ObsPolicy { enabled: true, ..ObsPolicy::default() }
    }
}

/// Fleet-monitoring policy carried by [`QrccConfig`](crate::QrccConfig):
/// how wide the live window is, how finely it rotates, how often a
/// `FleetMonitor` (in `qrcc-net`) should poll workers, and the SLO the
/// windows are
/// scored against. Checked by lint QL0307 — a zero-length window, a poll
/// interval shorter than one rotation bucket, or a pre-v3 target protocol
/// make the monitor silently useless.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorPolicy {
    /// Width of the live window, in microseconds (e.g. `10_000_000` =
    /// "p99 over the last 10 s"). Must be non-zero.
    pub window_us: u64,
    /// Rotation buckets per window; the window advances in steps of
    /// `window_us / buckets`.
    #[serde(default = "default_monitor_buckets")]
    pub buckets: usize,
    /// How often the monitor polls each worker, in microseconds. Should be
    /// at least one rotation bucket (`window_us / buckets`) — polling
    /// faster re-reads the same partial bucket.
    pub poll_interval_us: u64,
    /// Protocol version the monitored servers speak. `GetMetrics` /
    /// `GetHealth` exist from v3 on; QL0307 flags older targets.
    #[serde(default = "default_monitor_protocol")]
    pub target_protocol: u16,
    /// The SLO the merged fleet window is scored against, if any.
    #[serde(default)]
    pub slo: Option<SloSpec>,
}

fn default_monitor_buckets() -> usize {
    10
}

fn default_monitor_protocol() -> u16 {
    3
}

impl Default for MonitorPolicy {
    fn default() -> Self {
        MonitorPolicy {
            window_us: 10_000_000,
            buckets: default_monitor_buckets(),
            poll_interval_us: 1_000_000,
            target_protocol: default_monitor_protocol(),
            slo: None,
        }
    }
}

impl MonitorPolicy {
    /// The live window as a [`Duration`](std::time::Duration).
    pub fn window(&self) -> std::time::Duration {
        std::time::Duration::from_micros(self.window_us)
    }

    /// The poll interval as a [`Duration`](std::time::Duration).
    pub fn poll_interval(&self) -> std::time::Duration {
        std::time::Duration::from_micros(self.poll_interval_us)
    }

    /// Width of one rotation bucket, in microseconds.
    pub fn rotation_us(&self) -> u64 {
        self.window_us / self.buckets.max(1) as u64
    }

    /// Sets the SLO the merged fleet view is scored against.
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = Some(slo);
        self
    }
}

/// The process-global metrics registry. Always live (cold-path telemetry
/// like ping RTTs records unconditionally); hot paths gate on
/// [`tracer()`]`.enabled()`.
pub fn metrics() -> &'static Metrics {
    static GLOBAL: std::sync::OnceLock<Metrics> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Metrics::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_defaults_are_off_with_sane_capacity() {
        let policy = ObsPolicy::default();
        assert!(!policy.enabled);
        assert_eq!(policy.buffer_capacity, DEFAULT_BUFFER_CAPACITY);
        assert_eq!(policy.trace_path, None);
        assert!(ObsPolicy::enabled().enabled);
    }

    /// The vendored serde shim has no serde_json; clone-compare stands in
    /// for a serialization round-trip (the derives compile either way).
    #[test]
    fn policy_survives_serde_with_defaults() {
        let policy = ObsPolicy::enabled();
        assert_eq!(policy.clone(), policy);
    }

    #[test]
    fn global_registries_are_reachable() {
        let _ = metrics();
        let _ = tracer();
    }
}
