//! Unified observability: tracing spans, metrics, exporters and reports.
//!
//! The pipeline previously grew five disjoint telemetry islands
//! ([`DispatchStats`](crate::dispatch::DispatchStats),
//! `ServerStats` in `qrcc-net`, [`CacheStats`](crate::cache::CacheStats),
//! `CompileStats` in `qrcc-sim`, and the flat fields on
//! [`ReconstructionReport`](crate::ReconstructionReport)) with no way to
//! answer "where did this run's wall-clock go?". This module is the one
//! vocabulary over all of them:
//!
//! * [`Tracer`] / [`SpanGuard`] — RAII phase and per-job spans recorded
//!   into a sharded buffer; zero-cost when disabled (the default). Enable
//!   with [`QrccConfig::with_tracing`](crate::QrccConfig::with_tracing).
//! * [`Histogram`] — log-bucketed latencies with `p50/p90/p99/p999` and an
//!   associative merge, so per-worker histograms fold into fleet totals.
//! * [`Metrics`] / [`metrics()`] — the named counter/gauge/histogram
//!   registry with Prometheus text exposition.
//! * [`chrome_trace`] / [`spans_jsonl`] / [`validate_spans`] — exporters
//!   and the structural trace check used by the CI trace gate.
//! * [`PhaseProfile`] — the flame summary ("% of wall-clock by phase")
//!   attached to `ReconstructionReport::profile` by streaming execution.
//! * [`QrccReport`] — one renderable report over schedule, reconstruction,
//!   live metrics and per-server sections, via the [`report::adapt`]
//!   adapters.
//! * [`RemoteSpan`] — the wire form of a span subtree: `qrcc-net` carries
//!   trace context in `SubmitBatch` and returns the server's subtree in
//!   `BatchDone`, and [`Tracer::import`] grafts it under the local submit
//!   span so one trace tree spans client and servers.

use serde::{Deserialize, Serialize};

mod export;
mod histogram;
mod metrics;
mod report;
mod tracer;

pub use export::{bench_json, chrome_trace, remote_subtree_stitched, spans_jsonl, validate_spans};
pub use histogram::Histogram;
pub use metrics::{Metrics, MetricsSnapshot};
pub use report::{adapt, PhaseProfile, QrccReport};
pub use tracer::{tracer, RemoteSpan, SpanGuard, SpanRecord, Tracer, DEFAULT_BUFFER_CAPACITY};

/// Observability policy carried by [`QrccConfig`](crate::QrccConfig):
/// whether tracing is on (off by default — and when off, every span site
/// costs one relaxed atomic load), how many spans the buffer holds, and
/// where the trace should be written.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsPolicy {
    /// Record spans and hot-path metrics. Off by default.
    #[serde(default)]
    pub enabled: bool,
    /// Span-buffer capacity across all shards; overflowing spans are
    /// counted as dropped, never reallocated. A zero capacity is flagged by
    /// lint QL0306 — every span would be dropped.
    #[serde(default)]
    pub buffer_capacity: usize,
    /// Where exporters should write the trace (consumers decide the
    /// format by extension; `None` leaves the trace in memory). Checked by
    /// lint QL0306.
    #[serde(default)]
    pub trace_path: Option<String>,
}

impl Default for ObsPolicy {
    fn default() -> Self {
        ObsPolicy { enabled: false, buffer_capacity: DEFAULT_BUFFER_CAPACITY, trace_path: None }
    }
}

impl ObsPolicy {
    /// Policy with tracing enabled and default capacity.
    pub fn enabled() -> Self {
        ObsPolicy { enabled: true, ..ObsPolicy::default() }
    }
}

/// The process-global metrics registry. Always live (cold-path telemetry
/// like ping RTTs records unconditionally); hot paths gate on
/// [`tracer()`]`.enabled()`.
pub fn metrics() -> &'static Metrics {
    static GLOBAL: std::sync::OnceLock<Metrics> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Metrics::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_defaults_are_off_with_sane_capacity() {
        let policy = ObsPolicy::default();
        assert!(!policy.enabled);
        assert_eq!(policy.buffer_capacity, DEFAULT_BUFFER_CAPACITY);
        assert_eq!(policy.trace_path, None);
        assert!(ObsPolicy::enabled().enabled);
    }

    /// The vendored serde shim has no serde_json; clone-compare stands in
    /// for a serialization round-trip (the derives compile either way).
    #[test]
    fn policy_survives_serde_with_defaults() {
        let policy = ObsPolicy::enabled();
        assert_eq!(policy.clone(), policy);
    }

    #[test]
    fn global_registries_are_reachable() {
        let _ = metrics();
        let _ = tracer();
    }
}
