//! Span tracing: a global [`Tracer`] handing out cheap RAII [`SpanGuard`]s.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero cost when disabled** — `span()` on a disabled tracer is one
//!    relaxed atomic load returning an inert guard whose `Drop` does
//!    nothing. No allocation, no clock read, no lock.
//! 2. **Lock-light when enabled** — finished spans are appended to one of
//!    [`SHARDS`] mutex-protected buffers picked by thread id, so worker
//!    threads almost never contend; the only global atomics are the span-id
//!    counter and the drop counter.
//! 3. **Cross-thread and cross-process stitching** — parents are tracked
//!    per-thread (a thread-local span stack), crossed over threads by
//!    passing an explicit parent id ([`Tracer::span_under`]), and crossed
//!    over the wire by exporting a subtree as [`RemoteSpan`]s and grafting
//!    it back with [`Tracer::import`], which re-ids remote spans into the
//!    local id space.
//!
//! Timestamps are recorded as microseconds since the tracer's creation
//! (monotonic [`Instant`]), paired with the Unix-epoch microsecond captured
//! at the same moment so remote spans — which travel as absolute Unix
//! micros — can be rebased into the local monotonic timeline.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

use super::ObsPolicy;

/// Number of independent span buffers; threads hash onto one by id.
const SHARDS: usize = 16;

/// Default capacity (spans) across all shards when none is configured.
pub const DEFAULT_BUFFER_CAPACITY: usize = 65_536;

/// One closed span, as stored in the trace buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within this tracer (ids start at 1; 0 means "no span").
    pub id: u64,
    /// Parent span id, or 0 for a root.
    pub parent: u64,
    /// Phase or operation name, e.g. `"phase.route"` or `"job.execute"`.
    pub name: Cow<'static, str>,
    /// Start time, microseconds since the tracer was created.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Opaque id of the thread that recorded the span.
    pub thread: u64,
    /// True when the span was grafted from a remote process.
    pub remote: bool,
}

/// A span exported for (or imported from) another process: ids are only
/// meaningful within the exporting process, and the start time is absolute
/// Unix-epoch microseconds so the importer can rebase it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteSpan {
    /// Span id in the *exporting* process's id space.
    pub id: u64,
    /// Parent id in the same space; 0 marks a root of the exported subtree.
    pub parent: u64,
    /// Phase or operation name.
    pub name: String,
    /// Start time, absolute microseconds since the Unix epoch.
    pub start_unix_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
}

thread_local! {
    /// The stack of currently-open span ids on this thread.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The tracing engine. Most code uses the process-global instance via
/// [`tracer()`]; tests may build private instances with [`Tracer::new`].
pub struct Tracer {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    next_id: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
    epoch_unix_us: u64,
    shards: [Mutex<Vec<SpanRecord>>; SHARDS],
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("recorded", &self.recorded.load(Ordering::Relaxed))
            .field("dropped", &self.dropped_spans())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh, disabled tracer with the default buffer capacity.
    pub fn new() -> Self {
        let epoch_unix_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        Tracer {
            enabled: AtomicBool::new(false),
            capacity: AtomicUsize::new(DEFAULT_BUFFER_CAPACITY),
            next_id: AtomicU64::new(1),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            epoch_unix_us,
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    /// Applies an [`ObsPolicy`]: a policy with `enabled` turns tracing on
    /// (and adopts its buffer capacity); a disabled policy is a no-op so
    /// that merely constructing configs never flips the global tracer off
    /// behind another component's back.
    pub fn configure(&self, policy: &ObsPolicy) {
        if policy.enabled {
            self.capacity.store(policy.buffer_capacity, Ordering::Relaxed);
            self.enabled.store(true, Ordering::Relaxed);
        }
    }

    /// Turns tracing on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns tracing off (already-open guards still record on drop).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Opens a span parented under the innermost open span on this thread
    /// (or as a root). The returned guard records the span when dropped.
    #[inline]
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard { inner: None };
        }
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
        self.open(name.into(), parent)
    }

    /// Opens a span under an explicit parent id — the cross-thread form
    /// (e.g. a worker resuming under the span id carried by its job).
    /// `parent == 0` makes a root span.
    #[inline]
    pub fn span_under(&self, name: impl Into<Cow<'static, str>>, parent: u64) -> SpanGuard<'_> {
        if !self.enabled() {
            return SpanGuard { inner: None };
        }
        self.open(name.into(), parent)
    }

    fn open(&self, name: Cow<'static, str>, parent: u64) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            inner: Some(OpenSpan { tracer: self, id, parent, name, started: Instant::now() }),
        }
    }

    /// The id of the innermost open span on this thread, or 0.
    pub fn current(&self) -> u64 {
        SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
    }

    fn push(&self, record: SpanRecord) {
        let capacity = self.capacity.load(Ordering::Relaxed);
        if self.recorded.fetch_add(1, Ordering::Relaxed) as u128 >= capacity as u128 {
            self.recorded.fetch_sub(1, Ordering::Relaxed);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let shard = (record.thread as usize) % SHARDS;
        self.shards[shard].lock().push(record);
    }

    /// Microseconds elapsed since this tracer's epoch.
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// The Unix-epoch microsecond corresponding to tracer time `t_us`.
    pub fn to_unix_us(&self, t_us: u64) -> u64 {
        self.epoch_unix_us.saturating_add(t_us)
    }

    /// Grafts a remote span subtree under local span `under`, remapping ids
    /// into this tracer's id space and rebasing absolute Unix timestamps
    /// onto the local monotonic timeline. Remote parents that don't appear
    /// in the batch attach to `under` (0-parented roots always do).
    pub fn import(&self, spans: &[RemoteSpan], under: u64) {
        if !self.enabled() || spans.is_empty() {
            return;
        }
        let mut remap = std::collections::HashMap::with_capacity(spans.len());
        for span in spans {
            remap.insert(span.id, self.next_id.fetch_add(1, Ordering::Relaxed));
        }
        for span in spans {
            let parent = match span.parent {
                0 => under,
                p => remap.get(&p).copied().unwrap_or(under),
            };
            self.push(SpanRecord {
                id: remap[&span.id],
                parent,
                name: Cow::Owned(span.name.clone()),
                start_us: span.start_unix_us.saturating_sub(self.epoch_unix_us),
                duration_us: span.duration_us,
                thread: u64::MAX, // remote spans carry no local thread
                remote: true,
            });
        }
    }

    /// Takes every recorded span out of the buffer, sorted by start time.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.append(&mut shard.lock());
        }
        self.recorded.store(0, Ordering::Relaxed);
        all.sort_by_key(|s| (s.start_us, s.id));
        all
    }

    /// Copies the recorded spans without clearing the buffer.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().iter().cloned());
        }
        all.sort_by_key(|s| (s.start_us, s.id));
        all
    }

    /// Spans discarded because the buffer was full.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Clears the buffer and the drop counter (ids keep increasing, so
    /// spans recorded before and after a reset never collide).
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        self.recorded.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// An open span on a private or global tracer.
struct OpenSpan<'t> {
    tracer: &'t Tracer,
    id: u64,
    parent: u64,
    name: Cow<'static, str>,
    started: Instant,
}

/// RAII guard: records the span into the tracer when dropped. Inert (all
/// methods return 0 / do nothing) when the tracer was disabled at open.
pub struct SpanGuard<'t> {
    inner: Option<OpenSpan<'t>>,
}

impl SpanGuard<'_> {
    /// The span's id, or 0 for an inert guard — pass this to
    /// [`Tracer::span_under`] on another thread, or into a wire context.
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.id)
    }

    /// Whether this guard will record anything.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else { return };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == open.id) {
                stack.remove(pos);
            }
        });
        let duration_us = open.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let start_us = open.tracer.now_us().saturating_sub(duration_us);
        let thread = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            h.finish()
        };
        open.tracer.push(SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            start_us,
            duration_us,
            thread,
            remote: false,
        });
    }
}

/// The process-global tracer used by the pipeline, dispatcher and net
/// client. Disabled until a [`QrccConfig`](crate::QrccConfig) with
/// `with_tracing(true)` flows through `QrccPipeline::plan` (or it is
/// enabled explicitly).
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        {
            let guard = t.span("nope");
            assert_eq!(guard.id(), 0);
            assert!(!guard.is_recording());
        }
        assert!(t.drain().is_empty());
    }

    #[test]
    fn nesting_follows_the_thread_local_stack() {
        let t = Tracer::new();
        t.enable();
        let (root_id, child_id);
        {
            let root = t.span("root");
            root_id = root.id();
            {
                let child = t.span("child");
                child_id = child.id();
            }
        }
        let spans = t.drain();
        assert_eq!(spans.len(), 2);
        let child = spans.iter().find(|s| s.id == child_id).unwrap();
        let root = spans.iter().find(|s| s.id == root_id).unwrap();
        assert_eq!(child.parent, root_id);
        assert_eq!(root.parent, 0);
        assert_eq!(child.name, "child");
    }

    #[test]
    fn span_under_crosses_threads() {
        let t = Tracer::new();
        t.enable();
        let parent_id = {
            let parent = t.span("parent");
            let id = parent.id();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _job = t.span_under("job", id);
                });
            });
            id
        };
        let spans = t.drain();
        let job = spans.iter().find(|s| s.name == "job").unwrap();
        assert_eq!(job.parent, parent_id);
    }

    #[test]
    fn buffer_capacity_drops_overflow() {
        let t = Tracer::new();
        t.configure(&ObsPolicy { enabled: true, buffer_capacity: 4, trace_path: None });
        for _ in 0..10 {
            let _s = t.span("s");
        }
        assert_eq!(t.drain().len(), 4);
        assert_eq!(t.dropped_spans(), 6);
    }

    #[test]
    fn import_remaps_ids_and_grafts_under_parent() {
        let t = Tracer::new();
        t.enable();
        let local = t.span("local");
        let local_id = local.id();
        let remote = vec![
            RemoteSpan {
                id: 1,
                parent: 0,
                name: "server.batch".into(),
                start_unix_us: t.to_unix_us(5),
                duration_us: 100,
            },
            RemoteSpan {
                id: 2,
                parent: 1,
                name: "server.execute".into(),
                start_unix_us: t.to_unix_us(10),
                duration_us: 80,
            },
        ];
        t.import(&remote, local_id);
        drop(local);
        let spans = t.drain();
        let batch = spans.iter().find(|s| s.name == "server.batch").unwrap();
        let exec = spans.iter().find(|s| s.name == "server.execute").unwrap();
        assert!(batch.remote && exec.remote);
        assert_eq!(batch.parent, local_id);
        assert_eq!(exec.parent, batch.id);
        assert_ne!(batch.id, 1, "remote ids must be remapped into the local space");
        assert_eq!(batch.start_us, 5);
    }

    #[test]
    fn disabled_policy_does_not_flip_tracing_off() {
        let t = Tracer::new();
        t.enable();
        t.configure(&ObsPolicy::default());
        assert!(t.enabled());
    }
}
