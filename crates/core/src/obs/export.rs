//! Span exporters and structural trace validation.
//!
//! Two machine formats and one checker:
//!
//! * [`chrome_trace`] — Chrome `trace_events` JSON (load in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)): complete
//!   (`"ph":"X"`) events with microsecond timestamps, remote spans on a
//!   separate synthetic process id so the stitched server subtree is
//!   visually distinct.
//! * [`spans_jsonl`] — one flat JSON object per line per span, for `jq`
//!   and log shippers.
//! * [`validate_spans`] — the trace-gate check: ids unique, every parent
//!   resolves, every span closed (durations recorded by construction).

use super::metrics::MetricsSnapshot;
use super::tracer::SpanRecord;

/// Escapes a string for embedding in a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders spans as a Chrome `trace_events` JSON document. Local spans get
/// `pid` 1 with their recording thread as `tid`; remote (stitched) spans
/// get `pid` 2 so the server subtree shows up as its own process track.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (pid, tid) = if span.remote { (2, 1) } else { (1, span.thread % 0xffff) };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\
             \"args\":{{\"id\":{},\"parent\":{}}}}}",
            json_escape(&span.name),
            span.start_us,
            span.duration_us,
            pid,
            tid,
            span.id,
            span.parent,
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders spans as JSON-lines: one object per span per line.
pub fn spans_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for span in spans {
        out.push_str(&format!(
            "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_us\":{},\"duration_us\":{},\
             \"remote\":{}}}\n",
            span.id,
            span.parent,
            json_escape(&span.name),
            span.start_us,
            span.duration_us,
            span.remote,
        ));
    }
    out
}

/// Renders one benchmark result in the shared bench schema every
/// `BENCH_*.json` file uses:
///
/// ```json
/// {"name": "...", "config": {...}, "metrics": {...}}
/// ```
///
/// `config` entries are **pre-rendered JSON values** (callers format their
/// numbers, booleans and quoted strings themselves). Metrics come from a
/// [`MetricsSnapshot`]: counters render as integers, gauges as floats
/// (non-finite values as `null`), histograms as
/// `{"count","sum","min","max","mean","p50","p90","p99","p999"}` objects
/// (empty histograms as `{"count":0,"sum":0}`).
pub fn bench_json(name: &str, config: &[(&str, String)], metrics: &MetricsSnapshot) -> String {
    fn float(value: f64) -> String {
        if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        }
    }
    let mut out = format!("{{\n  \"name\": \"{}\",\n  \"config\": {{", json_escape(name));
    for (i, (key, value)) in config.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {value}", json_escape(key)));
    }
    out.push_str("},\n  \"metrics\": {");
    let mut first = true;
    let mut entry = |out: &mut String, key: &str, value: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {value}", json_escape(key)));
    };
    for (key, value) in &metrics.counters {
        entry(&mut out, key, format!("{value}"));
    }
    for (key, value) in &metrics.gauges {
        entry(&mut out, key, float(*value));
    }
    for (key, histogram) in &metrics.histograms {
        let value = match (histogram.min(), histogram.max(), histogram.mean()) {
            (Some(min), Some(max), Some(mean)) => format!(
                "{{\"count\": {}, \"sum\": {}, \"min\": {min}, \"max\": {max}, \
                 \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}}",
                histogram.count(),
                histogram.sum(),
                float(mean),
                histogram.p50().unwrap_or(0),
                histogram.p90().unwrap_or(0),
                histogram.p99().unwrap_or(0),
                histogram.p999().unwrap_or(0),
            ),
            _ => "{\"count\": 0, \"sum\": 0}".to_string(),
        };
        entry(&mut out, key, value);
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Structurally validates a drained trace: span ids must be unique and
/// non-zero, and every non-zero parent id must resolve to a span in the
/// set. (Every drained span is closed by construction — open guards have
/// not recorded yet — so "every span closed" is implied by presence.)
pub fn validate_spans(spans: &[SpanRecord]) -> Result<(), String> {
    let mut ids = std::collections::HashSet::with_capacity(spans.len());
    for span in spans {
        if span.id == 0 {
            return Err(format!("span \"{}\" has id 0 (reserved for \"no span\")", span.name));
        }
        if !ids.insert(span.id) {
            return Err(format!("duplicate span id {} (\"{}\")", span.id, span.name));
        }
    }
    for span in spans {
        if span.parent != 0 && !ids.contains(&span.parent) {
            return Err(format!(
                "span {} (\"{}\") has unresolved parent {}",
                span.id, span.name, span.parent
            ));
        }
    }
    Ok(())
}

/// True when `spans` contains at least one remote span whose parent chain
/// reaches a local root — i.e. the remote subtree is stitched into the
/// client-side tree rather than floating.
pub fn remote_subtree_stitched(spans: &[SpanRecord]) -> bool {
    let by_id: std::collections::HashMap<u64, &SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    spans.iter().filter(|s| s.remote).any(|s| {
        let mut cursor = s;
        let mut hops = 0;
        loop {
            if cursor.parent == 0 {
                return !cursor.remote; // reached a root: must be local
            }
            match by_id.get(&cursor.parent) {
                Some(parent) if hops < spans.len() => {
                    cursor = parent;
                    hops += 1;
                }
                _ => return false,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn span(id: u64, parent: u64, name: &'static str, remote: bool) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: Cow::Borrowed(name),
            start_us: id * 10,
            duration_us: 5,
            thread: 1,
            remote,
        }
    }

    #[test]
    fn chrome_trace_is_wellformed_and_separates_remote() {
        let spans = vec![span(1, 0, "root", false), span(2, 1, "server.batch", true)];
        let json = chrome_trace(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"root\""));
        assert!(json.contains("\"pid\":2"), "remote spans should sit on pid 2");
        assert!(json.ends_with('}'));
    }

    #[test]
    fn jsonl_emits_one_line_per_span() {
        let spans = vec![span(1, 0, "a", false), span(2, 1, "b", false)];
        let text = spans_jsonl(&spans);
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn validation_catches_duplicates_and_orphans() {
        assert!(validate_spans(&[span(1, 0, "a", false), span(2, 1, "b", false)]).is_ok());
        assert!(validate_spans(&[span(1, 0, "a", false), span(1, 0, "b", false)])
            .unwrap_err()
            .contains("duplicate"));
        assert!(validate_spans(&[span(2, 9, "b", false)]).unwrap_err().contains("unresolved"));
    }

    #[test]
    fn stitching_requires_a_local_root_above_a_remote_span() {
        // remote span under a local root: stitched
        assert!(remote_subtree_stitched(&[span(1, 0, "root", false), span(2, 1, "srv", true)]));
        // remote-only tree: not stitched
        assert!(!remote_subtree_stitched(&[span(1, 0, "srv", true), span(2, 1, "exec", true)]));
        // no remote spans at all: nothing stitched
        assert!(!remote_subtree_stitched(&[span(1, 0, "root", false)]));
    }

    #[test]
    fn json_escape_handles_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn bench_json_renders_all_three_metric_kinds() {
        use crate::obs::{Histogram, MetricsSnapshot};
        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        let snapshot = MetricsSnapshot::default()
            .with_counter("requests", 2)
            .with_gauge("speedup", 1.5)
            .with_histogram("latency_us", h);
        let json = bench_json(
            "bench_example",
            &[("qubits", "6".to_string()), ("smoke", "false".to_string())],
            &snapshot,
        );
        assert!(json.contains("\"name\": \"bench_example\""), "{json}");
        assert!(json.contains("\"qubits\": 6"), "{json}");
        assert!(json.contains("\"requests\": 2"), "{json}");
        assert!(json.contains("\"speedup\": 1.5"), "{json}");
        assert!(json.contains("\"p50\":"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
        // empty histograms degrade to a count-0 stub instead of nulls
        let empty = MetricsSnapshot::default().with_histogram("empty", Histogram::new());
        assert!(bench_json("x", &[], &empty).contains("{\"count\": 0, \"sum\": 0}"));
    }
}
