//! Time-windowed metrics: last-N-seconds views over the log-bucketed
//! [`Histogram`] and plain event counters.
//!
//! The boot-to-now histograms in the registry answer "what was p99 since
//! this process started?" — useless for watching a live fleet, where the
//! question is "what is p99 *right now*?". [`WindowedHistogram`] and
//! [`RateCounter`] answer it with a **ring of buckets rotated on a fixed
//! time grid**: recording lands in the grid bucket covering `now`, and a
//! windowed readout is the [exactly associative merge](Histogram::merge) of
//! the buckets still inside the window. Rotation is O(1) per record (at
//! most one stale slot is recycled), readout is O(buckets), and no
//! background thread exists — time advances only when callers record or
//! read.
//!
//! Every operation takes time as an explicit microsecond timestamp
//! (`*_at`), with `Instant`-based convenience wrappers on top — so tests
//! and proptests drive the grid deterministically without sleeping.

use std::time::{Duration, Instant};

use super::Histogram;

/// Marks a ring slot that has never been written (or was recycled).
const EMPTY: u64 = u64::MAX;

/// Grid arithmetic shared by [`WindowedHistogram`] and [`RateCounter`]:
/// a window of `buckets` slots, each `bucket_width_us` wide, addressed by
/// the grid-aligned start timestamp of the bucket covering a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Grid {
    bucket_width_us: u64,
    buckets: usize,
}

impl Grid {
    fn new(window: Duration, buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let window_us = (window.as_micros().min(u64::MAX as u128) as u64).max(buckets as u64);
        Grid { bucket_width_us: (window_us / buckets as u64).max(1), buckets }
    }

    fn window_us(&self) -> u64 {
        self.bucket_width_us * self.buckets as u64
    }

    /// The grid-aligned start of the bucket covering `now_us`.
    fn align(&self, now_us: u64) -> u64 {
        now_us - now_us % self.bucket_width_us
    }

    /// The ring slot index of the bucket starting at `start_us`.
    fn slot(&self, start_us: u64) -> usize {
        ((start_us / self.bucket_width_us) % self.buckets as u64) as usize
    }

    /// Whether a bucket starting at `start_us` is still inside the window
    /// ending at `now_us`. The window covers the current (possibly partial)
    /// bucket plus the `buckets - 1` buckets before it — exactly the ring.
    fn live(&self, start_us: u64, now_us: u64) -> bool {
        start_us != EMPTY && start_us <= now_us && now_us < start_us + self.window_us()
    }
}

/// A last-N-seconds view over [`Histogram`] samples: a ring of
/// grid-rotated buckets whose live subset merges — exactly, by the
/// histogram merge's associativity — into the windowed readout.
///
/// The windowed `p50`/`p99`/`p999` therefore carry the same ≤ 6.25 %
/// relative error bound as the underlying histogram, over only the samples
/// recorded in the last [`WindowedHistogram::window`]. Samples older than
/// the window never leak into a readout: a stale ring slot is recycled
/// before reuse and skipped by [`WindowedHistogram::snapshot_at`].
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    grid: Grid,
    /// Grid-aligned start timestamp per ring slot ([`EMPTY`] = never used).
    starts: Vec<u64>,
    slots: Vec<Histogram>,
    epoch: Instant,
}

impl WindowedHistogram {
    /// A window of `window` split into `buckets` rotation buckets (clamped
    /// to at least one; the effective window is `buckets` × the rounded
    /// bucket width, so prefer windows divisible by the bucket count).
    pub fn new(window: Duration, buckets: usize) -> Self {
        let grid = Grid::new(window, buckets);
        WindowedHistogram {
            grid,
            starts: vec![EMPTY; grid.buckets],
            slots: vec![Histogram::new(); grid.buckets],
            epoch: Instant::now(),
        }
    }

    /// The effective window length (bucket width × bucket count).
    pub fn window(&self) -> Duration {
        Duration::from_micros(self.grid.window_us())
    }

    /// Width of one rotation bucket.
    pub fn bucket_width(&self) -> Duration {
        Duration::from_micros(self.grid.bucket_width_us)
    }

    /// Microseconds since this window was created — the `now_us` the
    /// convenience methods feed to the `*_at` core.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Records one sample at the current time.
    pub fn record(&mut self, value: u64) {
        self.record_at(self.now_us(), value);
    }

    /// Records a [`Duration`] (as microseconds) at the current time.
    pub fn record_duration(&mut self, duration: Duration) {
        self.record(duration.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one sample at an explicit timestamp. Timestamps may arrive
    /// slightly out of order; a sample older than the whole window is
    /// dropped rather than resurrecting an expired bucket.
    pub fn record_at(&mut self, now_us: u64, value: u64) {
        let start = self.grid.align(now_us);
        let slot = self.grid.slot(start);
        if self.starts[slot] != start {
            // the slot belongs to an expired grid position: recycle it —
            // expired samples must never merge into a future readout
            if self.starts[slot] != EMPTY && self.starts[slot] > start {
                return; // stale sample from before the slot was recycled
            }
            self.starts[slot] = start;
            self.slots[slot] = Histogram::new();
        }
        self.slots[slot].record(value);
    }

    /// The merged histogram of the last [`WindowedHistogram::window`],
    /// as of the current time.
    pub fn snapshot(&self) -> Histogram {
        self.snapshot_at(self.now_us())
    }

    /// The merged histogram of the window ending at `now_us` — exactly the
    /// merge of the live buckets (the associativity property the proptests
    /// pin down), with expired buckets skipped.
    pub fn snapshot_at(&self, now_us: u64) -> Histogram {
        let mut merged = Histogram::new();
        for (start, slot) in self.starts.iter().zip(&self.slots) {
            if self.grid.live(*start, now_us) {
                merged.merge(slot);
            }
        }
        merged
    }

    /// The live buckets of the window ending at `now_us`, oldest first, as
    /// `(bucket start, histogram)` pairs — what the rotation proptests
    /// merge by hand to compare against [`WindowedHistogram::snapshot_at`].
    pub fn live_buckets_at(&self, now_us: u64) -> Vec<(u64, &Histogram)> {
        let mut live: Vec<(u64, &Histogram)> = self
            .starts
            .iter()
            .zip(&self.slots)
            .filter(|(start, _)| self.grid.live(**start, now_us))
            .map(|(start, slot)| (*start, slot))
            .collect();
        live.sort_by_key(|(start, _)| *start);
        live
    }
}

/// A windowed event counter: counts per rotation bucket, summed over the
/// live window for "events in the last N seconds" and divided by the
/// window for events/s. Same grid semantics as [`WindowedHistogram`].
#[derive(Debug, Clone)]
pub struct RateCounter {
    grid: Grid,
    starts: Vec<u64>,
    counts: Vec<u64>,
    epoch: Instant,
}

impl RateCounter {
    /// A window of `window` split into `buckets` rotation buckets.
    pub fn new(window: Duration, buckets: usize) -> Self {
        let grid = Grid::new(window, buckets);
        RateCounter {
            grid,
            starts: vec![EMPTY; grid.buckets],
            counts: vec![0; grid.buckets],
            epoch: Instant::now(),
        }
    }

    /// The effective window length.
    pub fn window(&self) -> Duration {
        Duration::from_micros(self.grid.window_us())
    }

    /// Microseconds since this counter was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Counts `delta` events at the current time.
    pub fn add(&mut self, delta: u64) {
        self.add_at(self.now_us(), delta);
    }

    /// Counts `delta` events at an explicit timestamp (out-of-window
    /// stragglers are dropped, mirroring [`WindowedHistogram::record_at`]).
    pub fn add_at(&mut self, now_us: u64, delta: u64) {
        let start = self.grid.align(now_us);
        let slot = self.grid.slot(start);
        if self.starts[slot] != start {
            if self.starts[slot] != EMPTY && self.starts[slot] > start {
                return;
            }
            self.starts[slot] = start;
            self.counts[slot] = 0;
        }
        self.counts[slot] = self.counts[slot].saturating_add(delta);
    }

    /// Events counted in the window ending now.
    pub fn count(&self) -> u64 {
        self.count_at(self.now_us())
    }

    /// Events counted in the window ending at `now_us`.
    pub fn count_at(&self, now_us: u64) -> u64 {
        self.starts
            .iter()
            .zip(&self.counts)
            .filter(|(start, _)| self.grid.live(**start, now_us))
            .map(|(_, count)| *count)
            .fold(0u64, u64::saturating_add)
    }

    /// Events per second over the window ending now.
    pub fn rate(&self) -> f64 {
        self.rate_at(self.now_us())
    }

    /// Events per second over the window ending at `now_us`.
    pub fn rate_at(&self, now_us: u64) -> f64 {
        self.count_at(now_us) as f64 / (self.grid.window_us() as f64 / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(ms: u64, buckets: usize) -> WindowedHistogram {
        WindowedHistogram::new(Duration::from_millis(ms), buckets)
    }

    #[test]
    fn snapshot_covers_only_the_window() {
        let mut w = window(10, 5); // 2 ms buckets
        w.record_at(0, 100);
        w.record_at(3_000, 200);
        w.record_at(9_000, 300);
        // at t=9 ms every sample is live
        assert_eq!(w.snapshot_at(9_000).count(), 3);
        // at t=11 ms the t=0 bucket (0..2 ms) has expired
        let snap = w.snapshot_at(11_000);
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min(), Some(200));
        // far in the future everything expired
        assert_eq!(w.snapshot_at(60_000).count(), 0);
    }

    #[test]
    fn recycled_slots_never_leak_expired_samples() {
        let mut w = window(10, 5);
        w.record_at(1_000, 7); // bucket [0, 2ms) in slot 0
                               // one full window later the same slot hosts bucket [10ms, 12ms)
        w.record_at(11_000, 9);
        let snap = w.snapshot_at(11_000);
        assert_eq!(snap.count(), 1, "the recycled slot must forget the old bucket");
        assert_eq!(snap.min(), Some(9));
    }

    #[test]
    fn stale_out_of_order_samples_are_dropped() {
        let mut w = window(10, 5);
        w.record_at(11_000, 9); // slot 0 now holds bucket [10ms, 12ms)
        w.record_at(1_000, 7); // straggler for the expired [0, 2ms) bucket
        assert_eq!(w.snapshot_at(11_000).count(), 1);
    }

    #[test]
    fn snapshot_equals_manual_merge_of_live_buckets() {
        let mut w = window(20, 4);
        for i in 0..40u64 {
            w.record_at(i * 700, i);
        }
        let now = 27_300;
        let mut manual = Histogram::new();
        for (_, bucket) in w.live_buckets_at(now) {
            manual.merge(bucket);
        }
        assert_eq!(w.snapshot_at(now), manual);
    }

    #[test]
    fn instant_based_recording_reads_back() {
        let mut w = window(1_000, 10);
        w.record(42);
        w.record_duration(Duration::from_micros(58));
        let snap = w.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min(), Some(42));
    }

    #[test]
    fn degenerate_configurations_are_clamped() {
        let w = WindowedHistogram::new(Duration::ZERO, 0);
        assert!(w.window() >= Duration::from_micros(1));
        let mut w = WindowedHistogram::new(Duration::from_micros(3), 10);
        w.record_at(0, 5);
        assert_eq!(w.snapshot_at(0).count(), 1);
    }

    #[test]
    fn rate_counter_windows_and_rates() {
        let mut r = RateCounter::new(Duration::from_secs(1), 10); // 100 ms buckets
        r.add_at(0, 5);
        r.add_at(450_000, 5);
        r.add_at(950_000, 10);
        assert_eq!(r.count_at(950_000), 20);
        assert!((r.rate_at(950_000) - 20.0).abs() < 1e-9);
        // the t=0 bucket expires a window later
        assert_eq!(r.count_at(1_050_000), 15);
        assert_eq!(r.count_at(10_000_000), 0);
    }

    #[test]
    fn rate_counter_drops_stale_stragglers() {
        let mut r = RateCounter::new(Duration::from_secs(1), 10);
        r.add_at(1_100_000, 3); // slot 1 hosts [1.1s, 1.2s)
        r.add_at(100_000, 9); // straggler for expired [0.1s, 0.2s)
        assert_eq!(r.count_at(1_100_000), 3);
    }
}
