//! Unified reporting: the [`PhaseProfile`] flame summary attached to
//! [`ReconstructionReport`](crate::ReconstructionReport), adapters turning
//! the repo's five telemetry structs into [`MetricsSnapshot`]s, and
//! [`QrccReport`] — one renderable view over all of them.

use std::time::Duration;

use super::{Histogram, MetricsSnapshot};
use crate::cache::CacheStats;
use crate::dispatch::DispatchStats;
use crate::reconstruct::ReconstructionReport;
use crate::schedule::ScheduleReport;

/// Wall-clock attribution by pipeline phase — "where did this run's time
/// go?". Phases are measured independently and may overlap (the fold phase
/// runs concurrently with dispatch), so percentages can sum past 100; a sum
/// well *below* 100 means unattributed time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseProfile {
    /// `(phase name, wall-clock)` in execution order.
    pub phases: Vec<(String, Duration)>,
    /// Total measured wall-clock of the run.
    pub total: Duration,
}

impl PhaseProfile {
    /// Starts an empty profile; feed it with [`PhaseProfile::add`].
    pub fn new() -> Self {
        PhaseProfile::default()
    }

    /// Records one phase's wall-clock.
    pub fn add(&mut self, name: &str, elapsed: Duration) {
        self.phases.push((name.to_owned(), elapsed));
    }

    /// Sum of all phase durations (may exceed `total` when phases overlap).
    pub fn attributed(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Attributed time over total: the share of wall-clock the phase
    /// breakdown explains. ≥ 1.0 is possible with overlapping phases.
    pub fn coverage(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.attributed().as_secs_f64() / self.total.as_secs_f64()
    }
}

impl std::fmt::Display for PhaseProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "wall-clock by phase (total {:.3?}):", self.total)?;
        let total = self.total.as_secs_f64().max(f64::MIN_POSITIVE);
        for (name, elapsed) in &self.phases {
            let share = elapsed.as_secs_f64() / total * 100.0;
            let bar = "#".repeat(((share / 4.0).round() as usize).min(25));
            writeln!(f, "  {name:<12} {share:>5.1}%  {elapsed:>10.3?}  {bar}")?;
        }
        write!(f, "  attributed   {:>5.1}%  (phases may overlap)", self.coverage() * 100.0)
    }
}

/// Adapters from the pre-existing telemetry structs into
/// [`MetricsSnapshot`]s, so [`QrccReport`] (and Prometheus exposition) can
/// present all five through one vocabulary.
pub mod adapt {
    use super::*;
    use qrcc_sim::compile::CompileStats;

    fn duration_histogram(total: Duration, events: u64) -> Histogram {
        // The legacy structs keep only totals; represent each as a single
        // mean-valued sample so merges and quantile readouts stay
        // well-formed (exact per-event samples flow through the live
        // metrics registry instead).
        let mut h = Histogram::new();
        if events > 0 {
            h.record((total.as_micros() / events as u128).min(u64::MAX as u128) as u64);
        }
        h
    }

    /// [`DispatchStats`] as counters plus per-phase wall totals.
    pub fn dispatch_metrics(stats: &DispatchStats) -> MetricsSnapshot {
        MetricsSnapshot::default()
            .with_counter("dispatch.jobs_dispatched", stats.jobs_dispatched)
            .with_counter("dispatch.jobs_completed", stats.jobs_completed)
            .with_counter("dispatch.jobs_retried", stats.jobs_retried)
            .with_counter("dispatch.jobs_requeued", stats.jobs_requeued)
            .with_counter("dispatch.failures", stats.failures)
            .with_counter("dispatch.queue_wait_total_us", stats.queue_wait.as_micros() as u64)
            .with_counter("dispatch.execute_wall_total_us", stats.execute_wall.as_micros() as u64)
            .with_counter("dispatch.deliver_wall_total_us", stats.deliver_wall.as_micros() as u64)
            .with_gauge("dispatch.max_in_flight_chunks", stats.max_in_flight_chunks as f64)
            .with_histogram(
                "dispatch.queue_wait_us",
                duration_histogram(stats.queue_wait, stats.jobs_dispatched),
            )
    }

    /// [`CacheStats`] as counters and occupancy gauges.
    pub fn cache_metrics(stats: &CacheStats) -> MetricsSnapshot {
        MetricsSnapshot::default()
            .with_counter("cache.hits", stats.hits)
            .with_counter("cache.delta_hits", stats.delta_hits)
            .with_counter("cache.misses", stats.misses)
            .with_counter("cache.insertions", stats.insertions)
            .with_counter("cache.evictions", stats.evictions)
            .with_counter("cache.shots_saved", stats.shots_saved)
            .with_gauge("cache.entries", stats.entries as f64)
            .with_gauge("cache.weight", stats.weight as f64)
    }

    /// [`CompileStats`] as counters plus the fusion ratio gauge.
    pub fn compile_metrics(stats: &CompileStats) -> MetricsSnapshot {
        MetricsSnapshot::default()
            .with_counter("compile.gates_in", stats.gates_in)
            .with_counter("compile.kernels_out", stats.kernels_out)
            .with_counter("compile.control_kernels", stats.control_kernels)
            .with_counter("compile.eliminated_gates", stats.eliminated_gates)
            .with_counter("compile.cache_hits", stats.cache_hits)
            .with_counter("compile.cache_misses", stats.cache_misses)
            .with_gauge("compile.fusion_ratio", stats.fusion_ratio())
    }

    /// [`ScheduleReport`] (minus its embedded dispatch stats) as metrics.
    pub fn schedule_metrics(report: &ScheduleReport) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default()
            .with_counter("schedule.total_shots", report.total_shots)
            .with_counter("schedule.circuits", report.circuits)
            .with_counter("schedule.chunks", report.chunks as u64)
            .with_gauge("schedule.backends", report.backends.len() as f64);
        snap.merge(&dispatch_metrics(&report.dispatch));
        snap
    }

    /// The flat reconstruction fields (plus nested kernel-compile and
    /// result-cache stats when present) as metrics.
    pub fn reconstruction_metrics(report: &ReconstructionReport) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default()
            .with_counter("reconstruct.contractions", report.contractions as u64)
            .with_counter("reconstruct.kept_terms", report.kept_terms as u64)
            .with_counter("reconstruct.pruned_terms", report.pruned_terms as u64)
            .with_counter("reconstruct.shots_spent", report.shots_spent)
            .with_counter("reconstruct.dispatch_failures", report.dispatch_failures)
            .with_counter("reconstruct.dispatch_retries", report.dispatch_retries)
            .with_gauge("reconstruct.backends_used", report.backends_used as f64)
            .with_gauge("reconstruct.pruned_weight", report.pruned_weight)
            .with_gauge("reconstruct.max_contraction_legs", report.max_contraction_legs as f64);
        if let Some(compile) = &report.kernel_compile {
            snap.merge(&compile_metrics(compile));
        }
        if let Some(cache) = &report.result_cache {
            snap.merge(&cache_metrics(cache));
        }
        snap
    }
}

/// One report over everything a run produced: schedule + reconstruction
/// telemetry (via the adapters above), the live metrics registry, the phase
/// profile, and free-form named sections (e.g. per-server stats supplied by
/// `qrcc-net`). `render()` / `Display` shows the whole story.
#[derive(Debug, Clone, Default)]
pub struct QrccReport {
    /// Scheduling + dispatch telemetry, adapted to metrics on render.
    pub schedule: Option<ScheduleReport>,
    /// Reconstruction telemetry, adapted to metrics on render.
    pub reconstruction: Option<ReconstructionReport>,
    /// A snapshot of the live metrics registry (histograms included).
    pub metrics: MetricsSnapshot,
    /// The run's phase profile, when streaming execution measured one.
    pub profile: Option<PhaseProfile>,
    /// Extra named metric sections, e.g. one per remote server.
    pub sections: Vec<(String, MetricsSnapshot)>,
}

impl QrccReport {
    /// An empty report.
    pub fn new() -> Self {
        QrccReport::default()
    }

    /// Attaches a [`ScheduleReport`].
    #[must_use]
    pub fn with_schedule(mut self, schedule: ScheduleReport) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Attaches a [`ReconstructionReport`] (adopting its phase profile when
    /// no profile was set yet).
    #[must_use]
    pub fn with_reconstruction(mut self, reconstruction: ReconstructionReport) -> Self {
        if self.profile.is_none() {
            self.profile = reconstruction.profile.clone();
        }
        self.reconstruction = Some(reconstruction);
        self
    }

    /// Attaches a metrics snapshot (typically `obs::metrics().snapshot()`).
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsSnapshot) -> Self {
        self.metrics = metrics;
        self
    }

    /// Attaches an explicit phase profile.
    #[must_use]
    pub fn with_profile(mut self, profile: PhaseProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Adds a named metric section (e.g. `("server 127.0.0.1:7777", …)`).
    #[must_use]
    pub fn with_section(mut self, name: &str, metrics: MetricsSnapshot) -> Self {
        self.sections.push((name.to_owned(), metrics));
        self
    }

    /// Every metric in the report folded into one snapshot: adapted
    /// schedule + reconstruction metrics, the live snapshot, and all
    /// sections. This is what Prometheus exposition should serve.
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot::default();
        if let Some(schedule) = &self.schedule {
            merged.merge(&adapt::schedule_metrics(schedule));
        }
        if let Some(reconstruction) = &self.reconstruction {
            merged.merge(&adapt::reconstruction_metrics(reconstruction));
        }
        merged.merge(&self.metrics);
        for (_, section) in &self.sections {
            merged.merge(section);
        }
        merged
    }

    /// The human-readable rendering (same as `Display`).
    pub fn render(&self) -> String {
        self.to_string()
    }
}

fn render_snapshot(f: &mut std::fmt::Formatter<'_>, snap: &MetricsSnapshot) -> std::fmt::Result {
    for (name, value) in &snap.counters {
        writeln!(f, "  {name:<34} {value}")?;
    }
    for (name, value) in &snap.gauges {
        writeln!(f, "  {name:<34} {value:.3}")?;
    }
    for (name, histogram) in &snap.histograms {
        writeln!(f, "  {name:<34} {histogram}")?;
    }
    Ok(())
}

impl std::fmt::Display for QrccReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== qrcc report ==")?;
        if let Some(profile) = &self.profile {
            writeln!(f, "{profile}")?;
        }
        if let Some(schedule) = &self.schedule {
            writeln!(f, "-- schedule --")?;
            render_snapshot(f, &adapt::schedule_metrics(schedule))?;
        }
        if let Some(reconstruction) = &self.reconstruction {
            writeln!(f, "-- reconstruction --")?;
            render_snapshot(f, &adapt::reconstruction_metrics(reconstruction))?;
        }
        if !self.metrics.is_empty() {
            writeln!(f, "-- metrics --")?;
            render_snapshot(f, &self.metrics)?;
        }
        for (name, section) in &self.sections {
            writeln!(f, "-- {name} --")?;
            render_snapshot(f, section)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_display_shows_shares_and_coverage() {
        let mut profile = PhaseProfile::new();
        profile.add("enumerate", Duration::from_millis(10));
        profile.add("dispatch", Duration::from_millis(80));
        profile.add("contract", Duration::from_millis(10));
        profile.total = Duration::from_millis(100);
        let text = profile.to_string();
        assert!(text.contains("enumerate"), "{text}");
        assert!(text.contains("80.0%"), "{text}");
        assert!((profile.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_coverage_is_zero() {
        assert_eq!(PhaseProfile::new().coverage(), 0.0);
    }

    #[test]
    fn dispatch_adapter_exposes_all_counters() {
        let stats = DispatchStats {
            jobs_dispatched: 4,
            jobs_completed: 3,
            jobs_retried: 1,
            jobs_requeued: 0,
            failures: 1,
            max_in_flight_chunks: 2,
            queue_wait: Duration::from_micros(400),
            execute_wall: Duration::from_micros(4_000),
            deliver_wall: Duration::from_micros(40),
        };
        let snap = adapt::dispatch_metrics(&stats);
        let get = |n: &str| snap.counters.iter().find(|(k, _)| k == n).map(|(_, v)| *v);
        assert_eq!(get("dispatch.jobs_dispatched"), Some(4));
        assert_eq!(get("dispatch.failures"), Some(1));
        assert_eq!(get("dispatch.execute_wall_total_us"), Some(4_000));
    }

    #[test]
    fn report_renders_every_attached_section() {
        let mut profile = PhaseProfile::new();
        profile.add("dispatch", Duration::from_millis(5));
        profile.total = Duration::from_millis(5);
        let section = MetricsSnapshot::default().with_counter("server.batches", 2);
        let report = QrccReport::new()
            .with_profile(profile)
            .with_metrics(MetricsSnapshot::default().with_counter("net.pings", 3))
            .with_section("server A", section);
        let text = report.render();
        assert!(text.contains("wall-clock by phase"), "{text}");
        assert!(text.contains("net.pings"), "{text}");
        assert!(text.contains("-- server A --"), "{text}");
        assert!(text.contains("server.batches"), "{text}");
    }

    #[test]
    fn merged_metrics_folds_sections_into_one_snapshot() {
        let report = QrccReport::new()
            .with_metrics(MetricsSnapshot::default().with_counter("net.pings", 3))
            .with_section("s", MetricsSnapshot::default().with_counter("net.pings", 2));
        let merged = report.merged_metrics();
        assert_eq!(merged.counters, vec![("net.pings".to_owned(), 5)]);
    }
}
