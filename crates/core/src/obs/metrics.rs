//! Named counters, gauges and histograms behind one registry, with
//! Prometheus-style text exposition and snapshot merging.
//!
//! Conventions: metric names are dot-separated (`dispatch.queue_wait_us`);
//! the unit rides in the name suffix (`_us` = microseconds). Hot-path
//! callers gate recording on [`tracer().enabled()`](super::tracer) —
//! the registry itself is always live so cold-path telemetry (ping RTTs,
//! server batch latency) costs one short mutex hold per event.

use std::collections::BTreeMap;

use parking_lot::Mutex;

use super::Histogram;

#[derive(Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named counters, gauges and histograms. Most code uses the
/// process-global instance via [`metrics()`](super::metrics).
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<MetricsInner>,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Metrics")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Metrics {
    /// An empty registry (tests; production uses the global one).
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        let slot = inner.counters.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.inner.lock().gauges.insert(name.to_owned(), value);
    }

    /// Records one sample into the named histogram.
    pub fn record(&self, name: &str, value: u64) {
        self.inner.lock().histograms.entry(name.to_owned()).or_default().record(value);
    }

    /// Records a duration (in microseconds) into the named histogram.
    pub fn record_duration(&self, name: &str, duration: std::time::Duration) {
        self.record(name, duration.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Folds an external histogram (e.g. a remote delta) into the named one.
    pub fn merge_histogram(&self, name: &str, histogram: &Histogram) {
        self.inner.lock().histograms.entry(name.to_owned()).or_default().merge(histogram);
    }

    /// A copy of the named histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().histograms.get(name).cloned()
    }

    /// The named counter's value, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.inner.lock().counters.get(name).copied()
    }

    /// A point-in-time copy of everything in the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }

    /// Empties the registry (tests and process-global reuse between runs).
    pub fn clear(&self) {
        *self.inner.lock() = MetricsInner::default();
    }
}

/// An immutable copy of a [`Metrics`] registry: what reports render and
/// what bench JSON embeds. Entries are sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// One `(name, value)` counter — convenience for adapter construction.
    pub fn with_counter(mut self, name: &str, value: u64) -> Self {
        self.counters.push((name.to_owned(), value));
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self
    }

    /// One `(name, value)` gauge — convenience for adapter construction.
    pub fn with_gauge(mut self, name: &str, value: f64) -> Self {
        self.gauges.push((name.to_owned(), value));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self
    }

    /// One `(name, histogram)` pair — convenience for adapter construction.
    pub fn with_histogram(mut self, name: &str, histogram: Histogram) -> Self {
        self.histograms.push((name.to_owned(), histogram));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        self
    }

    /// Folds another snapshot in: counters add, gauges take the other's
    /// value (last-writer-wins), histograms merge.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (name, value) in &other.counters {
            let slot = counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, f64> = self.gauges.drain(..).collect();
        for (name, value) in &other.gauges {
            gauges.insert(name.clone(), *value);
        }
        self.gauges = gauges.into_iter().collect();

        let mut histograms: BTreeMap<String, Histogram> = self.histograms.drain(..).collect();
        for (name, histogram) in &other.histograms {
            histograms.entry(name.clone()).or_default().merge(histogram);
        }
        self.histograms = histograms.into_iter().collect();
    }

    /// Prometheus-style text exposition: counters as `counter`, gauges as
    /// `gauge`, histograms as `summary` quantile series plus `_sum` and
    /// `_count`. Dots in names become underscores per Prometheus rules.
    pub fn prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
        }
        for (name, histogram) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [
                (0.5, histogram.p50()),
                (0.9, histogram.p90()),
                (0.99, histogram.p99()),
                (0.999, histogram.p999()),
            ] {
                if let Some(v) = v {
                    out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
                }
            }
            out.push_str(&format!(
                "{n}_sum {}\n{n}_count {}\n",
                histogram.sum(),
                histogram.count()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_records_all_three_kinds() {
        let m = Metrics::new();
        m.counter_add("jobs", 2);
        m.counter_add("jobs", 3);
        m.gauge_set("depth", 4.5);
        m.record("lat_us", 100);
        m.record("lat_us", 200);
        assert_eq!(m.counter("jobs"), Some(5));
        let snap = m.snapshot();
        assert_eq!(snap.counters, vec![("jobs".to_owned(), 5)]);
        assert_eq!(snap.gauges, vec![("depth".to_owned(), 4.5)]);
        assert_eq!(snap.histograms[0].1.count(), 2);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_merges_histograms() {
        let a = Metrics::new();
        a.counter_add("jobs", 1);
        a.record("lat_us", 10);
        let b = Metrics::new();
        b.counter_add("jobs", 2);
        b.record("lat_us", 20);
        b.gauge_set("depth", 1.0);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counters, vec![("jobs".to_owned(), 3)]);
        assert_eq!(snap.histograms[0].1.count(), 2);
        assert_eq!(snap.gauges, vec![("depth".to_owned(), 1.0)]);
    }

    #[test]
    fn prometheus_exposition_has_types_and_quantiles() {
        let m = Metrics::new();
        m.counter_add("net.ping", 7);
        m.record("net.ping_rtt_us", 123);
        let text = m.snapshot().prometheus();
        assert!(text.contains("# TYPE net_ping counter"));
        assert!(text.contains("net_ping 7"));
        assert!(text.contains("# TYPE net_ping_rtt_us summary"));
        assert!(text.contains("net_ping_rtt_us{quantile=\"0.5\"} 123"));
        assert!(text.contains("net_ping_rtt_us_count 1"));
    }

    #[test]
    fn clear_empties_the_registry() {
        let m = Metrics::new();
        m.counter_add("x", 1);
        m.clear();
        assert!(m.snapshot().is_empty());
    }
}
