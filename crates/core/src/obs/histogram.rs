//! Log-bucketed latency histograms with quantile readout and an
//! **associative, commutative** merge, so per-worker and per-connection
//! histograms fold into fleet totals in any order with identical results.
//!
//! The bucketing is HDR-style: values `0..16` are exact (one bucket each);
//! beyond that every power-of-two octave is split into 16 linear
//! sub-buckets, bounding the relative quantile error at `1/16` (6.25 %).
//! Values at or above `2^40` (≈ 13 days in microseconds) **saturate** into
//! the top bucket — counted, merged, and reported at the top bucket's
//! boundary rather than dropped.

/// Exact one-value buckets for `0..EXACT`.
const EXACT: u64 = 16;
/// `log2(EXACT)`: sub-bucket resolution bits per octave.
const SUB_BITS: u32 = 4;
/// Values at or above `2^TOP_POW` saturate into the last bucket.
const TOP_POW: u32 = 40;
/// Total bucket count: 16 exact + 16 per octave for octaves 4..TOP_POW.
const BUCKETS: usize = EXACT as usize + (TOP_POW - SUB_BITS) as usize * 16;

/// Bucket index of `value` (total order preserving; saturating at the top).
fn index(value: u64) -> usize {
    if value < EXACT {
        return value as usize;
    }
    let h = 63 - value.leading_zeros();
    if h >= TOP_POW {
        return BUCKETS - 1;
    }
    let group = (h - SUB_BITS) as usize;
    let sub = ((value >> (h - SUB_BITS)) & (EXACT - 1)) as usize;
    EXACT as usize + group * 16 + sub
}

/// Inclusive `[lower, upper]` value range of bucket `idx`.
fn bounds(idx: usize) -> (u64, u64) {
    if idx < EXACT as usize {
        return (idx as u64, idx as u64);
    }
    let group = (idx - EXACT as usize) / 16;
    let sub = ((idx - EXACT as usize) % 16) as u64;
    let h = group as u32 + SUB_BITS;
    let width = 1u64 << (h - SUB_BITS);
    let lower = (1u64 << h) + sub * width;
    (lower, lower + width - 1)
}

/// A log-bucketed histogram of `u64` samples (latencies in microseconds,
/// counts, sizes — the unit is the metric name's business).
///
/// * `record` is O(1) with no allocation after the first sample.
/// * `quantile`/[`Histogram::p50`]…[`Histogram::p999`] read any quantile at
///   ≤ 6.25 % relative error (exact below 16, clamped to the true observed
///   maximum at the top).
/// * [`Histogram::merge`] is associative and commutative and exactly
///   equivalent to having recorded both sample streams into one histogram —
///   the property that lets per-worker histograms fold into fleet totals in
///   arrival order.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// Non-empty iff at least one sample was recorded (lazily allocated to
    /// [`BUCKETS`] so an empty histogram costs nothing).
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.counts[index(value)] = self.counts[index(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
    }

    /// Records a [`std::time::Duration`] in microseconds.
    pub fn record_duration(&mut self, duration: std::time::Duration) {
        self.record(duration.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The value at quantile `q` (`0.0 ..= 1.0`), or `None` when empty.
    ///
    /// Returns the upper bound of the bucket holding the `⌈q·n⌉`-th sample,
    /// clamped to the observed maximum — so a single-sample histogram
    /// answers every quantile with exactly that sample.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                return Some(bounds(idx).1.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Folds `other` into `self`. Exactly equivalent to having recorded
    /// `other`'s samples here: associative, commutative, with saturating
    /// counters (saturating `u64` addition is itself associative, so the
    /// property survives overflow).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// [`Histogram::merge`] by value, for fold chains.
    #[must_use]
    pub fn merged(mut self, other: &Histogram) -> Self {
        self.merge(other);
        self
    }

    /// The non-zero buckets as `(bucket index, count)` pairs — the compact
    /// form that travels on the wire and into bench JSON.
    pub fn sparse_buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuilds a histogram from its summary fields and sparse buckets (the
    /// inverse of [`Histogram::sparse_buckets`]); out-of-range bucket
    /// indices are clamped into the saturation bucket rather than trusted.
    pub fn from_sparse(count: u64, sum: u64, min: u64, max: u64, buckets: &[(u32, u64)]) -> Self {
        if count == 0 {
            return Histogram::default();
        }
        let mut counts = vec![0u64; BUCKETS];
        for &(idx, c) in buckets {
            let idx = (idx as usize).min(BUCKETS - 1);
            counts[idx] = counts[idx].saturating_add(c);
        }
        Histogram { counts, count, sum, min, max }
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        if self.count != other.count || self.sum != other.sum {
            return false;
        }
        if self.count > 0 && (self.min != other.min || self.max != other.max) {
            return false;
        }
        // pad the shorter (possibly never-allocated) bucket vector with
        // zeros, so an empty histogram equals a merged-with-nothing one
        let longest = self.counts.len().max(other.counts.len());
        (0..longest).all(|i| {
            self.counts.get(i).copied().unwrap_or(0) == other.counts.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for Histogram {}

impl std::fmt::Display for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.count {
            0 => write!(f, "n=0"),
            _ => write!(
                f,
                "n={} mean={:.1} p50={} p90={} p99={} p999={} max={}",
                self.count,
                self.mean().unwrap_or(0.0),
                self.p50().unwrap_or(0),
                self.p90().unwrap_or(0),
                self.p99().unwrap_or(0),
                self.p999().unwrap_or(0),
                self.max
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_order_preserving() {
        // every value maps into a bucket whose bounds contain it, and the
        // bucket index is monotone in the value
        let mut last = 0usize;
        for v in (0..4096u64).chain((1..40).map(|h| (1u64 << h) - 1)) {
            let idx = index(v);
            let (lo, hi) = bounds(idx);
            assert!(lo <= v && v <= hi, "value {v} outside bucket {idx} [{lo}, {hi}]");
            assert!(idx >= last || v < last as u64, "index not monotone at {v}");
            last = idx;
        }
    }

    #[test]
    fn empty_histogram_answers_nothing() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.to_string(), "n=0");
    }

    #[test]
    fn single_sample_answers_every_quantile_exactly() {
        for v in [0u64, 7, 15, 16, 1000, 123_456_789] {
            let mut h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
                assert_eq!(h.quantile(q), Some(v), "quantile {q} of single sample {v}");
            }
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900), (0.999, 9_990)] {
            let got = h.quantile(q).unwrap() as f64;
            assert!(
                (got - exact as f64).abs() / exact as f64 <= 0.0625 + 1e-9,
                "quantile {q}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn huge_values_saturate_into_the_top_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 40);
        h.record(1u64 << 50);
        assert_eq!(h.count(), 3);
        // all three share the saturation bucket
        assert_eq!(h.sparse_buckets().len(), 1);
        assert_eq!(h.sparse_buckets()[0].0 as usize, BUCKETS - 1);
        assert_eq!(h.max(), Some(u64::MAX));
        assert!(h.p50().is_some());
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let (a_samples, b_samples) = ((0..500u64).map(|i| i * 7), (0..300u64).map(|i| i * 13 + 5));
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut sequential = Histogram::new();
        for v in a_samples {
            a.record(v);
            sequential.record(v);
        }
        for v in b_samples {
            b.record(v);
            sequential.record(v);
        }
        let ab = a.clone().merged(&b);
        let ba = b.clone().merged(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab, sequential, "merge must equal sequential recording");
    }

    #[test]
    fn sparse_roundtrip_preserves_everything() {
        let mut h = Histogram::new();
        for v in [0u64, 3, 17, 999, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_sparse(
            h.count(),
            h.sum(),
            h.min().unwrap(),
            h.max().unwrap(),
            &h.sparse_buckets(),
        );
        assert_eq!(back, h);
        assert_eq!(Histogram::from_sparse(0, 0, 0, 0, &[]), Histogram::new());
    }
}
