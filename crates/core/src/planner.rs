//! The QRCC cut planner: searches for a qubit-reuse-aware cutting solution
//! that fits the target device, combining the heuristic search with an
//! optional exact ILP refinement on small instances.

use crate::heuristic::{self, is_feasible};
use crate::model;
use crate::spec::{CutMetrics, CutSolution};
use crate::{CoreError, QrccConfig};
use qrcc_circuit::dag::CircuitDag;
use qrcc_circuit::Circuit;
use std::time::{Duration, Instant};

/// A complete cutting plan for one circuit: the solution, its metrics and the
/// inputs needed to build subcircuit fragments from it.
#[derive(Debug, Clone)]
pub struct CutPlan {
    circuit: Circuit,
    dag: CircuitDag,
    solution: CutSolution,
    metrics: CutMetrics,
    config: QrccConfig,
    planning_time: Duration,
    used_ilp: bool,
}

impl CutPlan {
    /// The original circuit the plan was computed for.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The circuit's dependency DAG (node ids in the solution refer to it).
    pub fn dag(&self) -> &CircuitDag {
        &self.dag
    }

    /// The cutting solution.
    pub fn solution(&self) -> &CutSolution {
        &self.solution
    }

    /// Cut-quality metrics (`#SC`, `#cuts`, `#MS`, widths, ...).
    pub fn metrics(&self) -> &CutMetrics {
        &self.metrics
    }

    /// The configuration the plan was computed with.
    pub fn config(&self) -> &QrccConfig {
        &self.config
    }

    /// Number of subcircuits.
    pub fn num_subcircuits(&self) -> usize {
        self.metrics.num_subcircuits
    }

    /// Number of wire cuts.
    pub fn wire_cut_count(&self) -> usize {
        self.metrics.wire_cuts
    }

    /// Number of gate cuts.
    pub fn gate_cut_count(&self) -> usize {
        self.metrics.gate_cuts
    }

    /// Width (physical qubits needed) of every subcircuit.
    pub fn subcircuit_widths(&self) -> &[usize] {
        &self.metrics.subcircuit_widths
    }

    /// Wall-clock time spent planning.
    pub fn planning_time(&self) -> Duration {
        self.planning_time
    }

    /// Whether the exact ILP refinement contributed to this plan (as opposed
    /// to the heuristic alone).
    pub fn used_ilp(&self) -> bool {
        self.used_ilp
    }
}

/// The QRCC cut planner.
///
/// ```rust
/// use qrcc_circuit::generators;
/// use qrcc_core::{planner::CutPlanner, QrccConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let circuit = generators::qft(5);
/// let plan = CutPlanner::new(QrccConfig::new(3)).plan(&circuit)?;
/// assert!(plan.subcircuit_widths().iter().all(|&w| w <= 3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CutPlanner {
    config: QrccConfig,
    /// Local-search sweep budget per initialisation.
    max_sweeps: usize,
}

impl CutPlanner {
    /// Creates a planner with the given configuration.
    pub fn new(config: QrccConfig) -> Self {
        CutPlanner { config, max_sweeps: 40 }
    }

    /// Overrides the local-search sweep budget (mainly for benchmarking).
    pub fn with_max_sweeps(mut self, sweeps: usize) -> Self {
        self.max_sweeps = sweeps;
        self
    }

    /// The planner's configuration.
    pub fn config(&self) -> &QrccConfig {
        &self.config
    }

    /// Plans a cut for `circuit`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidDeviceSize`] if the device is not strictly
    ///   smaller than the circuit (or is zero).
    /// * [`CoreError::NoCutFound`] if no solution fitting the device was
    ///   found within the subcircuit-count range and cut budgets.
    pub fn plan(&self, circuit: &Circuit) -> Result<CutPlan, CoreError> {
        let start = Instant::now();
        let n = circuit.num_qubits();
        let d = self.config.device_size;
        if d == 0 || d >= n {
            return Err(CoreError::InvalidDeviceSize { circuit_qubits: n, device_size: d });
        }
        let dag = CircuitDag::from_circuit(circuit);
        let mut best_infeasible_width = usize::MAX;
        let mut chosen: Option<CutSolution> = None;

        for num_subs in self.config.c_min..=self.config.c_max {
            if num_subs < 2 {
                continue;
            }
            let candidate =
                heuristic::search_with_subcircuits(&dag, &self.config, num_subs, self.max_sweeps);
            candidate.validate(&dag)?;
            if is_feasible(&candidate, &dag, &self.config) {
                chosen = Some(candidate);
                break;
            }
            let width = candidate.metrics(&dag, self.config.qubit_reuse_enabled).max_width();
            best_infeasible_width = best_infeasible_width.min(width);
        }

        let Some(mut solution) = chosen else {
            return Err(CoreError::NoCutFound {
                device_size: d,
                best_width: if best_infeasible_width == usize::MAX {
                    n
                } else {
                    best_infeasible_width
                },
            });
        };

        // Exact refinement on small models, warm-started by the heuristic.
        let mut used_ilp = false;
        let model_size = dag.nodes().len() * solution.num_subcircuits;
        if !self.config.ilp_time_limit.is_zero() && model_size <= self.config.ilp_size_limit {
            if let Some(refined) = model::refine_with_ilp(&dag, &solution, &self.config) {
                if is_feasible(&refined, &dag, &self.config)
                    && heuristic::solution_cost(&refined, &dag, &self.config)
                        < heuristic::solution_cost(&solution, &dag, &self.config) - 1e-9
                {
                    solution = refined;
                    used_ilp = true;
                }
            }
        }

        let metrics = solution.metrics(&dag, self.config.qubit_reuse_enabled);
        Ok(CutPlan {
            circuit: circuit.clone(),
            dag,
            solution,
            metrics,
            config: self.config.clone(),
            planning_time: start.elapsed(),
            used_ilp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrcc_circuit::generators;

    #[test]
    fn plan_fits_device_budget() {
        let circuit = generators::qft(6);
        let config = QrccConfig::new(4).with_ilp_time_limit(Duration::ZERO);
        let plan = CutPlanner::new(config).plan(&circuit).unwrap();
        assert!(plan.subcircuit_widths().iter().all(|&w| w <= 4));
        assert!(plan.num_subcircuits() >= 2);
        assert!(plan.wire_cut_count() > 0);
        assert!(plan.planning_time() > Duration::ZERO);
    }

    #[test]
    fn invalid_device_sizes_are_rejected() {
        let circuit = generators::qft(4);
        for d in [0, 4, 10] {
            let err = CutPlanner::new(QrccConfig::new(d)).plan(&circuit);
            assert!(matches!(err, Err(CoreError::InvalidDeviceSize { .. })), "d = {d}");
        }
    }

    #[test]
    fn impossible_budget_reports_no_cut_found() {
        // A 1-qubit device can never host a two-qubit gate.
        let circuit = generators::qft(4);
        let config = QrccConfig::new(1).with_ilp_time_limit(Duration::ZERO);
        assert!(matches!(
            CutPlanner::new(config).plan(&circuit),
            Err(CoreError::NoCutFound { .. })
        ));
    }

    #[test]
    fn gate_cuts_reduce_effective_cost_on_qaoa() {
        let (circuit, _) = generators::qaoa_regular(8, 3, 1, 3);
        let base =
            QrccConfig::new(5).with_subcircuit_range(2, 3).with_ilp_time_limit(Duration::ZERO);
        let plan_wire_only = CutPlanner::new(base.clone()).plan(&circuit).unwrap();
        let plan_both = CutPlanner::new(base.with_gate_cuts(true)).plan(&circuit).unwrap();
        let eff_wire = plan_wire_only.metrics().effective_cuts();
        let eff_both = plan_both.metrics().effective_cuts();
        // The search is heuristic, so allow a small amount of noise, but gate
        // cutting must not make the effective post-processing cost blow up.
        assert!(
            eff_both <= eff_wire + 2.0,
            "gate cutting should not increase effective cuts much ({eff_both} vs {eff_wire})"
        );
    }

    #[test]
    fn reuse_enables_smaller_devices_than_no_reuse() {
        let circuit = generators::vqe_two_local(8, 2, 5);
        let reuse_cfg =
            QrccConfig::new(4).with_subcircuit_range(2, 4).with_ilp_time_limit(Duration::ZERO);
        let no_reuse_cfg = reuse_cfg.clone().with_qubit_reuse(false);
        let with_reuse = CutPlanner::new(reuse_cfg).plan(&circuit).unwrap();
        let without_reuse = CutPlanner::new(no_reuse_cfg).plan(&circuit);
        match without_reuse {
            Ok(plan) => assert!(
                with_reuse.wire_cut_count() <= plan.wire_cut_count(),
                "reuse-aware planning should not need more cuts"
            ),
            // no-reuse may simply fail to fit the device, which also proves the point
            Err(CoreError::NoCutFound { .. }) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
