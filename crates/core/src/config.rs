use crate::analyze::LintLevel;
use crate::cache::ResultCachePolicy;
use crate::obs::{MonitorPolicy, ObsPolicy};
use crate::reconstruct::ReconstructionStrategy;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Post-processing cost weights from the paper's linearised objective
/// (§4.2.5): a wire cut costs `ALPHA` and a gate cut costs `BETA`, chosen so
/// that the linear cost preserves the ordering of the true `4^k · 6^m`
/// exponential cost for up to 240 cuts.
pub const ALPHA_WIRE_CUT: f64 = 3.25;
/// See [`ALPHA_WIRE_CUT`].
pub const BETA_GATE_CUT: f64 = 4.2;

/// How a global shot budget is split across the deduplicated circuits of a
/// scheduled batch (ShotQC-style, see PAPERS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ShotAllocation {
    /// Every circuit receives `budget / circuits` shots.
    Uniform,
    /// Shots are split proportionally to each circuit's reconstruction
    /// variance weight — the summed magnitude of the cut coefficients
    /// (`1/2`-scaled wire attribution terms, gate-cut quasi-probability
    /// coefficients) that multiply its measured distribution. High-leverage
    /// variants get more shots, which lowers the reconstructed observable's
    /// sampling error at equal total budget.
    #[default]
    VarianceWeighted,
}

/// Scheduling knobs of the execution [`schedule`](crate::schedule) layer:
/// how a [`Scheduler`](crate::schedule::Scheduler) splits a global shot
/// budget, chunks a batch for streaming reconstruction, and how its
/// [`dispatch`](crate::dispatch) event loop throttles and retries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulePolicy {
    /// How the shot budget is split across the batch.
    pub allocation: ShotAllocation,
    /// Global shot budget across the *whole* deduplicated batch. `None`
    /// leaves every backend running its own default shot count (exact
    /// backends ignore shots entirely).
    pub shot_budget: Option<u64>,
    /// Minimum shots any scheduled circuit receives when a budget is set
    /// (keeps zero-weight variants measurable).
    pub min_shots: u64,
    /// Circuits per streamed chunk; `0` disables chunking (one chunk).
    pub chunk_size: usize,
    /// Upper bound on chunks the dispatcher keeps **in flight** — dispatched
    /// to backend workers but not yet delivered to the consumer. A window of
    /// 1 makes a slow consumer fully serialise dispatch (strict
    /// backpressure, minimal undelivered-result memory); larger windows let
    /// execution run ahead of reconstruction. `0` disables the bound.
    pub max_in_flight_chunks: usize,
    /// How many times a dispatched circuit that fails on a backend is
    /// re-routed to another compatible backend (the failing backend is
    /// excluded first; exhausted exclusions fall back to previously failed
    /// backends). `0` disables retries: the first backend error aborts the
    /// run, exactly like single-backend execution.
    pub max_retries: u32,
}

impl Default for SchedulePolicy {
    fn default() -> Self {
        SchedulePolicy {
            allocation: ShotAllocation::VarianceWeighted,
            shot_budget: None,
            min_shots: 1,
            chunk_size: 0,
            max_in_flight_chunks: 2,
            max_retries: 2,
        }
    }
}

impl SchedulePolicy {
    /// A policy with a global shot budget and variance-weighted allocation.
    pub fn with_budget(budget: u64) -> Self {
        SchedulePolicy { shot_budget: Some(budget), ..SchedulePolicy::default() }
    }

    /// Sets the allocation mode.
    pub fn with_allocation(mut self, allocation: ShotAllocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Sets the per-circuit minimum shot count (only meaningful with a
    /// budget).
    pub fn with_min_shots(mut self, min_shots: u64) -> Self {
        self.min_shots = min_shots;
        self
    }

    /// Sets the streamed chunk size (`0` = one chunk).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Sets the dispatcher's bounded in-flight chunk window (`0` = no
    /// bound). A window of 1 gives strict backpressure: the next chunk is
    /// not dispatched until the consumer has accepted the previous one.
    pub fn with_max_in_flight_chunks(mut self, window: usize) -> Self {
        self.max_in_flight_chunks = window;
        self
    }

    /// Sets the per-circuit retry budget of the dispatcher (`0` disables
    /// retries — the first backend failure aborts the run).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }
}

/// Configuration of the QRCC cut planner (the meta parameters of §4.2.1).
///
/// ```rust
/// use qrcc_core::QrccConfig;
///
/// let config = QrccConfig::new(5)
///     .with_subcircuit_range(2, 4)
///     .with_delta(0.7)
///     .with_gate_cuts(true);
/// assert_eq!(config.device_size, 5);
/// assert_eq!(config.c_max, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QrccConfig {
    /// `D`: number of physical qubits available on the target device.
    pub device_size: usize,
    /// `C_min`: minimum number of subcircuits of the solution.
    pub c_min: usize,
    /// `C_max`: maximum number of subcircuits of the solution.
    pub c_max: usize,
    /// `W_max`: maximum number of wire cuts allowed.
    pub max_wire_cuts: usize,
    /// `G_max`: maximum number of gate cuts allowed.
    pub max_gate_cuts: usize,
    /// `δ`: weight between post-processing cost (δ) and fidelity balancing
    /// (1−δ) in the objective; 1.0 = post-processing cost only (QRCC-C),
    /// 0.7 is the paper's QRCC-B setting.
    pub delta: f64,
    /// Whether gate cutting is enabled (only valid for expectation-value
    /// workloads).
    pub gate_cuts_enabled: bool,
    /// Whether qubit reuse is exploited when computing subcircuit widths
    /// (disabling this reproduces the CutQC width model and is used for
    /// ablations).
    pub qubit_reuse_enabled: bool,
    /// Time budget for the exact ILP refinement; the heuristic solution is
    /// returned unchanged when this is zero.
    #[serde(skip, default = "default_ilp_time_limit")]
    pub ilp_time_limit: Duration,
    /// Upper bound on `gates × subcircuits` above which the ILP refinement is
    /// skipped and only the heuristic search is used.
    pub ilp_size_limit: usize,
    /// Random seed for the heuristic's tie-breaking.
    pub seed: u64,
    /// How the classical post-processing reconstructs the output: the dense
    /// global component loop, pairwise tensor contraction, or automatic
    /// selection by the cost models (the default).
    pub reconstruction_strategy: ReconstructionStrategy,
    /// Sparse-pruning tolerance of the `Contract` reconstruction strategy:
    /// attribution entries whose accumulated absolute weight stays below
    /// this value are dropped (0.0, the default, disables pruning).
    pub prune_tolerance: f64,
    /// How the execution [`schedule`](crate::schedule) layer splits a global
    /// shot budget across the batch and chunks it for streaming.
    pub schedule: SchedulePolicy,
    /// Severity gate of the pre-flight [`analyze`](crate::analyze) pass:
    /// which diagnostics make [`AnalysisReport::gate`](crate::analyze::AnalysisReport::gate)
    /// fail. `Warn` (the default) fails on errors only; `Deny` also fails on
    /// warnings; `Allow` never fails.
    pub lint_level: LintLevel,
    /// Opts simulator backends out of the compiled kernel path: when `true`,
    /// backends built from this config (see
    /// [`QrccConfig::exact_backend`]) interpret circuits gate-by-gate
    /// instead of lowering them to fused kernel programs. The interpreted
    /// path is the differential-testing reference; the compiled default is
    /// faster and numerically identical on the exact path. Equivalent to the
    /// `QRCC_SIM_INTERPRETED=1` environment variable.
    #[serde(default)]
    pub sim_interpreted: bool,
    /// Result-cache policy of executions driven by this config: whether the
    /// dispatch layer (and servers built from this config) consult a
    /// shot-aware [`ResultCache`](crate::cache::ResultCache) before
    /// executing, its weight budget, and an optional persistence snapshot
    /// path. Disabled by default — cache-served circuits skip the backend,
    /// which shifts a sampling backend's deterministic stream assignment
    /// relative to a cache-free run.
    #[serde(default)]
    pub result_cache: ResultCachePolicy,
    /// Observability policy: whether pipeline phases, dispatch jobs and
    /// remote batches record tracing spans and latency histograms into the
    /// process-global [`obs`](crate::obs) registries. Off by default and
    /// zero-cost when off — every instrumentation site is one relaxed
    /// atomic load.
    #[serde(default)]
    pub obs: ObsPolicy,
    /// Fleet-monitoring policy: live-window width and rotation, worker poll
    /// cadence, target protocol version and the SLO the merged fleet view
    /// is scored against. `None` (the default) means no live monitoring;
    /// when set, lint QL0307 checks it for misconfiguration.
    #[serde(default)]
    pub monitor: Option<MonitorPolicy>,
}

fn default_ilp_time_limit() -> Duration {
    Duration::from_secs(10)
}

impl QrccConfig {
    /// A configuration targeting a `device_size`-qubit device with the
    /// paper's defaults: 2–8 subcircuits, up to 100 cuts of each kind,
    /// δ = 1.0 (QRCC-C), gate cuts off, reuse on.
    pub fn new(device_size: usize) -> Self {
        QrccConfig {
            device_size,
            c_min: 2,
            c_max: 8,
            max_wire_cuts: 100,
            max_gate_cuts: 100,
            delta: 1.0,
            gate_cuts_enabled: false,
            qubit_reuse_enabled: true,
            ilp_time_limit: default_ilp_time_limit(),
            ilp_size_limit: 600,
            seed: 0,
            reconstruction_strategy: ReconstructionStrategy::Auto,
            prune_tolerance: 0.0,
            schedule: SchedulePolicy::default(),
            lint_level: LintLevel::default(),
            sim_interpreted: false,
            result_cache: ResultCachePolicy::default(),
            obs: ObsPolicy::default(),
            monitor: None,
        }
    }

    /// The paper's QRCC-C setting (δ = 1, post-processing cost only).
    pub fn qrcc_c(device_size: usize) -> Self {
        Self::new(device_size)
    }

    /// The paper's QRCC-B setting (δ = 0.7, balances two-qubit gates across
    /// subcircuits for fidelity).
    pub fn qrcc_b(device_size: usize) -> Self {
        Self::new(device_size).with_delta(0.7)
    }

    /// Sets the `[C_min, C_max]` subcircuit-count range.
    ///
    /// # Panics
    ///
    /// Panics if `c_min` is zero or greater than `c_max`.
    pub fn with_subcircuit_range(mut self, c_min: usize, c_max: usize) -> Self {
        assert!(c_min >= 1 && c_min <= c_max, "need 1 <= c_min <= c_max");
        self.c_min = c_min;
        self.c_max = c_max;
        self
    }

    /// Sets the maximum number of wire cuts.
    pub fn with_max_wire_cuts(mut self, max: usize) -> Self {
        self.max_wire_cuts = max;
        self
    }

    /// Sets the maximum number of gate cuts.
    pub fn with_max_gate_cuts(mut self, max: usize) -> Self {
        self.max_gate_cuts = max;
        self
    }

    /// Sets δ, the post-processing-cost vs fidelity weight.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < delta <= 1.0`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta > 0.0 && delta <= 1.0, "delta must be in (0, 1]");
        self.delta = delta;
        self
    }

    /// Enables or disables gate cutting.
    pub fn with_gate_cuts(mut self, enabled: bool) -> Self {
        self.gate_cuts_enabled = enabled;
        self
    }

    /// Enables or disables qubit-reuse-aware width accounting.
    pub fn with_qubit_reuse(mut self, enabled: bool) -> Self {
        self.qubit_reuse_enabled = enabled;
        self
    }

    /// Sets the ILP refinement time limit (zero disables the ILP pass).
    pub fn with_ilp_time_limit(mut self, limit: Duration) -> Self {
        self.ilp_time_limit = limit;
        self
    }

    /// Sets the random seed used for heuristic tie-breaking.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the reconstruction strategy (dense loop, pairwise contraction,
    /// or cost-model-driven automatic selection).
    pub fn with_reconstruction_strategy(mut self, strategy: ReconstructionStrategy) -> Self {
        self.reconstruction_strategy = strategy;
        self
    }

    /// Sets the sparse-pruning tolerance of the `Contract` reconstruction
    /// strategy (0.0 disables pruning).
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is negative or not finite.
    pub fn with_prune_tolerance(mut self, tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance >= 0.0,
            "prune tolerance must be finite and non-negative"
        );
        self.prune_tolerance = tolerance;
        self
    }

    /// Sets the full schedule policy.
    pub fn with_schedule_policy(mut self, policy: SchedulePolicy) -> Self {
        self.schedule = policy;
        self
    }

    /// Sets the global shot budget of the schedule policy.
    pub fn with_shot_budget(mut self, budget: u64) -> Self {
        self.schedule.shot_budget = Some(budget);
        self
    }

    /// Sets the shot-allocation mode of the schedule policy.
    pub fn with_shot_allocation(mut self, allocation: ShotAllocation) -> Self {
        self.schedule.allocation = allocation;
        self
    }

    /// Sets the severity gate of the pre-flight analysis pass.
    /// `LintLevel::Deny` is "deny warnings" mode: any warning- or
    /// error-severity diagnostic fails
    /// [`AnalysisReport::gate`](crate::analyze::AnalysisReport::gate) fast.
    pub fn with_lint_level(mut self, level: LintLevel) -> Self {
        self.lint_level = level;
        self
    }

    /// Selects the simulator mode of backends built from this config:
    /// `true` forces the gate-by-gate interpreter, `false` (the default)
    /// keeps the compiled kernel path.
    pub fn with_interpreted_sim(mut self, interpreted: bool) -> Self {
        self.sim_interpreted = interpreted;
        self
    }

    /// Enables (or disables) the shot-aware result cache for executions
    /// driven by this config.
    pub fn with_result_cache(mut self, enabled: bool) -> Self {
        self.result_cache.enabled = enabled;
        self
    }

    /// Sets the result cache's weight budget, counted in stored
    /// distribution values (`f64` slots). Implies nothing about enablement.
    pub fn with_result_cache_capacity(mut self, capacity: u64) -> Self {
        self.result_cache.capacity = capacity;
        self
    }

    /// Enables the result cache with a persistence snapshot path, so a
    /// restarted worker serves hits immediately.
    pub fn with_result_cache_persistence(mut self, path: impl Into<String>) -> Self {
        self.result_cache.enabled = true;
        self.result_cache.persist_path = Some(path.into());
        self
    }

    /// Enables (or disables) observability for executions driven by this
    /// config: pipeline phase spans, per-job dispatch spans, cache spans,
    /// per-request latency histograms, and cross-wire trace propagation.
    /// Off by default; when off, instrumentation is zero-cost (asserted by
    /// the `bench_obs` smoke).
    pub fn with_tracing(mut self, enabled: bool) -> Self {
        self.obs.enabled = enabled;
        self
    }

    /// Sets the span-buffer capacity (total spans across all shards).
    /// Implies nothing about enablement; checked by lint QL0306.
    pub fn with_trace_buffer(mut self, capacity: usize) -> Self {
        self.obs.buffer_capacity = capacity;
        self
    }

    /// Enables tracing with an output path for the exported trace
    /// (consumers pick the format by extension, e.g. `.json` for a Chrome
    /// trace). The path's parent must exist — lint QL0306 flags it
    /// otherwise.
    pub fn with_trace_output(mut self, path: impl Into<String>) -> Self {
        self.obs.enabled = true;
        self.obs.trace_path = Some(path.into());
        self
    }

    /// Sets the fleet-monitoring policy (live windows, poll cadence, SLO).
    /// Checked by lint QL0307.
    pub fn with_monitor(mut self, policy: MonitorPolicy) -> Self {
        self.monitor = Some(policy);
        self
    }

    /// An [`ExactBackend`](crate::execute::ExactBackend) honouring this
    /// config's [`sim_interpreted`](QrccConfig::sim_interpreted) mode.
    pub fn exact_backend(&self) -> crate::execute::ExactBackend {
        if self.sim_interpreted {
            crate::execute::ExactBackend::interpreted()
        } else {
            crate::execute::ExactBackend::new()
        }
    }

    /// The linearised post-processing cost `α·#wire_cuts + β·#gate_cuts`
    /// (Eq. (15)).
    pub fn linear_post_processing_cost(&self, wire_cuts: usize, gate_cuts: usize) -> f64 {
        ALPHA_WIRE_CUT * wire_cuts as f64 + BETA_GATE_CUT * gate_cuts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = QrccConfig::new(7);
        assert_eq!(c.device_size, 7);
        assert_eq!(c.max_wire_cuts, 100);
        assert_eq!(c.delta, 1.0);
        assert!(c.qubit_reuse_enabled);
        assert!(!c.gate_cuts_enabled);
        assert_eq!(c.reconstruction_strategy, ReconstructionStrategy::Auto);
        assert_eq!(c.prune_tolerance, 0.0);
        assert_eq!(QrccConfig::qrcc_b(7).delta, 0.7);
    }

    #[test]
    fn builder_methods_chain() {
        let c = QrccConfig::new(5)
            .with_subcircuit_range(2, 3)
            .with_max_wire_cuts(10)
            .with_max_gate_cuts(2)
            .with_gate_cuts(true)
            .with_qubit_reuse(false)
            .with_seed(99);
        assert_eq!((c.c_min, c.c_max), (2, 3));
        assert_eq!(c.max_wire_cuts, 10);
        assert_eq!(c.max_gate_cuts, 2);
        assert!(c.gate_cuts_enabled);
        assert!(!c.qubit_reuse_enabled);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn linear_cost_preserves_exponential_ordering_for_small_counts() {
        let c = QrccConfig::new(4);
        // examples from the paper: S(1,1) is better than S(2,1) wire/gate mix,
        // and S(0,4) gate cuts are better than S(5,0) wire cuts.
        let cost = |w: usize, g: usize| c.linear_post_processing_cost(w, g);
        let exp = |w: u32, g: u32| 4f64.powi(w as i32) * 6f64.powi(g as i32);
        for (a, b) in [((1, 1), (2, 1)), ((4, 0), (0, 5)), ((3, 2), (6, 0))] {
            let linear_order = cost(a.0, a.1) < cost(b.0, b.1);
            let exp_order = exp(a.0 as u32, a.1 as u32) < exp(b.0 as u32, b.1 as u32);
            assert_eq!(linear_order, exp_order, "ordering mismatch for {a:?} vs {b:?}");
        }
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn delta_must_be_positive() {
        QrccConfig::new(3).with_delta(0.0);
    }

    #[test]
    fn reconstruction_knobs_chain() {
        let c = QrccConfig::new(5)
            .with_reconstruction_strategy(ReconstructionStrategy::Contract)
            .with_prune_tolerance(1e-8);
        assert_eq!(c.reconstruction_strategy, ReconstructionStrategy::Contract);
        assert_eq!(c.prune_tolerance, 1e-8);
    }

    #[test]
    #[should_panic(expected = "prune tolerance")]
    fn prune_tolerance_must_be_non_negative() {
        QrccConfig::new(3).with_prune_tolerance(-1.0);
    }

    #[test]
    fn obs_knobs_chain_and_default_off() {
        // off by default: constructing configs must never enable tracing
        assert!(!QrccConfig::new(3).obs.enabled);
        let c = QrccConfig::new(5).with_tracing(true).with_trace_buffer(1024);
        assert!(c.obs.enabled);
        assert_eq!(c.obs.buffer_capacity, 1024);
        assert_eq!(c.obs.trace_path, None);
        let c = QrccConfig::new(5).with_trace_output("/tmp/trace.json");
        assert!(c.obs.enabled, "with_trace_output implies tracing on");
        assert_eq!(c.obs.trace_path.as_deref(), Some("/tmp/trace.json"));
    }

    #[test]
    fn schedule_policy_knobs_chain() {
        let c = QrccConfig::new(5)
            .with_shot_budget(10_000)
            .with_shot_allocation(ShotAllocation::Uniform);
        assert_eq!(c.schedule.shot_budget, Some(10_000));
        assert_eq!(c.schedule.allocation, ShotAllocation::Uniform);
        let p = SchedulePolicy::with_budget(500)
            .with_min_shots(4)
            .with_chunk_size(8)
            .with_max_in_flight_chunks(1)
            .with_max_retries(5);
        assert_eq!(p.shot_budget, Some(500));
        assert_eq!(p.min_shots, 4);
        assert_eq!(p.chunk_size, 8);
        assert_eq!(p.max_in_flight_chunks, 1);
        assert_eq!(p.max_retries, 5);
        assert_eq!(p.allocation, ShotAllocation::VarianceWeighted);
        // no budget by default: backends keep their own shot counts
        assert_eq!(SchedulePolicy::default().shot_budget, None);
        // dispatch defaults: double-buffered window, a couple of retries
        assert_eq!(SchedulePolicy::default().max_in_flight_chunks, 2);
        assert_eq!(SchedulePolicy::default().max_retries, 2);
    }
}
