//! Shot-aware, content-addressed fragment result cache.
//!
//! Cut-and-reuse workloads re-execute structurally identical fragment
//! variants: parameter sweeps, retries and multi-tenant fleets resubmit
//! mostly-identical circuits, and the variant batch itself repeats circuits
//! across runs. [`ResultCache`] memoises executed distributions keyed by
//! [`Circuit::structural_hash`] — the init prologue, body and measurement
//! epilogue of an instantiated variant are all part of the hashed circuit, so
//! the hash content-addresses the `(structure, basis/init frame)` pair — with
//! an equality check on bucket collisions, exactly like batch dedup.
//!
//! **Shot semantics.** Every entry stores the shot count its distribution
//! was estimated from (`None` = exact, noise-free). A lookup asking for
//! `requested ≤ stored` shots is a **full hit**: the stored distribution is
//! at least as converged as the request needs. A lookup asking for
//! `requested > stored` is a **delta hit**: the caller executes only the
//! top-up (`requested − stored` shots), merges via [`merge_distributions`]
//! and writes the merged entry back, so the cache monotonically warms.
//! Exact entries serve any request; sampled entries never serve an exact
//! request.
//!
//! **Eviction.** The cache is sharded ([`ResultCache::SHARDS`] mutexes) and
//! bounded by a total weight budget counted in stored distribution values
//! (`f64` slots). Inserting past the budget evicts least-recently-used
//! entries per shard.
//!
//! **Persistence.** With [`ResultCachePolicy::persist_path`] set,
//! [`ResultCache::persist`] writes an atomic snapshot (temp file + rename)
//! and [`ResultCache::open`] reloads it, so a restarted worker serves hits
//! immediately. Snapshots carry a format version header; a mismatched or
//! unparseable snapshot is ignored (the cache starts empty) rather than
//! failing the worker — [`CacheStats::snapshot_ignored`] records that this
//! happened, and the `QL0305` lint warns about it pre-flight. Circuits are
//! stored as OpenQASM text and distribution values as `f64` bit patterns,
//! both of which round-trip exactly, so a reloaded entry hits on precisely
//! the hashes the live entry did.

use parking_lot::Mutex;
use qrcc_circuit::qasm::{from_qasm, to_qasm};
use qrcc_circuit::Circuit;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the on-disk snapshot format. Bumped whenever the layout (or
/// the semantics of a stored entry) changes; [`ResultCache::open`] ignores
/// snapshots written under any other version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// First token of a snapshot's header line.
const SNAPSHOT_MAGIC: &str = "QRCC-RESULT-CACHE";

/// Default capacity: 4 Mi stored distribution values (32 MiB of `f64`s).
pub const DEFAULT_CACHE_CAPACITY: u64 = 1 << 22;

/// Configuration for the result cache, carried by
/// [`QrccConfig`](crate::QrccConfig) and consumed by
/// [`DeviceRegistry::with_result_cache`](crate::schedule::DeviceRegistry::with_result_cache)
/// and `QrccServer::with_result_cache`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultCachePolicy {
    /// Whether executions consult the cache at all. Off by default: caching
    /// changes which circuits reach a sampling backend, which shifts its
    /// deterministic stream assignment relative to a cache-free run.
    #[serde(default)]
    pub enabled: bool,
    /// Total weight budget, counted in stored distribution values (`f64`
    /// slots) across all shards. Zero means nothing can be stored — the
    /// `QL0305` lint warns when caching is enabled with zero capacity.
    #[serde(default)]
    pub capacity: u64,
    /// Snapshot file for persistence across worker restarts, or `None` for
    /// a purely in-memory cache.
    #[serde(default)]
    pub persist_path: Option<String>,
}

impl Default for ResultCachePolicy {
    fn default() -> Self {
        ResultCachePolicy { enabled: false, capacity: DEFAULT_CACHE_CAPACITY, persist_path: None }
    }
}

impl ResultCachePolicy {
    /// An enabled, in-memory policy with the default capacity.
    pub fn in_memory() -> Self {
        ResultCachePolicy { enabled: true, ..ResultCachePolicy::default() }
    }

    /// An enabled policy persisting snapshots to `path`.
    pub fn persisted(path: impl Into<String>) -> Self {
        ResultCachePolicy {
            enabled: true,
            persist_path: Some(path.into()),
            ..ResultCachePolicy::default()
        }
    }

    /// Sets the weight budget (stored distribution values).
    #[must_use]
    pub fn with_capacity(mut self, capacity: u64) -> Self {
        self.capacity = capacity;
        self
    }
}

/// Cumulative counters of one [`ResultCache`], snapshotted by
/// [`ResultCache::stats`]. Flows into
/// [`ExecutionResults`](crate::execute::ExecutionResults) and
/// [`ReconstructionReport::result_cache`](crate::reconstruct::ReconstructionReport::result_cache).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheStats {
    /// Lookups fully served from the cache (no execution needed).
    pub hits: u64,
    /// Lookups served partially: the caller executed only the shot top-up.
    pub delta_hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries inserted or upgraded by write-backs.
    pub insertions: u64,
    /// Entries evicted to stay under the weight budget.
    pub evictions: u64,
    /// Device shots the cache absorbed: the full request on a hit, the
    /// stored portion on a delta hit. Exact requests save no shots.
    pub shots_saved: u64,
    /// Entries currently held.
    pub entries: u64,
    /// Current weight (stored distribution values).
    pub weight: u64,
    /// Entries restored from a persisted snapshot at open.
    pub snapshot_loaded: u64,
    /// Whether a snapshot existed but was ignored (version mismatch or
    /// unparseable content) — the cache started empty instead of failing.
    pub snapshot_ignored: bool,
}

impl CacheStats {
    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.delta_hits + self.misses
    }

    /// Fraction of lookups served fully or partially, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            (self.hits + self.delta_hits) as f64 / self.lookups() as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits + {} delta / {} lookups ({:.1}% served), {} shots saved, \
             {} entries ({} values held, {} evicted)",
            self.hits,
            self.delta_hits,
            self.lookups(),
            100.0 * self.hit_rate(),
            self.shots_saved,
            self.entries,
            self.weight,
            self.evictions,
        )
    }
}

/// Outcome of one [`ResultCache::lookup`].
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLookup {
    /// Nothing usable cached: execute the full request, then
    /// [`store`](ResultCache::store) the outcome.
    Miss,
    /// Fully served: the distribution satisfies the requested shot count.
    Hit(Vec<f64>),
    /// Partially served: execute `missing` shots, merge with the stored
    /// `base` via [`merge_distributions`], and store the merge back.
    Delta {
        /// The cached distribution.
        base: Vec<f64>,
        /// Shots the cached distribution was estimated from.
        base_shots: u64,
        /// The shot top-up still to execute (`requested − base_shots`).
        missing: u64,
    },
}

/// One cached circuit: the executed distribution and its provenance.
struct Entry {
    circuit: Circuit,
    distribution: Vec<f64>,
    /// Shots the distribution was estimated from (`None` = exact).
    shots: Option<u64>,
    /// Global LRU tick of the last touch.
    last_used: u64,
}

impl Entry {
    fn weight(&self) -> u64 {
        self.distribution.len() as u64
    }

    /// How many requested shots this entry can serve (`u64::MAX` = any).
    fn serves(&self) -> u64 {
        self.shots.unwrap_or(u64::MAX)
    }
}

/// One lock domain: structural-hash buckets plus their total weight.
#[derive(Default)]
struct Shard {
    buckets: HashMap<u64, Vec<Entry>>,
    weight: u64,
}

/// A sharded, shot-count-aware, content-addressed result cache. See the
/// [module docs](self) for key, shot and persistence semantics.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: u64,
    persist_path: Option<PathBuf>,
    tick: AtomicU64,
    hits: AtomicU64,
    delta_hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    shots_saved: AtomicU64,
    snapshot_loaded: u64,
    snapshot_ignored: bool,
}

impl fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResultCache")
            .field("stats", &self.stats())
            .field("persist_path", &self.persist_path)
            .finish()
    }
}

impl ResultCache {
    /// Number of independent lock domains.
    pub const SHARDS: usize = 16;

    /// An in-memory cache bounded by `capacity` stored distribution values.
    pub fn new(capacity: u64) -> Self {
        ResultCache {
            shards: (0..Self::SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(Self::SHARDS as u64),
            persist_path: None,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            delta_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            shots_saved: AtomicU64::new(0),
            snapshot_loaded: 0,
            snapshot_ignored: false,
        }
    }

    /// Opens a cache under `policy`: in-memory unless a persist path is set,
    /// in which case an existing snapshot is loaded. A snapshot written
    /// under a different [`SNAPSHOT_VERSION`] (or otherwise unparseable) is
    /// ignored and the cache starts empty; [`CacheStats::snapshot_ignored`]
    /// reports it.
    pub fn open(policy: &ResultCachePolicy) -> Self {
        let mut cache = ResultCache::new(policy.capacity);
        if let Some(path) = &policy.persist_path {
            cache.persist_path = Some(PathBuf::from(path));
            let path = Path::new(path);
            if path.exists() {
                match std::fs::read_to_string(path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| parse_snapshot(&text))
                {
                    Ok(entries) => {
                        for (circuit, distribution, shots) in entries {
                            if cache.insert_silent(circuit, distribution, shots) {
                                cache.snapshot_loaded += 1;
                            }
                        }
                    }
                    Err(_) => cache.snapshot_ignored = true,
                }
            }
        }
        cache
    }

    /// The snapshot path this cache persists to, if any.
    pub fn persist_path(&self) -> Option<&Path> {
        self.persist_path.as_deref()
    }

    /// Reads just the version of a snapshot header. `None` when the file is
    /// unreadable or does not start with a snapshot header. Used by the
    /// `QL0305` lint to warn about mismatched snapshots without loading them.
    pub fn snapshot_version(path: &Path) -> Option<u32> {
        let text = std::fs::read_to_string(path).ok()?;
        parse_header(text.lines().next()?)
    }

    /// Looks up `circuit` for a request of `requested_shots` (`None` = the
    /// caller needs an exact distribution). Touches the entry for LRU and
    /// counts the hit/delta/miss.
    pub fn lookup(&self, circuit: &Circuit, requested_shots: Option<u64>) -> CacheLookup {
        let hash = circuit.structural_hash();
        let mut shard = self.shards[(hash as usize) % Self::SHARDS].lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let Some(bucket) = shard.buckets.get_mut(&hash) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss;
        };
        // Among structurally equal entries, the one that serves the most
        // shots wins: it either fully serves the request or minimises the
        // delta top-up.
        let best = bucket
            .iter()
            .enumerate()
            .filter(|(_, e)| e.circuit.structurally_equal(circuit))
            .max_by_key(|(_, e)| e.serves())
            .map(|(i, _)| i);
        let Some(index) = best else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Miss;
        };
        let entry = &mut bucket[index];
        match (entry.shots, requested_shots) {
            // An exact entry serves anything; a sufficiently-sampled entry
            // serves any smaller sampled request.
            (None, requested) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.shots_saved.fetch_add(requested.unwrap_or(0), Ordering::Relaxed);
                CacheLookup::Hit(entry.distribution.clone())
            }
            (Some(stored), Some(requested)) if stored >= requested => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.shots_saved.fetch_add(requested, Ordering::Relaxed);
                CacheLookup::Hit(entry.distribution.clone())
            }
            (Some(stored), Some(requested)) => {
                entry.last_used = tick;
                self.delta_hits.fetch_add(1, Ordering::Relaxed);
                self.shots_saved.fetch_add(stored, Ordering::Relaxed);
                CacheLookup::Delta {
                    base: entry.distribution.clone(),
                    base_shots: stored,
                    missing: requested - stored,
                }
            }
            // A sampled entry can never serve an exact request.
            (Some(_), None) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Miss
            }
        }
    }

    /// Stores (or upgrades) `circuit`'s distribution. An existing entry is
    /// replaced only when the new record serves more shots (exact beats
    /// sampled; more shots beat fewer), so concurrent write-backs keep the
    /// best-converged distribution. Inserting past the weight budget evicts
    /// least-recently-used entries of the shard.
    pub fn store(&self, circuit: &Circuit, distribution: &[f64], shots: Option<u64>) {
        if self.insert_silent(circuit.clone(), distribution.to_vec(), shots) {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The insertion path shared by [`store`](Self::store) and snapshot
    /// loading. Returns whether the record was inserted or upgraded.
    fn insert_silent(&self, circuit: Circuit, distribution: Vec<f64>, shots: Option<u64>) -> bool {
        let weight = distribution.len() as u64;
        if weight > self.shard_capacity {
            return false; // wider than a whole shard: uncacheable
        }
        let hash = circuit.structural_hash();
        let mut shard = self.shards[(hash as usize) % Self::SHARDS].lock();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let serves = shots.map_or(u64::MAX, |s| s);
        let bucket = shard.buckets.entry(hash).or_default();
        let gained = match bucket.iter_mut().find(|e| e.circuit.structurally_equal(&circuit)) {
            Some(existing) if existing.serves() >= serves => return false,
            Some(existing) => {
                let replaced = existing_weight(existing);
                existing.distribution = distribution;
                existing.shots = shots;
                existing.last_used = tick;
                weight as i64 - replaced as i64
            }
            None => {
                bucket.push(Entry { circuit, distribution, shots, last_used: tick });
                weight as i64
            }
        };
        shard.weight = shard.weight.saturating_add_signed(gained);
        while shard.weight > self.shard_capacity {
            if !evict_lru(&mut shard) {
                break;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Number of entries currently held.
    pub fn entries(&self) -> usize {
        self.shards.iter().map(|s| s.lock().buckets.values().map(Vec::len).sum::<usize>()).sum()
    }

    /// Snapshot of the cumulative counters plus current entry/weight gauges.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut weight) = (0u64, 0u64);
        for shard in &self.shards {
            let shard = shard.lock();
            entries += shard.buckets.values().map(|b| b.len() as u64).sum::<u64>();
            weight += shard.weight;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            delta_hits: self.delta_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            shots_saved: self.shots_saved.load(Ordering::Relaxed),
            entries,
            weight,
            snapshot_loaded: self.snapshot_loaded,
            snapshot_ignored: self.snapshot_ignored,
        }
    }

    /// Writes an atomic snapshot (temp file + rename) of every held entry to
    /// the configured persist path. A cache without one is a no-op.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors of the temp-file write or the rename.
    pub fn persist(&self) -> std::io::Result<()> {
        let Some(path) = &self.persist_path else {
            return Ok(());
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut text = format!("{SNAPSHOT_MAGIC} v{SNAPSHOT_VERSION}\n");
        for shard in &self.shards {
            let shard = shard.lock();
            for entry in shard.buckets.values().flatten() {
                let shots = match entry.shots {
                    None => "exact".to_string(),
                    Some(s) => s.to_string(),
                };
                let dist: Vec<String> =
                    entry.distribution.iter().map(|v| format!("{:016x}", v.to_bits())).collect();
                let qasm = to_qasm(&entry.circuit);
                let lines = qasm.lines().count();
                text.push_str(&format!(
                    "entry shots={shots} dist={} qasm_lines={lines}\n",
                    dist.join(",")
                ));
                text.push_str(&qasm);
                if !qasm.ends_with('\n') {
                    text.push('\n');
                }
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}

/// Weight of an entry behind a mutable borrow (free function to satisfy the
/// borrow checker inside `insert_silent`'s match).
fn existing_weight(entry: &Entry) -> u64 {
    entry.distribution.len() as u64
}

/// Removes the least-recently-used entry of `shard`. Returns whether
/// anything was removed.
fn evict_lru(shard: &mut Shard) -> bool {
    let victim = shard
        .buckets
        .iter()
        .flat_map(|(&hash, bucket)| {
            bucket.iter().enumerate().map(move |(i, e)| (e.last_used, hash, i))
        })
        .min()
        .map(|(_, hash, i)| (hash, i));
    let Some((hash, index)) = victim else {
        return false;
    };
    let bucket = shard.buckets.get_mut(&hash).expect("victim bucket exists");
    let entry = bucket.remove(index);
    shard.weight -= entry.weight();
    if bucket.is_empty() {
        shard.buckets.remove(&hash);
    }
    true
}

/// Merges a cached `base` distribution (estimated from `base_shots`) with a
/// freshly executed `delta` distribution (`delta_shots`): the shot-weighted
/// average, i.e. exactly the empirical distribution of the union of both
/// shot sets.
pub fn merge_distributions(
    base: &[f64],
    base_shots: u64,
    delta: &[f64],
    delta_shots: u64,
) -> Vec<f64> {
    if base.len() != delta.len() || base_shots + delta_shots == 0 {
        return delta.to_vec(); // foreign shapes: trust the fresh execution
    }
    let total = (base_shots + delta_shots) as f64;
    let (wb, wd) = (base_shots as f64 / total, delta_shots as f64 / total);
    base.iter().zip(delta).map(|(b, d)| b * wb + d * wd).collect()
}

/// Parses a snapshot header line, returning its version.
fn parse_header(line: &str) -> Option<u32> {
    let rest = line.strip_prefix(SNAPSHOT_MAGIC)?.trim().strip_prefix('v')?;
    rest.parse().ok()
}

/// Parses a full snapshot document into its entries. Any malformed line
/// fails the whole parse — a torn snapshot must not half-load.
#[allow(clippy::type_complexity)]
fn parse_snapshot(text: &str) -> Result<Vec<(Circuit, Vec<f64>, Option<u64>)>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty snapshot")?;
    match parse_header(header) {
        Some(version) if version == SNAPSHOT_VERSION => {}
        Some(version) => return Err(format!("snapshot version v{version} != v{SNAPSHOT_VERSION}")),
        None => return Err("missing snapshot header".to_string()),
    }
    let mut entries = Vec::new();
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let rest = line.strip_prefix("entry ").ok_or_else(|| format!("bad entry line: {line}"))?;
        let mut shots: Option<Option<u64>> = None;
        let mut dist: Option<Vec<f64>> = None;
        let mut qasm_lines: Option<usize> = None;
        for field in rest.split_whitespace() {
            if let Some(value) = field.strip_prefix("shots=") {
                shots = Some(if value == "exact" {
                    None
                } else {
                    Some(value.parse().map_err(|_| format!("bad shot count: {value}"))?)
                });
            } else if let Some(value) = field.strip_prefix("dist=") {
                let values: Result<Vec<f64>, String> = value
                    .split(',')
                    .map(|word| {
                        u64::from_str_radix(word, 16)
                            .map(f64::from_bits)
                            .map_err(|_| format!("bad distribution word: {word}"))
                    })
                    .collect();
                dist = Some(values?);
            } else if let Some(value) = field.strip_prefix("qasm_lines=") {
                qasm_lines = Some(value.parse().map_err(|_| format!("bad line count: {value}"))?);
            }
        }
        let shots = shots.ok_or("entry missing shots=")?;
        let dist = dist.ok_or("entry missing dist=")?;
        let qasm_lines = qasm_lines.ok_or("entry missing qasm_lines=")?;
        let mut qasm = String::new();
        for _ in 0..qasm_lines {
            let line = lines.next().ok_or("truncated QASM block")?;
            qasm.push_str(line);
            qasm.push('\n');
        }
        let circuit = from_qasm(&qasm).map_err(|e| format!("snapshot QASM: {e}"))?;
        entries.push((circuit, dist, shots));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    fn rotated(theta: f64) -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).ry(theta, 1).cx(0, 1).measure_all();
        c
    }

    /// A collision-free scratch path under the OS temp dir.
    fn scratch(name: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("qrcc-cache-{}-{name}-{n}", std::process::id()))
    }

    #[test]
    fn miss_then_hit() {
        let cache = ResultCache::new(1 << 16);
        let c = bell();
        assert_eq!(cache.lookup(&c, Some(100)), CacheLookup::Miss);
        cache.store(&c, &[0.5, 0.0, 0.0, 0.5], Some(100));
        assert_eq!(cache.lookup(&c, Some(100)), CacheLookup::Hit(vec![0.5, 0.0, 0.0, 0.5]));
        assert_eq!(cache.lookup(&c, Some(40)), CacheLookup::Hit(vec![0.5, 0.0, 0.0, 0.5]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.delta_hits), (2, 1, 0));
        assert_eq!(stats.shots_saved, 140);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn shot_semantics_drive_hit_class() {
        let cache = ResultCache::new(1 << 16);
        let c = bell();
        cache.store(&c, &[0.4, 0.1, 0.1, 0.4], Some(1_000));
        // more shots requested than stored: delta hit with the exact top-up
        match cache.lookup(&c, Some(1_600)) {
            CacheLookup::Delta { base_shots, missing, .. } => {
                assert_eq!(base_shots, 1_000);
                assert_eq!(missing, 600);
            }
            other => panic!("expected delta hit, got {other:?}"),
        }
        // a sampled entry never serves an exact request
        assert_eq!(cache.lookup(&c, None), CacheLookup::Miss);
        // an exact entry serves everything, sampled or exact
        cache.store(&c, &[0.5, 0.0, 0.0, 0.5], None);
        assert!(matches!(cache.lookup(&c, None), CacheLookup::Hit(_)));
        assert!(matches!(cache.lookup(&c, Some(1 << 40)), CacheLookup::Hit(_)));
    }

    #[test]
    fn write_back_upgrades_monotonically() {
        let cache = ResultCache::new(1 << 16);
        let c = bell();
        cache.store(&c, &[1.0, 0.0, 0.0, 0.0], Some(500));
        // a weaker record never downgrades the entry
        cache.store(&c, &[0.0, 1.0, 0.0, 0.0], Some(100));
        assert_eq!(cache.lookup(&c, Some(500)), CacheLookup::Hit(vec![1.0, 0.0, 0.0, 0.0]));
        // a stronger record upgrades it
        cache.store(&c, &[0.5, 0.5, 0.0, 0.0], Some(900));
        assert_eq!(cache.lookup(&c, Some(900)), CacheLookup::Hit(vec![0.5, 0.5, 0.0, 0.0]));
        assert_eq!(cache.stats().entries, 1, "upgrades replace, never duplicate");
    }

    #[test]
    fn merge_is_the_shot_weighted_average() {
        let merged = merge_distributions(&[1.0, 0.0], 300, &[0.0, 1.0], 100);
        assert!((merged[0] - 0.75).abs() < 1e-12);
        assert!((merged[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        // capacity = 16 shards * 1 value each; 4-value distributions mean a
        // shard holds at most... nothing (4 > 1): use a bigger budget.
        let cache = ResultCache::new(16 * 8); // 8 values per shard = two 4-value entries
        let circuits: Vec<Circuit> = (0..40).map(|i| rotated(0.01 * (i + 1) as f64)).collect();
        for c in &circuits {
            cache.store(c, &[0.25; 4], Some(10));
        }
        let stats = cache.stats();
        assert!(stats.weight <= 16 * 8, "weight {} over budget", stats.weight);
        assert!(stats.evictions > 0, "40 entries cannot fit in 32 slots");
        // recently used entries survive preferentially: touch the last one
        assert!(matches!(
            cache.lookup(&circuits[39], Some(10)),
            CacheLookup::Hit(_) | CacheLookup::Miss
        ));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let cache = ResultCache::new(0);
        let c = bell();
        cache.store(&c, &[0.5, 0.0, 0.0, 0.5], Some(100));
        assert_eq!(cache.lookup(&c, Some(10)), CacheLookup::Miss);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn structural_keying_ignores_names_but_not_structure() {
        let cache = ResultCache::new(1 << 16);
        let c = bell();
        cache.store(&c, &[0.5, 0.0, 0.0, 0.5], None);
        let mut renamed = bell();
        renamed.set_name("same_structure_other_name");
        assert!(matches!(cache.lookup(&renamed, None), CacheLookup::Hit(_)));
        assert_eq!(cache.lookup(&rotated(0.3), None), CacheLookup::Miss);
    }

    #[test]
    fn persistence_round_trips_bit_exactly() {
        let path = scratch("roundtrip");
        let policy =
            ResultCachePolicy::persisted(path.to_string_lossy().to_string()).with_capacity(1 << 16);
        let cache = ResultCache::open(&policy);
        let dist = vec![0.123_456_789_012_345, 0.3, 0.0, 1.0 - 0.123_456_789_012_345 - 0.3];
        cache.store(&bell(), &dist, Some(4_321));
        cache.store(&rotated(1.234_567_890_123), &[0.25; 4], None);
        cache.persist().unwrap();

        let restarted = ResultCache::open(&policy);
        let stats = restarted.stats();
        assert_eq!(stats.snapshot_loaded, 2);
        assert!(!stats.snapshot_ignored);
        assert_eq!(restarted.lookup(&bell(), Some(4_321)), CacheLookup::Hit(dist));
        assert!(matches!(restarted.lookup(&rotated(1.234_567_890_123), None), CacheLookup::Hit(_)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_ignored_not_fatal() {
        let path = scratch("version");
        std::fs::write(&path, "QRCC-RESULT-CACHE v999\nentry shots=exact dist=0 qasm_lines=0\n")
            .unwrap();
        let policy = ResultCachePolicy::persisted(path.to_string_lossy().to_string());
        assert_eq!(ResultCache::snapshot_version(&path), Some(999));
        let cache = ResultCache::open(&policy);
        let stats = cache.stats();
        assert!(stats.snapshot_ignored);
        assert_eq!(stats.entries, 0);
        // garbage is equally non-fatal
        std::fs::write(&path, "not a snapshot at all").unwrap();
        assert_eq!(ResultCache::snapshot_version(&path), None);
        assert!(ResultCache::open(&policy).stats().snapshot_ignored);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn policy_serde_round_trips() {
        let policy = ResultCachePolicy::persisted("/tmp/cache.snap").with_capacity(1 << 10);
        let json = serde_json_like(&policy);
        assert!(json.enabled);
        assert_eq!(json.capacity, 1 << 10);
        assert_eq!(json.persist_path.as_deref(), Some("/tmp/cache.snap"));
    }

    /// The vendored serde shim has no serde_json; clone-compare stands in
    /// for a full round trip (derive coverage is what matters).
    fn serde_json_like(policy: &ResultCachePolicy) -> ResultCachePolicy {
        policy.clone()
    }
}
