use std::error::Error;
use std::fmt;

/// Errors produced by the QRCC cutting, execution and reconstruction pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// No cutting solution satisfying the device-size constraint was found
    /// within the configured search limits.
    NoCutFound {
        /// The device size that could not be met.
        device_size: usize,
        /// The smallest subcircuit width achieved by the search.
        best_width: usize,
    },
    /// The requested device size is not smaller than the circuit (no cutting
    /// needed) or is zero.
    InvalidDeviceSize {
        /// The circuit width.
        circuit_qubits: usize,
        /// The requested device size.
        device_size: usize,
    },
    /// A cut solution failed validation (inconsistent assignment, missing cut
    /// on a crossing wire, oversized subcircuit, ...).
    InvalidCutSolution {
        /// Human-readable reason.
        reason: String,
    },
    /// Gate cutting was requested on a gate that has no local-ZZ form.
    GateNotCuttable {
        /// The gate name.
        gate: String,
    },
    /// Gate cutting was requested for a probability-distribution workload,
    /// which gate cuts cannot reconstruct.
    GateCutNeedsExpectation,
    /// The number of wire cuts is too large for dense reconstruction.
    TooManyCuts {
        /// Number of cuts in the plan.
        cuts: usize,
        /// The maximum the reconstructor supports.
        limit: usize,
    },
    /// A reconstructor asked [`ExecutionResults`](crate::execute::ExecutionResults)
    /// for a variant that was not part of the executed batch — the enumerate
    /// phase and the consume phase disagree.
    MissingVariant {
        /// The fragment whose variant is missing.
        fragment: usize,
    },
    /// No backend in a [`DeviceRegistry`](crate::schedule::DeviceRegistry)
    /// can run a routed fragment circuit (too wide for every device, or a
    /// required capability such as mid-circuit measurement is missing).
    NoCompatibleBackend {
        /// Width of the circuit that could not be placed.
        required: usize,
        /// Number of backends in the registry.
        backends: usize,
    },
    /// A shot budget is too small to give every circuit of a scheduled batch
    /// its minimum shot count.
    ShotBudgetTooSmall {
        /// The global budget.
        budget: u64,
        /// The minimum total the batch needs (`circuits × min_shots`).
        needed: u64,
    },
    /// A backend reported a transient failure (device dropped, queue
    /// timeout, job rejected). The [`dispatch`](crate::dispatch) event loop
    /// re-routes such jobs to another compatible backend with the failer
    /// excluded; the error only surfaces once the retry budget is spent.
    BackendUnavailable {
        /// The backend that failed.
        backend: String,
        /// Human-readable failure cause.
        reason: String,
    },
    /// The remote execution transport observed a **protocol violation**: a
    /// malformed, oversized or unexpected frame, a handshake version
    /// mismatch, or a server reply that breaks the submit/result contract.
    /// Unlike [`CoreError::BackendUnavailable`] (I/O errors, disconnects,
    /// timeouts — transient by assumption), a transport error means one side
    /// is speaking the protocol wrong, so retrying the same bytes is
    /// pointless; the dispatcher still re-routes the affected circuits to
    /// *other* backends.
    Transport {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A dispatched circuit failed on every attempt the retry budget
    /// allowed, across every compatible backend.
    RetriesExhausted {
        /// Attempts made (initial dispatch + retries).
        attempts: u32,
        /// The error of the final attempt.
        last: Box<CoreError>,
    },
    /// The pre-flight [`analyze`](crate::analyze) pass found diagnostics at
    /// or above the configured
    /// [`LintLevel`](crate::analyze::LintLevel) gate, so execution was
    /// refused before any backend was contacted.
    AnalysisFailed {
        /// Error-severity diagnostics in the report.
        errors: usize,
        /// Warning-severity diagnostics in the report.
        warnings: usize,
        /// The first gating diagnostic, rendered (`error[QL0203]: ...`).
        first: String,
    },
    /// An error bubbled up from the simulator / device layer.
    Simulation(qrcc_sim::SimError),
    /// An error bubbled up from the ILP solver.
    Ilp(qrcc_ilp::IlpError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoCutFound { device_size, best_width } => write!(
                f,
                "no cutting solution fits a {device_size}-qubit device (best subcircuit width {best_width})"
            ),
            CoreError::InvalidDeviceSize { circuit_qubits, device_size } => write!(
                f,
                "device size {device_size} is invalid for a {circuit_qubits}-qubit circuit (need 0 < D < N)"
            ),
            CoreError::InvalidCutSolution { reason } => {
                write!(f, "invalid cut solution: {reason}")
            }
            CoreError::GateNotCuttable { gate } => {
                write!(f, "gate {gate} cannot be gate-cut (no local ZZ form)")
            }
            CoreError::GateCutNeedsExpectation => write!(
                f,
                "gate cutting reconstructs expectation values only; disable it for probability workloads"
            ),
            CoreError::TooManyCuts { cuts, limit } => {
                write!(f, "plan has {cuts} cuts but dense reconstruction supports at most {limit}")
            }
            CoreError::MissingVariant { fragment } => write!(
                f,
                "execution results hold no distribution for a requested variant of fragment {fragment} (was it enumerated before execute?)"
            ),
            CoreError::NoCompatibleBackend { required, backends } => write!(
                f,
                "no registered backend can run a {required}-qubit fragment circuit ({backends} backend(s) registered)"
            ),
            CoreError::ShotBudgetTooSmall { budget, needed } => write!(
                f,
                "shot budget {budget} is below the scheduled batch minimum of {needed} shots"
            ),
            CoreError::BackendUnavailable { backend, reason } => {
                write!(f, "backend '{backend}' unavailable: {reason}")
            }
            CoreError::Transport { detail } => {
                write!(f, "transport protocol violation: {detail}")
            }
            CoreError::RetriesExhausted { attempts, last } => {
                write!(f, "circuit failed on every backend after {attempts} attempt(s): {last}")
            }
            CoreError::AnalysisFailed { errors, warnings, first } => write!(
                f,
                "pre-flight analysis failed with {errors} error(s) and {warnings} warning(s); first: {first}"
            ),
            CoreError::Simulation(e) => write!(f, "simulation error: {e}"),
            CoreError::Ilp(e) => write!(f, "ilp error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Simulation(e) => Some(e),
            CoreError::Ilp(e) => Some(e),
            CoreError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<qrcc_sim::SimError> for CoreError {
    fn from(e: qrcc_sim::SimError) -> Self {
        CoreError::Simulation(e)
    }
}

impl From<qrcc_ilp::IlpError> for CoreError {
    fn from(e: qrcc_ilp::IlpError) -> Self {
        CoreError::Ilp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let errors = [
            CoreError::NoCutFound { device_size: 3, best_width: 5 },
            CoreError::InvalidDeviceSize { circuit_qubits: 4, device_size: 9 },
            CoreError::InvalidCutSolution { reason: "dangling wire".into() },
            CoreError::GateNotCuttable { gate: "swap".into() },
            CoreError::GateCutNeedsExpectation,
            CoreError::TooManyCuts { cuts: 40, limit: 16 },
            CoreError::MissingVariant { fragment: 2 },
            CoreError::NoCompatibleBackend { required: 5, backends: 2 },
            CoreError::ShotBudgetTooSmall { budget: 10, needed: 64 },
            CoreError::BackendUnavailable { backend: "ibm-ish".into(), reason: "queue".into() },
            CoreError::Transport { detail: "frame length 99 exceeds the cap".into() },
            CoreError::RetriesExhausted {
                attempts: 3,
                last: Box::new(CoreError::BackendUnavailable {
                    backend: "ibm-ish".into(),
                    reason: "queue".into(),
                }),
            },
            CoreError::AnalysisFailed {
                errors: 1,
                warnings: 2,
                first: "error[QL0203]: fragment 0 is 5 qubits wide".into(),
            },
            CoreError::Simulation(qrcc_sim::SimError::ZeroShots),
            CoreError::Ilp(qrcc_ilp::IlpError::Infeasible),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let e: CoreError = qrcc_sim::SimError::ZeroShots.into();
        assert!(matches!(e, CoreError::Simulation(_)));
        let e: CoreError = qrcc_ilp::IlpError::Infeasible.into();
        assert!(matches!(e, CoreError::Ilp(_)));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn retries_exhausted_exposes_the_final_attempt_as_source() {
        let last = CoreError::BackendUnavailable { backend: "b".into(), reason: "down".into() };
        let e = CoreError::RetriesExhausted { attempts: 2, last: Box::new(last.clone()) };
        let source = Error::source(&e).expect("wraps the last error");
        assert_eq!(source.to_string(), last.to_string());
    }
}
