//! Gate-cut decomposition (Mitarai–Fujii virtual two-qubit gates).
//!
//! Every gate-cuttable two-qubit gate of the IR is locally equivalent to a ZZ
//! interaction: `gate = (post_a ⊗ post_b) · RZZ(φ) · (pre_a ⊗ pre_b)` up to a
//! global phase. Cutting the gate replaces the RZZ core, which equals
//! `exp(iθ Z⊗Z)` with `θ = −φ/2`, by six separable instances (paper Eq. (4)):
//!
//! | instance | qubit a            | qubit b            | coefficient      |
//! |---------:|--------------------|--------------------|------------------|
//! | 1        | –                  | –                  | cos²θ            |
//! | 2        | Z                  | Z                  | sin²θ            |
//! | 3        | measure Z (sign β) | Rz(−π/2)           | cosθ·sinθ        |
//! | 4        | measure Z (sign β) | Rz(+π/2)           | −cosθ·sinθ       |
//! | 5        | Rz(−π/2)           | measure Z (sign β) | cosθ·sinθ        |
//! | 6        | Rz(+π/2)           | measure Z (sign β) | −cosθ·sinθ       |
//!
//! The measurement outcome β ∈ {+1, −1} multiplies the instance's
//! contribution, and the local `pre`/`post` gates stay in their own
//! subcircuits. Expectation values of the original circuit are recovered as
//! `E = Σᵢ cᵢ·E[βᵢ·O]ᵢ`.

use qrcc_circuit::Gate;
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_PI_2;

/// Which half (wire) of a gate-cut two-qubit gate a fragment hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateHalf {
    /// The gate's first qubit.
    Top,
    /// The gate's second qubit.
    Bottom,
}

/// The local-ZZ normal form of a gate-cuttable two-qubit gate.
#[derive(Debug, Clone, PartialEq)]
pub struct ZzForm {
    /// Local gates applied to the first qubit *before* the ZZ core.
    pub pre_a: Vec<Gate>,
    /// Local gates applied to the second qubit *before* the ZZ core.
    pub pre_b: Vec<Gate>,
    /// Angle φ of the `RZZ(φ)` core.
    pub rzz_angle: f64,
    /// Local gates applied to the first qubit *after* the ZZ core.
    pub post_a: Vec<Gate>,
    /// Local gates applied to the second qubit *after* the ZZ core.
    pub post_b: Vec<Gate>,
}

impl ZzForm {
    /// The `θ` of the `exp(iθ Z⊗Z)` core (`θ = −φ/2`).
    pub fn theta(&self) -> f64 {
        -self.rzz_angle / 2.0
    }

    /// The reconstruction coefficients of the six instances for this gate.
    pub fn coefficients(&self) -> [f64; 6] {
        let theta = self.theta();
        let (s, c) = theta.sin_cos();
        [c * c, s * s, c * s, -c * s, c * s, -c * s]
    }

    /// The local gates of one half, split into the part before and after the
    /// instance-specific operation.
    pub fn locals(&self, half: GateHalf) -> (&[Gate], &[Gate]) {
        match half {
            GateHalf::Top => (&self.pre_a, &self.post_a),
            GateHalf::Bottom => (&self.pre_b, &self.post_b),
        }
    }
}

/// The operation a gate-cut instance performs on one half of the cut gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstanceOp {
    /// Apply nothing.
    Nothing,
    /// Apply a Pauli-Z.
    PauliZ,
    /// Apply an Rz rotation by the given angle.
    Rz(f64),
    /// Measure in the computational basis; the ±1 outcome multiplies the
    /// instance's contribution.
    MeasureSign,
}

/// Number of instances in the gate-cut decomposition.
pub const NUM_GATE_CUT_INSTANCES: usize = 6;

/// The operation instance `instance` (1-based, 1..=6) performs on `half`.
///
/// # Panics
///
/// Panics if `instance` is outside `1..=6`.
pub fn instance_op(instance: usize, half: GateHalf) -> InstanceOp {
    match (instance, half) {
        (1, _) => InstanceOp::Nothing,
        (2, _) => InstanceOp::PauliZ,
        (3, GateHalf::Top) | (4, GateHalf::Top) => InstanceOp::MeasureSign,
        (3, GateHalf::Bottom) => InstanceOp::Rz(-FRAC_PI_2),
        (4, GateHalf::Bottom) => InstanceOp::Rz(FRAC_PI_2),
        (5, GateHalf::Top) => InstanceOp::Rz(-FRAC_PI_2),
        (6, GateHalf::Top) => InstanceOp::Rz(FRAC_PI_2),
        (5, GateHalf::Bottom) | (6, GateHalf::Bottom) => InstanceOp::MeasureSign,
        _ => panic!("gate-cut instance index {instance} out of range 1..=6"),
    }
}

/// Whether instance `instance` measures on the given half (and therefore
/// contributes a ±1 sign from that fragment).
pub fn instance_measures(instance: usize, half: GateHalf) -> bool {
    matches!(instance_op(instance, half), InstanceOp::MeasureSign)
}

/// The local-ZZ normal form of a gate, or `None` if the gate is not
/// gate-cuttable.
///
/// ```rust
/// use qrcc_circuit::Gate;
/// use qrcc_core::gatecut::zz_form;
///
/// assert!(zz_form(&Gate::Cz).is_some());
/// assert!(zz_form(&Gate::Swap).is_none());
/// ```
pub fn zz_form(gate: &Gate) -> Option<ZzForm> {
    use Gate::*;
    let form = match *gate {
        Rzz(theta) => ZzForm {
            pre_a: vec![],
            pre_b: vec![],
            rzz_angle: theta,
            post_a: vec![],
            post_b: vec![],
        },
        Cz => cphase_form(std::f64::consts::PI),
        CPhase(lambda) => cphase_form(lambda),
        Cx => {
            let mut form = cphase_form(std::f64::consts::PI);
            form.pre_b.insert(0, H);
            form.post_b.push(H);
            form
        }
        Cy => {
            let mut form = cphase_form(std::f64::consts::PI);
            form.pre_b.splice(0..0, [Sdg, H]);
            form.post_b.extend([H, S]);
            form
        }
        Rxx(theta) => ZzForm {
            pre_a: vec![H],
            pre_b: vec![H],
            rzz_angle: theta,
            post_a: vec![H],
            post_b: vec![H],
        },
        Ryy(theta) => ZzForm {
            pre_a: vec![Rx(FRAC_PI_2)],
            pre_b: vec![Rx(FRAC_PI_2)],
            rzz_angle: theta,
            post_a: vec![Rx(-FRAC_PI_2)],
            post_b: vec![Rx(-FRAC_PI_2)],
        },
        _ => return None,
    };
    Some(form)
}

/// Controlled-phase normal form: `CP(λ) ≅ (Rz(λ/2)⊗Rz(λ/2)) · RZZ(−λ/2)` up
/// to a global phase.
fn cphase_form(lambda: f64) -> ZzForm {
    ZzForm {
        pre_a: vec![],
        pre_b: vec![],
        rzz_angle: -lambda / 2.0,
        post_a: vec![Gate::Rz(lambda / 2.0)],
        post_b: vec![Gate::Rz(lambda / 2.0)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrcc_circuit::{Circuit, Operation, QubitId};
    use qrcc_sim::StateVector;

    /// The ZZ normal form must reproduce the original gate's action on every
    /// basis state, up to a global phase.
    fn assert_form_matches(gate: Gate) {
        let form = zz_form(&gate).expect("cuttable");
        // original circuit: the gate itself on qubits (0, 1)
        let mut original = Circuit::new(2);
        original.push(Operation::gate(gate, &[QubitId::new(0), QubitId::new(1)]).unwrap());
        // decomposed circuit
        let mut decomposed = Circuit::new(2);
        for g in &form.pre_a {
            decomposed.push(Operation::gate(*g, &[QubitId::new(0)]).unwrap());
        }
        for g in &form.pre_b {
            decomposed.push(Operation::gate(*g, &[QubitId::new(1)]).unwrap());
        }
        decomposed.rzz(form.rzz_angle, 0, 1);
        for g in &form.post_a {
            decomposed.push(Operation::gate(*g, &[QubitId::new(0)]).unwrap());
        }
        for g in &form.post_b {
            decomposed.push(Operation::gate(*g, &[QubitId::new(1)]).unwrap());
        }
        // compare action on a random-ish input state prepared by fixed gates
        let mut prep = Circuit::new(2);
        prep.ry(0.3, 0).ry(1.1, 1).cx(0, 1).rz(0.4, 0).h(1);
        let mut a = StateVector::from_circuit(&prep).unwrap();
        let mut b = a.clone();
        for op in original.operations() {
            match op {
                Operation::Two { gate, qubits } => a.apply_gate(gate, qubits),
                Operation::Single { gate, qubit } => a.apply_gate(gate, &[*qubit]),
                _ => unreachable!(),
            }
        }
        for op in decomposed.operations() {
            match op {
                Operation::Two { gate, qubits } => b.apply_gate(gate, qubits),
                Operation::Single { gate, qubit } => b.apply_gate(gate, &[*qubit]),
                _ => unreachable!(),
            }
        }
        // states must agree up to a global phase: |<a|b>| = 1
        let overlap = a.inner(&b).abs();
        assert!(
            (overlap - 1.0).abs() < 1e-9,
            "{} zz form mismatch, overlap {overlap}",
            gate.name()
        );
    }

    #[test]
    fn zz_forms_reproduce_their_gates() {
        for gate in [
            Gate::Cz,
            Gate::Cx,
            Gate::Cy,
            Gate::Rzz(0.7),
            Gate::Rxx(1.3),
            Gate::Ryy(-0.4),
            Gate::CPhase(0.9),
            Gate::CPhase(-2.1),
        ] {
            assert_form_matches(gate);
        }
    }

    #[test]
    fn non_cuttable_gates_have_no_form() {
        assert!(zz_form(&Gate::Swap).is_none());
        assert!(zz_form(&Gate::H).is_none());
    }

    #[test]
    fn coefficients_sum_to_identity_weight() {
        // c1 + c2 = 1 and the cross terms cancel pairwise.
        let form = zz_form(&Gate::Cz).unwrap();
        let c = form.coefficients();
        assert!((c[0] + c[1] - 1.0).abs() < 1e-12);
        assert!((c[2] + c[3]).abs() < 1e-12);
        assert!((c[4] + c[5]).abs() < 1e-12);
        // CZ has θ = π/4, so the cross coefficients are ±1/2.
        assert!((c[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn instance_table_is_consistent() {
        for instance in 1..=6 {
            // exactly one side measures in instances 3-6, none in 1-2
            let measures = [GateHalf::Top, GateHalf::Bottom]
                .iter()
                .filter(|&&h| instance_measures(instance, h))
                .count();
            if instance <= 2 {
                assert_eq!(measures, 0);
            } else {
                assert_eq!(measures, 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn instance_index_is_validated() {
        instance_op(0, GateHalf::Top);
    }
}
