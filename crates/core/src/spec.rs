//! Cut-solution data model: which subcircuit every gate belongs to, which
//! gates are gate-cut, and everything derived from that (wire cuts, wire
//! segments, subcircuit widths, post-processing metrics).

use crate::CoreError;
use qrcc_circuit::dag::{CircuitDag, NodeId};
use qrcc_circuit::QubitId;
use serde::{Deserialize, Serialize};

/// Index of a subcircuit within a cut solution.
pub type SubcircuitId = usize;

/// A wire cut on `qubit` between the consecutive DAG nodes `from` and `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCutPoint {
    /// The original-circuit qubit whose wire is cut.
    pub qubit: QubitId,
    /// The last node before the cut (its subcircuit measures the wire).
    pub from: NodeId,
    /// The first node after the cut (its subcircuit re-initialises the wire).
    pub to: NodeId,
    /// Subcircuit on the measurement side.
    pub from_sub: SubcircuitId,
    /// Subcircuit on the initialisation side.
    pub to_sub: SubcircuitId,
}

/// A maximal run of consecutive operations on one original wire that all
/// belong to the same subcircuit. Segments are the logical qubits of the
/// subcircuits; wire cuts are exactly the boundaries between consecutive
/// segments of the same wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// The original-circuit qubit this segment is part of.
    pub qubit: QubitId,
    /// The subcircuit the segment belongs to.
    pub subcircuit: SubcircuitId,
    /// The DAG nodes of the segment, in program order.
    pub nodes: Vec<NodeId>,
    /// Layer of the first node.
    pub start_layer: usize,
    /// Layer of the last node.
    pub end_layer: usize,
    /// Index (into the solution's wire-cut list) of the cut that starts this
    /// segment, or `None` if it is the first segment of its wire.
    pub incoming_cut: Option<usize>,
    /// Index of the cut that ends this segment, or `None` if it is the last
    /// segment of its wire (and therefore carries the wire's final state).
    pub outgoing_cut: Option<usize>,
}

impl Segment {
    /// Whether this segment carries the original qubit's final state (no
    /// outgoing cut).
    pub fn is_output(&self) -> bool {
        self.outgoing_cut.is_none()
    }
}

/// A complete cutting decision over a circuit's DAG: a subcircuit for every
/// gate, plus the set of gate-cut gates and the subcircuits of their halves.
///
/// Wire cuts are *derived*: whenever two consecutive operations on the same
/// wire end up in different subcircuits, that wire is cut between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutSolution {
    /// Number of subcircuits.
    pub num_subcircuits: usize,
    /// Subcircuit of each DAG node (indexed by `NodeId`). For gate-cut nodes
    /// this entry is ignored in favour of [`CutSolution::gate_cut_assignment`].
    pub assignment: Vec<SubcircuitId>,
    /// DAG nodes that are gate-cut (must be two-qubit, gate-cuttable gates).
    pub gate_cuts: Vec<NodeId>,
    /// For each entry of `gate_cuts`: subcircuit of the top half (the gate's
    /// first qubit) and of the bottom half (second qubit). The two must differ.
    pub gate_cut_assignment: Vec<(SubcircuitId, SubcircuitId)>,
}

impl CutSolution {
    /// A solution with every node in subcircuit 0 and no cuts (useful as a
    /// starting point for planners).
    pub fn trivial(dag: &CircuitDag) -> Self {
        CutSolution {
            num_subcircuits: 1,
            assignment: vec![0; dag.nodes().len()],
            gate_cuts: Vec::new(),
            gate_cut_assignment: Vec::new(),
        }
    }

    /// The subcircuit that node `node`'s operation on wire `qubit` belongs
    /// to. For gate-cut nodes this depends on which of the gate's two wires
    /// `qubit` is; for all other nodes it is simply the node's assignment.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not touch `qubit`.
    pub fn membership(&self, dag: &CircuitDag, node: NodeId, qubit: QubitId) -> SubcircuitId {
        if let Some(pos) = self.gate_cuts.iter().position(|&g| g == node) {
            let qubits = dag.node(node).op.qubits();
            let (top, bottom) = self.gate_cut_assignment[pos];
            if qubits[0] == qubit {
                top
            } else if qubits[1] == qubit {
                bottom
            } else {
                panic!("node {node} does not touch {qubit}");
            }
        } else {
            assert!(
                dag.node(node).op.qubits().contains(&qubit),
                "node {node} does not touch {qubit}"
            );
            self.assignment[node]
        }
    }

    /// Whether `node` is gate-cut in this solution.
    pub fn is_gate_cut(&self, node: NodeId) -> bool {
        self.gate_cuts.contains(&node)
    }

    /// The derived wire cuts, ordered by wire then position along the wire.
    pub fn wire_cuts(&self, dag: &CircuitDag) -> Vec<WireCutPoint> {
        let mut cuts = Vec::new();
        for q in 0..dag.num_qubits() {
            let qubit = QubitId::new(q);
            let wire = dag.wire(qubit);
            for pair in wire.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let sa = self.membership(dag, a, qubit);
                let sb = self.membership(dag, b, qubit);
                if sa != sb {
                    cuts.push(WireCutPoint { qubit, from: a, to: b, from_sub: sa, to_sub: sb });
                }
            }
        }
        cuts
    }

    /// The wire segments induced by this solution, ordered by wire then
    /// position. Cut indices refer to the order returned by
    /// [`CutSolution::wire_cuts`].
    pub fn segments(&self, dag: &CircuitDag) -> Vec<Segment> {
        let cuts = self.wire_cuts(dag);
        let mut segments = Vec::new();
        for q in 0..dag.num_qubits() {
            let qubit = QubitId::new(q);
            let wire = dag.wire(qubit);
            if wire.is_empty() {
                continue;
            }
            let mut current: Vec<NodeId> = vec![wire[0]];
            let mut current_sub = self.membership(dag, wire[0], qubit);
            let mut incoming: Option<usize> = None;
            for pair in wire.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                let sb = self.membership(dag, b, qubit);
                if sb != current_sub {
                    let cut_index = cuts
                        .iter()
                        .position(|c| c.qubit == qubit && c.from == a && c.to == b)
                        .expect("derived cut must exist");
                    segments.push(Segment {
                        qubit,
                        subcircuit: current_sub,
                        start_layer: dag.node(*current.first().unwrap()).layer,
                        end_layer: dag.node(*current.last().unwrap()).layer,
                        nodes: std::mem::take(&mut current),
                        incoming_cut: incoming,
                        outgoing_cut: Some(cut_index),
                    });
                    incoming = Some(cut_index);
                    current_sub = sb;
                }
                current.push(b);
            }
            segments.push(Segment {
                qubit,
                subcircuit: current_sub,
                start_layer: dag.node(*current.first().unwrap()).layer,
                end_layer: dag.node(*current.last().unwrap()).layer,
                nodes: current,
                incoming_cut: incoming,
                outgoing_cut: None,
            });
        }
        segments
    }

    /// The width (number of physical qubits) each subcircuit needs.
    ///
    /// With `qubit_reuse` enabled, a subcircuit's width is the maximum number
    /// of its segments that are simultaneously live (interval overlap), since
    /// a physical qubit can be measured, reset and handed to a later segment.
    /// Without reuse (the CutQC model), every segment needs its own physical
    /// qubit for the whole run, so the width is simply the segment count.
    pub fn subcircuit_widths(&self, dag: &CircuitDag, qubit_reuse: bool) -> Vec<usize> {
        let segments = self.segments(dag);
        let mut widths = vec![0usize; self.num_subcircuits];
        if !qubit_reuse {
            for seg in &segments {
                widths[seg.subcircuit] += 1;
            }
            return widths;
        }
        for (sub, width) in widths.iter_mut().enumerate() {
            let intervals: Vec<(usize, usize)> = segments
                .iter()
                .filter(|s| s.subcircuit == sub)
                .map(|s| (s.start_layer, s.end_layer))
                .collect();
            *width = max_interval_overlap(&intervals);
        }
        widths
    }

    /// Number of two-qubit gates in each subcircuit (gate-cut gates count in
    /// neither, since they are replaced by single-qubit instances).
    pub fn two_qubit_gate_counts(&self, dag: &CircuitDag) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_subcircuits];
        for (id, node) in dag.nodes().iter().enumerate() {
            if node.op.is_two_qubit_gate() && !self.is_gate_cut(id) {
                counts[self.assignment[id]] += 1;
            }
        }
        counts
    }

    /// Validates structural consistency of the solution.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidCutSolution`] when the assignment length is
    /// wrong, a subcircuit index is out of range, a gate cut targets a
    /// non-cuttable or single-qubit gate, or a gate cut keeps both halves in
    /// the same subcircuit.
    pub fn validate(&self, dag: &CircuitDag) -> Result<(), CoreError> {
        let invalid = |reason: String| Err(CoreError::InvalidCutSolution { reason });
        if self.assignment.len() != dag.nodes().len() {
            return invalid(format!(
                "assignment covers {} nodes but the dag has {}",
                self.assignment.len(),
                dag.nodes().len()
            ));
        }
        if self.gate_cuts.len() != self.gate_cut_assignment.len() {
            return invalid("gate_cuts and gate_cut_assignment lengths differ".into());
        }
        for (&node, &(top, bottom)) in self.gate_cuts.iter().zip(&self.gate_cut_assignment) {
            if node >= dag.nodes().len() {
                return invalid(format!("gate cut on unknown node {node}"));
            }
            let op = &dag.node(node).op;
            match op.as_gate() {
                Some(gate) if gate.is_gate_cuttable() && op.is_two_qubit_gate() => {}
                _ => return invalid(format!("gate cut on node {node} which is not gate-cuttable")),
            }
            if top == bottom {
                return invalid(format!(
                    "gate cut on node {node} keeps both halves in subcircuit {top}"
                ));
            }
            if top >= self.num_subcircuits || bottom >= self.num_subcircuits {
                return invalid(format!(
                    "gate cut on node {node} references an unknown subcircuit"
                ));
            }
        }
        for (node, &sub) in self.assignment.iter().enumerate() {
            if sub >= self.num_subcircuits && !self.is_gate_cut(node) {
                return invalid(format!("node {node} assigned to unknown subcircuit {sub}"));
            }
        }
        Ok(())
    }

    /// Summarises the solution into the metrics reported in the paper's
    /// tables.
    pub fn metrics(&self, dag: &CircuitDag, qubit_reuse: bool) -> CutMetrics {
        let wire_cuts = self.wire_cuts(dag).len();
        let gate_cuts = self.gate_cuts.len();
        let widths = self.subcircuit_widths(dag, qubit_reuse);
        let two_qubit = self.two_qubit_gate_counts(dag);
        CutMetrics {
            num_subcircuits: self.num_subcircuits,
            wire_cuts,
            gate_cuts,
            subcircuit_widths: widths,
            max_two_qubit_gates: two_qubit.iter().copied().max().unwrap_or(0),
            two_qubit_gate_counts: two_qubit,
        }
    }
}

/// Maximum number of overlapping `[start, end]` intervals (both inclusive).
fn max_interval_overlap(intervals: &[(usize, usize)]) -> usize {
    let mut events: Vec<(usize, i32)> = Vec::with_capacity(intervals.len() * 2);
    for &(s, e) in intervals {
        events.push((s, 1));
        events.push((e + 1, -1));
    }
    events.sort_unstable();
    let mut live = 0i32;
    let mut best = 0i32;
    for (_, delta) in events {
        live += delta;
        best = best.max(live);
    }
    best as usize
}

/// Cut-quality metrics matching the columns of the paper's tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutMetrics {
    /// `#SC`: number of subcircuits.
    pub num_subcircuits: usize,
    /// `#cuts` (wire cuts).
    pub wire_cuts: usize,
    /// Number of gate cuts.
    pub gate_cuts: usize,
    /// Width (physical qubits needed) of each subcircuit.
    pub subcircuit_widths: Vec<usize>,
    /// `#MS`: two-qubit gates in the largest subcircuit.
    pub max_two_qubit_gates: usize,
    /// Two-qubit gates per subcircuit.
    pub two_qubit_gate_counts: Vec<usize>,
}

impl CutMetrics {
    /// The effective wire-cut count `#EffCuts` used by Table 2:
    /// `4^eff = 4^wire · 6^gate`, i.e. `eff = wire + gate·log₄6`.
    pub fn effective_cuts(&self) -> f64 {
        self.wire_cuts as f64 + self.gate_cuts as f64 * 6f64.log(4.0)
    }

    /// The exact post-processing scaling factor `4^wire · 6^gate` (may be
    /// astronomically large; returned as `f64`).
    pub fn post_processing_factor(&self) -> f64 {
        4f64.powi(self.wire_cuts as i32) * 6f64.powi(self.gate_cuts as i32)
    }

    /// The largest subcircuit width.
    pub fn max_width(&self) -> usize {
        self.subcircuit_widths.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrcc_circuit::Circuit;

    /// The 3-qubit chain  h(0); cx(0,1); cx(1,2)  split between subcircuit 0
    /// (first two gates) and subcircuit 1 (last gate).
    fn chain_solution() -> (CircuitDag, CutSolution) {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let dag = CircuitDag::from_circuit(&c);
        let solution = CutSolution {
            num_subcircuits: 2,
            assignment: vec![0, 0, 1],
            gate_cuts: Vec::new(),
            gate_cut_assignment: Vec::new(),
        };
        (dag, solution)
    }

    #[test]
    fn wire_cuts_are_derived_from_membership_changes() {
        let (dag, solution) = chain_solution();
        let cuts = solution.wire_cuts(&dag);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].qubit, QubitId::new(1));
        assert_eq!(cuts[0].from, 1);
        assert_eq!(cuts[0].to, 2);
        assert_eq!((cuts[0].from_sub, cuts[0].to_sub), (0, 1));
    }

    #[test]
    fn segments_follow_cuts() {
        let (dag, solution) = chain_solution();
        let segments = solution.segments(&dag);
        // qubit 0: one segment (sub 0); qubit 1: two segments; qubit 2: one segment (sub 1)
        assert_eq!(segments.len(), 4);
        let q1_segments: Vec<&Segment> =
            segments.iter().filter(|s| s.qubit == QubitId::new(1)).collect();
        assert_eq!(q1_segments.len(), 2);
        assert_eq!(q1_segments[0].subcircuit, 0);
        assert_eq!(q1_segments[0].outgoing_cut, Some(0));
        assert!(q1_segments[0].incoming_cut.is_none());
        assert_eq!(q1_segments[1].subcircuit, 1);
        assert_eq!(q1_segments[1].incoming_cut, Some(0));
        assert!(q1_segments[1].is_output());
    }

    #[test]
    fn widths_with_and_without_reuse() {
        let (dag, solution) = chain_solution();
        // subcircuit 0: segments on q0 (layers 0-1) and q1 (layers 1-1) -> overlap 2
        // subcircuit 1: segments on q1 (layer 2) and q2 (layer 2) -> overlap 2
        assert_eq!(solution.subcircuit_widths(&dag, true), vec![2, 2]);
        assert_eq!(solution.subcircuit_widths(&dag, false), vec![2, 2]);
    }

    #[test]
    fn reuse_reduces_width_when_segments_do_not_overlap() {
        // h(0); cx(0,1); h(1); cx(1,2): put everything in one subcircuit except
        // nothing -- instead cut qubit 1's wire between cx(0,1) and h(1) and
        // keep both sides in the same subcircuit? That is not a cut. Use a
        // different shape: two disjoint-in-time segments assigned to the same
        // subcircuit via a round trip through another subcircuit.
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).h(1).cx(1, 2).h(2);
        let dag = CircuitDag::from_circuit(&c);
        // nodes: 0 h(q0), 1 cx(q0,q1), 2 h(q1), 3 cx(q1,q2), 4 h(q2)
        // subcircuit 0 gets nodes {0, 1}, subcircuit 1 gets {2, 3, 4}
        let solution = CutSolution {
            num_subcircuits: 2,
            assignment: vec![0, 0, 1, 1, 1],
            gate_cuts: Vec::new(),
            gate_cut_assignment: Vec::new(),
        };
        // subcircuit 1 has segments: q1 (layers 2..3) and q2 (layers 3..4):
        // they overlap at layer 3 -> width 2 either way.
        assert_eq!(solution.subcircuit_widths(&dag, true)[1], 2);
        // without reuse the answer is also 2 here; now make them disjoint:
        let mut c2 = Circuit::new(2);
        c2.h(0).h(0).h(1);
        let dag2 = CircuitDag::from_circuit(&c2);
        // Put first h(0) in sub 1, second h(0) in sub 0, h(1) in sub 1. Then
        // sub 1 has two segments: q0 layer 0 and q1 layer 0 (overlap 2). Make
        // them time-disjoint instead by assigning h(1) -> sub 0 and the two
        // h(0) to sub 1 and sub 0... Simpler: directly check the interval
        // helper through widths on a crafted assignment.
        let solution2 = CutSolution {
            num_subcircuits: 2,
            assignment: vec![1, 0, 1],
            gate_cuts: Vec::new(),
            gate_cut_assignment: Vec::new(),
        };
        // sub 1 segments: q0 at layer 0 only, q1 at layer 0 only -> overlap 2,
        // no reuse benefit (same layer). Without reuse also 2.
        assert_eq!(solution2.subcircuit_widths(&dag2, true)[1], 2);
        assert_eq!(solution2.subcircuit_widths(&dag2, false)[1], 2);
    }

    #[test]
    fn no_reuse_counts_every_segment() {
        // A wire that leaves and comes back to subcircuit 0 costs two qubits
        // without reuse but can cost one with reuse if the stretches are
        // time-disjoint.
        let mut c = Circuit::new(2);
        c.h(0).h(1).h(0).h(1).h(0);
        let dag = CircuitDag::from_circuit(&c);
        // nodes: 0 h(q0,l0), 1 h(q1,l0), 2 h(q0,l1), 3 h(q1,l1), 4 h(q0,l2)
        // q0: first and last op in sub 0, middle op in sub 1.
        let solution = CutSolution {
            num_subcircuits: 2,
            assignment: vec![0, 1, 1, 0, 0],
            gate_cuts: Vec::new(),
            gate_cut_assignment: Vec::new(),
        };
        let widths_reuse = solution.subcircuit_widths(&dag, true);
        let widths_plain = solution.subcircuit_widths(&dag, false);
        // sub 0 segments: q0 [0,0], q0 [2,2], q1 [1,1] -> pairwise disjoint -> reuse width 1
        assert_eq!(widths_reuse[0], 1);
        // without reuse all three segments need their own qubit
        assert_eq!(widths_plain[0], 3);
    }

    #[test]
    fn gate_cut_membership_and_counts() {
        let mut c = Circuit::new(2);
        c.h(0).cz(0, 1).h(1);
        let dag = CircuitDag::from_circuit(&c);
        let solution = CutSolution {
            num_subcircuits: 2,
            assignment: vec![0, 0, 1],
            gate_cuts: vec![1],
            gate_cut_assignment: vec![(0, 1)],
        };
        assert!(solution.validate(&dag).is_ok());
        // top wire (q0) of the cz stays in sub 0, bottom wire (q1) in sub 1
        assert_eq!(solution.membership(&dag, 1, QubitId::new(0)), 0);
        assert_eq!(solution.membership(&dag, 1, QubitId::new(1)), 1);
        // no wire cuts needed: each wire stays in one subcircuit
        assert!(solution.wire_cuts(&dag).is_empty());
        // the cz no longer counts as a two-qubit gate anywhere
        assert_eq!(solution.two_qubit_gate_counts(&dag), vec![0, 0]);
        let metrics = solution.metrics(&dag, true);
        assert_eq!(metrics.gate_cuts, 1);
        assert_eq!(metrics.wire_cuts, 0);
        assert!((metrics.effective_cuts() - 6f64.log(4.0)).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_solutions() {
        let mut c = Circuit::new(2);
        c.h(0).swap(0, 1);
        let dag = CircuitDag::from_circuit(&c);
        // wrong assignment length
        let bad_len = CutSolution {
            num_subcircuits: 1,
            assignment: vec![0],
            gate_cuts: Vec::new(),
            gate_cut_assignment: Vec::new(),
        };
        assert!(bad_len.validate(&dag).is_err());
        // gate cut on a swap (not cuttable)
        let bad_gate = CutSolution {
            num_subcircuits: 2,
            assignment: vec![0, 0],
            gate_cuts: vec![1],
            gate_cut_assignment: vec![(0, 1)],
        };
        assert!(bad_gate.validate(&dag).is_err());
        // gate cut halves in the same subcircuit
        let mut c2 = Circuit::new(2);
        c2.cz(0, 1);
        let dag2 = CircuitDag::from_circuit(&c2);
        let same_sub = CutSolution {
            num_subcircuits: 2,
            assignment: vec![0],
            gate_cuts: vec![0],
            gate_cut_assignment: vec![(1, 1)],
        };
        assert!(same_sub.validate(&dag2).is_err());
        // out-of-range subcircuit
        let bad_sub = CutSolution {
            num_subcircuits: 1,
            assignment: vec![0, 3],
            gate_cuts: Vec::new(),
            gate_cut_assignment: Vec::new(),
        };
        assert!(bad_sub.validate(&dag).is_err());
    }

    #[test]
    fn effective_cuts_matches_paper_example() {
        // 17 wire cuts + 5 gate cuts -> 23.46 effective cuts (ERD N=50 row).
        let m = CutMetrics {
            num_subcircuits: 2,
            wire_cuts: 17,
            gate_cuts: 5,
            subcircuit_widths: vec![27, 27],
            max_two_qubit_gates: 65,
            two_qubit_gate_counts: vec![65, 60],
        };
        assert!((m.effective_cuts() - 23.46).abs() < 0.01);
        assert_eq!(m.max_width(), 27);
    }

    #[test]
    fn interval_overlap_helper() {
        assert_eq!(max_interval_overlap(&[]), 0);
        assert_eq!(max_interval_overlap(&[(0, 5)]), 1);
        assert_eq!(max_interval_overlap(&[(0, 2), (3, 5)]), 1);
        assert_eq!(max_interval_overlap(&[(0, 3), (3, 5)]), 2);
        assert_eq!(max_interval_overlap(&[(0, 9), (1, 2), (3, 4), (4, 6)]), 3);
    }

    #[test]
    fn trivial_solution_has_no_cuts() {
        let (dag, _) = chain_solution();
        let trivial = CutSolution::trivial(&dag);
        assert!(trivial.validate(&dag).is_ok());
        assert!(trivial.wire_cuts(&dag).is_empty());
        assert_eq!(trivial.metrics(&dag, true).num_subcircuits, 1);
    }
}
