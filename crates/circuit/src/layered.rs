//! Identity-padded layered view of a circuit (the basis of the QR-aware DAG
//! of paper §4.1).
//!
//! The layered view places every operation of a circuit on a
//! `(layer, qubit)` grid using ASAP scheduling. Grid cells not covered by a
//! real operation are *implicit identity* slots; the QRCC model only needs a
//! few of them explicitly (beginning / middle / end of long idle stretches),
//! which [`LayeredCircuit::identity_slots`] reports.

use crate::dag::{CircuitDag, NodeId};
use crate::{Circuit, QubitId};

/// What occupies a `(layer, qubit)` cell of the layered grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// No operation: the qubit is idle at this layer (implicit identity).
    Idle,
    /// The cell is covered by DAG node `NodeId` (for a two-qubit gate both of
    /// its cells carry the same node id).
    Op(NodeId),
}

/// A circuit arranged on a `(layer, qubit)` grid.
#[derive(Debug, Clone)]
pub struct LayeredCircuit {
    grid: Vec<Vec<Cell>>, // grid[layer][qubit]
    num_qubits: usize,
    num_layers: usize,
}

impl LayeredCircuit {
    /// Builds the layered view of `circuit`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let dag = CircuitDag::from_circuit(circuit);
        Self::from_dag(&dag)
    }

    /// Builds the layered view from an existing DAG.
    pub fn from_dag(dag: &CircuitDag) -> Self {
        let num_qubits = dag.num_qubits();
        let num_layers = dag.num_layers();
        let mut grid = vec![vec![Cell::Idle; num_qubits]; num_layers];
        for (id, node) in dag.nodes().iter().enumerate() {
            for q in node.op.qubits() {
                grid[node.layer][q.index()] = Cell::Op(id);
            }
        }
        LayeredCircuit { grid, num_qubits, num_layers }
    }

    /// Number of layers in the grid.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Number of qubits in the grid.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The cell at `(layer, qubit)`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` or `qubit` is out of range.
    pub fn cell(&self, layer: usize, qubit: QubitId) -> Cell {
        self.grid[layer][qubit.index()]
    }

    /// Iterator over the cells of one layer.
    pub fn layer(&self, layer: usize) -> &[Cell] {
        &self.grid[layer]
    }

    /// Number of qubits that have at least one operation at or before
    /// `layer` and at least one at or after `layer` — i.e. the number of
    /// *live* wires crossing the layer. This is the quantity the device-size
    /// constraint of the cutting model bounds per subcircuit.
    pub fn live_wires_at(
        &self,
        layer: usize,
        first: &[Option<usize>],
        last: &[Option<usize>],
    ) -> usize {
        (0..self.num_qubits)
            .filter(|&q| match (first[q], last[q]) {
                (Some(f), Some(l)) => f <= layer && layer <= l,
                _ => false,
            })
            .count()
    }

    /// For every qubit, the idle stretches `(start_layer, end_layer)`
    /// (inclusive) between two real operations, at the start of the circuit
    /// before the first operation, or at the end after the last.
    ///
    /// The QRCC model selectively materialises identity gates at the start,
    /// middle and end of long stretches; this method provides the raw
    /// stretches so the model can decide.
    pub fn idle_stretches(&self) -> Vec<(QubitId, usize, usize)> {
        let mut stretches = Vec::new();
        for q in 0..self.num_qubits {
            let mut run_start: Option<usize> = None;
            for layer in 0..self.num_layers {
                match self.grid[layer][q] {
                    Cell::Idle => {
                        if run_start.is_none() {
                            run_start = Some(layer);
                        }
                    }
                    Cell::Op(_) => {
                        if let Some(start) = run_start.take() {
                            stretches.push((QubitId::new(q), start, layer - 1));
                        }
                    }
                }
            }
            if let Some(start) = run_start {
                stretches.push((QubitId::new(q), start, self.num_layers - 1));
            }
        }
        stretches
    }

    /// Representative identity slots for each idle stretch: begin, middle and
    /// end layer of every stretch (deduplicated). These are the "dummy
    /// identity gates" the paper inserts so that cuts can be placed inside
    /// long idle wires without exploding the model.
    pub fn identity_slots(&self) -> Vec<(QubitId, usize)> {
        let mut slots = Vec::new();
        for (q, start, end) in self.idle_stretches() {
            let mid = (start + end) / 2;
            slots.push((q, start));
            if mid != start && mid != end {
                slots.push((q, mid));
            }
            if end != start {
                slots.push((q, end));
            }
        }
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_matches_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let layered = LayeredCircuit::from_circuit(&c);
        assert_eq!(layered.num_layers(), 3);
        assert_eq!(layered.num_qubits(), 3);
        assert_eq!(layered.cell(0, QubitId::new(0)), Cell::Op(0));
        assert_eq!(layered.cell(0, QubitId::new(2)), Cell::Idle);
        // the cx(0,1) covers both its qubits at layer 1
        assert_eq!(layered.cell(1, QubitId::new(0)), Cell::Op(1));
        assert_eq!(layered.cell(1, QubitId::new(1)), Cell::Op(1));
    }

    #[test]
    fn idle_stretches_cover_leading_and_trailing_idleness() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let layered = LayeredCircuit::from_circuit(&c);
        let stretches = layered.idle_stretches();
        // qubit 2 idles at layers 0..=1, qubit 0 idles at layer 2
        assert!(stretches.contains(&(QubitId::new(2), 0, 1)));
        assert!(stretches.contains(&(QubitId::new(0), 2, 2)));
    }

    #[test]
    fn identity_slots_are_within_stretches() {
        let mut c = Circuit::new(2);
        c.h(0);
        for _ in 0..6 {
            c.h(0);
        }
        c.cx(0, 1);
        let layered = LayeredCircuit::from_circuit(&c);
        for (q, layer) in layered.identity_slots() {
            assert_eq!(layered.cell(layer, q), Cell::Idle);
        }
    }

    #[test]
    fn empty_circuit_has_no_layers() {
        let c = Circuit::new(4);
        let layered = LayeredCircuit::from_circuit(&c);
        assert_eq!(layered.num_layers(), 0);
        assert!(layered.idle_stretches().is_empty());
    }
}
