//! Simple undirected graphs and the seeded random-graph generators backing
//! the paper's QAOA and Hamiltonian-simulation benchmarks: random `m`-regular
//! graphs (REG), Erdős–Rényi graphs (ERD), Barabási–Albert graphs (BAR) and
//! 2-D square lattices with nearest / next-nearest neighbour couplings.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An undirected graph on `n` nodes with a sorted, deduplicated edge list.
///
/// ```rust
/// use qrcc_circuit::graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Creates an empty graph on `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Graph { num_nodes, edges: Vec::new() }
    }

    /// Creates a graph from an edge iterator; self-loops are dropped,
    /// duplicates (in either orientation) are removed, and endpoints are
    /// normalised so that `a < b`.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut set = BTreeSet::new();
        for (a, b) in edges {
            assert!(a < num_nodes && b < num_nodes, "edge ({a},{b}) out of range");
            if a == b {
                continue;
            }
            set.insert((a.min(b), a.max(b)));
        }
        Graph { num_nodes, edges: set.into_iter().collect() }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The normalised (a < b), sorted edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.edges.iter().filter(|(a, b)| *a == v || *b == v).count()
    }

    /// Whether the graph contains edge `(a, b)` in either orientation.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        let e = (a.min(b), a.max(b));
        self.edges.binary_search(&e).is_ok()
    }

    /// Average node degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes as f64
        }
    }
}

/// Generates a random `degree`-regular graph on `n` nodes (REG benchmark)
/// using the configuration-model pairing with rejection, seeded by `seed`.
///
/// If `n * degree` is odd the degree of one node will be `degree - 1` (the
/// paper's generator silently does the same for odd products).
///
/// # Panics
///
/// Panics if `degree >= n`.
pub fn random_regular(n: usize, degree: usize, seed: u64) -> Graph {
    assert!(degree < n, "degree {degree} must be smaller than node count {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    // Retry pairing until a simple graph is produced (or fall back to a
    // greedy repair after too many attempts).
    for _attempt in 0..200 {
        let mut stubs: Vec<usize> = Vec::with_capacity(n * degree);
        for v in 0..n {
            for _ in 0..degree {
                stubs.push(v);
            }
        }
        if stubs.len() % 2 == 1 {
            stubs.pop();
        }
        stubs.shuffle(&mut rng);
        let mut edges = BTreeSet::new();
        let mut ok = true;
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b || edges.contains(&(a.min(b), a.max(b))) {
                ok = false;
                break;
            }
            edges.insert((a.min(b), a.max(b)));
        }
        if ok {
            return Graph { num_nodes: n, edges: edges.into_iter().collect() };
        }
    }
    // Fallback: deterministic circulant graph (still degree-regular).
    let mut edges = BTreeSet::new();
    for v in 0..n {
        for k in 1..=(degree / 2) {
            let w = (v + k) % n;
            edges.insert((v.min(w), v.max(w)));
        }
    }
    if degree % 2 == 1 && n.is_multiple_of(2) {
        for v in 0..n / 2 {
            edges.insert((v, v + n / 2));
        }
    }
    Graph { num_nodes: n, edges: edges.into_iter().collect() }
}

/// Generates an Erdős–Rényi G(n, p) random graph (ERD benchmark).
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen::<f64>() < p {
                edges.push((a, b));
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// Generates a Barabási–Albert preferential-attachment graph where each new
/// node attaches to `m` existing nodes (BAR benchmark).
///
/// # Panics
///
/// Panics if `m == 0` or `m >= n`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1 && m < n, "attachment count m={m} must satisfy 1 <= m < n={n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Repeated-endpoint list implements preferential attachment.
    let mut endpoints: Vec<usize> = Vec::new();
    // Start from a star over the first m+1 nodes.
    for v in 0..m {
        edges.push((v, m));
        endpoints.push(v);
        endpoints.push(m);
    }
    for v in (m + 1)..n {
        let mut targets = BTreeSet::new();
        while targets.len() < m {
            let pick = endpoints[rng.gen_range(0..endpoints.len())];
            if pick != v {
                targets.insert(pick);
            }
        }
        for t in targets {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Graph::from_edges(n, edges)
}

/// A 2-D square lattice of `rows × cols` nodes with nearest-neighbour edges,
/// optionally including next-nearest (diagonal) neighbours — the interaction
/// graphs of the paper's Hamiltonian-simulation benchmarks (IS/XY/HS and
/// IS-n/XY-n/HS-n).
pub fn lattice_2d(rows: usize, cols: usize, next_nearest: bool) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
            if next_nearest {
                if r + 1 < rows && c + 1 < cols {
                    edges.push((idx(r, c), idx(r + 1, c + 1)));
                }
                if r + 1 < rows && c >= 1 {
                    edges.push((idx(r, c), idx(r + 1, c - 1)));
                }
            }
        }
    }
    Graph::from_edges(rows * cols, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_normalises_and_dedups() {
        let g = Graph::from_edges(3, [(1, 0), (0, 1), (2, 2), (1, 2)]);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range() {
        Graph::from_edges(2, [(0, 5)]);
    }

    #[test]
    fn random_regular_has_requested_degree() {
        let g = random_regular(20, 4, 7);
        assert_eq!(g.num_nodes(), 20);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4, "node {v} degree");
        }
        assert_eq!(g.num_edges(), 20 * 4 / 2);
    }

    #[test]
    fn random_regular_is_deterministic_per_seed() {
        assert_eq!(random_regular(16, 3, 42), random_regular(16, 3, 42));
        // Different seeds almost surely give different graphs.
        assert_ne!(random_regular(16, 3, 42), random_regular(16, 3, 43));
    }

    #[test]
    fn erdos_renyi_edge_count_tracks_probability() {
        let g0 = erdos_renyi(30, 0.0, 1);
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(30, 1.0, 1);
        assert_eq!(g1.num_edges(), 30 * 29 / 2);
        let g = erdos_renyi(50, 0.1, 3);
        let expected = 0.1 * (50.0 * 49.0 / 2.0);
        assert!((g.num_edges() as f64) > expected * 0.4);
        assert!((g.num_edges() as f64) < expected * 1.8);
    }

    #[test]
    fn barabasi_albert_every_late_node_has_at_least_m_edges() {
        let m = 3;
        let g = barabasi_albert(25, m, 5);
        for v in (m + 1)..25 {
            assert!(g.degree(v) >= m, "node {v} has degree {}", g.degree(v));
        }
        assert!(g.num_edges() >= (25 - m - 1) * m);
    }

    #[test]
    fn lattice_nearest_neighbour_edge_count() {
        let g = lattice_2d(3, 4, false);
        // horizontal: 3*(4-1)=9, vertical: (3-1)*4=8
        assert_eq!(g.num_edges(), 17);
        let gn = lattice_2d(3, 4, true);
        // diagonals: 2*(3-1)*(4-1)=12
        assert_eq!(gn.num_edges(), 17 + 12);
    }

    #[test]
    fn average_degree_is_consistent() {
        let g = lattice_2d(2, 2, false);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }
}
