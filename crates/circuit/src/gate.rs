use serde::{Deserialize, Serialize};
use std::fmt;

/// Broad classification of a [`Gate`] by the number of qubits it acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Acts on a single qubit.
    SingleQubit,
    /// Acts on two qubits.
    TwoQubit,
}

/// A quantum gate from the fixed gate set supported by the QRCC pipeline.
///
/// The set mirrors what the paper assumes the hardware offers: arbitrary
/// single-qubit gates plus a family of two-qubit entangling gates. Rotation
/// angles are in radians.
///
/// Two-qubit gates of the form `exp(iθ A₁⊗A₂)` with `A₁² = A₂² = I` (up to
/// local single-qubit corrections) are *gate-cuttable*: [`Gate::is_gate_cuttable`]
/// reports whether the Mitarai–Fujii six-instance decomposition applies.
///
/// ```rust
/// use qrcc_circuit::Gate;
///
/// assert!(Gate::Cz.is_two_qubit());
/// assert!(Gate::Cz.is_gate_cuttable());
/// assert!(!Gate::Swap.is_gate_cuttable());
/// assert_eq!(Gate::Rz(0.5).dagger(), Gate::Rz(-0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    // ---- single-qubit gates ----
    /// Identity.
    I,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate S† = diag(1, -i).
    Sdg,
    /// T gate = diag(1, e^{iπ/4}).
    T,
    /// T† gate.
    Tdg,
    /// Square root of X (the native √x gate on IBM hardware).
    SqrtX,
    /// Rotation about the X axis by the given angle.
    Rx(f64),
    /// Rotation about the Y axis by the given angle.
    Ry(f64),
    /// Rotation about the Z axis by the given angle.
    Rz(f64),
    /// Phase gate diag(1, e^{iλ}).
    Phase(f64),
    /// General single-qubit unitary U3(θ, φ, λ).
    U3(f64, f64, f64),

    // ---- two-qubit gates ----
    /// Controlled-X (CNOT); qubit order is (control, target).
    Cx,
    /// Controlled-Y; qubit order is (control, target).
    Cy,
    /// Controlled-Z (symmetric).
    Cz,
    /// SWAP gate.
    Swap,
    /// Two-qubit ZZ rotation `exp(-iθ/2 · Z⊗Z)`.
    Rzz(f64),
    /// Two-qubit XX rotation `exp(-iθ/2 · X⊗X)`.
    Rxx(f64),
    /// Two-qubit YY rotation `exp(-iθ/2 · Y⊗Y)`.
    Ryy(f64),
    /// Controlled phase gate diag(1, 1, 1, e^{iλ}) (symmetric).
    CPhase(f64),
}

impl Gate {
    /// The number of qubits this gate acts on (1 or 2).
    pub fn num_qubits(&self) -> usize {
        match self.kind() {
            GateKind::SingleQubit => 1,
            GateKind::TwoQubit => 2,
        }
    }

    /// Whether this gate acts on exactly two qubits.
    pub fn is_two_qubit(&self) -> bool {
        self.kind() == GateKind::TwoQubit
    }

    /// Whether this gate acts on exactly one qubit.
    pub fn is_single_qubit(&self) -> bool {
        self.kind() == GateKind::SingleQubit
    }

    /// The [`GateKind`] of this gate.
    pub fn kind(&self) -> GateKind {
        use Gate::*;
        match self {
            I | H | X | Y | Z | S | Sdg | T | Tdg | SqrtX | Rx(_) | Ry(_) | Rz(_) | Phase(_)
            | U3(..) => GateKind::SingleQubit,
            Cx | Cy | Cz | Swap | Rzz(_) | Rxx(_) | Ryy(_) | CPhase(_) => GateKind::TwoQubit,
        }
    }

    /// A short, stable, lowercase name for the gate (OpenQASM-style).
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            I => "id",
            H => "h",
            X => "x",
            Y => "y",
            Z => "z",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            SqrtX => "sx",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            Phase(_) => "p",
            U3(..) => "u3",
            Cx => "cx",
            Cy => "cy",
            Cz => "cz",
            Swap => "swap",
            Rzz(_) => "rzz",
            Rxx(_) => "rxx",
            Ryy(_) => "ryy",
            CPhase(_) => "cp",
        }
    }

    /// The rotation parameters of the gate, if any.
    pub fn params(&self) -> Vec<f64> {
        use Gate::*;
        match *self {
            Rx(t) | Ry(t) | Rz(t) | Phase(t) | Rzz(t) | Rxx(t) | Ryy(t) | CPhase(t) => vec![t],
            U3(a, b, c) => vec![a, b, c],
            _ => Vec::new(),
        }
    }

    /// Whether all parameters (if any) are finite.
    pub fn params_finite(&self) -> bool {
        self.params().iter().all(|p| p.is_finite())
    }

    /// The adjoint (inverse) of this gate.
    pub fn dagger(&self) -> Gate {
        use Gate::*;
        match *self {
            I => I,
            H => H,
            X => X,
            Y => Y,
            Z => Z,
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            // √X† = Rx(-π/2) up to a global phase, which is U3(π/2, π/2, -π/2).
            SqrtX => U3(
                std::f64::consts::FRAC_PI_2,
                std::f64::consts::FRAC_PI_2,
                -std::f64::consts::FRAC_PI_2,
            ),
            Rx(t) => Rx(-t),
            Ry(t) => Ry(-t),
            Rz(t) => Rz(-t),
            Phase(t) => Phase(-t),
            U3(theta, phi, lambda) => U3(-theta, -lambda, -phi),
            Cx => Cx,
            Cy => Cy,
            Cz => Cz,
            Swap => Swap,
            Rzz(t) => Rzz(-t),
            Rxx(t) => Rxx(-t),
            Ryy(t) => Ryy(-t),
            CPhase(t) => CPhase(-t),
        }
    }

    /// Whether the gate is (exactly) the identity operation.
    ///
    /// Parameterised rotations with angle `0.0` are also reported as identity.
    pub fn is_identity(&self) -> bool {
        use Gate::*;
        match *self {
            I => true,
            Rx(t) | Ry(t) | Rz(t) | Phase(t) | Rzz(t) | Rxx(t) | Ryy(t) | CPhase(t) => t == 0.0,
            U3(a, b, c) => a == 0.0 && b == 0.0 && c == 0.0,
            _ => false,
        }
    }

    /// Whether this two-qubit gate can be *gate-cut* with the Mitarai–Fujii
    /// six-instance decomposition used by QRCC.
    ///
    /// A gate qualifies when it is locally equivalent to `exp(iθ Z⊗Z)` for
    /// some θ, i.e. it can be written as local single-qubit gates (which stay
    /// in their own subcircuits) times a single two-qubit ZZ interaction.
    /// This covers CX, CY, CZ, RZZ, RXX, RYY and controlled-phase gates, but
    /// not SWAP (which needs three such interactions).
    pub fn is_gate_cuttable(&self) -> bool {
        use Gate::*;
        matches!(self, Cx | Cy | Cz | Rzz(_) | Rxx(_) | Ryy(_) | CPhase(_))
    }

    /// Whether the gate is symmetric under exchanging its two qubits.
    ///
    /// Returns `false` for single-qubit gates.
    pub fn is_symmetric(&self) -> bool {
        use Gate::*;
        matches!(self, Cz | Swap | Rzz(_) | Rxx(_) | Ryy(_) | CPhase(_))
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format!("{p:.6}")).collect();
            write!(f, "{}({})", self.name(), rendered.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(Gate::H.num_qubits(), 1);
        assert_eq!(Gate::Cx.num_qubits(), 2);
        assert!(Gate::Rzz(0.3).is_two_qubit());
        assert!(Gate::U3(0.1, 0.2, 0.3).is_single_qubit());
    }

    #[test]
    fn dagger_is_involutive_for_parameterised_gates() {
        let gates = [
            Gate::Rx(0.7),
            Gate::Ry(-1.2),
            Gate::Rz(2.5),
            Gate::Phase(0.9),
            Gate::Rzz(0.4),
            Gate::CPhase(1.1),
        ];
        for g in gates {
            assert_eq!(g.dagger().dagger(), g);
        }
    }

    #[test]
    fn self_inverse_gates() {
        for g in [Gate::H, Gate::X, Gate::Y, Gate::Z, Gate::Cx, Gate::Cz, Gate::Swap] {
            assert_eq!(g.dagger(), g);
        }
    }

    #[test]
    fn s_and_t_invert_to_daggers() {
        assert_eq!(Gate::S.dagger(), Gate::Sdg);
        assert_eq!(Gate::T.dagger(), Gate::Tdg);
        assert_eq!(Gate::Sdg.dagger(), Gate::S);
        assert_eq!(Gate::Tdg.dagger(), Gate::T);
    }

    #[test]
    fn identity_detection() {
        assert!(Gate::I.is_identity());
        assert!(Gate::Rz(0.0).is_identity());
        assert!(Gate::Rzz(0.0).is_identity());
        assert!(!Gate::Rz(0.1).is_identity());
        assert!(!Gate::X.is_identity());
    }

    #[test]
    fn gate_cuttable_set() {
        assert!(Gate::Cz.is_gate_cuttable());
        assert!(Gate::Cx.is_gate_cuttable());
        assert!(Gate::Rzz(0.2).is_gate_cuttable());
        assert!(Gate::CPhase(0.2).is_gate_cuttable());
        assert!(!Gate::Swap.is_gate_cuttable());
        assert!(!Gate::H.is_gate_cuttable());
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert!(Gate::Rz(0.5).to_string().starts_with("rz(0.5"));
    }

    #[test]
    fn names_are_lowercase_and_stable() {
        for g in [Gate::I, Gate::H, Gate::SqrtX, Gate::Cx, Gate::CPhase(0.1)] {
            assert!(g.name().chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }
}
