//! Quantum circuit intermediate representation for the QRCC reproduction.
//!
//! This crate provides the gate-level circuit IR the QRCC compiler pass
//! operates on, together with everything needed to *produce* the circuits the
//! paper evaluates:
//!
//! * [`Gate`], [`Operation`] and [`Circuit`] — the IR itself, restricted to
//!   single- and two-qubit gates plus mid-circuit measurement and reset
//!   (exactly the operations assumed by the paper).
//! * [`dag`] — a wire-dependency DAG and ASAP layering.
//! * [`layered`] — the identity-padded layered view used by the QR-aware DAG.
//! * [`graph`] — seeded random-graph generators (regular, Erdős–Rényi,
//!   Barabási–Albert, 2-D lattice) backing the QAOA / Hamiltonian-simulation
//!   benchmarks.
//! * [`generators`] — the benchmark circuits of the paper's evaluation: QFT,
//!   AQFT, Supremacy, ripple-carry adder, QAOA, 2-D lattice Hamiltonian
//!   simulation and hydrogen-chain VQE.
//! * [`observable`] — Pauli-string observables for expectation-value
//!   workloads.
//!
//! # Example
//!
//! ```rust
//! use qrcc_circuit::{Circuit, Gate};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! assert_eq!(bell.num_qubits(), 2);
//! assert_eq!(bell.two_qubit_gate_count(), 1);
//! assert_eq!(bell.depth(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod circuit;
mod error;
mod gate;
mod operation;

pub mod dag;
pub mod generators;
pub mod graph;
pub mod layered;
pub mod observable;
pub mod qasm;
pub mod routing;

pub use circuit::Circuit;
pub use error::CircuitError;
pub use gate::{Gate, GateKind};
pub use operation::{Operation, QubitId};
