use std::error::Error;
use std::fmt;

/// Errors produced while constructing or transforming circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A qubit index was outside the circuit's register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The number of qubits in the circuit.
        num_qubits: usize,
    },
    /// A classical bit index was outside the circuit's classical register.
    ClbitOutOfRange {
        /// The offending classical bit index.
        clbit: usize,
        /// The number of classical bits in the circuit.
        num_clbits: usize,
    },
    /// A gate was applied to the wrong number of qubits.
    ArityMismatch {
        /// The gate name.
        gate: &'static str,
        /// The number of qubits the gate acts on.
        expected: usize,
        /// The number of qubits supplied.
        actual: usize,
    },
    /// The same qubit was supplied twice to a multi-qubit gate.
    DuplicateQubit {
        /// The duplicated qubit index.
        qubit: usize,
    },
    /// A circuit was expected to contain only unitary gates but contained a
    /// measurement, reset, or barrier.
    NonUnitaryOperation {
        /// Index of the offending operation.
        index: usize,
    },
    /// A parameter value was not finite.
    NonFiniteParameter {
        /// The gate name.
        gate: &'static str,
    },
    /// OpenQASM text could not be parsed back into a [`Circuit`](crate::Circuit).
    QasmParse {
        /// 1-based line number of the offending statement (0 for
        /// document-level problems such as a missing `qreg`).
        line: usize,
        /// 1-based byte column of the offending token within its line (0
        /// when the error cannot be pinned to a token).
        column: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range for {num_qubits}-qubit circuit")
            }
            CircuitError::ClbitOutOfRange { clbit, num_clbits } => {
                write!(f, "classical bit {clbit} out of range for {num_clbits} classical bits")
            }
            CircuitError::ArityMismatch { gate, expected, actual } => {
                write!(f, "gate {gate} acts on {expected} qubits but {actual} were supplied")
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "qubit {qubit} supplied more than once to a multi-qubit gate")
            }
            CircuitError::NonUnitaryOperation { index } => {
                write!(f, "operation {index} is not a unitary gate")
            }
            CircuitError::NonFiniteParameter { gate } => {
                write!(f, "gate {gate} was given a non-finite parameter")
            }
            CircuitError::QasmParse { line, column: 0, reason } => {
                write!(f, "qasm parse error at line {line}: {reason}")
            }
            CircuitError::QasmParse { line, column, reason } => {
                write!(f, "qasm parse error at line {line}, column {column}: {reason}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            CircuitError::QubitOutOfRange { qubit: 5, num_qubits: 3 },
            CircuitError::ClbitOutOfRange { clbit: 2, num_clbits: 1 },
            CircuitError::ArityMismatch { gate: "cx", expected: 2, actual: 1 },
            CircuitError::DuplicateQubit { qubit: 0 },
            CircuitError::NonUnitaryOperation { index: 3 },
            CircuitError::NonFiniteParameter { gate: "rz" },
            CircuitError::QasmParse { line: 4, column: 1, reason: "unknown gate 'bogus'".into() },
            CircuitError::QasmParse { line: 4, column: 0, reason: "unknown gate 'bogus'".into() },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
