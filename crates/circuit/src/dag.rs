//! Wire-dependency DAG over circuit operations and ASAP layering.
//!
//! Each node of the [`CircuitDag`] is one operation of the source circuit;
//! there is an edge from node `a` to node `b` when `b` is the next operation
//! after `a` on some qubit wire. The DAG is what both the QR-aware layered
//! view (paper §4.1) and the qubit-reuse pass are computed from.

use crate::{Circuit, Operation, QubitId};

/// Identifier of a node (operation) inside a [`CircuitDag`].
pub type NodeId = usize;

/// A node of the circuit DAG: one operation plus its wire neighbours.
#[derive(Debug, Clone, PartialEq)]
pub struct DagNode {
    /// Index of the operation in the source circuit.
    pub op_index: usize,
    /// The operation itself.
    pub op: Operation,
    /// Predecessor node on each qubit the operation touches (same order as
    /// [`Operation::qubits`]); `None` when the operation is the first on that
    /// wire.
    pub predecessors: Vec<Option<NodeId>>,
    /// Successor node on each qubit the operation touches; `None` when the
    /// operation is the last on that wire.
    pub successors: Vec<Option<NodeId>>,
    /// ASAP layer of the node (0-based).
    pub layer: usize,
}

/// Dependency DAG of a [`Circuit`] with ASAP layering.
///
/// ```rust
/// use qrcc_circuit::{Circuit, dag::CircuitDag};
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).cx(1, 2);
/// let dag = CircuitDag::from_circuit(&c);
/// assert_eq!(dag.num_layers(), 3);
/// assert_eq!(dag.nodes().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitDag {
    nodes: Vec<DagNode>,
    num_qubits: usize,
    /// For each qubit, the nodes touching it in program order.
    wire_nodes: Vec<Vec<NodeId>>,
    num_layers: usize,
}

impl CircuitDag {
    /// Builds the DAG of `circuit` (barriers are skipped: they do not carry
    /// data dependencies for the purposes of cutting and reuse).
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let num_qubits = circuit.num_qubits();
        let mut nodes: Vec<DagNode> = Vec::new();
        let mut wire_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); num_qubits];
        let mut last_on_wire: Vec<Option<NodeId>> = vec![None; num_qubits];
        let mut wire_depth: Vec<usize> = vec![0; num_qubits];

        for (op_index, op) in circuit.operations().iter().enumerate() {
            if op.is_barrier() {
                continue;
            }
            let qubits = op.qubits();
            let id = nodes.len();
            let layer = qubits.iter().map(|q| wire_depth[q.index()]).max().unwrap_or(0);
            let mut predecessors = Vec::with_capacity(qubits.len());
            for q in &qubits {
                let prev = last_on_wire[q.index()];
                if let Some(p) = prev {
                    // find which slot of p corresponds to this qubit
                    let pq = nodes[p].op.qubits();
                    for (slot, pqq) in pq.iter().enumerate() {
                        if pqq == q {
                            nodes[p].successors[slot] = Some(id);
                        }
                    }
                }
                predecessors.push(prev);
            }
            let successors = vec![None; qubits.len()];
            for q in &qubits {
                last_on_wire[q.index()] = Some(id);
                wire_depth[q.index()] = layer + 1;
                wire_nodes[q.index()].push(id);
            }
            nodes.push(DagNode { op_index, op: op.clone(), predecessors, successors, layer });
        }

        let num_layers = nodes.iter().map(|n| n.layer + 1).max().unwrap_or(0);
        CircuitDag { nodes, num_qubits, wire_nodes, num_layers }
    }

    /// All nodes, in program order (which is also a topological order).
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &DagNode {
        &self.nodes[id]
    }

    /// Number of qubits of the underlying circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of ASAP layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// The nodes touching qubit `q`, in program order.
    pub fn wire(&self, q: QubitId) -> &[NodeId] {
        &self.wire_nodes[q.index()]
    }

    /// Nodes grouped by ASAP layer.
    pub fn layers(&self) -> Vec<Vec<NodeId>> {
        let mut layers = vec![Vec::new(); self.num_layers];
        for (id, node) in self.nodes.iter().enumerate() {
            layers[node.layer].push(id);
        }
        layers
    }

    /// The first (earliest) node on each qubit wire, if any.
    pub fn wire_first(&self, q: QubitId) -> Option<NodeId> {
        self.wire_nodes[q.index()].first().copied()
    }

    /// The last (latest) node on each qubit wire, if any.
    pub fn wire_last(&self, q: QubitId) -> Option<NodeId> {
        self.wire_nodes[q.index()].last().copied()
    }

    /// Layer of the first operation on qubit `q`, or `None` if the qubit is idle.
    pub fn first_layer_of(&self, q: QubitId) -> Option<usize> {
        self.wire_first(q).map(|id| self.nodes[id].layer)
    }

    /// Layer of the last operation on qubit `q`, or `None` if the qubit is idle.
    pub fn last_layer_of(&self, q: QubitId) -> Option<usize> {
        self.wire_last(q).map(|id| self.nodes[id].layer)
    }

    /// All transitive predecessors of `id` (the causal cone feeding into it),
    /// excluding `id` itself.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            for pred in self.nodes[n].predecessors.iter().flatten() {
                if !seen[*pred] {
                    seen[*pred] = true;
                    stack.push(*pred);
                }
            }
        }
        seen.iter().enumerate().filter_map(|(i, &s)| if s { Some(i) } else { None }).collect()
    }

    /// All transitive successors of `id`, excluding `id` itself.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            for succ in self.nodes[n].successors.iter().flatten() {
                if !seen[*succ] {
                    seen[*succ] = true;
                    stack.push(*succ);
                }
            }
        }
        seen.iter().enumerate().filter_map(|(i, &s)| if s { Some(i) } else { None }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    #[test]
    fn linear_chain_layers() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.num_layers(), 3);
        assert_eq!(dag.node(0).layer, 0);
        assert_eq!(dag.node(1).layer, 1);
        assert_eq!(dag.node(2).layer, 2);
    }

    #[test]
    fn parallel_gates_share_a_layer() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).cx(0, 1).cx(2, 3);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.node(2).layer, 1); // cx(0,1) waits for both h gates
        assert_eq!(dag.node(3).layer, 0); // cx(2,3) has no predecessors
        assert_eq!(dag.num_layers(), 2);
    }

    #[test]
    fn wire_links_are_consistent() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(1);
        let dag = CircuitDag::from_circuit(&c);
        // node 0 (h q0) successor on q0 is node 1 (cx)
        assert_eq!(dag.node(0).successors, vec![Some(1)]);
        // node 1 predecessors: q0 -> node 0, q1 -> none
        assert_eq!(dag.node(1).predecessors, vec![Some(0), None]);
        // node 1 successors: q0 -> none, q1 -> node 2
        assert_eq!(dag.node(1).successors, vec![None, Some(2)]);
        assert_eq!(dag.wire(QubitId::new(1)), &[1, 2]);
    }

    #[test]
    fn barriers_are_skipped() {
        let mut c = Circuit::new(2);
        c.h(0).barrier().cx(0, 1);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.nodes().len(), 2);
    }

    #[test]
    fn ancestors_and_descendants() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).h(2);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.ancestors(0), Vec::<usize>::new());
        assert_eq!(dag.ancestors(2), vec![0, 1]);
        assert_eq!(dag.descendants(0), vec![1, 2, 3]);
        assert_eq!(dag.descendants(3), Vec::<usize>::new());
    }

    #[test]
    fn wire_first_and_last_layers() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.first_layer_of(QubitId::new(2)), Some(2));
        assert_eq!(dag.last_layer_of(QubitId::new(0)), Some(1));
        let idle = Circuit::new(2);
        let idle_dag = CircuitDag::from_circuit(&idle);
        assert_eq!(idle_dag.first_layer_of(QubitId::new(0)), None);
    }

    #[test]
    fn measure_and_reset_participate_in_the_dag() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0).reset(0).x(0);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.nodes().len(), 4);
        assert_eq!(dag.num_layers(), 4);
        assert!(dag.node(1).op.is_measure());
        assert!(matches!(dag.node(3).op.as_gate(), Some(Gate::X)));
    }
}
