use crate::{CircuitError, Gate, Operation, QubitId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::f64::consts::FRAC_PI_2;
use std::fmt;

/// A gate-level quantum circuit over `num_qubits` qubits and `num_clbits`
/// classical bits.
///
/// A circuit is an ordered list of [`Operation`]s. Builder methods such as
/// [`Circuit::h`] and [`Circuit::cx`] append gates and return `&mut Self` so
/// they can be chained; they panic on out-of-range qubits (see *Panics* on
/// each method), while the lower-level [`Circuit::try_push`] returns a
/// [`CircuitError`] instead.
///
/// ```rust
/// use qrcc_circuit::Circuit;
///
/// let mut ghz = Circuit::new(3);
/// ghz.h(0).cx(0, 1).cx(1, 2);
/// assert_eq!(ghz.depth(), 3);
/// assert_eq!(ghz.two_qubit_gate_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    ops: Vec<Operation>,
    name: String,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits and no classical bits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit { num_qubits, num_clbits: 0, ops: Vec::new(), name: String::from("circuit") }
    }

    /// Creates an empty circuit with both quantum and classical registers.
    pub fn with_clbits(num_qubits: usize, num_clbits: usize) -> Self {
        Circuit { num_qubits, num_clbits, ops: Vec::new(), name: String::from("circuit") }
    }

    /// Sets a human-readable name used in harness reports.
    pub fn set_name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits in the circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits in the circuit.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The operations of the circuit in program order.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations (gates, measurements, resets, barriers).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the circuit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Grows the classical register to at least `n` bits.
    pub fn ensure_clbits(&mut self, n: usize) -> &mut Self {
        if n > self.num_clbits {
            self.num_clbits = n;
        }
        self
    }

    /// Appends an operation after validating its qubit and classical-bit
    /// indices against this circuit's registers.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] or
    /// [`CircuitError::ClbitOutOfRange`] when an index exceeds the registers.
    pub fn try_push(&mut self, op: Operation) -> Result<&mut Self, CircuitError> {
        for q in op.qubits() {
            if q.index() >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q.index(),
                    num_qubits: self.num_qubits,
                });
            }
        }
        if let Operation::Measure { clbit, .. } = op {
            if clbit >= self.num_clbits {
                return Err(CircuitError::ClbitOutOfRange { clbit, num_clbits: self.num_clbits });
            }
        }
        self.ops.push(op);
        Ok(self)
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation refers to a qubit or classical bit outside the
    /// circuit's registers. Use [`Circuit::try_push`] for a fallible variant.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        self.try_push(op).expect("operation refers to an out-of-range qubit or classical bit");
        self
    }

    fn push_gate(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        let ids: Vec<QubitId> = qubits.iter().copied().map(QubitId::new).collect();
        let op = Operation::gate(gate, &ids).expect("gate arity mismatch in builder");
        self.push(op)
    }

    // ---- single-qubit builders ------------------------------------------

    /// Appends an identity gate on `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range (as do all builder methods below).
    pub fn id(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::I, &[q])
    }

    /// Appends a Hadamard gate on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::H, &[q])
    }

    /// Appends a Pauli-X gate on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::X, &[q])
    }

    /// Appends a Pauli-Y gate on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Y, &[q])
    }

    /// Appends a Pauli-Z gate on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Z, &[q])
    }

    /// Appends an S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::S, &[q])
    }

    /// Appends an S† gate on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Sdg, &[q])
    }

    /// Appends a T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::T, &[q])
    }

    /// Appends a T† gate on `q`.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Tdg, &[q])
    }

    /// Appends a √X gate on `q`.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::SqrtX, &[q])
    }

    /// Appends an X-rotation by `theta` on `q`.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::Rx(theta), &[q])
    }

    /// Appends a Y-rotation by `theta` on `q`.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::Ry(theta), &[q])
    }

    /// Appends a Z-rotation by `theta` on `q`.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::Rz(theta), &[q])
    }

    /// Appends a phase gate diag(1, e^{iλ}) on `q`.
    pub fn p(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::Phase(lambda), &[q])
    }

    /// Appends a general single-qubit gate U3(θ, φ, λ) on `q`.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::U3(theta, phi, lambda), &[q])
    }

    // ---- two-qubit builders ----------------------------------------------

    /// Appends a CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.push_gate(Gate::Cx, &[c, t])
    }

    /// Appends a controlled-Y with control `c` and target `t`.
    pub fn cy(&mut self, c: usize, t: usize) -> &mut Self {
        self.push_gate(Gate::Cy, &[c, t])
    }

    /// Appends a controlled-Z between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::Cz, &[a, b])
    }

    /// Appends a SWAP between `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::Swap, &[a, b])
    }

    /// Appends an RZZ(θ) interaction between `a` and `b`.
    pub fn rzz(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::Rzz(theta), &[a, b])
    }

    /// Appends an RXX(θ) interaction between `a` and `b`.
    pub fn rxx(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::Rxx(theta), &[a, b])
    }

    /// Appends an RYY(θ) interaction between `a` and `b`.
    pub fn ryy(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::Ryy(theta), &[a, b])
    }

    /// Appends a controlled-phase gate diag(1,1,1,e^{iλ}) between `a` and `b`.
    pub fn cp(&mut self, lambda: f64, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::CPhase(lambda), &[a, b])
    }

    /// Appends a Toffoli (CCX) gate decomposed into single- and two-qubit
    /// gates (standard 6-CNOT + T decomposition), since the IR is restricted
    /// to at most two-qubit gates.
    pub fn ccx(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        self.h(t)
            .cx(c2, t)
            .tdg(t)
            .cx(c1, t)
            .t(t)
            .cx(c2, t)
            .tdg(t)
            .cx(c1, t)
            .t(c2)
            .t(t)
            .h(t)
            .cx(c1, c2)
            .t(c1)
            .tdg(c2)
            .cx(c1, c2)
    }

    // ---- non-unitary builders --------------------------------------------

    /// Appends a measurement of `q` into classical bit `c`, growing the
    /// classical register if needed.
    pub fn measure(&mut self, q: usize, c: usize) -> &mut Self {
        self.ensure_clbits(c + 1);
        self.push(Operation::Measure { qubit: QubitId::new(q), clbit: c })
    }

    /// Appends a measurement of every qubit into classical bits `0..n`.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits {
            self.measure(q, q);
        }
        self
    }

    /// Appends a reset of `q` to |0⟩.
    pub fn reset(&mut self, q: usize) -> &mut Self {
        self.push(Operation::Reset { qubit: QubitId::new(q) })
    }

    /// Appends a barrier across all qubits.
    pub fn barrier(&mut self) -> &mut Self {
        let qubits = (0..self.num_qubits).map(QubitId::new).collect();
        self.push(Operation::Barrier { qubits })
    }

    // ---- derived helpers --------------------------------------------------

    /// Appends an XX-interaction `exp(-iθ/2 X⊗X)` realised with Hadamard
    /// conjugation around an RZZ, keeping the two-qubit part a single
    /// gate-cuttable RZZ.
    pub fn xx_via_rzz(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.h(a).h(b).rzz(theta, a, b).h(a).h(b)
    }

    /// Appends a YY-interaction `exp(-iθ/2 Y⊗Y)` realised with basis-change
    /// conjugation around an RZZ.
    pub fn yy_via_rzz(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.rx(FRAC_PI_2, a).rx(FRAC_PI_2, b).rzz(theta, a, b).rx(-FRAC_PI_2, a).rx(-FRAC_PI_2, b)
    }

    /// Appends every operation of `other` to this circuit.
    ///
    /// # Panics
    ///
    /// Panics if `other` has more qubits or classical bits than this circuit.
    pub fn compose(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot compose a {}-qubit circuit into a {}-qubit circuit",
            other.num_qubits,
            self.num_qubits
        );
        self.ensure_clbits(other.num_clbits);
        for op in &other.ops {
            self.push(op.clone());
        }
        self
    }

    /// Returns the adjoint of the unitary part of this circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NonUnitaryOperation`] if the circuit contains
    /// a measurement or reset.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut out = Circuit::new(self.num_qubits);
        out.set_name(format!("{}_dg", self.name));
        for (i, op) in self.ops.iter().enumerate().rev() {
            match op {
                Operation::Single { gate, qubit } => {
                    out.push(Operation::Single { gate: gate.dagger(), qubit: *qubit });
                }
                Operation::Two { gate, qubits } => {
                    out.push(Operation::Two { gate: gate.dagger(), qubits: *qubits });
                }
                Operation::Barrier { qubits } => {
                    out.push(Operation::Barrier { qubits: qubits.clone() });
                }
                _ => return Err(CircuitError::NonUnitaryOperation { index: i }),
            }
        }
        Ok(out)
    }

    /// Returns a copy of this circuit without measurements, resets and
    /// barriers (only the unitary gates).
    pub fn without_non_unitary(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        out.set_name(self.name.clone());
        for op in &self.ops {
            if op.is_gate() {
                out.push(op.clone());
            }
        }
        out
    }

    /// Whether the circuit contains only unitary gates.
    pub fn is_unitary_only(&self) -> bool {
        self.ops.iter().all(Operation::is_gate)
    }

    /// The circuit depth: the length of the longest chain of operations on
    /// any wire (barriers are excluded).
    pub fn depth(&self) -> usize {
        let mut reach = vec![0usize; self.num_qubits];
        for op in &self.ops {
            if op.is_barrier() {
                continue;
            }
            let qs = op.qubits();
            let level = qs.iter().map(|q| reach[q.index()]).max().unwrap_or(0) + 1;
            for q in qs {
                reach[q.index()] = level;
            }
        }
        reach.into_iter().max().unwrap_or(0)
    }

    /// Total number of unitary gates.
    pub fn gate_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_gate()).count()
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_two_qubit_gate()).count()
    }

    /// Number of single-qubit gates.
    pub fn single_qubit_gate_count(&self) -> usize {
        self.gate_count() - self.two_qubit_gate_count()
    }

    /// Per-gate-name operation counts, e.g. `{"cx": 4, "h": 3}`.
    pub fn count_ops(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for op in &self.ops {
            let name = match op {
                Operation::Single { gate, .. } | Operation::Two { gate, .. } => gate.name(),
                Operation::Measure { .. } => "measure",
                Operation::Reset { .. } => "reset",
                Operation::Barrier { .. } => "barrier",
            };
            *counts.entry(name).or_insert(0) += 1;
        }
        counts
    }

    /// The set of qubits that are touched by at least one operation.
    pub fn active_qubits(&self) -> Vec<QubitId> {
        let mut used = vec![false; self.num_qubits];
        for op in &self.ops {
            for q in op.qubits() {
                used[q.index()] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter_map(|(i, &u)| if u { Some(QubitId::new(i)) } else { None })
            .collect()
    }

    /// Number of qubits touched by at least one operation.
    pub fn active_qubit_count(&self) -> usize {
        self.active_qubits().len()
    }

    /// Density of two-qubit gates: two-qubit gates per qubit.
    pub fn two_qubit_density(&self) -> f64 {
        if self.num_qubits == 0 {
            0.0
        } else {
            self.two_qubit_gate_count() as f64 / self.num_qubits as f64
        }
    }

    /// A 64-bit structural fingerprint of the circuit: qubit/clbit counts plus
    /// every operation (gate name, exact parameter bits, qubit and classical
    /// bit indices), in program order. The circuit's *name* is deliberately
    /// excluded — two circuits that execute identically hash identically.
    ///
    /// Execution-layer caches key on this hash (verifying equality on the rare
    /// bucket collision) instead of serialising circuits to QASM strings.
    pub fn structural_hash(&self) -> u64 {
        // FNV-1a over a canonical byte encoding of the circuit structure.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.num_qubits as u64);
        mix(self.num_clbits as u64);
        for op in &self.ops {
            match op {
                Operation::Single { gate, qubit } => {
                    mix(1);
                    hash_gate(gate, &mut mix);
                    mix(qubit.index() as u64);
                }
                Operation::Two { gate, qubits } => {
                    mix(2);
                    hash_gate(gate, &mut mix);
                    mix(qubits[0].index() as u64);
                    mix(qubits[1].index() as u64);
                }
                Operation::Measure { qubit, clbit } => {
                    mix(3);
                    mix(qubit.index() as u64);
                    mix(*clbit as u64);
                }
                Operation::Reset { qubit } => {
                    mix(4);
                    mix(qubit.index() as u64);
                }
                Operation::Barrier { qubits } => {
                    mix(5);
                    mix(qubits.len() as u64);
                    for q in qubits {
                        mix(q.index() as u64);
                    }
                }
            }
        }
        h
    }

    /// Whether two circuits execute identically: equal qubit/clbit counts and
    /// equal operation sequences, ignoring the circuit *name* — the equality
    /// counterpart of [`Circuit::structural_hash`]. Dedup layers must use this
    /// (not `PartialEq`, which compares names) so that e.g. two fragments'
    /// structurally identical variants collapse to one execution.
    pub fn structurally_equal(&self, other: &Circuit) -> bool {
        self.num_qubits == other.num_qubits
            && self.num_clbits == other.num_clbits
            && self.ops == other.ops
    }
}

/// Feeds a gate's identity (name pointer-independent) and exact parameter
/// bit patterns into a hash accumulator.
fn hash_gate(gate: &crate::Gate, mix: &mut impl FnMut(u64)) {
    for byte in gate.name().bytes() {
        mix(byte as u64);
    }
    for param in gate.params() {
        mix(param.to_bits());
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} qubits, {} clbits]", self.name, self.num_qubits, self.num_clbits)?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).rz(0.3, 2).measure_all();
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.single_qubit_gate_count(), 2);
        assert_eq!(c.num_clbits(), 3);
        assert_eq!(c.count_ops()["measure"], 3);
    }

    #[test]
    fn depth_counts_longest_wire_chain() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        assert_eq!(c.depth(), 1);
        c.cx(0, 1);
        assert_eq!(c.depth(), 2);
        c.h(0).h(0);
        assert_eq!(c.depth(), 4);
    }

    #[test]
    fn depth_ignores_barriers() {
        let mut c = Circuit::new(2);
        c.h(0).barrier().h(0);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn builder_panics_on_bad_qubit() {
        let mut c = Circuit::new(2);
        c.h(5);
    }

    #[test]
    fn try_push_rejects_out_of_range_clbit() {
        let mut c = Circuit::new(2);
        let err = c.try_push(Operation::Measure { qubit: QubitId::new(0), clbit: 3 });
        assert!(matches!(err, Err(CircuitError::ClbitOutOfRange { .. })));
    }

    #[test]
    fn inverse_reverses_and_daggers() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1).rz(0.7, 1);
        let inv = c.inverse().unwrap();
        assert_eq!(inv.gate_count(), 4);
        // last gate of the inverse is the dagger of the first gate
        match inv.operations().last().unwrap() {
            Operation::Single { gate, .. } => assert_eq!(*gate, Gate::H),
            other => panic!("unexpected op {other:?}"),
        }
        match inv.operations().first().unwrap() {
            Operation::Single { gate, .. } => assert_eq!(*gate, Gate::Rz(-0.7)),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn inverse_rejects_measurements() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0);
        assert!(matches!(c.inverse(), Err(CircuitError::NonUnitaryOperation { .. })));
    }

    #[test]
    fn compose_appends_operations() {
        let mut a = Circuit::new(3);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.compose(&b);
        assert_eq!(a.gate_count(), 2);
    }

    #[test]
    fn ccx_decomposition_uses_only_one_and_two_qubit_gates() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert!(c.operations().iter().all(|op| op.qubits().len() <= 2));
        assert_eq!(c.two_qubit_gate_count(), 6);
    }

    #[test]
    fn active_qubits_tracks_touched_wires() {
        let mut c = Circuit::new(5);
        c.h(1).cx(1, 3);
        assert_eq!(c.active_qubit_count(), 2);
        assert_eq!(c.active_qubits(), vec![QubitId::new(1), QubitId::new(3)]);
    }

    #[test]
    fn without_non_unitary_strips_measurements() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0, 0).reset(0).cx(0, 1);
        let stripped = c.without_non_unitary();
        assert!(stripped.is_unitary_only());
        assert_eq!(stripped.gate_count(), 2);
    }

    #[test]
    fn display_lists_operations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let text = c.to_string();
        assert!(text.contains("h q0"));
        assert!(text.contains("cx q0,q1"));
    }

    #[test]
    fn structural_hash_distinguishes_structure_not_names() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1).measure_all();
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).measure_all();
        b.set_name("renamed");
        assert_eq!(a.structural_hash(), b.structural_hash(), "names must not matter");

        let mut c = Circuit::new(2);
        c.h(0).cx(1, 0).measure_all(); // swapped operands
        assert_ne!(a.structural_hash(), c.structural_hash());

        let mut d = Circuit::new(2);
        d.h(0).cx(0, 1); // missing measurements
        assert_ne!(a.structural_hash(), d.structural_hash());

        let mut e = Circuit::new(2);
        e.rz(0.5, 0).cx(0, 1).measure_all();
        let mut f = Circuit::new(2);
        f.rz(0.5 + 1e-12, 0).cx(0, 1).measure_all(); // parameter bits differ
        assert_ne!(e.structural_hash(), f.structural_hash());
    }
}
