//! Minimal OpenQASM 2-style serialisation of circuits — emit **and** parse.
//!
//! The exporter is intentionally small: it exists so that circuits produced
//! by the generators and by the cutting pipeline can be inspected with
//! external tooling, and so harness output can embed circuits textually. It
//! emits the `qelib1`-style gate names used by [`Gate::name`](crate::Gate::name);
//! gates outside OpenQASM 2's standard library (e.g. `rzz`) are emitted with
//! the same call syntax and documented here.
//!
//! [`from_qasm`] is the exporter's inverse and the foundation of the remote
//! execution transport: circuits travel over the wire as [`to_qasm`] text and
//! are parsed back on the worker. It accepts exactly the dialect [`to_qasm`]
//! produces — one statement per line, a single `q` quantum register and a
//! single `c` classical register, the gate set of [`Gate`](crate::Gate) —
//! plus `//` comments and blank lines. Parameters are printed with Rust's
//! shortest-round-trip float formatting, so `from_qasm(to_qasm(c))`
//! reproduces `c` bit-for-bit
//! ([`Circuit::structurally_equal`](crate::Circuit::structurally_equal)).

use crate::{Circuit, CircuitError, Gate, Operation, QubitId};
use std::fmt::Write as _;

/// Renders a circuit as OpenQASM 2-style text.
///
/// ```rust
/// use qrcc_circuit::{Circuit, qasm};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    if circuit.num_clbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_clbits());
    }
    for op in circuit.operations() {
        match op {
            Operation::Single { gate, qubit } => {
                let params = gate.params();
                if params.is_empty() {
                    let _ = writeln!(out, "{} q[{}];", gate.name(), qubit.index());
                } else {
                    let rendered: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
                    let _ = writeln!(
                        out,
                        "{}({}) q[{}];",
                        gate.name(),
                        rendered.join(","),
                        qubit.index()
                    );
                }
            }
            Operation::Two { gate, qubits } => {
                let params = gate.params();
                if params.is_empty() {
                    let _ = writeln!(
                        out,
                        "{} q[{}],q[{}];",
                        gate.name(),
                        qubits[0].index(),
                        qubits[1].index()
                    );
                } else {
                    let rendered: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
                    let _ = writeln!(
                        out,
                        "{}({}) q[{}],q[{}];",
                        gate.name(),
                        rendered.join(","),
                        qubits[0].index(),
                        qubits[1].index()
                    );
                }
            }
            Operation::Measure { qubit, clbit } => {
                let _ = writeln!(out, "measure q[{}] -> c[{}];", qubit.index(), clbit);
            }
            Operation::Reset { qubit } => {
                let _ = writeln!(out, "reset q[{}];", qubit.index());
            }
            Operation::Barrier { qubits } => {
                let args: Vec<String> =
                    qubits.iter().map(|q| format!("q[{}]", q.index())).collect();
                let _ = writeln!(out, "barrier {};", args.join(","));
            }
        }
    }
    out
}

/// Parses OpenQASM 2-style text (the dialect [`to_qasm`] emits) back into a
/// [`Circuit`].
///
/// Register declarations may appear in any order but must precede nothing —
/// operations are validated against them once the whole document is read, so
/// a `creg` after the first `measure` is still accepted. Exactly one `qreg`
/// (named `q`) is required; the `creg` (named `c`) is optional.
///
/// ```rust
/// use qrcc_circuit::{Circuit, qasm};
///
/// let mut c = Circuit::new(2);
/// c.h(0).rzz(0.5, 0, 1).measure_all();
/// let parsed = qasm::from_qasm(&qasm::to_qasm(&c)).unwrap();
/// assert!(parsed.structurally_equal(&c));
/// ```
///
/// # Errors
///
/// Returns [`CircuitError::QasmParse`] (with the 1-based line number and,
/// where the error can be pinned to a token, the 1-based column) for
/// unsupported versions, malformed statements, unknown gates, wrong
/// parameter counts, or out-of-range bit indices.
pub fn from_qasm(text: &str) -> Result<Circuit, CircuitError> {
    let mut num_qubits: Option<usize> = None;
    let mut num_clbits: Option<usize> = None;
    let mut ops: Vec<(usize, usize, Operation)> = Vec::new();

    for (index, raw) in text.lines().enumerate() {
        let line = index + 1;
        let stmt = raw.split("//").next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(version) = stmt.strip_prefix("OPENQASM") {
            let version = version.trim().trim_end_matches(';').trim();
            if version != "2" && !version.starts_with("2.") {
                return Err(parse_error_at(
                    line,
                    column_of(raw, version),
                    format!("unsupported OpenQASM version {version}"),
                ));
            }
            continue;
        }
        if stmt.starts_with("include") {
            continue;
        }
        let stmt = match stmt.strip_suffix(';') {
            Some(s) => s.trim(),
            None => {
                return Err(parse_error_at(
                    line,
                    column_of(raw, stmt),
                    "statement is missing a trailing ';'",
                ))
            }
        };
        if let Some(decl) = stmt.strip_prefix("qreg") {
            let size = parse_register(decl.trim(), 'q').ok_or_else(|| {
                parse_error_at(
                    line,
                    column_of(raw, decl.trim()),
                    format!("malformed qreg declaration '{stmt}'"),
                )
            })?;
            if num_qubits.replace(size).is_some() {
                return Err(parse_error_at(
                    line,
                    column_of(raw, stmt),
                    "duplicate qreg declaration",
                ));
            }
            continue;
        }
        if let Some(decl) = stmt.strip_prefix("creg") {
            let size = parse_register(decl.trim(), 'c').ok_or_else(|| {
                parse_error_at(
                    line,
                    column_of(raw, decl.trim()),
                    format!("malformed creg declaration '{stmt}'"),
                )
            })?;
            if num_clbits.replace(size).is_some() {
                return Err(parse_error_at(
                    line,
                    column_of(raw, stmt),
                    "duplicate creg declaration",
                ));
            }
            continue;
        }
        ops.push((line, column_of(raw, stmt), parse_statement(stmt, line, raw)?));
    }

    let num_qubits =
        num_qubits.ok_or_else(|| parse_error(0, "document declares no qreg register"))?;
    let mut circuit = Circuit::with_clbits(num_qubits, num_clbits.unwrap_or(0));
    for (line, column, op) in ops {
        circuit.try_push(op).map_err(|e| parse_error_at(line, column, e.to_string()))?;
    }
    Ok(circuit)
}

fn parse_error(line: usize, reason: impl Into<String>) -> CircuitError {
    CircuitError::QasmParse { line, column: 0, reason: reason.into() }
}

fn parse_error_at(line: usize, column: usize, reason: impl Into<String>) -> CircuitError {
    CircuitError::QasmParse { line, column, reason: reason.into() }
}

/// 1-based byte column of `token`'s first occurrence in the raw line (0 when
/// the token cannot be located, so the error degrades to line-only).
fn column_of(raw: &str, token: &str) -> usize {
    let token = token.trim();
    if token.is_empty() {
        return 0;
    }
    raw.find(token).map_or(0, |offset| offset + 1)
}

/// Parses `name[size]` for a declaration like `qreg q[3]`, returning the size
/// when the register name matches the single-letter name [`to_qasm`] uses.
fn parse_register(decl: &str, name: char) -> Option<usize> {
    let rest = decl.strip_prefix(name)?;
    let size = rest.strip_prefix('[')?.strip_suffix(']')?;
    size.parse().ok()
}

/// Parses `q[i]` (or `c[i]` for measure targets) into a raw index.
fn parse_bit_ref(token: &str, register: char) -> Option<usize> {
    parse_register(token.trim(), register)
}

/// Parses one operation statement (gate call, measure, reset or barrier);
/// the trailing `;` is already stripped. `raw` is the original line, used to
/// pin errors to the offending token's column.
fn parse_statement(stmt: &str, line: usize, raw: &str) -> Result<Operation, CircuitError> {
    if let Some(rest) = stmt.strip_prefix("measure ") {
        let (qubit, clbit) = rest
            .split_once("->")
            .and_then(|(q, c)| Some((parse_bit_ref(q, 'q')?, parse_bit_ref(c, 'c')?)))
            .ok_or_else(|| {
                parse_error_at(
                    line,
                    column_of(raw, rest),
                    format!("malformed measure statement '{stmt}'"),
                )
            })?;
        return Ok(Operation::Measure { qubit: QubitId::new(qubit), clbit });
    }
    if let Some(rest) = stmt.strip_prefix("reset ") {
        let qubit = parse_bit_ref(rest, 'q').ok_or_else(|| {
            parse_error_at(
                line,
                column_of(raw, rest),
                format!("malformed reset statement '{stmt}'"),
            )
        })?;
        return Ok(Operation::Reset { qubit: QubitId::new(qubit) });
    }
    if stmt == "barrier" || stmt.starts_with("barrier ") {
        let args = stmt.strip_prefix("barrier").unwrap_or("").trim();
        let mut qubits = Vec::new();
        if !args.is_empty() {
            for token in args.split(',') {
                let qubit = parse_bit_ref(token, 'q').ok_or_else(|| {
                    parse_error_at(
                        line,
                        column_of(raw, token),
                        format!("malformed barrier operand '{token}'"),
                    )
                })?;
                qubits.push(QubitId::new(qubit));
            }
        }
        return Ok(Operation::Barrier { qubits });
    }

    // A gate call: `name q[i]` / `name(p,...) q[i],q[j]`.
    let name_end = stmt.find(|c: char| c == '(' || c.is_whitespace()).unwrap_or(stmt.len());
    let (name, rest) = stmt.split_at(name_end);
    let rest = rest.trim_start();
    let (params, operands) = if let Some(after_open) = rest.strip_prefix('(') {
        let (inside, after) = after_open.split_once(')').ok_or_else(|| {
            parse_error_at(
                line,
                column_of(raw, rest),
                format!("unterminated parameter list in '{stmt}'"),
            )
        })?;
        let mut params = Vec::new();
        for token in inside.split(',') {
            let value: f64 = token.trim().parse().map_err(|_| {
                parse_error_at(
                    line,
                    column_of(raw, token),
                    format!("malformed gate parameter '{}'", token.trim()),
                )
            })?;
            params.push(value);
        }
        (params, after.trim_start())
    } else {
        (Vec::new(), rest)
    };
    if operands.is_empty() {
        return Err(parse_error_at(
            line,
            column_of(raw, name),
            format!("gate '{name}' names no qubits"),
        ));
    }
    let mut qubits = Vec::new();
    for token in operands.split(',') {
        let qubit = parse_bit_ref(token, 'q').ok_or_else(|| {
            parse_error_at(line, column_of(raw, token), format!("malformed gate operand '{token}'"))
        })?;
        qubits.push(QubitId::new(qubit));
    }
    let gate = gate_from_name(name, &params).ok_or_else(|| {
        parse_error_at(
            line,
            column_of(raw, name),
            format!("unknown gate '{name}' with {} parameter(s)", params.len()),
        )
    })?;
    Operation::gate(gate, &qubits)
        .map_err(|e| parse_error_at(line, column_of(raw, name), e.to_string()))
}

/// Maps a QASM gate name plus parameter list back to the [`Gate`] that
/// [`Gate::name`](crate::Gate::name) serialises it as. `None` for unknown
/// names or wrong parameter counts.
fn gate_from_name(name: &str, params: &[f64]) -> Option<Gate> {
    let gate = match (name, params) {
        ("id", []) => Gate::I,
        ("h", []) => Gate::H,
        ("x", []) => Gate::X,
        ("y", []) => Gate::Y,
        ("z", []) => Gate::Z,
        ("s", []) => Gate::S,
        ("sdg", []) => Gate::Sdg,
        ("t", []) => Gate::T,
        ("tdg", []) => Gate::Tdg,
        ("sx", []) => Gate::SqrtX,
        ("rx", &[t]) => Gate::Rx(t),
        ("ry", &[t]) => Gate::Ry(t),
        ("rz", &[t]) => Gate::Rz(t),
        ("p", &[t]) => Gate::Phase(t),
        ("u3", &[a, b, c]) => Gate::U3(a, b, c),
        ("cx", []) => Gate::Cx,
        ("cy", []) => Gate::Cy,
        ("cz", []) => Gate::Cz,
        ("swap", []) => Gate::Swap,
        ("rzz", &[t]) => Gate::Rzz(t),
        ("rxx", &[t]) => Gate::Rxx(t),
        ("ryy", &[t]) => Gate::Ryy(t),
        ("cp", &[t]) => Gate::CPhase(t),
        _ => return None,
    };
    Some(gate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qasm_header_and_registers() {
        let mut c = Circuit::new(3);
        c.h(0).measure(0, 0);
        let text = to_qasm(&c);
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("creg c[1];"));
        assert!(text.contains("measure q[0] -> c[0];"));
    }

    #[test]
    fn parameterised_gates_serialise_with_arguments() {
        let mut c = Circuit::new(2);
        c.rz(0.25, 0).rzz(0.5, 0, 1).reset(1).barrier();
        let text = to_qasm(&c);
        assert!(text.contains("rz(0.25) q[0];"));
        assert!(text.contains("rzz(0.5) q[0],q[1];"));
        assert!(text.contains("reset q[1];"));
        assert!(text.contains("barrier q[0],q[1];"));
    }

    #[test]
    fn parser_round_trips_every_operation_kind() {
        let mut c = Circuit::new(3);
        c.h(0)
            .sx(1)
            .u3(0.1, -0.2, 0.3, 2)
            .cp(0.7, 0, 2)
            .rzz(-1.5, 1, 2)
            .swap(0, 1)
            .reset(2)
            .barrier()
            .measure(0, 0)
            .measure(2, 1);
        let parsed = from_qasm(&to_qasm(&c)).unwrap();
        assert!(parsed.structurally_equal(&c));
        assert_eq!(parsed.structural_hash(), c.structural_hash());
        assert_eq!(parsed.num_clbits(), 2);
    }

    #[test]
    fn parser_preserves_exact_parameter_bits() {
        let theta = std::f64::consts::PI / 7.0 + 1e-13;
        let mut c = Circuit::new(2);
        c.rz(theta, 0).ry(-theta, 1).rxx(1e-17, 0, 1);
        let parsed = from_qasm(&to_qasm(&c)).unwrap();
        let params: Vec<f64> =
            parsed.operations().iter().flat_map(|op| op.as_gate().unwrap().params()).collect();
        assert_eq!(params[0].to_bits(), theta.to_bits());
        assert_eq!(params[1].to_bits(), (-theta).to_bits());
        assert_eq!(params[2].to_bits(), 1e-17f64.to_bits());
    }

    #[test]
    fn parser_accepts_comments_blank_lines_and_clbit_free_circuits() {
        let text =
            "OPENQASM 2.0;\n\n// a comment\nqreg q[2];\nh q[0]; // trailing\ncx q[0],q[1];\n";
        let parsed = from_qasm(text).unwrap();
        assert_eq!(parsed.num_qubits(), 2);
        assert_eq!(parsed.num_clbits(), 0);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn parser_rejects_malformed_documents_with_line_numbers() {
        let unknown = from_qasm("qreg q[2];\nbogus q[0];\n");
        assert!(
            matches!(unknown, Err(CircuitError::QasmParse { line: 2, column: 1, .. })),
            "{unknown:?}"
        );
        let version = from_qasm("OPENQASM 3.0;\nqreg q[1];\n");
        assert!(matches!(version, Err(CircuitError::QasmParse { line: 1, .. })));
        let no_semicolon = from_qasm("qreg q[1];\nh q[0]\n");
        assert!(matches!(no_semicolon, Err(CircuitError::QasmParse { line: 2, .. })));
        let no_qreg = from_qasm("h q[0];\n");
        assert!(matches!(no_qreg, Err(CircuitError::QasmParse { line: 0, .. })));
        let wrong_arity = from_qasm("qreg q[2];\ncx q[0];\n");
        assert!(matches!(wrong_arity, Err(CircuitError::QasmParse { line: 2, .. })));
        let wrong_params = from_qasm("qreg q[1];\nrz q[0];\n");
        assert!(matches!(wrong_params, Err(CircuitError::QasmParse { line: 2, .. })));
        let out_of_range = from_qasm("qreg q[1];\nh q[4];\n");
        assert!(matches!(out_of_range, Err(CircuitError::QasmParse { line: 2, .. })));
        let oob_clbit = from_qasm("qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[3];\n");
        assert!(matches!(oob_clbit, Err(CircuitError::QasmParse { line: 3, .. })));
        let dup_qreg = from_qasm("qreg q[1];\nqreg q[2];\n");
        assert!(matches!(dup_qreg, Err(CircuitError::QasmParse { line: 2, .. })));
        let dup_creg = from_qasm("qreg q[1];\ncreg c[4];\ncreg c[1];\n");
        assert!(matches!(dup_creg, Err(CircuitError::QasmParse { line: 3, .. })));
        let future_version = from_qasm("OPENQASM 20.0;\nqreg q[1];\n");
        assert!(matches!(future_version, Err(CircuitError::QasmParse { line: 1, .. })));
    }

    #[test]
    fn parse_errors_pin_the_offending_token_column() {
        // out-of-range indices are caught at whole-document validation, so
        // they point at the statement start (column 1 of `h q[4];`)
        let out_of_range = from_qasm("qreg q[1];\nh q[4];\n");
        assert!(
            matches!(out_of_range, Err(CircuitError::QasmParse { line: 2, column: 1, .. })),
            "{out_of_range:?}"
        );
        // the malformed operand `q(0)` starts at column 4 of `cx q(0),q[1];`
        let operand = from_qasm("qreg q[2];\ncx q(0),q[1];\n");
        assert!(
            matches!(operand, Err(CircuitError::QasmParse { line: 2, column: 4, .. })),
            "{operand:?}"
        );
        // indentation shifts the column: `bogus` behind two spaces is column 3
        let indented = from_qasm("qreg q[1];\n  bogus q[0];\n");
        assert!(
            matches!(indented, Err(CircuitError::QasmParse { line: 2, column: 3, .. })),
            "{indented:?}"
        );
        // document-level errors cannot name a token: line 0, column 0
        let no_qreg = from_qasm("h q[0];\n");
        assert!(matches!(no_qreg, Err(CircuitError::QasmParse { line: 0, column: 0, .. })));
        // the display message includes the column when one is known
        let message = from_qasm("qreg q[1];\nh q[4];\n").unwrap_err().to_string();
        assert!(message.contains("line 2, column 1"), "{message}");
    }

    #[test]
    fn parser_accepts_registers_declared_after_use_sites() {
        // Whole-document validation: a creg below the measure is still fine.
        let text = "qreg q[1];\nmeasure q[0] -> c[0];\ncreg c[1];\n";
        let parsed = from_qasm(text).unwrap();
        assert_eq!(parsed.num_clbits(), 1);
    }
}
