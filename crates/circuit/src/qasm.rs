//! Minimal OpenQASM 2-style serialisation of circuits.
//!
//! The exporter is intentionally small: it exists so that circuits produced
//! by the generators and by the cutting pipeline can be inspected with
//! external tooling, and so harness output can embed circuits textually. It
//! emits the `qelib1`-style gate names used by [`Gate::name`](crate::Gate::name);
//! gates outside OpenQASM 2's standard library (e.g. `rzz`) are emitted with
//! the same call syntax and documented here.

use crate::{Circuit, Operation};
use std::fmt::Write as _;

/// Renders a circuit as OpenQASM 2-style text.
///
/// ```rust
/// use qrcc_circuit::{Circuit, qasm};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    if circuit.num_clbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_clbits());
    }
    for op in circuit.operations() {
        match op {
            Operation::Single { gate, qubit } => {
                let params = gate.params();
                if params.is_empty() {
                    let _ = writeln!(out, "{} q[{}];", gate.name(), qubit.index());
                } else {
                    let rendered: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
                    let _ = writeln!(
                        out,
                        "{}({}) q[{}];",
                        gate.name(),
                        rendered.join(","),
                        qubit.index()
                    );
                }
            }
            Operation::Two { gate, qubits } => {
                let params = gate.params();
                if params.is_empty() {
                    let _ = writeln!(
                        out,
                        "{} q[{}],q[{}];",
                        gate.name(),
                        qubits[0].index(),
                        qubits[1].index()
                    );
                } else {
                    let rendered: Vec<String> = params.iter().map(|p| format!("{p}")).collect();
                    let _ = writeln!(
                        out,
                        "{}({}) q[{}],q[{}];",
                        gate.name(),
                        rendered.join(","),
                        qubits[0].index(),
                        qubits[1].index()
                    );
                }
            }
            Operation::Measure { qubit, clbit } => {
                let _ = writeln!(out, "measure q[{}] -> c[{}];", qubit.index(), clbit);
            }
            Operation::Reset { qubit } => {
                let _ = writeln!(out, "reset q[{}];", qubit.index());
            }
            Operation::Barrier { qubits } => {
                let args: Vec<String> =
                    qubits.iter().map(|q| format!("q[{}]", q.index())).collect();
                let _ = writeln!(out, "barrier {};", args.join(","));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qasm_header_and_registers() {
        let mut c = Circuit::new(3);
        c.h(0).measure(0, 0);
        let text = to_qasm(&c);
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("creg c[1];"));
        assert!(text.contains("measure q[0] -> c[0];"));
    }

    #[test]
    fn parameterised_gates_serialise_with_arguments() {
        let mut c = Circuit::new(2);
        c.rz(0.25, 0).rzz(0.5, 0, 1).reset(1).barrier();
        let text = to_qasm(&c);
        assert!(text.contains("rz(0.25) q[0];"));
        assert!(text.contains("rzz(0.5) q[0],q[1];"));
        assert!(text.contains("reset q[1];"));
        assert!(text.contains("barrier q[0],q[1];"));
    }
}
