//! Pauli-string observables for expectation-value workloads.
//!
//! Gate cutting can only reconstruct expectation values, so the QAOA,
//! Hamiltonian-simulation and VQE benchmarks evaluate `⟨ψ|H|ψ⟩` for a
//! Hamiltonian `H` expressed as a weighted sum of Pauli strings.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A Pauli string over `n` qubits, e.g. `ZIZI`.
///
/// Index `i` of the inner vector is the Pauli acting on qubit `i`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PauliString {
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString { paulis: vec![Pauli::I; n] }
    }

    /// Builds a string from explicit per-qubit Paulis.
    pub fn from_paulis(paulis: Vec<Pauli>) -> Self {
        PauliString { paulis }
    }

    /// A string with a single `Z` on `qubit` (identity elsewhere).
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn z(n: usize, qubit: usize) -> Self {
        Self::single(n, qubit, Pauli::Z)
    }

    /// A string with a single `X` on `qubit`.
    pub fn x(n: usize, qubit: usize) -> Self {
        Self::single(n, qubit, Pauli::X)
    }

    /// A string with a single `Y` on `qubit`.
    pub fn y(n: usize, qubit: usize) -> Self {
        Self::single(n, qubit, Pauli::Y)
    }

    /// A string with `ZZ` on the pair `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range or `a == b`.
    pub fn zz(n: usize, a: usize, b: usize) -> Self {
        assert!(a < n && b < n && a != b, "invalid ZZ pair ({a},{b}) for {n} qubits");
        let mut s = Self::identity(n);
        s.paulis[a] = Pauli::Z;
        s.paulis[b] = Pauli::Z;
        s
    }

    fn single(n: usize, qubit: usize, p: Pauli) -> Self {
        assert!(qubit < n, "qubit {qubit} out of range for {n} qubits");
        let mut s = Self::identity(n);
        s.paulis[qubit] = p;
        s
    }

    /// Number of qubits the string is defined on.
    pub fn num_qubits(&self) -> usize {
        self.paulis.len()
    }

    /// The Pauli on `qubit`.
    pub fn pauli(&self, qubit: usize) -> Pauli {
        self.paulis[qubit]
    }

    /// The per-qubit Paulis.
    pub fn paulis(&self) -> &[Pauli] {
        &self.paulis
    }

    /// The qubits with a non-identity Pauli (the string's *support*).
    pub fn support(&self) -> Vec<usize> {
        self.paulis
            .iter()
            .enumerate()
            .filter_map(|(i, p)| if *p != Pauli::I { Some(i) } else { None })
            .collect()
    }

    /// Whether the string is the identity.
    pub fn is_identity(&self) -> bool {
        self.paulis.iter().all(|p| *p == Pauli::I)
    }

    /// Restricts the string to a subset of qubits (in the given order),
    /// producing a string over `qubits.len()` qubits.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn restrict(&self, qubits: &[usize]) -> PauliString {
        PauliString { paulis: qubits.iter().map(|&q| self.paulis[q]).collect() }
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.paulis {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// A Hermitian observable expressed as a weighted sum of Pauli strings.
///
/// ```rust
/// use qrcc_circuit::observable::{PauliObservable, PauliString};
///
/// let mut h = PauliObservable::new(3);
/// h.add_term(0.5, PauliString::zz(3, 0, 1));
/// h.add_term(-1.0, PauliString::z(3, 2));
/// assert_eq!(h.terms().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PauliObservable {
    num_qubits: usize,
    terms: Vec<(f64, PauliString)>,
}

impl PauliObservable {
    /// An observable with no terms over `n` qubits (the zero operator).
    pub fn new(num_qubits: usize) -> Self {
        PauliObservable { num_qubits, terms: Vec::new() }
    }

    /// The all-`Z` observable `Z⊗Z⊗…⊗Z`, the default measurement-basis
    /// observable used in the paper's verification experiment.
    pub fn all_z(num_qubits: usize) -> Self {
        let mut obs = Self::new(num_qubits);
        obs.add_term(1.0, PauliString::from_paulis(vec![Pauli::Z; num_qubits]));
        obs
    }

    /// Adds a weighted Pauli string term.
    ///
    /// # Panics
    ///
    /// Panics if the string's qubit count differs from the observable's.
    pub fn add_term(&mut self, coefficient: f64, string: PauliString) -> &mut Self {
        assert_eq!(
            string.num_qubits(),
            self.num_qubits,
            "pauli string width does not match observable width"
        );
        self.terms.push((coefficient, string));
        self
    }

    /// Number of qubits the observable acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The weighted terms.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// The MaxCut cost observable of a graph:
    /// `C = Σ_{(i,j)∈E} ½ (I − Z_i Z_j)`, i.e. constant `|E|/2` plus
    /// `−½ Z_i Z_j` per edge. The constant offset is tracked separately via
    /// [`PauliObservable::constant_offset`]-style identity terms.
    pub fn maxcut(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let mut obs = Self::new(n);
        // constant part |E|/2 as an identity term
        obs.add_term(graph.num_edges() as f64 * 0.5, PauliString::identity(n));
        for &(a, b) in graph.edges() {
            obs.add_term(-0.5, PauliString::zz(n, a, b));
        }
        obs
    }

    /// The transverse-field Ising Hamiltonian on a graph:
    /// `H = J Σ_{(i,j)∈E} Z_i Z_j + h Σ_i X_i`.
    pub fn ising(graph: &Graph, j: f64, h: f64) -> Self {
        let n = graph.num_nodes();
        let mut obs = Self::new(n);
        for &(a, b) in graph.edges() {
            obs.add_term(j, PauliString::zz(n, a, b));
        }
        if h != 0.0 {
            for q in 0..n {
                obs.add_term(h, PauliString::x(n, q));
            }
        }
        obs
    }

    /// The Heisenberg Hamiltonian on a graph:
    /// `H = Σ_{(i,j)∈E} (Jx X_iX_j + Jy Y_iY_j + Jz Z_iZ_j)`.
    pub fn heisenberg(graph: &Graph, jx: f64, jy: f64, jz: f64) -> Self {
        let n = graph.num_nodes();
        let mut obs = Self::new(n);
        for &(a, b) in graph.edges() {
            if jx != 0.0 {
                let mut s = PauliString::identity(n);
                s.paulis[a] = Pauli::X;
                s.paulis[b] = Pauli::X;
                obs.add_term(jx, s);
            }
            if jy != 0.0 {
                let mut s = PauliString::identity(n);
                s.paulis[a] = Pauli::Y;
                s.paulis[b] = Pauli::Y;
                obs.add_term(jy, s);
            }
            if jz != 0.0 {
                obs.add_term(jz, PauliString::zz(n, a, b));
            }
        }
        obs
    }

    /// Sum of the coefficients of identity terms (the constant offset).
    pub fn constant_offset(&self) -> f64 {
        self.terms.iter().filter(|(_, s)| s.is_identity()).map(|(c, _)| *c).sum()
    }

    /// An upper bound on `|⟨H⟩|`: the sum of absolute coefficients.
    pub fn norm_bound(&self) -> f64 {
        self.terms.iter().map(|(c, _)| c.abs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph;

    #[test]
    fn pauli_string_constructors() {
        let z = PauliString::z(3, 1);
        assert_eq!(z.to_string(), "IZI");
        let zz = PauliString::zz(4, 0, 3);
        assert_eq!(zz.to_string(), "ZIIZ");
        assert_eq!(zz.support(), vec![0, 3]);
        assert!(PauliString::identity(2).is_identity());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pauli_string_rejects_bad_qubit() {
        PauliString::x(2, 5);
    }

    #[test]
    fn restrict_projects_onto_subset() {
        let s = PauliString::from_paulis(vec![Pauli::Z, Pauli::I, Pauli::X, Pauli::Y]);
        let r = s.restrict(&[2, 0]);
        assert_eq!(r.paulis(), &[Pauli::X, Pauli::Z]);
    }

    #[test]
    fn maxcut_observable_shape() {
        let g = graph::Graph::from_edges(3, [(0, 1), (1, 2)]);
        let h = PauliObservable::maxcut(&g);
        assert_eq!(h.terms().len(), 3); // 1 identity + 2 edges
        assert!((h.constant_offset() - 1.0).abs() < 1e-12);
        assert!((h.norm_bound() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ising_and_heisenberg_term_counts() {
        let g = graph::lattice_2d(2, 2, false);
        let ising = PauliObservable::ising(&g, 1.0, 0.5);
        assert_eq!(ising.terms().len(), g.num_edges() + 4);
        let heis = PauliObservable::heisenberg(&g, 1.0, 1.0, 1.0);
        assert_eq!(heis.terms().len(), 3 * g.num_edges());
        let xy = PauliObservable::heisenberg(&g, 1.0, 1.0, 0.0);
        assert_eq!(xy.terms().len(), 2 * g.num_edges());
    }

    #[test]
    fn all_z_observable() {
        let obs = PauliObservable::all_z(3);
        assert_eq!(obs.terms().len(), 1);
        assert_eq!(obs.terms()[0].1.to_string(), "ZZZ");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn add_term_rejects_width_mismatch() {
        let mut obs = PauliObservable::new(2);
        obs.add_term(1.0, PauliString::identity(3));
    }
}
